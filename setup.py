"""Legacy setup shim: lets `pip install -e .` work without the wheel package
(this environment is offline; pip falls back to setup.py develop)."""
from setuptools import setup

setup()
