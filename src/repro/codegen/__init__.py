"""OpenCL-C code generation (the ``.cl`` emission stage of the flow).

Contract: ``generate_opencl`` turns a lowered ``ir.Program`` into the
OpenCL-C text that the AOC model (or a real ``aoc`` invocation, see
``examples/emit_opencl.py``) consumes; emission is deterministic given
the program, so generated source is a stable compile-cache key.
"""

from repro.codegen.opencl import OpenCLCodegen, generate_opencl

__all__ = ["OpenCLCodegen", "generate_opencl"]
