"""OpenCL-C code generation (the .cl emission stage of the flow)."""

from repro.codegen.opencl import OpenCLCodegen, generate_opencl

__all__ = ["OpenCLCodegen", "generate_opencl"]
