"""OpenCL-C code generation from lowered kernel IR.

Emits the ``.cl`` source AOC would consume, matching the style of the
thesis's listings: ``#pragma unroll`` directives, ``restrict`` global
pointers, Intel channel declarations with ``depth`` attributes, and the
``autorun``/``max_global_work_dim(0)`` attributes of Section 4.7.

The emitted text is *faithful output*, not what the simulator executes
(the simulator works from the IR directly); it exists so the generated
kernels can be inspected, diffed against the thesis listings, and — on a
machine with the real Intel toolchain — handed to ``aoc``.
"""

from __future__ import annotations

from typing import List

from repro.errors import CodegenError
from repro.ir import expr as _e
from repro.ir import stmt as _s
from repro.ir.kernel import Kernel, Program

_BIN_FMT = {
    "+": "({a} + {b})",
    "-": "({a} - {b})",
    "*": "({a} * {b})",
    "/": "({a} / {b})",
    "//": "({a} / {b})",
    "%": "({a} % {b})",
    "<": "({a} < {b})",
    "<=": "({a} <= {b})",
    ">": "({a} > {b})",
    ">=": "({a} >= {b})",
    "==": "({a} == {b})",
    "!=": "({a} != {b})",
    "&&": "({a} && {b})",
    "||": "({a} || {b})",
}

_CTYPE = {"float32": "float", "int32": "int", "bool": "bool"}


def _ctype(dtype: str) -> str:
    try:
        return _CTYPE[dtype]
    except KeyError:
        raise CodegenError(f"no OpenCL type for dtype {dtype!r}") from None


class OpenCLCodegen:
    """Stateless expression/statement printer for OpenCL C."""

    def expr(self, e: _e.Expr) -> str:
        if isinstance(e, _e.IntImm):
            return str(e.value)
        if isinstance(e, _e.FloatImm):
            v = e.value
            if v == float(int(v)) and abs(v) < 1e9:
                return f"{v:.6e}f"
            return f"{v!r}f"
        if isinstance(e, _e.Var):
            return e.name
        if isinstance(e, _e.Min):
            return f"min({self.expr(e.a)}, {self.expr(e.b)})"
        if isinstance(e, _e.Max):
            return f"max({self.expr(e.a)}, {self.expr(e.b)})"
        if isinstance(e, _e._BinaryOp):
            fmt = _BIN_FMT.get(e.op_name)
            if fmt is None:
                raise CodegenError(f"no OpenCL emission for {e.op_name}")
            return fmt.format(a=self.expr(e.a), b=self.expr(e.b))
        if isinstance(e, _e.Not):
            return f"(!{self.expr(e.a)})"
        if isinstance(e, _e.Cast):
            return f"(({_ctype(e.dtype)}){self.expr(e.value)})"
        if isinstance(e, _e.Select):
            return (
                f"({self.expr(e.cond)} ? {self.expr(e.then_value)}"
                f" : {self.expr(e.else_value)})"
            )
        if isinstance(e, _e.Call):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{e.name}({args})"
        if isinstance(e, _e.Load):
            return f"{e.buffer.name}[{self.expr(e.index)}]"
        if isinstance(e, _e.ChannelRead):
            return f"read_channel_intel({e.channel.name})"
        raise CodegenError(f"cannot emit {type(e).__name__}")

    # ------------------------------------------------------------------
    def stmt(self, s: _s.Stmt, indent: int) -> List[str]:
        pad = "  " * indent
        if isinstance(s, _s.Store):
            return [f"{pad}{s.buffer.name}[{self.expr(s.index)}] = {self.expr(s.value)};"]
        if isinstance(s, _s.Evaluate):
            return [f"{pad}{self.expr(s.value)};"]
        if isinstance(s, _s.ChannelWrite):
            return [
                f"{pad}write_channel_intel({s.channel.name}, {self.expr(s.value)});"
            ]
        if isinstance(s, _s.SeqStmt):
            out: List[str] = []
            for c in s.stmts:
                out.extend(self.stmt(c, indent))
            return out
        if isinstance(s, _s.For):
            v = s.loop_var.name
            lines = []
            if s.kind is _s.ForKind.UNROLLED:
                factor = "" if s.unroll_factor is None else f" {s.unroll_factor}"
                lines.append(f"{pad}#pragma unroll{factor}")
            lines.append(
                f"{pad}for (int {v} = 0; {v} < {self.expr(s.extent)}; ++{v}) {{"
            )
            lines.extend(self.stmt(s.body, indent + 1))
            lines.append(f"{pad}}}")
            return lines
        if isinstance(s, _s.IfThenElse):
            lines = [f"{pad}if ({self.expr(s.cond)}) {{"]
            lines.extend(self.stmt(s.then_body, indent + 1))
            if s.else_body is not None:
                lines.append(f"{pad}}} else {{")
                lines.extend(self.stmt(s.else_body, indent + 1))
            lines.append(f"{pad}}}")
            return lines
        if isinstance(s, _s.Allocate):
            buf = s.buffer
            dims = "".join(f"[{self._dim(d)}]" for d in buf.shape)
            qual = {"local": "__local", "register": "", "constant": "__constant"}[
                buf.scope
            ]
            decl = f"{pad}{qual} {_ctype(buf.dtype)} {buf.name}{dims};".replace(
                f"{pad} ", pad, 1
            )
            return [decl] + self.stmt(s.body, indent)
        if isinstance(s, _s.AttrStmt):
            return [f"{pad}// attr {s.key} = {s.value}"] + self.stmt(s.body, indent)
        raise CodegenError(f"cannot emit {type(s).__name__}")

    def _dim(self, d) -> str:
        if isinstance(d, int):
            return str(d)
        if isinstance(d, _e.Expr):
            return self.expr(d)
        raise CodegenError(f"bad buffer dim {d!r}")

    # ------------------------------------------------------------------
    def kernel(self, k: Kernel) -> str:
        """Emit one ``kernel void`` function."""
        params = [
            f"global {_ctype(b.dtype)} * restrict {b.name}" for b in k.args
        ]
        params += [f"const int {v.name}" for v in k.scalar_args]
        attrs = ""
        if k.autorun:
            attrs = (
                "__attribute__((max_global_work_dim(0)))\n"
                "__attribute__((autorun))\n"
            )
        sig = f"{attrs}kernel void {k.name}({', '.join(params)}) {{"
        body = self.stmt(k.body, 1)
        return "\n".join([sig] + body + ["}"])

    def program(self, prog: Program) -> str:
        """Emit a complete .cl file: channel declarations then kernels."""
        lines = [
            "// Generated by the repro OpenCL codegen",
            "// (compile with: aoc -fp-relaxed -fpc <file>.cl)",
            "#pragma OPENCL EXTENSION cl_intel_channels : enable",
            "",
        ]
        for ch in sorted(prog.all_channels(), key=lambda c: c.name):
            depth = (
                f" __attribute__((depth({ch.depth})))" if ch.depth > 0 else ""
            )
            lines.append(f"channel {_ctype(ch.dtype)} {ch.name}{depth};")
        if prog.all_channels():
            lines.append("")
        for k in prog.kernels:
            lines.append(self.kernel(k))
            lines.append("")
        return "\n".join(lines)


def generate_opencl(obj) -> str:
    """Emit OpenCL C for a :class:`Kernel` or :class:`Program`."""
    cg = OpenCLCodegen()
    if isinstance(obj, Program):
        return cg.program(obj)
    if isinstance(obj, Kernel):
        return cg.kernel(obj)
    raise CodegenError(f"cannot generate code for {type(obj).__name__}")
