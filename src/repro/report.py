"""One-shot reproduction report: ``python -m repro.report``.

Regenerates the headline results of every evaluation section — the LeNet
optimization ladder, the MobileNet/ResNet folded deployments, baseline
comparisons and fit/route failures — and renders them with ASCII charts.
For the full per-table benches, run ``pytest benchmarks/ --benchmark-only``.

Subcommands: ``--trace`` prints the per-stage compile trace of one
deployment (optionally under a demo fault plan); ``--serve`` runs the
batched multi-replica serving simulation and prints its metrics;
``--verify`` runs the static verifier (bounds, races, channel protocol,
OpenCL lint) over one build and exits non-zero on any error-severity
finding; ``--advise`` runs the static performance advisor (RP rules)
and the dominance-prune preview over one build — advice-only findings
exit 0; ``--autofix`` feeds the advisor's machine-readable fixes back
into the schedule and iterates to an advice-clean fixpoint (or a
provably-stuck report).  Run with ``--help`` for the full flag
reference.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, TextIO

from repro.device import ALL_BOARDS, ARRIA10, STRATIX10_SX
from repro.errors import FitError, ReproError, RoutingError
from repro.flow import LEVELS, deploy_folded, deploy_pipelined
from repro.perf import tf_cpu_fps, tf_cudnn_fps, tvm_cpu_fps
from repro.viz import bar_chart


def _section(out: TextIO, title: str) -> None:
    out.write(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n")


def lenet_ladder(out: TextIO) -> Dict[str, float]:
    _section(out, "LeNet-5 optimization ladder (Fig 6.1 / Table 6.4)")
    final: Dict[str, float] = {}
    for board in ALL_BOARDS:
        labels, values = [], []
        for level in LEVELS:
            d = deploy_pipelined("lenet5", board, level)
            labels.append(level)
            values.append(d.fps(concurrent=True))
        final[board.name] = values[-1]
        out.write(
            bar_chart(f"\n{board.name} (FPS, concurrent execution)", labels,
                      values) + "\n"
        )
    return final


def folded_networks(out: TextIO) -> Dict[str, Dict[str, Optional[float]]]:
    _section(out, "Folded deployments (Tables 6.11/6.14)")
    results: Dict[str, Dict[str, Optional[float]]] = {}
    for net in ("mobilenet_v1", "resnet18", "resnet34", "resnet50"):
        row: Dict[str, Optional[float]] = {}
        for board in ALL_BOARDS:
            try:
                row[board.name] = deploy_folded(net, board).fps()
            except (FitError, RoutingError):
                row[board.name] = None
        results[net] = row
        cells = ", ".join(
            f"{b}: {'no fit' if v is None else f'{v:.2f} FPS'}"
            for b, v in row.items()
        )
        out.write(f"{net:14s} {cells}\n")
    return results


def baseline_comparison(out: TextIO, lenet_fps: float,
                        folded: Dict[str, Dict[str, Optional[float]]]) -> None:
    _section(out, "Versus CPU/GPU baselines (thesis-published reference FPS)")
    rows = [
        ("lenet5", lenet_fps),
        ("mobilenet_v1", folded["mobilenet_v1"]["S10SX"]),
        ("resnet18", folded["resnet18"]["S10SX"]),
        ("resnet34", folded["resnet34"]["S10SX"]),
    ]
    out.write(
        f"{'network':14s} {'FPGA(S10SX)':>12} {'TF-CPU':>9} {'TVM-1T':>9} "
        f"{'GPU':>9}  verdict\n"
    )
    for net, fps in rows:
        assert fps is not None
        cpu = tf_cpu_fps(net)
        verdict = "FPGA wins" if fps > cpu else "CPU wins"
        out.write(
            f"{net:14s} {fps:12.1f} {cpu:9.1f} "
            f"{tvm_cpu_fps(net, 1):9.1f} {tf_cudnn_fps(net):9.1f}  {verdict}\n"
        )


def fit_failures(out: TextIO) -> List[str]:
    _section(out, "Fit / routing failures (the thesis's negative results)")
    cases = [
        ("naive MobileNet on A10", "mobilenet_v1", ARRIA10, True),
        ("naive ResNet-18 on A10", "resnet18", ARRIA10, True),
        ("optimized ResNet-18 on A10", "resnet18", ARRIA10, False),
    ]
    outcomes = []
    for label, net, board, naive in cases:
        try:
            deploy_folded(net, board, naive=naive)
            result = "FITS (mismatch with the thesis!)"
        except (FitError, RoutingError) as e:
            result = type(e).__name__
        outcomes.append(result)
        out.write(f"{label:32s} -> {result}\n")
    return outcomes


def _demo_fault_plan():
    """The documentation fault plan exercised by ``--trace ... --faults``:
    a transient routing failure, a channel stall and a DMA write error,
    all recovered by the resilience layer."""
    from repro.resilience import Fault, FaultPlan

    return FaultPlan(
        Fault("synthesize", "routing", times=1),
        Fault("channel", "stall", times=1, param=800.0),
        Fault("enqueue.write", "dma", times=1),
    )


def _bad_spec(out: TextIO, message: str) -> int:
    """Malformed NETWORK[:...] spec: explain, print USAGE, exit 2.

    Every report mode funnels spec errors through here so the CLI exit
    contract is uniform: status 2 *and* the usage text, regardless of
    which component of the spec was wrong.
    """
    out.write(message + "\n\n")
    out.write(USAGE)
    return 2


def trace_deployment(
    spec: str,
    out: TextIO = sys.stdout,
    as_json: bool = False,
    with_faults: bool = False,
) -> int:
    """Deploy one network and print its per-stage compile trace.

    ``spec`` is ``NETWORK[:MODE[:BOARD]]`` — e.g. ``lenet5``,
    ``mobilenet_v1:folded:A10``, ``lenet5:pipelined:S10MX``.  Mode
    defaults to ``pipelined`` for lenet5 and ``folded`` otherwise;
    board defaults to ``S10SX``.  With ``with_faults`` the deploy runs
    under a demo fault plan (seeded by ``REPRO_FAULT_SEED``) through the
    resilient degradation ladder, and the recovery events are printed
    after the trace.
    """
    from repro.device import ALL_BOARDS, board_by_name
    from repro.flow.stages import MODELS

    parts = spec.split(":")
    network = parts[0]
    if network not in MODELS:
        return _bad_spec(out, f"unknown network {network!r}; "
                         f"choose from: {', '.join(sorted(MODELS))}")
    mode = parts[1] if len(parts) > 1 else (
        "pipelined" if network == "lenet5" else "folded"
    )
    if mode not in ("pipelined", "folded"):
        return _bad_spec(
            out, f"unknown mode {mode!r}; choose 'pipelined' or 'folded'")
    try:
        board = board_by_name(parts[2]) if len(parts) > 2 else STRATIX10_SX
    except KeyError:
        return _bad_spec(out, f"unknown board {parts[2]!r}; choose from: "
                         f"{', '.join(b.name for b in ALL_BOARDS)}")
    if with_faults:
        return _trace_with_faults(network, board, out, as_json)
    try:
        if mode == "pipelined":
            d = deploy_pipelined(network, board)
        else:
            d = deploy_folded(network, board)
    except ReproError as e:
        diag = getattr(e, "diagnostic", None)
        out.write(f"{type(e).__name__}: {e}\n")
        if diag is not None:
            out.write(f"failed at {diag}\n\n")
            out.write(diag.trace.to_json(indent=2) + "\n"
                      if as_json else diag.trace.format_table() + "\n")
        return 1
    _append_execute_record(d)
    out.write(d.trace.to_json(indent=2) + "\n"
              if as_json else d.trace.format_table() + "\n")
    return 0


def _append_execute_record(d) -> None:
    """Run one functional forward pass and append an ``execute`` row.

    The vectorized interpreter reports every band decision it makes
    (:class:`repro.ir.vinterp.BandEvent`); the row's counters tally
    them — ``vinterp_bands`` attempted, ``vinterp_vectorized`` executed
    wide, ``vinterp_fallbacks`` dropped to the scalar loop — with one
    ``vinterp_fallback.<reason>`` counter and a ``>>`` note per
    distinct fallback reason.  The pass runs the whole network
    functionally, so large folded networks take tens of seconds here.
    """
    import time
    from collections import Counter

    import numpy as np

    from repro.pipeline.trace import StageRecord

    events: List[tuple] = []
    base = d.trace.records[-1].t_end if d.trace.records else 0.0
    x = np.random.default_rng(0).standard_normal(
        d.fused.graph.input.out_shape
    ).astype(np.float32)
    t0 = time.perf_counter()
    status, error = "ok", None
    try:
        d.forward_functional(x, events=events)
    except Exception as e:  # pragma: no cover - diagnostic row only
        status, error = "error", f"{type(e).__name__}: {e}"
    wall = time.perf_counter() - t0
    fallbacks = [ev for _, ev in events if ev.kind == "fallback"]
    counters: Dict[str, float] = {
        "vinterp_bands": len(events),
        "vinterp_vectorized": len(events) - len(fallbacks),
        "vinterp_fallbacks": len(fallbacks),
    }
    reasons = Counter(ev.detail for ev in fallbacks)
    notes = []
    for reason, n in sorted(reasons.items()):
        slug = reason.replace(" ", "_").replace("-", "_")
        counters[f"vinterp_fallback.{slug}"] = n
        notes.append(f"scalar fallback x{n}: {reason}")
    d.trace.records.append(StageRecord(
        stage="execute", status=status, t_start=base, t_end=base + wall,
        artifact="logits", size=len(events), counters=counters,
        error=error, notes=notes,
    ))


def _trace_with_faults(network, board, out: TextIO, as_json: bool) -> int:
    """Resilient deploy under the demo fault plan + recovery events."""
    import json

    from repro.flow import deploy_resilient

    plan = _demo_fault_plan()
    with plan:
        r = deploy_resilient(network, board, cache=False)
    if as_json:
        payload = {
            "network": network,
            "board": board.name,
            "rung": r.rung,
            "fps": r.fps,
            "attempts": [
                {"rung": a.rung, "ok": a.ok, "reason": a.reason}
                for a in r.attempts
            ],
            "events": r.events,
            "trace": (
                r.deployment.trace.to_dict()
                if r.deployment is not None and r.deployment.trace else None
            ),
        }
        out.write(json.dumps(payload, indent=2) + "\n")
        return 0
    out.write(f"fault plan: {plan!r}\n")
    if r.deployment is not None and r.deployment.trace is not None:
        out.write(r.deployment.trace.format_table() + "\n")
    out.write(f"\nserved by rung {r.rung!r}"
              + (f" at {r.fps:.1f} fps" if r.timing else "") + "\n")
    out.write("resilience events:\n")
    for e in r.events:
        out.write(f"  [{e['kind']:>10}] {e['site']:<14} {e['detail']}\n")
    return 0


def verify_deployment(
    spec: str,
    out: TextIO = sys.stdout,
    as_json: bool = False,
) -> int:
    """Statically verify one build and print the diagnostic report.

    ``spec`` is ``NETWORK[:BOARD]`` — e.g. ``lenet5``,
    ``resnet18:A10``.  Board defaults to S10SX; mode is pipelined for
    lenet5 and folded otherwise.  The build stops after codegen — no
    synthesis is attempted — so even network/board pairs that do not fit
    (naive ResNet on the Arria 10) can still be verified.  Exit status:
    0 when the build is verifier-clean (no error-severity findings),
    1 otherwise, 2 on a bad spec.
    """
    import json

    from repro.codegen import generate_opencl
    from repro.device import ALL_BOARDS, board_by_name
    from repro.flow.deploy import default_folded_config
    from repro.flow.folded import lower_folded, plan_folded, schedule_folded
    from repro.flow.pipelined import (
        lower_pipelined,
        plan_pipelined,
        schedule_pipelined,
    )
    from repro.flow.stages import MODELS
    from repro.relay import fuse_operators
    from repro.verify import verify_build

    parts = spec.split(":")
    network = parts[0]
    if network not in MODELS:
        return _bad_spec(out, f"unknown network {network!r}; "
                         f"choose from: {', '.join(sorted(MODELS))}")
    try:
        board = board_by_name(parts[1]) if len(parts) > 1 else STRATIX10_SX
    except KeyError:
        return _bad_spec(out, f"unknown board {parts[1]!r}; choose from: "
                         f"{', '.join(b.name for b in ALL_BOARDS)}")

    fused = fuse_operators(MODELS[network]())
    if network == "lenet5":
        sched = schedule_pipelined(fused, LEVELS[-1], board, 1.0)
        program = lower_pipelined(sched)
        plan = plan_pipelined(fused, sched)
    else:
        config = default_folded_config(network, board)
        sched = schedule_folded(fused, config, board)
        program = lower_folded(sched)
        plan = plan_folded(fused, sched)
    report = verify_build(
        program, source=generate_opencl(program), plan=plan,
        subject=f"{network}:{board.name}",
    )
    if as_json:
        out.write(json.dumps(report.to_dict(), indent=2) + "\n")
    else:
        out.write(report.format_table() + "\n")
    return 0 if report.clean else 1


def certify_deployment(
    spec: str,
    out: TextIO = sys.stdout,
    as_json: bool = False,
) -> int:
    """Equivalence-certify one build's schedules and print the verdicts.

    ``spec`` is ``NETWORK[:BOARD]`` — e.g. ``mobilenet_v1:A10``.  Board
    defaults to S10SX.  The network is built through the *folded* flow
    (its kernels carry transform recipes, the certifier's input) and
    stops after planning — no synthesis — so even network/board pairs
    that cannot fit still certify.  Every recipe-backed kernel's
    scheduled lowering is statically proven equivalent to its naive
    lowering (RE rules, :mod:`repro.verify.equiv`); the run is purely
    static — an RE006-unknown kernel is reported, not dynamically
    cross-checked.  Exit status: 0 when every recipe-backed kernel
    certified (no rejections, no unknowns — hence zero interpreter
    fallbacks would be needed), 1 otherwise, 2 on a bad spec.
    """
    import json

    from repro.device import ALL_BOARDS, board_by_name
    from repro.flow.deploy import default_folded_config
    from repro.flow.folded import FoldedConfig, plan_folded, schedule_folded
    from repro.flow.stages import MODELS
    from repro.relay import fuse_operators
    from repro.verify import certify_build

    parts = spec.split(":")
    network = parts[0]
    if network not in MODELS:
        return _bad_spec(out, f"unknown network {network!r}; "
                         f"choose from: {', '.join(sorted(MODELS))}")
    try:
        board = board_by_name(parts[1]) if len(parts) > 1 else STRATIX10_SX
    except KeyError:
        return _bad_spec(out, f"unknown board {parts[1]!r}; choose from: "
                         f"{', '.join(b.name for b in ALL_BOARDS)}")

    fused = fuse_operators(MODELS[network]())
    try:
        config = default_folded_config(network, board)
    except ReproError:
        # no thesis tiling table (LeNet-class): the generic folded
        # config still schedules every layer with a recipe
        config = FoldedConfig()
    sched = schedule_folded(fused, config, board)
    plan = plan_folded(fused, sched)
    report, certs = certify_build(
        sched, plan=plan, subject=f"{network}:{board.name}",
        dynamic_fallback=False,
    )
    ok = (
        report.clean
        and report.counters.get("equiv_rejected", 0) == 0
        and report.counters.get("equiv_unknown", 0) == 0
    )
    if as_json:
        payload = report.to_dict()
        payload["certificates"] = {
            k: c.to_dict() for k, c in sorted(certs.items())
        }
        out.write(json.dumps(payload, indent=2) + "\n")
        return 0 if ok else 1
    out.write(report.format_table() + "\n\ncertificates:\n")
    for name, cert in sorted(certs.items()):
        extra = f" ({cert.detail})" if cert.detail else ""
        out.write(f"  {name:<40} {cert.status}{extra}\n")
    out.write(
        "\nverdict: "
        + ("all recipe-backed kernels certified equivalent — no "
           "interpreter cross-checks needed"
           if ok else "certification INCOMPLETE — see RE findings above")
        + "\n"
    )
    return 0 if ok else 1



def memory_deployment(
    spec: str,
    out: TextIO = sys.stdout,
    as_json: bool = False,
) -> int:
    """Static memory report: liveness, arena map, bytes saved (RM rules).

    ``spec`` is ``NETWORK[:BOARD]`` — e.g. ``mobilenet_v1:A10``.  Board
    defaults to S10SX.  The network is built through the *folded* flow
    and stops after planning — no synthesis — so even network/board
    pairs that cannot fit still get a memory verdict.  Prints the
    per-value liveness table, the DDR arena map with its reuse pairs,
    and the resident footprint vs the board's capacity; the JSON form
    carries the full :class:`~repro.verify.memory.MemoryPlan` and
    certificate.  Exit status: 0 iff the plan is RM-clean, 1 otherwise,
    2 on a bad spec.
    """
    import json

    from repro.device import ALL_BOARDS, board_by_name
    from repro.flow.deploy import default_folded_config
    from repro.flow.folded import FoldedConfig, lower_folded, plan_folded, \
        schedule_folded
    from repro.flow.stages import MODELS
    from repro.relay import fuse_operators
    from repro.verify.memory import check_memory, format_memory_plan

    parts = spec.split(":")
    network = parts[0]
    if network not in MODELS:
        return _bad_spec(out, f"unknown network {network!r}; "
                         f"choose from: {', '.join(sorted(MODELS))}")
    try:
        board = board_by_name(parts[1]) if len(parts) > 1 else STRATIX10_SX
    except KeyError:
        return _bad_spec(out, f"unknown board {parts[1]!r}; choose from: "
                         f"{', '.join(b.name for b in ALL_BOARDS)}")

    fused = fuse_operators(MODELS[network]())
    try:
        config = default_folded_config(network, board)
    except ReproError:
        # no thesis tiling table (LeNet-class): the generic folded
        # config still plans every layer
        config = FoldedConfig()
    sched = schedule_folded(fused, config, board)
    plan = plan_folded(fused, sched)
    program = lower_folded(sched)
    report, memory, cert = check_memory(
        fused, plan, program=program, board=board,
        subject=f"{network}:{board.name}",
    )
    if as_json:
        payload = report.to_dict()
        payload["memory"] = memory.to_dict() if memory is not None else None
        payload["certificate"] = cert.to_dict()
        out.write(json.dumps(payload, indent=2) + "\n")
        return 0 if report.clean else 1
    if memory is not None:
        out.write(format_memory_plan(memory, fused, board) + "\n\n")
    out.write(report.format_table() + "\n")
    out.write(
        "\nverdict: "
        + (f"memory plan certified (key {cert.key[:12]}) — "
           "safe to adopt the arena"
           if cert.certified else
           "memory plan REJECTED — see RM findings above")
        + "\n"
    )
    return 0 if report.clean else 1


def advise_deployment(
    spec: str,
    out: TextIO = sys.stdout,
    as_json: bool = False,
) -> int:
    """Run the static performance advisor over one build.

    ``spec`` is ``NETWORK[:BOARD[:LEVEL]]`` — e.g. ``mobilenet_v1:A10``
    or ``lenet5:S10SX:base``; LEVEL selects the optimization rung for
    pipelined networks (lenet5) and defaults to the top one, so
    ``lenet5:S10SX:base`` advises the deliberately naive schedules.
    The build stops after codegen (no synthesis).  The report lists
    every RP finding with the cookbook rewrite that fixes it, plus —
    for folded networks with a 1x1 conv group — the dominance pruner's
    preview of how much of the default tiling sweep needs no synthesis.
    Exit status: 0 when findings are advice-only (or absent), 1 when the
    build also carries error-severity findings, 2 on a bad spec.
    """
    import json

    from repro.aoc.constants import DEFAULT_CONSTANTS
    from repro.codegen import generate_opencl
    from repro.device import ALL_BOARDS, board_by_name
    from repro.flow.deploy import default_folded_config
    from repro.flow.folded import lower_folded, plan_folded, schedule_folded
    from repro.flow.pipelined import (
        lower_pipelined,
        plan_pipelined,
        schedule_pipelined,
    )
    from repro.flow.stages import MODELS
    from repro.relay import fuse_operators
    from repro.verify import (
        format_advice,
        format_prune_preview,
        prune_preview,
        verify_build,
    )

    parts = spec.split(":")
    network = parts[0]
    if network not in MODELS:
        return _bad_spec(out, f"unknown network {network!r}; "
                         f"choose from: {', '.join(sorted(MODELS))}")
    try:
        board = board_by_name(parts[1]) if len(parts) > 1 else STRATIX10_SX
    except KeyError:
        return _bad_spec(out, f"unknown board {parts[1]!r}; choose from: "
                         f"{', '.join(b.name for b in ALL_BOARDS)}")
    level = parts[2] if len(parts) > 2 else LEVELS[-1]
    if level not in LEVELS:
        return _bad_spec(out, f"unknown level {level!r}; "
                         f"choose from: {', '.join(LEVELS)}")
    if len(parts) > 2 and network != "lenet5":
        return _bad_spec(out, "optimization levels only apply to the "
                         "pipelined network (lenet5)")

    try:
        fused = fuse_operators(MODELS[network]())
        if network == "lenet5":
            sched = schedule_pipelined(fused, level, board, 1.0)
            program = lower_pipelined(sched)
            plan = plan_pipelined(fused, sched)
            preview = None
        else:
            config = default_folded_config(network, board)
            sched = schedule_folded(fused, config, board)
            program = lower_folded(sched)
            plan = plan_folded(fused, sched)
            preview = prune_preview(
                fused, board, DEFAULT_CONSTANTS, config.pin_unit_stride
            )
        report = verify_build(
            program, source=generate_opencl(program), plan=plan,
            subject=f"{network}:{board.name}"
                    + (f":{level}" if network == "lenet5" else ""),
            board=board,
        )
    except ReproError as e:
        out.write(f"{type(e).__name__}: {e}\n")
        return 1
    if as_json:
        payload = report.to_dict()
        payload["prune_preview"] = preview
        out.write(json.dumps(payload, indent=2) + "\n")
    else:
        out.write(format_advice(report) + "\n")
        if preview is not None:
            out.write("\n" + format_prune_preview(preview) + "\n")
    return 0 if report.clean else 1


def autofix_deployment(
    spec: str,
    out: TextIO = sys.stdout,
    as_json: bool = False,
) -> int:
    """Run the advise->rewrite auto-scheduler over one build.

    ``spec`` is ``NETWORK[:BOARD]`` — e.g. ``mobilenet_v1:A10``.  Board
    defaults to S10SX; mode is pipelined for lenet5 and folded
    otherwise.  The loop stops after codegen each iteration (no
    synthesis) and prints every applied fix, every blocking finding and
    the recipe round-trip verdict.  Exit status: 0 when the loop reached
    an advice-clean fixpoint or a provably-stuck report, 1 on a
    verify-error/cycle/iteration-limit outcome, 2 on a bad spec.
    """
    import json

    from repro.device import ALL_BOARDS, board_by_name
    from repro.flow.autofix import autofix_network
    from repro.flow.stages import MODELS

    parts = spec.split(":")
    network = parts[0]
    if network not in MODELS:
        return _bad_spec(out, f"unknown network {network!r}; "
                         f"choose from: {', '.join(sorted(MODELS))}")
    try:
        board = board_by_name(parts[1]) if len(parts) > 1 else STRATIX10_SX
    except KeyError:
        return _bad_spec(out, f"unknown board {parts[1]!r}; choose from: "
                         f"{', '.join(b.name for b in ALL_BOARDS)}")
    try:
        result = autofix_network(network, board)
    except ReproError as e:
        out.write(f"{type(e).__name__}: {e}\n")
        return 1
    if as_json:
        out.write(json.dumps(result.to_dict(), indent=2) + "\n")
    else:
        out.write(result.format() + "\n")
    converged = result.clean or result.stuck_reason == "blocked"
    return 0 if converged else 1


def serve_demo(
    spec: str,
    out: TextIO = sys.stdout,
    as_json: bool = False,
    overload: bool = False,
    n_requests: int = 48,
    chaos: Optional[int] = None,
) -> int:
    """Run the serving simulation and print its metrics.

    ``spec`` is ``NETWORK[:BOARD[:REPLICAS]]`` — e.g. ``lenet5``,
    ``mobilenet_v1:S10SX:4``.  Board defaults to S10SX, replicas to 4.
    The demo drives a Poisson trace at ~85% of the pool's aggregate
    capacity; with ``overload`` the rate quadruples against a short
    admission queue, so requests shed to the CPU rung (watch the
    ``shed`` events under the table).  With ``chaos`` (a fault-plan
    seed) the trace replays under the canonical serving chaos plan —
    replicas die mid-trace, batches crash and hang, the breaker trips —
    and the demo proves the recovery contract: every request answered,
    logits bit-identical to a fault-free run.  Exits 1 if the contract
    is violated.
    """
    import json

    import numpy as np

    from repro.device import ALL_BOARDS, board_by_name
    from repro.flow.stages import MODELS
    from repro.resilience import LifecycleConfig
    from repro.serve import (
        RequestTrace,
        ServeConfig,
        Server,
        chaos_plan,
        provision_replicas,
    )

    parts = spec.split(":")
    network = parts[0]
    if network not in MODELS:
        return _bad_spec(out, f"unknown network {network!r}; "
                         f"choose from: {', '.join(sorted(MODELS))}")
    try:
        board = board_by_name(parts[1]) if len(parts) > 1 else STRATIX10_SX
    except KeyError:
        return _bad_spec(out, f"unknown board {parts[1]!r}; choose from: "
                         f"{', '.join(b.name for b in ALL_BOARDS)}")
    try:
        n_replicas = int(parts[2]) if len(parts) > 2 else 4
    except ValueError:
        return _bad_spec(
            out, f"replica count {parts[2]!r} is not an integer")

    replicas = provision_replicas(network, board, n_replicas)
    per_image_us = replicas[0].service_us(1)
    capacity_rps = n_replicas * 1e6 / per_image_us
    rate = capacity_rps * (3.4 if overload else 0.85)
    config = ServeConfig(
        max_queue=8 if overload else 64,
        lifecycle=LifecycleConfig(reprovision_us=5000.0)
        if chaos is not None else None,
    )
    shape = MODELS[network]().input.out_shape
    trace = RequestTrace.poisson(
        network, n_requests, rate_rps=rate, shape=shape, seed=0
    )
    chaos_report: Optional[Dict[str, object]] = None
    if chaos is not None:
        baseline = Server(
            provision_replicas(network, board, n_replicas), config
        ).run(trace)
        with chaos_plan(network, n_replicas, seed=chaos) as plan:
            result = Server(replicas, config).run(trace)
        answered = {r.rid for r in result.responses}
        stuck = sorted(r.rid for r in trace if r.rid not in answered)
        logits_identical = all(
            (a.logits is None) == (b.logits is None)
            and (a.logits is None or np.array_equal(a.logits, b.logits))
            for a, b in zip(result.responses, baseline.responses)
        )
        chaos_report = {
            "seed": chaos,
            "faults_fired": len(plan.fired),
            "stuck_requests": stuck,
            "logits_identical": logits_identical,
            "ok": not stuck and logits_identical and bool(plan.fired),
        }
    else:
        result = Server(replicas, config).run(trace)
    if as_json:
        payload = {
            "spec": {"network": network, "board": board.name,
                     "replicas": n_replicas, "overload": overload},
            "trace": trace.describe(),
            "metrics": result.metrics.to_dict(),
            "events": result.events,
        }
        if chaos_report is not None:
            payload["chaos"] = chaos_report
        out.write(json.dumps(payload, indent=2) + "\n")
        return 0 if chaos_report is None or chaos_report["ok"] else 1
    out.write(
        f"serving {network} on {n_replicas}x {board.name} — "
        f"{n_requests} requests, Poisson at {rate:.1f} req/s "
        f"(pool capacity ~{capacity_rps:.1f} req/s)"
        + (" [overload]" if overload else "")
        + (f" [chaos seed {chaos}]" if chaos is not None else "") + "\n\n"
    )
    out.write(result.metrics.format_table() + "\n")
    if result.events:
        out.write("\nserving events:\n")
        for e in result.events:
            out.write(f"  [{e['kind']:>10}] {e['detail']}\n")
    if chaos_report is not None:
        verdict = "PASS" if chaos_report["ok"] else "FAIL"
        out.write(
            f"\nchaos soak [{verdict}]: {chaos_report['faults_fired']} "
            f"fault(s) fired, {len(chaos_report['stuck_requests'])} stuck "
            f"request(s), logits "
            f"{'bit-identical to' if chaos_report['logits_identical'] else 'DIVERGED from'}"
            f" the fault-free run\n"
        )
        return 0 if chaos_report["ok"] else 1
    return 0


USAGE = """\
usage: python -m repro.report [MODE] [FLAGS]

modes:
  (no flags)              full reproduction scorecard (ladder, folded
                          deployments, baselines, fit/route failures)
  --trace SPEC            per-stage compile trace of one deployment;
                          SPEC = NETWORK[:MODE[:BOARD]], e.g. lenet5,
                          mobilenet_v1:folded:A10
  --serve SPEC            batched multi-replica serving simulation;
                          SPEC = NETWORK[:BOARD[:REPLICAS]], e.g.
                          mobilenet_v1:S10SX:4
  --verify SPEC           static verification (bounds, races, channel
                          protocol, OpenCL lint) of one build, no
                          synthesis; SPEC = NETWORK[:BOARD], e.g.
                          resnet18:A10; exits 1 on any error finding
  --advise SPEC           static performance advisor (RP rules): II
                          bottleneck attribution, LSU/stride findings,
                          roofline classification, dominance-prune
                          preview; SPEC = NETWORK[:BOARD[:LEVEL]], e.g.
                          lenet5:S10SX:base; advice-only findings exit 0
  --autofix SPEC          advise->rewrite auto-scheduler: apply the RP
                          findings' machine-readable fixes, re-verify,
                          iterate to an advice-clean fixpoint or a
                          provably-stuck report (no synthesis);
                          SPEC = NETWORK[:BOARD], e.g. mobilenet_v1:A10
  --certify SPEC          static equivalence certifier (RE rules): prove
                          every recipe-scheduled kernel computes the
                          same results as its naive lowering, with no
                          interpreter runs and no synthesis — works on
                          unfittable builds; SPEC = NETWORK[:BOARD],
                          e.g. resnet50:A10; exits 0 only when all
                          recipe-backed kernels certify
  --memory SPEC           static memory certifier (RM rules): activation
                          liveness over the folded plan, the shared DDR
                          arena map with its reuse pairs, bytes saved vs
                          naive per-buffer allocation, and the board-
                          capacity verdict — no synthesis, works on
                          unfittable builds; SPEC = NETWORK[:BOARD],
                          e.g. mobilenet_v1:A10; exits 0 iff RM-clean

flags:
  --json                  emit JSON instead of tables
                          (--trace/--serve/--verify/--advise/--memory)
  --faults                run --trace under the demo fault plan through
                          the resilient degradation ladder
  --overload              drive --serve past pool capacity against a
                          short admission queue (requests shed to the
                          CPU rung)
  --requests N            request count for --serve (default 48)
  --chaos SEED            replay --serve under the seeded serving chaos
                          plan (replica deaths, batch crashes, hangs);
                          verifies every request is answered with
                          logits bit-identical to a fault-free run and
                          exits 1 otherwise
  --help                  this message
"""


def main(out: TextIO = sys.stdout, argv: Optional[List[str]] = None) -> int:
    args = list(argv) if argv is not None else []
    if "--help" in args or "-h" in args:
        out.write(USAGE)
        return 0
    if args and args[0] == "--trace":
        if len(args) < 2:
            out.write(USAGE)
            return 2
        return trace_deployment(
            args[1], out, as_json="--json" in args[2:],
            with_faults="--faults" in args[2:],
        )
    if args and args[0] == "--verify":
        if len(args) < 2:
            out.write(USAGE)
            return 2
        return verify_deployment(args[1], out, as_json="--json" in args[2:])
    if args and args[0] == "--advise":
        if len(args) < 2:
            out.write(USAGE)
            return 2
        return advise_deployment(args[1], out, as_json="--json" in args[2:])
    if args and args[0] == "--autofix":
        if len(args) < 2:
            out.write(USAGE)
            return 2
        return autofix_deployment(args[1], out, as_json="--json" in args[2:])
    if args and args[0] == "--certify":
        if len(args) < 2:
            out.write(USAGE)
            return 2
        return certify_deployment(args[1], out, as_json="--json" in args[2:])
    if args and args[0] == "--memory":
        if len(args) < 2:
            out.write(USAGE)
            return 2
        return memory_deployment(args[1], out, as_json="--json" in args[2:])
    if args and args[0] == "--serve":
        if len(args) < 2:
            out.write(USAGE)
            return 2
        rest = args[2:]
        n_requests = 48
        if "--requests" in rest:
            try:
                n_requests = int(rest[rest.index("--requests") + 1])
            except (IndexError, ValueError):
                out.write(USAGE)
                return 2
        chaos = None
        if "--chaos" in rest:
            try:
                chaos = int(rest[rest.index("--chaos") + 1])
            except (IndexError, ValueError):
                out.write(USAGE)
                return 2
        return serve_demo(
            args[1], out, as_json="--json" in rest,
            overload="--overload" in rest, n_requests=n_requests,
            chaos=chaos,
        )
    if args:
        out.write(USAGE)
        return 2
    out.write("Reproduction report — Chung, 'Optimization of Compiler-"
              "Generated OpenCL CNN Kernels and Runtime for FPGAs'\n")
    final = lenet_ladder(out)
    folded = folded_networks(out)
    baseline_comparison(out, final["S10SX"], folded)
    outcomes = fit_failures(out)
    ok = all("Error" in o for o in outcomes)
    out.write(
        "\nSummary: LeNet/MobileNet beat the CPU, ResNet does not; naive "
        "large networks do not fit the Arria 10 — the thesis's story "
        f"{'reproduces' if ok else 'DOES NOT reproduce'}.\n"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(argv=sys.argv[1:]))
