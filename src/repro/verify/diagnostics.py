"""Diagnostics vocabulary of the static verifier.

Every analyzer emits :class:`Diagnostic` records tagged with a stable
rule ID (``RB001``…), a severity, and a location (kernel / loop /
buffer or channel).  A :class:`VerifyReport` aggregates the diagnostics
of one verification run together with coverage counters (how many
accesses were proven, how many channels matched) so "clean" is
distinguishable from "didn't look".

Severities:

``error``
    A proven defect (out-of-bounds access, write race, protocol
    mismatch, deadlock cycle).  The ``verify`` pipeline stage fails on
    any error, and the CI verify job fails the build.
``warn``
    A property the verifier could not prove (symbolic extent outside
    the binding set, non-affine index) or a likely inefficiency.
``advice``
    A performance finding from the RP analyzers: the build is correct
    but a specific schedule rewrite would make it faster (register-cache
    an accumulator, pin a stride, tile a reuse loop).  Advice never
    fails a build.
``info``
    A note (e.g. an under-provisioned channel FIFO that can only cost
    performance, never correctness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

SEVERITIES = ("error", "warn", "advice", "info")

#: rule ID -> one-line description.  ``tools/lint.py`` cross-checks this
#: registry against the catalog in ``docs/verification.md``; keep the
#: two in sync.
RULES: Dict[str, str] = {
    "RB001": "out-of-bounds buffer access (index interval provably outside the buffer)",
    "RB002": "unprovable buffer access (index interval overlaps or exceeds the analyzable range)",
    "RR001": "unroll write race (two replicated iterations store different values to one address)",
    "RR002": "read of a never-initialized buffer region (def-before-use)",
    "RR003": "unprovable unroll disjointness (non-affine store index under an unrolled loop)",
    "RC001": "channel read/write count mismatch between producer and consumer",
    "RC002": "unprovable channel traffic (symbolic or conditional read/write count)",
    "RC003": "wait cycle in the static channel graph (deadlock)",
    "RC004": "channel FIFO depth exceeds the traffic it can ever hold (wasted BRAM)",
    "RC005": "channel FIFO shallower than the producer's per-image traffic (may back-pressure)",
    "RC006": "execution plan inconsistent with the program's channel topology",
    "RL001": "kernel argument declared but never referenced in the kernel body",
    "RL002": "global pointer argument missing the restrict qualifier",
    "RL003": "barrier inside divergent control flow",
    "RL004": "channel used but never declared at file scope",
    "RP001": "loop-carried dependence on a non-register accumulator sets the II (register-cache it)",
    "RP002": "replicated non-coalescible LSU streams stall the loop in the memory arbiter",
    "RP003": "symbolic stride defeats compile-time alignment (bandwidth efficiency drops)",
    "RP004": "repeated reads whose reuse working set exceeds the LSU cache (tile or cache the block)",
    "RP005": "kernel is memory-bound at the board's bandwidth roof for a binding set",
    "RP006": "coalesced access width exceeds what external memory can feed per cycle",
    "RE001": "scheduled kernel provably computes different results than the naive lowering (dropped writeback/axis or failed dynamic cross-check)",
    "RE002": "reduce axis reordered outside the writeback axis, breaking the accumulator's loop-carried recurrence",
    "RE003": "reduce visit order differs from the naive left fold (floating-point reassociation, not bit-exact)",
    "RE004": "symbolic split factor does not divide the axis extent under a binding set (tail iterations dropped)",
    "RE005": "pinned unit stride binds to a non-unit value in a binding set (wrong addressing)",
    "RE006": "equivalence not statically provable (outside the prover fragment); one dynamic cross-check gates acceptance",
    "RM001": "memory reuse pair with overlapping live ranges (a still-live activation would be clobbered)",
    "RM002": "buffer size unresolvable under the binding sets (symbolic shape; footprint cannot be bounded)",
    "RM003": "network DDR footprint (arena + weights) exceeds the board's global-memory capacity",
    "RM004": "memory plan drifts from the program/plan (stale slot, wrong size, or access escapes its slot)",
    "RM005": "non-interfering activation buffers left unshared (safe arena reuse would save bytes)",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analyzer."""

    rule: str
    severity: str
    message: str
    #: kernel the finding is in ("" for program/plan/source-level findings)
    kernel: str = ""
    #: finer location: loop var, buffer, channel or source line
    location: str = ""
    #: machine-readable fix the auto-scheduler can apply: a dict naming
    #: a schedule transform (``{"transform": "cache_write", ...}``) or a
    #: tiling adjustment (``{"transform": "shrink", "dim": ...}``);
    #: ``None`` when the finding has no mechanical rewrite
    fix: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        assert self.rule in RULES, f"unknown rule {self.rule!r}"
        assert self.severity in SEVERITIES, f"unknown severity {self.severity!r}"

    def format(self) -> str:
        where = self.kernel or "<program>"
        if self.location:
            where += f":{self.location}"
        return f"[{self.rule}] {self.severity:<5} {where}: {self.message}"


@dataclass
class VerifyReport:
    """All diagnostics plus coverage counters of one verification run."""

    subject: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: coverage: accesses proven, kernels/channels checked, lint lines...
    counters: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def bump(self, counter: str, by: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + by

    def merge(self, other: "VerifyReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        for k, v in other.counters.items():
            self.bump(k, v)

    # ------------------------------------------------------------------
    def by_severity(self, severity: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity("error")

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity("warn")

    @property
    def advice(self) -> List[Diagnostic]:
        return self.by_severity("advice")

    @property
    def clean(self) -> bool:
        """No error-severity findings (warn/info do not make a run dirty)."""
        return not self.errors

    def by_rule(self, rule: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    # ------------------------------------------------------------------
    def summary_counters(self) -> Dict[str, int]:
        out = dict(self.counters)
        for sev in SEVERITIES:
            out[sev] = len(self.by_severity(sev))
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "clean": self.clean,
            "counters": self.summary_counters(),
            "diagnostics": [
                {
                    "rule": d.rule,
                    "severity": d.severity,
                    "kernel": d.kernel,
                    "location": d.location,
                    "message": d.message,
                    "fix": d.fix,
                }
                for d in self.diagnostics
            ],
        }

    def format_table(self, max_width: Optional[int] = None) -> str:
        lines = [f"verify: {self.subject}"]
        c = self.summary_counters()
        lines.append(
            "  " + ", ".join(f"{k}={v}" for k, v in sorted(c.items()) if v)
        )
        if not self.diagnostics:
            lines.append("  clean — no findings")
        for d in sorted(
            self.diagnostics,
            key=lambda d: (SEVERITIES.index(d.severity), d.rule, d.kernel),
        ):
            line = "  " + d.format()
            if max_width is not None and len(line) > max_width:
                line = line[: max_width - 1] + "…"
            lines.append(line)
        return "\n".join(lines)
