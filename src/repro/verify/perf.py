"""Static performance advisor: the RP rule family (thesis workflow, §6).

The thesis's optimization loop is reading AOC's static reports — loop II
analysis, LSU inference, resource estimates — and rewriting the schedule
until the bottleneck moves.  This analyzer automates that reading: for
each lowered kernel it attributes the initiation-interval bottleneck to
the loop-carried dependence (naming the accumulation buffer, RP001) or
the memory arbiter (RP002), flags symbolic strides that defeat
compile-time alignment (RP003), computes reuse distance over the loop
tree to find reads whose working set thrashes the LSU cache (RP004), and
classifies each kernel compute- vs memory-bound against the board's
bandwidth roof, per folded binding set (RP005/RP006).

Every finding carries severity ``advice``: the build is *correct*, a
specific schedule rewrite would make it faster.  Advice never fails a
build; the catalog of fixes lives in ``docs/schedule_cookbook.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.aoc.analysis import Bindings, KernelAnalysis
from repro.aoc.constants import AOCConstants, DEFAULT_CONSTANTS
from repro.device.boards import Board
from repro.errors import AOCError
from repro.ir.analysis import eval_int, reuse_distance
from repro.ir.kernel import Kernel
from repro.verify.diagnostics import Diagnostic, VerifyReport

#: rule IDs this analyzer may emit (tools/lint.py cross-checks)
RULES = ("RP001", "RP002", "RP003", "RP004", "RP005", "RP006")


def roof_elems(board: Board, fmax_mhz: Optional[float] = None) -> int:
    """Max coalesced access width external memory can feed per cycle.

    The thesis's bandwidth-roof worked example: 34.1 GB/s at 250 MHz is
    ~136 bytes/cycle, about 32 floats.  Defaults to the board's base
    fmax — the clock the roof must hold at before synthesis refines it.
    """
    fmax = fmax_mhz if fmax_mhz is not None else board.base_fmax_mhz
    return max(1, int(board.peak_bw_gbs * 1e3 / fmax // 4))


def check_perf(
    kernel: Kernel,
    binding_sets: Optional[List[Bindings]],
    report: VerifyReport,
    board: Board,
    constants: AOCConstants = DEFAULT_CONSTANTS,
) -> VerifyReport:
    """Run every RP rule over one lowered kernel.

    ``binding_sets`` supplies the distinct shape/stride parameterizations
    a folded plan actually invokes (like the bounds checker uses); the
    binding-dependent rules (RP004/RP005) are evaluated once per set and
    report the first set that triggers them.
    """
    try:
        an = KernelAnalysis(kernel, constants)
    except AOCError:
        # a kernel the AOC model cannot analyze is the synthesize
        # stage's problem, not the advisor's
        return report
    report.bump("perf_kernels")
    emitted: Set[Tuple[str, str]] = set()

    def advise(
        rule: str, location: str, message: str,
        fix: Optional[Dict[str, object]] = None,
    ) -> None:
        if (rule, location) in emitted:
            return
        emitted.add((rule, location))
        report.extend([
            Diagnostic(rule, "advice", message, kernel.name, location,
                       fix=fix)
        ])

    _check_ii(an, advise)
    _check_lsus(an, board, advise)
    sets: List[Optional[Bindings]] = (
        list(binding_sets) if binding_sets else [None]
    )
    if not kernel.is_parameterized or binding_sets:
        _check_reuse(an, constants, sets, advise)
        _check_roofline(an, board, report, sets, advise)
    return report


# ---------------------------------------------------------------------------
# RP001 / RP002: initiation-interval attribution


def _check_ii(an: KernelAnalysis, advise) -> None:
    for rec in an.ii_attribution():
        loop, ii, buf = rec["loop"], rec["ii"], rec["buffer"]
        if rec["cause"] == "dependence":
            advise(
                "RP001", str(loop),
                f"loop {loop} runs at II={ii}: the accumulation into "
                f"{rec['scope']} buffer '{buf}' is a loop-carried "
                f"dependence re-read every iteration; cache the "
                f"accumulator in a register (cache_write('register'), "
                f"thesis §5.1.1) and write back once after the loop",
                fix={"transform": "cache_write",
                     "args": {"scope": "register"}},
            )
        else:
            advise(
                "RP002", str(loop),
                f"loop {loop} stalls at II={ii}: replicated load streams "
                f"for '{buf}' contend in the memory arbiter; make the "
                f"unrolled dimension's stride a compile-time constant so "
                f"the streams coalesce into one wide LSU",
                fix={"transform": "shrink", "dim": "c1vec"},
            )


# ---------------------------------------------------------------------------
# RP003 / RP006: LSU shape


def _symbolic_innermost_stride(buffer) -> bool:
    """True when the buffer's innermost stride is a runtime value.

    This is precisely what ``pin_unit_stride`` fixes: a symbolic
    innermost stride defeats coalescing of the contiguous dimension.
    Symbolic *outer* strides are inherent to parameterized kernels and
    pinning cannot remove them, so they must not trigger RP003.
    """
    if buffer.strides is None:
        return False
    s = buffer.strides[-1]
    return not isinstance(s, int) and eval_int(s) is None


def _check_lsus(an: KernelAnalysis, board: Board, advise) -> None:
    roof = roof_elems(board)
    for site in an.sites:
        if _symbolic_innermost_stride(site.buffer):
            advise(
                "RP003", site.buffer.name,
                f"access to '{site.buffer.name}' has a symbolic innermost "
                f"stride, so AOC cannot coalesce it and burst efficiency "
                f"drops (~{int(100 * an.c.bw_efficiency_nonaligned)}% of "
                f"peak vs ~{int(100 * an.c.bw_efficiency_aligned)}%); pin "
                f"the innermost stride to 1 (pin_unit_stride, Listing 5.11)",
                fix={"transform": "pin_unit_stride"},
            )
    for lsu in an.lsus:
        if lsu.width_elems > roof:
            advise(
                "RP006", lsu.buffer_name,
                f"coalesced access to '{lsu.buffer_name}' is "
                f"{lsu.width_elems} elements wide but {board.name}'s "
                f"memory feeds only ~{roof} elements/cycle at "
                f"{board.base_fmax_mhz:.0f} MHz; the extra width only "
                f"adds logic — reduce the unroll along this dimension",
                fix={"transform": "shrink", "dim": "widest"},
            )


# ---------------------------------------------------------------------------
# RP004: reuse distance vs the LSU cache


def _check_reuse(
    an: KernelAnalysis,
    constants: AOCConstants,
    sets: List[Optional[Bindings]],
    advise,
) -> None:
    for site in an.sites:
        if site.is_store or site.lsu is None or not site.lsu.cached:
            continue
        for b in sets:
            rb = an._rebind(b)
            try:
                unique = an._buffer_bytes(site.buffer, rb)
            except AOCError:
                continue
            if unique <= constants.lsu_cache_bytes:
                continue
            dist = reuse_distance(site.index, site.serial, rb)
            shown = (
                f" (reuse distance {dist} elements)" if dist is not None else ""
            )
            advise(
                "RP004", site.buffer.name,
                f"'{site.buffer.name}' is re-read across iterations but "
                f"its {unique} B working set exceeds the "
                f"{constants.lsu_cache_bytes} B LSU cache{shown}, so the "
                f"re-reads go to DRAM; tile the reuse loop or stage a "
                f"block in local memory (cache_read)",
                fix={"transform": "cache_read",
                     "input": site.buffer.name},
            )
            break


# ---------------------------------------------------------------------------
# RP005: compute- vs memory-bound classification


def _check_roofline(
    an: KernelAnalysis,
    board: Board,
    report: VerifyReport,
    sets: List[Optional[Bindings]],
    advise,
) -> None:
    if an.is_pure_transform():
        # pad / flatten move data by construction; "memory-bound" is
        # not actionable advice for them
        return
    bytes_per_cycle = (
        board.peak_bw_gbs * 1e3 / board.base_fmax_mhz * an.bw_efficiency()
    )
    memory_bound = False
    for b in sets:
        try:
            compute = an.compute_cycles(b)
            mem = an.traffic_bytes(b) / bytes_per_cycle
        except AOCError:
            continue
        if mem > compute:
            memory_bound = True
            label = _binding_label(b)
            advise(
                "RP005", label,
                f"memory-bound on {board.name} for binding {label}: "
                f"~{int(mem)} DRAM cycles vs {compute} compute cycles at "
                f"{board.base_fmax_mhz:.0f} MHz; more unrolling cannot "
                f"help — reduce traffic (cache reuse, fuse the epilogue) "
                f"or pick a board with more bandwidth",
                fix={"transform": "shrink", "dim": "widest"},
            )
            break
    report.bump(
        "kernels_memory_bound" if memory_bound else "kernels_compute_bound"
    )


def _binding_label(b: Optional[Bindings]) -> str:
    if not b:
        return "static"
    dims = sorted(
        (v.name, c) for v, c in b.items() if v.name.startswith("n_")
    ) or sorted((v.name, c) for v, c in b.items())
    return ",".join(f"{n}={c}" for n, c in dims)
