"""Dominance proofs between DSE points, before any synthesis is spent.

A tiling sweep (``repro.flow.dse``) compiles and simulates every
candidate; most of that work is provably wasted.  This module builds a
:class:`StaticProfile` of a candidate tiling *without running the
compile pipeline* — it constructs the same parameterized group kernel
the folded builder would (same epilogue, same schedule), runs the AOC
front-half analysis on it, and records every quantity the performance
model is monotone in:

* the worst loop initiation interval,
* the widest coalesced access and the LSU replica count,
* the resource estimate (a *lower bound* on the whole design, since all
  other kernels are identical across candidates),
* per-invocation cycle and traffic counts for every binding set the
  network actually runs.

Candidate A is **dominated** by an already-kept candidate B when every
one of those quantities is at least B's: the model can then only rate A
at most as fast as B, so A can never be the sweep's argmax (ties break
toward the earlier point, which is the kept one) and is skipped.
Candidates whose resource lower bound already exceeds the board — or
whose access width exceeds the bandwidth roof (sweep requirement 1) —
are **infeasible** and skipped outright.  ``SweepSummary.pruned_static``
reports how many synthesis runs this saved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import repro.ir as ir
from repro.aoc.analysis import KernelAnalysis
from repro.aoc.constants import AOCConstants, DEFAULT_CONSTANTS
from repro.aoc.resources import estimate_kernel
from repro.device.boards import Board
from repro.errors import AOCError
from repro.relay.passes import FusedGraph, FusedNode
from repro.schedule import lower
from repro.topi import (
    ConvTiling,
    conv2d_symbolic,
    depthwise_symbolic,
    schedule_symbolic_conv,
)
from repro.verify.memory import network_footprint
from repro.verify.perf import roof_elems

GroupId = Tuple[str, int, int]


@dataclass(frozen=True)
class StaticProfile:
    """Everything the performance model is monotone in, for one tiling."""

    tiling: ConvTiling
    #: worst initiation interval across the group kernels' loops
    max_ii: int
    #: widest coalesced LSU access, elements
    access_width_elems: int
    #: total LSU replica streams (routing pressure)
    replicas: int
    #: resource lower bound over the group's kernels
    aluts: int
    ffs: int
    rams: int
    dsps: int
    #: worst single-kernel DSP fanout (the router's structural limit)
    max_kernel_dsps: int
    #: per member-layer invocation cycles, in graph order
    cycles: Tuple[int, ...]
    #: per member-layer DRAM traffic bytes, in graph order
    traffic: Tuple[int, ...]
    #: whole-network resident DDR bytes (certified activation arena +
    #: weights, :func:`repro.verify.memory.network_footprint`); a
    #: tiling-independent floor within one sweep, but part of the
    #: partial order so cross-network frontiers stay sound
    ddr_bytes: int = 0


def group_members(fused: FusedGraph, group: GroupId) -> List[FusedNode]:
    """Fused nodes a conv group's parameterized kernels will serve."""
    kind, f, s = group
    op = "conv2d" if kind == "conv" else "depthwise_conv2d"
    return [
        fn for fn in fused
        if fn.op == op
        and fn.anchor.attrs["field"] == f
        and fn.anchor.attrs["stride"] == s
    ]


def profile_conv_tiling(
    fused: FusedGraph,
    group: GroupId,
    tiling: ConvTiling,
    constants: AOCConstants = DEFAULT_CONSTANTS,
    pin_unit_stride: bool = True,
) -> StaticProfile:
    """Static profile of one candidate tiling for one conv group.

    Mirrors ``repro.flow.folded``'s group-kernel construction exactly
    (one kernel per distinct fused-epilogue signature among the group's
    members), so the profile describes the very kernels the candidate
    build would synthesize — the certificate is exact within the model.
    Raises :class:`~repro.errors.AOCError` when the group has no member
    layers or a kernel defeats the front-half analysis.
    """
    kind, f, s = group
    members = group_members(fused, group)
    if not members:
        raise AOCError(f"no {kind} {f}x{f}/{s} layers in {fused.graph.name}")

    # one proxy kernel per distinct epilogue signature, like _group_key
    by_epilogue = {}
    for fn in members:
        a = fn.anchor.attrs
        if kind == "conv":
            key = (a.get("bias", True), fn.activation, fn.has_residual,
                   fn.has_batchnorm)
        else:
            key = (a.get("bias", True), fn.activation, fn.has_batchnorm)
        by_epilogue.setdefault(key, []).append(fn)

    max_ii = 1
    width = 0
    replicas = 0
    aluts = ffs = rams = dsps = max_kernel_dsps = 0
    cycles: List[int] = []
    traffic: List[int] = []
    for key, fns in sorted(by_epilogue.items(), key=lambda kv: str(kv[0])):
        ir.reset_fresh_names()
        first = fns[0]
        a = first.anchor.attrs
        if kind == "conv":
            handle, _, out = conv2d_symbolic(
                f, s, "dom", bias=a.get("bias", True),
                activation=first.activation, residual=first.has_residual,
                batchnorm=first.has_batchnorm,
                pin_unit_stride=pin_unit_stride,
            )
            sch = schedule_symbolic_conv(out, tiling, is_1x1=(f == 1))
        else:
            handle, _, out = depthwise_symbolic(
                f, s, "dom", bias=a.get("bias", True),
                activation=first.activation, batchnorm=first.has_batchnorm,
                pin_unit_stride=pin_unit_stride,
            )
            sch = schedule_symbolic_conv(out, tiling, is_1x1=False)
        an = KernelAnalysis(lower(sch, "k_dom"), constants)
        res = estimate_kernel(an, constants)
        max_ii = max(max_ii, an.max_ii())
        width = max(width, max((l.width_elems for l in an.lsus), default=0))
        replicas += an.total_lsu_replicas()
        aluts += res.aluts
        ffs += res.ffs
        rams += res.rams
        dsps += res.dsps
        max_kernel_dsps = max(max_kernel_dsps, an.dsp_count())
        for fn in fns:
            c1, hi, wi = fn.anchor.inputs[0].out_shape
            k = fn.anchor.attrs.get("filters") if kind == "conv" else None
            b = handle.bindings(c1, hi, wi, k) if kind == "conv" else (
                handle.bindings(c1, hi, wi)
            )
            cycles.append(an.compute_cycles(b))
            traffic.append(an.traffic_bytes(b))
    return StaticProfile(
        tiling=tiling, max_ii=max_ii, access_width_elems=width,
        replicas=replicas, aluts=aluts, ffs=ffs, rams=rams, dsps=dsps,
        max_kernel_dsps=max_kernel_dsps,
        cycles=tuple(cycles), traffic=tuple(traffic),
        ddr_bytes=network_footprint(fused).ddr_bytes,
    )


def dominates(better: StaticProfile, worse: StaticProfile) -> bool:
    """True when ``better`` is at-least-as-good in *every* modelled
    dimension — II, access width, replicas, resources, and per-binding
    cycles and traffic — so the model cannot rate ``worse`` faster."""
    if len(better.cycles) != len(worse.cycles):
        return False
    return (
        better.max_ii <= worse.max_ii
        and better.access_width_elems <= worse.access_width_elems
        and better.replicas <= worse.replicas
        and better.aluts <= worse.aluts
        and better.ffs <= worse.ffs
        and better.rams <= worse.rams
        and better.dsps <= worse.dsps
        and better.max_kernel_dsps <= worse.max_kernel_dsps
        and better.ddr_bytes <= worse.ddr_bytes
        and all(b <= w for b, w in zip(better.cycles, worse.cycles))
        and all(b <= w for b, w in zip(better.traffic, worse.traffic))
    )


def infeasible_reason(profile: StaticProfile, board: Board) -> Optional[str]:
    """Why this candidate can never synthesize (None when it might).

    The profile's resources are a lower bound on the whole design —
    every other kernel is identical across candidates — so exceeding the
    board here guarantees the compiler's own FitError/RoutingError.  The
    bandwidth-roof check enforces sweep requirement 1 at the board's
    base clock.
    """
    if profile.dsps > board.avail_dsps:
        return (
            f"needs >= {profile.dsps} DSPs, board has {board.avail_dsps} "
            f"(FitError guaranteed)"
        )
    if profile.max_kernel_dsps > board.max_kernel_fanout:
        return (
            f"kernel fanout {profile.max_kernel_dsps} exceeds "
            f"{board.max_kernel_fanout} (RoutingError guaranteed)"
        )
    if board.ddr_bytes and profile.ddr_bytes > board.ddr_bytes:
        return (
            f"network needs {profile.ddr_bytes} DDR bytes, board has "
            f"{board.ddr_bytes} (RM003: statically infeasible)"
        )
    roof = roof_elems(board)
    if profile.access_width_elems > roof:
        return (
            f"access width {profile.access_width_elems} elems exceeds the "
            f"bandwidth roof (~{roof} elems/cycle at "
            f"{board.base_fmax_mhz:.0f} MHz)"
        )
    return None


@dataclass
class PruneDecision:
    """Keep-or-skip verdict for one candidate tiling."""

    tiling: ConvTiling
    profile: Optional[StaticProfile]
    pruned: bool
    reason: Optional[str] = None
    dominated_by: Optional[ConvTiling] = None


def plan_conv_sweep(
    fused: FusedGraph,
    group: GroupId,
    tilings: List[ConvTiling],
    board: Board,
    constants: AOCConstants = DEFAULT_CONSTANTS,
    pin_unit_stride: bool = True,
) -> List[PruneDecision]:
    """Decide, in sweep order, which candidates need synthesis.

    A candidate is pruned when it is statically infeasible or dominated
    by an earlier *kept* candidate; ties break toward the earlier point,
    matching ``choose_tiling``'s first-max selection, so the kept set
    always contains the sweep's argmax.  A candidate whose profile the
    model cannot build is kept (never wrongly skipped).
    """
    decisions: List[PruneDecision] = []
    kept: List[StaticProfile] = []
    for tiling in tilings:
        try:
            prof = profile_conv_tiling(
                fused, group, tiling, constants, pin_unit_stride
            )
        except AOCError:
            decisions.append(PruneDecision(tiling, None, pruned=False))
            continue
        reason = infeasible_reason(prof, board)
        if reason is not None:
            decisions.append(
                PruneDecision(tiling, prof, pruned=True,
                              reason=f"infeasible: {reason}")
            )
            continue
        by = next((k for k in kept if dominates(k, prof)), None)
        if by is not None:
            decisions.append(
                PruneDecision(
                    tiling, prof, pruned=True,
                    reason=(
                        f"dominated by w2vec={by.tiling.w2vec} "
                        f"c2vec={by.tiling.c2vec} c1vec={by.tiling.c1vec}"
                    ),
                    dominated_by=by.tiling,
                )
            )
            continue
        kept.append(prof)
        decisions.append(PruneDecision(tiling, prof, pruned=False))
    return decisions
