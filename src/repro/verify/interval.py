"""Integer interval arithmetic over index expressions.

The bounds checker evaluates every ``Load``/``Store`` index to a
conservative ``[lo, hi]`` interval under an environment mapping loop
variables to their trip ranges and symbolic shape arguments to concrete
bindings.  The arithmetic is over-approximate: an interval that fits the
buffer proves the access in range; an interval entirely outside the
buffer proves a violation; anything else is *unprovable* — the verifier
reports those separately instead of crying wolf.

Supported forms mirror what the lowering emits: affine index math,
``FloorDiv``/``Mod`` by positive constants (flatten's div/mod
addressing), ``Min``/``Max`` clamps (padding's clamped loads) and
``Select`` (interval union of both arms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.ir import expr as _e

#: variable -> known closed integer range
Env = Dict[_e.Var, "Interval"]


@dataclass(frozen=True)
class Interval:
    """A closed integer range ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        assert self.lo <= self.hi, f"empty interval [{self.lo}, {self.hi}]"

    @staticmethod
    def point(v: int) -> "Interval":
        return Interval(v, v)

    @staticmethod
    def extent(n: int) -> "Interval":
        """The trip range of a loop with ``n`` iterations: ``[0, n-1]``."""
        return Interval(0, max(0, n - 1))

    # ------------------------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        prods = (
            self.lo * other.lo, self.lo * other.hi,
            self.hi * other.lo, self.hi * other.hi,
        )
        return Interval(min(prods), max(prods))

    def floordiv(self, other: "Interval") -> Optional["Interval"]:
        """Division; only by a divisor interval excluding zero."""
        if other.lo <= 0 <= other.hi:
            return None
        quots = (
            self.lo // other.lo, self.lo // other.hi,
            self.hi // other.lo, self.hi // other.hi,
        )
        return Interval(min(quots), max(quots))

    def mod(self, other: "Interval") -> Optional["Interval"]:
        """Modulo by a constant positive divisor."""
        if other.lo != other.hi or other.lo <= 0:
            return None
        d = other.lo
        if self.lo >= 0:
            if self.hi - self.lo + 1 >= d:
                return Interval(0, d - 1)
            lo, hi = self.lo % d, self.hi % d
            if lo <= hi:
                return Interval(lo, hi)
            return Interval(0, d - 1)
        # Python % of a negative numerator is still in [0, d-1]
        return Interval(0, d - 1)

    def union(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def min_(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


def interval_of(e: _e.Expr, env: Env) -> Optional[Interval]:
    """Conservative range of an int expression, or None when unprovable.

    ``env`` maps every variable with a known range — loop variables to
    their trip ranges, bound symbolic shapes to point intervals.  An
    unbound variable, a float subexpression, or an unsupported operator
    makes the result None.
    """
    if isinstance(e, _e.IntImm):
        return Interval.point(e.value)
    if isinstance(e, _e.Var):
        return env.get(e)
    if isinstance(e, _e.Cast):
        return interval_of(e.value, env) if e.dtype == _e.INT32 else None
    if isinstance(e, _e.Select):
        a = interval_of(e.then_value, env)
        b = interval_of(e.else_value, env)
        if a is None or b is None:
            return None
        return a.union(b)
    if isinstance(e, _e._BinaryOp):
        a = interval_of(e.a, env)
        b = interval_of(e.b, env)
        if a is None or b is None:
            return None
        if isinstance(e, _e.Add):
            return a + b
        if isinstance(e, _e.Sub):
            return a - b
        if isinstance(e, _e.Mul):
            return a * b
        if isinstance(e, _e.FloorDiv):
            return a.floordiv(b)
        if isinstance(e, _e.Mod):
            return a.mod(b)
        if isinstance(e, _e.Min):
            return a.min_(b)
        if isinstance(e, _e.Max):
            return a.max_(b)
        return None
    return None
