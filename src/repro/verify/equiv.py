"""Static schedule-equivalence certifier: translation validation (RE rules).

Every recipe rewrite in this repo used to be trusted only because we
*ran* it — logits cross-checks in :mod:`repro.flow.autofix` and the
degradation ladder re-enter the interpreter on exactly the hot paths
the vectorized interpreter and parallel DSE fought to speed up.  This
module proves, statically, that a scheduled kernel computes the same
function as the naive lowering of the same tensor expression, so the
DSE / autotune / autofix flows can accept a candidate on a certificate
instead of an interpreter run.

Two cooperating layers:

**Per-transform legality proofs.**  Each of the 8 transform-catalog ops
(:data:`repro.schedule.transforms.CATALOG`) discharges to a specific
obligation:

* ``reorder`` / ``tile`` / ``writeback_at`` — no reduce axis may move
  at/before the writeback axis: the accumulator carries a distance-1
  recurrence (:func:`repro.ir.analysis.dependence_distance`) over every
  reduce axis, so a hoisted writeback would read a partial sum (RE002).
  The remaining order freedom is covered by the whole-kernel
  certificate's coverage and visit-order obligations (RE001/RE003).
* ``split`` — static extents are checked at apply time; a *symbolic*
  extent must be divisible by the factor under every binding set, else
  the floor-divided outer loop silently drops the tail (RE004).
* ``pin_unit_stride`` — every stride expression the transform replaced
  with the literal 1 (recorded as ``Schedule.pinned_strides``) must
  actually bind to 1 in every binding set (RE005).
* ``unroll`` — semantics-preserving by construction (replication order
  equals serial order; write races are the RR family's obligation).
* ``cache_write`` / ``cache_read`` — scope/metadata changes only; the
  accumulation order is unchanged and the certificate re-proves the
  store set.

**Whole-kernel certificates.**  The naive lowering (a fresh unscheduled
:class:`~repro.schedule.schedule.Schedule` over the same tensors) and
the scheduled lowering are compared pre-simplification as symbolic
store sets: the output store's address map and value expression must be
structurally equal after applying the stage's split substitution, every
data/reduce leaf axis must be iterated by the writeback/accumulation
nests (a dropped axis with extent > 1 is a proven miscompile, RE001),
and the reduce-leaf visit order must equal the naive left fold that the
interpreters guarantee bit-exactly — any other order is a float
reassociation, reported as RE003 and *not* certified bit-exact.  The
result is a serializable, fingerprint-keyed :class:`EquivCertificate`,
cached process-wide like :mod:`repro.flow.incremental`'s lower cache.

Soundness policy: only concrete witnesses (missing output store,
dropped axis, illegal reduce hoist, non-dividing split, non-unit pin,
bit-level dynamic mismatch) are errors.  Anything the prover cannot
decide — unexpected statements, structurally different value trees —
degrades to ``RE006`` (*unknown*) and one final dynamic cross-check
against the naive lowering (:func:`dynamic_equiv_check`), never to a
false certificate.  Kernels outside the fragment (prebuilt IR,
recipe-less schedules, channel wiring, multi-stage softmax) are
*uncertified*: out of scope, not a fallback.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir import expr as _e
from repro.ir import stmt as _s
from repro.ir.analysis import Bindings, dependence_distance, eval_int, free_vars
from repro.ir.functor import ExprMutator, substitute
from repro.ir.printer import expr_str
from repro.ir.tensor import IterVar
from repro.pipeline.fingerprint import fingerprint
from repro.runtime.plan import FoldedPlan
from repro.schedule.lower import lower_stage_body
from repro.schedule.schedule import Schedule, Stage, create_schedule
from repro.verify.diagnostics import Diagnostic, VerifyReport
from repro.verify.verifier import binding_sets_of

__all__ = [
    "RULES",
    "EquivCertificate",
    "certify_kernel",
    "certify_build",
    "dynamic_equiv_check",
    "equiv_cache_stats",
    "clear_equiv_cache",
]

#: rule IDs this analyzer may emit (tools/lint.py cross-checks)
RULES = ("RE001", "RE002", "RE003", "RE004", "RE005", "RE006")

#: counters certify_build always reports, even when zero, so "clean"
#: is distinguishable from "didn't certify"
COUNTERS = (
    "equiv_certified",
    "equiv_rejected",
    "equiv_unknown",
    "equiv_uncertified",
    "equiv_dynamic_runs",
)

# -- certificate --------------------------------------------------------------


@dataclass(frozen=True)
class EquivCertificate:
    """Serializable verdict of one kernel's equivalence certification.

    ``status`` is one of:

    ``certified``
        Statically proven equal to the naive lowering, bit-exact.
    ``rejected``
        A proven miscompile (an RE error names the violated obligation)
        or a failed dynamic cross-check.
    ``unknown``
        Outside the prover fragment; ``dynamic_checked``/``dynamic_ok``
        record the one interpreter fallback run (RE006).
    ``uncertified``
        Out of scope (prebuilt IR, no recipe, channel wiring,
        multi-stage) — not a fallback, and never counted as one.
    """

    STATUSES = ("certified", "rejected", "unknown", "uncertified")

    kernel: str
    status: str
    #: content fingerprint the certificate is cached under ("" = uncacheable)
    fingerprint: str = ""
    #: RE rule IDs referenced by this certification's diagnostics
    rules: Tuple[str, ...] = ()
    #: reduce visit order differs from the naive left fold (RE003)
    reassociated: bool = False
    #: binding sets the proof quantified over
    binding_sets: int = 0
    dynamic_checked: bool = False
    dynamic_ok: Optional[bool] = None
    detail: str = ""

    def __post_init__(self) -> None:
        assert self.status in self.STATUSES, f"bad status {self.status!r}"

    @property
    def accepted(self) -> bool:
        """True when flows may skip the interpreter equivalence run."""
        if self.status == "certified":
            return True
        return self.status == "unknown" and self.dynamic_ok is True

    def to_dict(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "status": self.status,
            "fingerprint": self.fingerprint,
            "rules": list(self.rules),
            "reassociated": self.reassociated,
            "binding_sets": self.binding_sets,
            "dynamic_checked": self.dynamic_checked,
            "dynamic_ok": self.dynamic_ok,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "EquivCertificate":
        return cls(
            kernel=str(d["kernel"]),
            status=str(d["status"]),
            fingerprint=str(d.get("fingerprint", "")),
            rules=tuple(d.get("rules", ())),
            reassociated=bool(d.get("reassociated", False)),
            binding_sets=int(d.get("binding_sets", 0)),
            dynamic_checked=bool(d.get("dynamic_checked", False)),
            dynamic_ok=d.get("dynamic_ok"),
            detail=str(d.get("detail", "")),
        )


# -- certificate cache (the lower-cache idiom) --------------------------------

_CACHE: "OrderedDict[str, Tuple[EquivCertificate, Tuple[Diagnostic, ...]]]" = (
    OrderedDict()
)
_MAX_ENTRIES = 512

_STATS: Dict[str, int] = {
    "hits": 0, "misses": 0, "uncached": 0, "dynamic_runs": 0,
}


def equiv_cache_stats() -> Dict[str, int]:
    """Cumulative ``{hits, misses, uncached, dynamic_runs}`` counts."""
    return dict(_STATS)


def clear_equiv_cache() -> None:
    """Drop memoized certificates and reset counters (test isolation)."""
    _CACHE.clear()
    for k in _STATS:
        _STATS[k] = 0


# -- helpers ------------------------------------------------------------------


def _eval_under(e: _e.Expr, bindings: Bindings) -> Optional[int]:
    """:func:`eval_int` with a by-name fallback for alpha-equivalent vars."""
    v = eval_int(e, bindings)
    if v is not None or not bindings:
        return v
    by_name = {var.name: val for var, val in bindings.items()}
    remap = {var: by_name[var.name] for var in free_vars(e) if var.name in by_name}
    return eval_int(e, remap) if remap else None


def _uncertifiable_reason(sk) -> Optional[str]:
    if sk.prebuilt is not None:
        return "prebuilt kernel IR (no schedule to certify)"
    if sk.schedule is None or sk.recipe is None:
        return "no transform recipe recorded"
    extra = set(sk.lower_options) - {"autorun"}
    if extra:
        return f"lower options outside the certified fragment: {sorted(extra)}"
    if len(sk.schedule.stages) != 1:
        return "multi-stage schedule"
    return None


def _cert_key(sk, binding_sets: Sequence[Bindings]) -> Optional[str]:
    from repro.flow.incremental import kernel_lower_key

    base = kernel_lower_key(sk)
    if base is None:
        return None
    sch = sk.schedule
    pins = [
        [name, s.name if isinstance(s, _e.Var) else expr_str(s)]
        for name, s in sch.pinned_strides
    ]
    bsets = sorted(
        sorted([v.name, int(c)] for v, c in bs.items()) for bs in binding_sets
    )
    return fingerprint(["equiv-cert", base, bsets, pins])


def _leaf_expansion(stage: Stage) -> List[Tuple[IterVar, List[IterVar]]]:
    """Per original axis, its ordered leaf expansion under the splits.

    Replacing each split parent in place by ``[outer, inner]`` yields,
    per root axis, the leaf sequence whose lexicographic traversal
    equals the root's original iteration order.
    """
    forest: List[Tuple[IterVar, List[IterVar]]] = [
        (ax, [ax]) for ax in list(stage.op.axes) + list(stage.op.reduce_axes)
    ]
    for rel in stage.splits:
        done = False
        for _root, leaves in forest:
            for i, v in enumerate(leaves):
                if v is rel.parent:
                    leaves[i : i + 1] = [rel.outer, rel.inner]
                    done = True
                    break
            if done:
                break
    return forest


def _max_extent(
    ax: IterVar, binding_sets: Sequence[Bindings]
) -> Optional[int]:
    """Largest trip count of an axis across binding sets; None if unknown."""
    n = ax.static_extent
    if n is not None:
        return n
    vals = [_eval_under(ax.extent_expr(), bs) for bs in binding_sets]
    if vals and all(v is not None for v in vals):
        return max(vals)
    return None


class _StoreWalk:
    """Collect (store, enclosing loop vars) pairs from a lowered body."""

    def __init__(self) -> None:
        self.stores: List[Tuple[_s.Store, Tuple[_e.Var, ...]]] = []
        self.blockers: List[str] = []

    def walk(self, s: _s.Stmt, loops: Tuple[_e.Var, ...] = ()) -> None:
        if isinstance(s, _s.For):
            self.walk(s.body, loops + (s.loop_var,))
        elif isinstance(s, _s.SeqStmt):
            for c in s.stmts:
                self.walk(c, loops)
        elif isinstance(s, (_s.Allocate, _s.AttrStmt)):
            self.walk(s.body, loops)
        elif isinstance(s, _s.Store):
            self.stores.append((s, loops))
        else:
            # IfThenElse / ChannelWrite / Evaluate: outside the fragment
            self.blockers.append(type(s).__name__)


class _AccLoadNormalizer(ExprMutator):
    """Replace loads from accumulator buffers with one shared placeholder.

    The naive and scheduled lowerings allocate differently-shaped
    scratchpads; normalizing their loads to a single Var makes the
    surrounding value expressions directly comparable.
    """

    def __init__(self, acc_buffer_ids: set, placeholder: _e.Var) -> None:
        self.acc_buffer_ids = acc_buffer_ids
        self.placeholder = placeholder

    def mutate_Load(self, e: _e.Load) -> _e.Expr:
        if id(e.buffer) in self.acc_buffer_ids:
            return self.placeholder
        idx = self.mutate(e.index)
        return e if idx is e.index else _e.Load(e.buffer, idx)


def _loads_on(e: _e.Expr, buffer) -> List[_e.Load]:
    """Every Load of ``buffer`` inside an expression."""
    found: List[_e.Load] = []

    def walk(x: _e.Expr) -> None:
        if isinstance(x, _e.Load) and x.buffer is buffer:
            found.append(x)
        for c in x.children():
            walk(c)

    walk(e)
    return found


# -- layer (a): per-transform legality proofs ---------------------------------


def _check_reorder(stage: Stage, kernel: str) -> List[Diagnostic]:
    """RE002: no reduce axis may sit at/before the writeback axis."""
    if not stage.op.has_reduction or stage.writeback_axis is None:
        return []
    wb = stage.writeback_axis
    idx = next(
        (j for j, ax in enumerate(stage.leaf_axes) if ax is wb), None
    )
    if idx is None:
        return []
    offenders = [ax for ax in stage.leaf_axes[: idx + 1] if ax.is_reduce]
    if not offenders:
        return []
    # the accumulator tile is indexed only by region data axes, so it is
    # constant (stride 0) in every reduce var: a distance-1 recurrence
    acc_idx: _e.Expr = _e.IntImm(0)
    for ax in stage.leaf_axes[idx + 1 :]:
        if not ax.is_reduce:
            acc_idx = acc_idx + ax.var
    out = []
    for ax in offenders:
        d = dependence_distance(acc_idx, acc_idx, ax.var)
        out.append(
            Diagnostic(
                "RE002",
                "error",
                f"reduce axis {ax.name} is reordered at/before the "
                f"writeback axis {wb.name}: the accumulator carries a "
                f"distance-{d if d is not None else 1} recurrence over "
                f"{ax.name}, so the hoisted writeback reads a partial sum",
                kernel=kernel,
                location=ax.name,
            )
        )
    return out


def _check_splits(
    stage: Stage, binding_sets: Sequence[Bindings], kernel: str
) -> Tuple[List[Diagnostic], List[str]]:
    """RE004: symbolic split extents must divide under every binding set."""
    diags: List[Diagnostic] = []
    unknowns: List[str] = []
    for rel in stage.splits:
        if rel.parent.static_extent is not None:
            continue  # static divisibility enforced at apply time
        if not binding_sets:
            unknowns.append(
                f"split of symbolic axis {rel.parent.name} by {rel.factor} "
                "has no binding set to prove divisibility"
            )
            continue
        for j, bs in enumerate(binding_sets):
            ext = _eval_under(rel.parent.extent_expr(), bs)
            if ext is None:
                unknowns.append(
                    f"extent of split axis {rel.parent.name} does not "
                    f"resolve under binding set #{j}"
                )
            elif ext % rel.factor != 0:
                diags.append(
                    Diagnostic(
                        "RE004",
                        "error",
                        f"split of {rel.parent.name} by {rel.factor} does "
                        f"not divide its extent {ext} under binding set "
                        f"#{j}: the floor-divided outer loop drops the "
                        f"last {ext % rel.factor} iteration(s)",
                        kernel=kernel,
                        location=rel.parent.name,
                    )
                )
    return diags, unknowns


def _check_pins(
    sch: Schedule, binding_sets: Sequence[Bindings], kernel: str
) -> Tuple[List[Diagnostic], List[str]]:
    """RE005: every pinned stride must actually bind to 1."""
    diags: List[Diagnostic] = []
    unknowns: List[str] = []
    for buf_name, stride in sch.pinned_strides:
        expr = stride if isinstance(stride, _e.Expr) else _e.IntImm(int(stride))
        if not binding_sets:
            unknowns.append(
                f"pinned stride {expr_str(expr)} of {buf_name} has no "
                "binding set to prove it is 1"
            )
            continue
        for j, bs in enumerate(binding_sets):
            v = _eval_under(expr, bs)
            if v is None:
                unknowns.append(
                    f"pinned stride {expr_str(expr)} of {buf_name} does "
                    f"not resolve under binding set #{j}"
                )
            elif v != 1:
                diags.append(
                    Diagnostic(
                        "RE005",
                        "error",
                        f"pin_unit_stride replaced stride "
                        f"{expr_str(expr)} of {buf_name} with 1, but "
                        f"binding set #{j} binds it to {v}: the pinned "
                        "kernel addresses the wrong elements",
                        kernel=kernel,
                        location=buf_name,
                    )
                )
    return diags, unknowns


# -- layer (b): whole-kernel certificate --------------------------------------


def certify_bodies(
    stage: Stage,
    out_buffer,
    naive_body: _s.Stmt,
    sched_body: _s.Stmt,
    binding_sets: Sequence[Bindings],
    kernel: str = "",
) -> Tuple[List[Diagnostic], List[str], bool]:
    """Symbolic store-set/value comparison of two lowered bodies.

    Returns ``(diagnostics, unknown reasons, reassociated)``.  Exposed
    separately from :func:`certify_kernel` so the soundness tests can
    certify deliberately doctored statement trees (e.g. a dropped
    writeback nest) against the honest naive lowering.
    """
    diags: List[Diagnostic] = []
    unknowns: List[str] = []
    reassociated = False

    nw, sw = _StoreWalk(), _StoreWalk()
    nw.walk(naive_body)
    sw.walk(sched_body)
    unknowns += [f"naive lowering contains {b}" for b in sorted(set(nw.blockers))]
    unknowns += [
        f"scheduled lowering contains {b}" for b in sorted(set(sw.blockers))
    ]

    n_out = [(s, l) for s, l in nw.stores if s.buffer is out_buffer]
    s_out = [(s, l) for s, l in sw.stores if s.buffer is out_buffer]
    if len(n_out) != 1:
        unknowns.append(f"naive lowering has {len(n_out)} output stores")
        return diags, unknowns, reassociated
    if not s_out:
        diags.append(
            Diagnostic(
                "RE001",
                "error",
                f"the scheduled kernel never stores to output buffer "
                f"{out_buffer.name}: the writeback was dropped",
                kernel=kernel,
                location=out_buffer.name,
            )
        )
        return diags, unknowns, reassociated
    if len(s_out) > 1:
        unknowns.append(f"scheduled lowering has {len(s_out)} output stores")
        return diags, unknowns, reassociated

    acc_ids = {
        id(s.buffer) for s, _ in nw.stores + sw.stores if s.buffer is not out_buffer
    }
    placeholder = _e.Var("__equiv_acc", _e.FLOAT32)
    norm = _AccLoadNormalizer(acc_ids, placeholder)
    sub = stage.substitution()

    (ns, _nl), (ss, sl) = n_out[0], s_out[0]
    if not structural_eq_sub(ns.index, ss.index, norm, sub):
        unknowns.append(
            "output address map differs from the naive lowering "
            f"({expr_str(ns.index)} vs {expr_str(ss.index)})"
        )
    if not structural_eq_sub(ns.value, ss.value, norm, sub):
        unknowns.append("output value expression differs from the naive lowering")

    forest = _leaf_expansion(stage)
    data_leaves = [lf for root, lvs in forest if not root.is_reduce for lf in lvs]
    reduce_leaves = [lf for root, lvs in forest if root.is_reduce for lf in lvs]

    def check_coverage(
        loops: Tuple[_e.Var, ...], leaves: List[IterVar], nest: str
    ) -> None:
        loop_set = set(loops)
        for leaf in leaves:
            if leaf.var in loop_set:
                continue
            n = _max_extent(leaf, binding_sets)
            if n is None:
                unknowns.append(
                    f"axis {leaf.name} (symbolic extent) is not iterated "
                    f"by the scheduled {nest}"
                )
            elif n > 1:
                diags.append(
                    Diagnostic(
                        "RE001",
                        "error",
                        f"axis {leaf.name} (extent {n}) is never iterated "
                        f"by the scheduled {nest}: {n - 1} of {n} "
                        "iterations are dropped",
                        kernel=kernel,
                        location=leaf.name,
                    )
                )
        extra = loop_set - {lf.var for lf in data_leaves + reduce_leaves}
        if extra:
            unknowns.append(
                f"scheduled {nest} is nested under unexpected loops: "
                f"{sorted(v.name for v in extra)}"
            )

    check_coverage(sl, data_leaves, "writeback")

    if stage.op.has_reduction:
        def split_acc(walk: _StoreWalk):
            init, upd = [], []
            for s, l in walk.stores:
                if s.buffer is out_buffer:
                    continue
                (upd if _loads_on(s.value, s.buffer) else init).append((s, l))
            return init, upd

        n_init, n_upd = split_acc(nw)
        s_init, s_upd = split_acc(sw)
        if len(n_upd) != 1 or len(s_upd) != 1 or len(s_init) != 1:
            unknowns.append(
                "accumulation structure is not a single init/update pair "
                f"(naive {len(n_upd)} updates, scheduled {len(s_init)} "
                f"inits / {len(s_upd)} updates)"
            )
            return diags, unknowns, reassociated

        (nu, _nul), (su, sul) = n_upd[0], s_upd[0]
        if not structural_eq_sub(nu.value, su.value, norm, sub):
            unknowns.append(
                "accumulator update expression differs from the naive "
                "lowering"
            )
        # lowering consistency: init, update, and the writeback's read of
        # the accumulator must agree on the tile address
        wb_loads = _loads_on(ss.value, su.buffer)
        tile_idx = [s_init[0][0].index, su.index] + [ld.index for ld in wb_loads]
        if not wb_loads:
            unknowns.append("writeback never reads the accumulator")
        elif not all(
            _e.structural_equal(tile_idx[0], t) for t in tile_idx[1:]
        ):
            unknowns.append(
                "accumulator tile addressing is inconsistent across "
                "init/update/writeback"
            )

        check_coverage(sul, data_leaves + reduce_leaves, "accumulation")

        canonical = [lf.var for lf in reduce_leaves]
        visited = [v for v in sul if v in set(canonical)]
        if visited != canonical:
            reassociated = True
            diags.append(
                Diagnostic(
                    "RE003",
                    "info",
                    "reduce visit order "
                    f"({', '.join(v.name for v in visited)}) differs from "
                    "the naive left fold "
                    f"({', '.join(v.name for v in canonical)}): a "
                    "floating-point reassociation, not certified bit-exact",
                    kernel=kernel,
                )
            )
    elif any(s.buffer is not out_buffer for s, _ in sw.stores):
        unknowns.append("non-reduction kernel stores to a scratch buffer")

    return diags, unknowns, reassociated


def structural_eq_sub(
    naive_expr: _e.Expr,
    sched_expr: _e.Expr,
    norm: _AccLoadNormalizer,
    sub: Dict[_e.Var, _e.Expr],
) -> bool:
    """Normalized structural equality modulo the split substitution."""
    a = substitute(norm.mutate(naive_expr), sub)
    b = norm.mutate(sched_expr)
    return _e.structural_equal(a, b)


def _certify_stage(
    sk, stage: Stage, binding_sets: Sequence[Bindings]
) -> Tuple[List[Diagnostic], List[str], bool]:
    sch = sk.schedule
    naive = create_schedule(*sch.tensors)
    try:
        naive_body = lower_stage_body(naive)
        sched_body = lower_stage_body(sch)
    except Exception as exc:  # ScheduleError / LoweringError
        return [], [f"lowering failed during certification: {exc}"], False
    return certify_bodies(
        stage, sch.output.buffer, naive_body, sched_body, binding_sets,
        kernel=sk.name,
    )


# -- dynamic fallback ---------------------------------------------------------


def _buffer_numel(buf, bindings: Bindings) -> Optional[int]:
    """Allocation size covering both the shape and the strided footprint."""
    dims: List[int] = []
    for d in buf.shape:
        v = d if isinstance(d, int) else _eval_under(d, bindings)
        if v is None or v <= 0:
            return None
        dims.append(v)
    n = 1
    for v in dims:
        n *= v
    if buf.strides:
        strides: List[int] = []
        for s in buf.strides:
            v = s if isinstance(s, int) else _eval_under(s, bindings)
            if v is None:
                return None
            strides.append(v)
        span = 1 + sum((d - 1) * abs(s) for d, s in zip(dims, strides))
        n = max(n, span)
    return n


def dynamic_equiv_check(
    sk, bindings: Optional[Bindings] = None, seed: int = 0
) -> Optional[bool]:
    """One interpreter cross-check: scheduled vs naive, bit-for-bit.

    Fills the shared input buffers with seeded random float32 data, runs
    both kernels through the scalar interpreter, and compares the output
    buffer exactly.  Returns ``None`` when the check cannot be
    materialized (unresolved symbolic shapes, naive lowering failure),
    ``False`` when the scheduled kernel fails to lower/run or its
    results differ, ``True`` on a bit-exact match.
    """
    import numpy as np

    from repro.ir.interp import run_kernel
    from repro.schedule.lower import lower as lower_schedule

    bindings = dict(bindings or {})
    try:
        naive_k = lower_schedule(
            create_schedule(*sk.schedule.tensors), sk.name + "__equiv_naive"
        )
    except Exception:
        return None
    try:
        sched_k = sk.lower()
    except Exception:
        return False

    out_name = sk.schedule.output.buffer.name
    fills: Dict[str, "np.ndarray"] = {}
    for k in (naive_k, sched_k):
        adopted = k.bind_by_name(bindings)
        for buf in k.args:
            if (
                buf.name == out_name
                or buf.name in k.scratch_args
                or buf.name in fills
            ):
                continue
            n = _buffer_numel(buf, adopted)
            if n is None:
                return None
            rng = np.random.default_rng(
                (zlib.crc32(buf.name.encode()) + seed) % (2 ** 32)
            )
            if buf.dtype == _e.FLOAT32:
                fills[buf.name] = rng.random(n, dtype=np.float32)
            else:
                fills[buf.name] = rng.integers(0, 4, n).astype(np.int32)

    outs = []
    for k in (naive_k, sched_k):
        adopted = k.bind_by_name(bindings)
        bufs: Dict[str, "np.ndarray"] = {}
        for buf in k.args:
            if buf.name in fills:
                bufs[buf.name] = fills[buf.name].copy()
            else:
                n = _buffer_numel(buf, adopted)
                if n is None:
                    return None
                dt = np.float32 if buf.dtype == _e.FLOAT32 else np.int32
                bufs[buf.name] = np.zeros(n, dtype=dt)
        try:
            run_kernel(k, bufs, bindings=adopted)
        except Exception:
            return None if k is naive_k else False
        outs.append(bufs[out_name].copy())
    return bool(np.array_equal(outs[0], outs[1]))


# -- entry points -------------------------------------------------------------


def certify_kernel(
    sk,
    binding_sets: Optional[Sequence[Bindings]] = None,
    dynamic_fallback: bool = True,
) -> Tuple[EquivCertificate, List[Diagnostic]]:
    """Certify one scheduled kernel against its naive lowering.

    ``binding_sets`` are the per-kernel shape/stride bindings of a
    folded plan (see :func:`repro.verify.verifier.binding_sets_of`);
    symbolic obligations (RE004/RE005, symbolic extents) quantify over
    them.  With ``dynamic_fallback`` (the default), an ``unknown``
    verdict triggers exactly one interpreter cross-check on the first
    binding set; pass ``False`` for a purely static run.
    """
    bsets = [dict(b) for b in (binding_sets or [])]
    reason = _uncertifiable_reason(sk)
    if reason is not None:
        cert = EquivCertificate(
            kernel=sk.name, status="uncertified", detail=reason,
            binding_sets=len(bsets),
        )
        return cert, []

    key = _cert_key(sk, bsets)
    if key is not None:
        hit = _CACHE.get(key)
        if hit is not None:
            _CACHE.move_to_end(key)
            _STATS["hits"] += 1
            cert, diags = hit
            return cert, list(diags)
        _STATS["misses"] += 1
    else:
        _STATS["uncached"] += 1

    sch = sk.schedule
    stage = sch.stages[0]
    diags: List[Diagnostic] = []
    unknowns: List[str] = []
    reassociated = False

    diags += _check_reorder(stage, sk.name)
    d4, u4 = _check_splits(stage, bsets, sk.name)
    d5, u5 = _check_pins(sch, bsets, sk.name)
    diags += d4 + d5
    unknowns += u4 + u5

    if not any(d.rule == "RE002" for d in diags):
        cert_diags, cert_unknowns, reassociated = _certify_stage(sk, stage, bsets)
        diags += cert_diags
        unknowns += cert_unknowns

    dynamic_checked = False
    dynamic_ok: Optional[bool] = None
    if any(d.severity == "error" for d in diags):
        status = "rejected"
    elif unknowns or reassociated:
        status = "unknown"
        why = "; ".join(unknowns) if unknowns else "reduction reassociated"
        diags.append(
            Diagnostic(
                "RE006",
                "warn",
                f"equivalence not statically provable: {why} — one dynamic "
                "cross-check gates acceptance",
                kernel=sk.name,
            )
        )
        if dynamic_fallback:
            ok = dynamic_equiv_check(sk, bsets[0] if bsets else {})
            if ok is not None:
                dynamic_checked = True
                dynamic_ok = ok
                _STATS["dynamic_runs"] += 1
                if not ok:
                    status = "rejected"
                    diags.append(
                        Diagnostic(
                            "RE001",
                            "error",
                            "dynamic equivalence check failed: the "
                            "scheduled kernel's results differ from the "
                            "naive lowering",
                            kernel=sk.name,
                        )
                    )
    else:
        status = "certified"

    cert = EquivCertificate(
        kernel=sk.name,
        status=status,
        fingerprint=key or "",
        rules=tuple(sorted({d.rule for d in diags})),
        reassociated=reassociated,
        binding_sets=len(bsets),
        dynamic_checked=dynamic_checked,
        dynamic_ok=dynamic_ok,
        detail="; ".join(unknowns),
    )
    if key is not None:
        _CACHE[key] = (cert, tuple(diags))
        while len(_CACHE) > _MAX_ENTRIES:
            _CACHE.popitem(last=False)
    return cert, list(diags)


def certify_build(
    scheduled,
    plan: Optional[FoldedPlan] = None,
    subject: str = "",
    dynamic_fallback: bool = True,
) -> Tuple[VerifyReport, Dict[str, EquivCertificate]]:
    """Certify every kernel of a scheduled build.

    ``scheduled`` is a :class:`~repro.flow.artifacts.FoldedSchedule` or
    :class:`~repro.flow.artifacts.PipelinedSchedule`; a
    :class:`~repro.runtime.plan.FoldedPlan` supplies the binding sets
    symbolic obligations quantify over.  Returns the merged
    :class:`VerifyReport` (RE diagnostics plus the ``equiv_*`` counters,
    always present even at zero) and the per-kernel certificates.
    """
    report = VerifyReport(
        subject=subject or getattr(scheduled, "program_name", "build")
    )
    for c in COUNTERS:
        report.bump(c, 0)
    bsets = binding_sets_of(plan) if isinstance(plan, FoldedPlan) else {}
    certs: Dict[str, EquivCertificate] = {}
    for sk in scheduled.kernels:
        before = _STATS["dynamic_runs"]
        cert, diags = certify_kernel(
            sk, bsets.get(sk.name), dynamic_fallback=dynamic_fallback
        )
        report.extend(diags)
        report.bump("equiv_" + cert.status)
        report.bump("equiv_dynamic_runs", _STATS["dynamic_runs"] - before)
        certs[sk.name] = cert
    return report, certs
