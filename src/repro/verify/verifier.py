"""Orchestration: run every analyzer family over one build's artifacts.

:func:`verify_build` is the single entry point used by the pipeline's
``verify`` stage and by ``repro.report --verify``.  It fans out to

* :func:`repro.verify.bounds.check_bounds` per kernel (once per binding
  set for folded kernels),
* :func:`repro.verify.races.check_races` per kernel,
* :func:`repro.verify.channels.check_channels` over the program (plus
  the :class:`~repro.runtime.plan.PipelinePlan`, when the deployment is
  pipelined), and
* :func:`repro.verify.cllint.lint_source` over the emitted OpenCL text,

then applies rule suppressions and returns one merged
:class:`~repro.verify.diagnostics.VerifyReport`.  :func:`assert_clean`
turns a dirty report into a :class:`~repro.errors.VerificationError`
whose message carries the formatted findings — this is what makes the
``verify`` stage fail a deploy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.aoc.constants import AOCConstants, DEFAULT_CONSTANTS
from repro.device.boards import Board
from repro.errors import VerificationError
from repro.ir.kernel import Program
from repro.runtime.plan import Bindings, FoldedPlan, PipelinePlan
from repro.verify.bounds import check_bounds
from repro.verify.channels import check_channels
from repro.verify.cllint import lint_source
from repro.verify.diagnostics import RULES, VerifyReport
from repro.verify.perf import check_perf
from repro.verify.races import check_races

Plan = Union[PipelinePlan, FoldedPlan]


def binding_sets_of(plan: FoldedPlan) -> Dict[str, List[Bindings]]:
    """Distinct per-kernel shape/stride binding sets of a folded plan.

    A folded kernel is shared by many layers; each invocation carries the
    concrete values of its symbolic shape and stride arguments.  The
    bounds checker verifies the kernel once per *distinct* binding set,
    not once per invocation.
    """
    out: Dict[str, List[Bindings]] = {}
    seen: Dict[str, set] = {}
    for inv in plan.invocations:
        if not inv.bindings:
            continue
        key = tuple(sorted((v.name, c) for v, c in inv.bindings.items()))
        if key in seen.setdefault(inv.kernel_name, set()):
            continue
        seen[inv.kernel_name].add(key)
        out.setdefault(inv.kernel_name, []).append(inv.bindings)
    return out


def verify_build(
    program: Program,
    source: Optional[str] = None,
    plan: Optional[Plan] = None,
    subject: str = "",
    suppress: Iterable[str] = (),
    board: Optional[Board] = None,
    constants: AOCConstants = DEFAULT_CONSTANTS,
) -> VerifyReport:
    """Statically verify one build: bounds, races, channels, source lint.

    ``plan`` tailors the run: a :class:`FoldedPlan` supplies the binding
    sets the bounds checker needs for symbolic kernels, a
    :class:`PipelinePlan` is cross-checked against the program's channel
    topology.  ``suppress`` drops findings by rule ID (unknown IDs are
    rejected) and counts them under the ``suppressed`` counter.  With a
    ``board`` the performance advisor (RP rules) also runs, classifying
    each kernel against that board's bandwidth roof and emitting
    advice-severity findings; without one, only the correctness families
    run.
    """
    suppress = frozenset(suppress)
    unknown = suppress - frozenset(RULES)
    if unknown:
        raise ValueError(f"unknown rule ID(s) in suppress: {sorted(unknown)}")

    report = VerifyReport(subject=subject or program.name)
    bindings = binding_sets_of(plan) if isinstance(plan, FoldedPlan) else {}
    for kernel in program.kernels:
        check_bounds(kernel, bindings.get(kernel.name), report)
        check_races(kernel, bindings.get(kernel.name), report)
        if board is not None:
            check_perf(kernel, bindings.get(kernel.name), report, board,
                       constants)
    check_channels(
        program, plan if isinstance(plan, PipelinePlan) else None, report
    )
    if source is not None:
        lint_source(source, report)

    if suppress:
        kept = [d for d in report.diagnostics if d.rule not in suppress]
        report.bump("suppressed", len(report.diagnostics) - len(kept))
        report.diagnostics = kept
    return report


def assert_clean(report: VerifyReport) -> VerifyReport:
    """Raise :class:`VerificationError` if the report has any errors."""
    if not report.clean:
        findings = "\n".join(d.format() for d in report.errors)
        raise VerificationError(
            f"static verification of {report.subject} found "
            f"{len(report.errors)} error(s):\n{findings}",
            report=report,
        )
    return report
