"""Static channel-protocol verification over programs and pipeline plans.

Intel CL channels are blocking FIFOs between exactly one producer and
one consumer kernel.  Three things can go statically wrong, and each is
the compile-time complement of a failure the runtime watchdog
(:mod:`repro.resilience.watchdog`) can only catch after the hang:

* **count mismatch** (**RC001**) — the producer's static write count and
  the consumer's static read count per activation differ; the short side
  blocks forever on the last element.  Counts are products of enclosing
  loop extents; a symbolic extent or a read/write under a conditional
  makes the count unprovable (**RC002**).
* **wait cycles** (**RC003**) — an edge consumer → producer per channel;
  a cycle means every kernel in it blocks on a channel another blocked
  kernel should feed.  With this repro's lowering (consumers drain their
  whole input channel before producing anything) a topological cycle is
  always a deadlock.
* **depth/occupancy** (**RC004**/**RC005**) — the thesis sizes FIFO
  depth to the producer's per-image output (§4.11).  A depth above the
  per-image traffic can never fill (wasted BRAM, RC004 warn); a
  non-zero depth below it can back-pressure a concurrent producer
  (RC005, info — a performance note, not a correctness issue).
* **plan drift** (**RC006**) — a :class:`~repro.runtime.plan.PipelinePlan`
  whose channel flags/depths disagree with the program it plans for.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir import expr as _e
from repro.ir import stmt as _s
from repro.ir.analysis import eval_int
from repro.ir.kernel import Kernel, Program
from repro.runtime.plan import PipelinePlan
from repro.verify.diagnostics import Diagnostic, VerifyReport

#: rule IDs this analyzer may emit (tools/lint.py cross-checks)
RULES = ("RC001", "RC002", "RC003", "RC004", "RC005", "RC006")

#: channel name -> (count, provable); count is meaningful only when provable
Counts = Dict[str, Tuple[int, bool]]


def channel_counts(kernel: Kernel) -> Tuple[Counts, Counts]:
    """Static per-activation (reads, writes) counts per channel name.

    A count is the sum over occurrences of the product of enclosing loop
    extents.  Occurrences under a conditional or under a loop with a
    symbolic extent poison the channel's count (provable=False).
    """
    reads: Counts = {}
    writes: Counts = {}

    def add(table: Counts, name: str, n: Optional[int]) -> None:
        count, ok = table.get(name, (0, True))
        if n is None:
            table[name] = (count, False)
        else:
            table[name] = (count + n, ok)

    def expr(e: _e.Expr, mult: Optional[int]) -> None:
        if isinstance(e, _e.ChannelRead):
            add(reads, e.channel.name, mult)
        for c in e.children():
            expr(c, mult)

    def walk(s: _s.Stmt, mult: Optional[int]) -> None:
        if isinstance(s, _s.For):
            expr(s.extent, mult)
            ext = eval_int(s.extent)
            inner = None if (mult is None or ext is None) else mult * ext
            walk(s.body, inner)
        elif isinstance(s, _s.IfThenElse):
            expr(s.cond, mult)
            walk(s.then_body, None)  # conditional: count unprovable
            if s.else_body is not None:
                walk(s.else_body, None)
        elif isinstance(s, _s.Store):
            expr(s.index, mult)
            expr(s.value, mult)
        elif isinstance(s, _s.Evaluate):
            expr(s.value, mult)
        elif isinstance(s, _s.ChannelWrite):
            add(writes, s.channel.name, mult)
            expr(s.value, mult)
        elif isinstance(s, (_s.Allocate, _s.AttrStmt)):
            walk(s.body, mult)
        elif isinstance(s, _s.SeqStmt):
            for c in s.stmts:
                walk(c, mult)

    walk(kernel.body, 1)
    return reads, writes


def check_channels(
    program: Program,
    plan: Optional[PipelinePlan] = None,
    report: Optional[VerifyReport] = None,
) -> VerifyReport:
    """Verify channel protocol, wait-graph acyclicity and FIFO depths."""
    if report is None:
        report = VerifyReport(subject=program.name)

    # per-channel producer/consumer kernels and their static counts
    producers: Dict[str, List[Tuple[str, int, bool]]] = {}
    consumers: Dict[str, List[Tuple[str, int, bool]]] = {}
    depths: Dict[str, int] = {}
    for k in program.kernels:
        reads, writes = channel_counts(k)
        for name, (n, ok) in writes.items():
            producers.setdefault(name, []).append((k.name, n, ok))
        for name, (n, ok) in reads.items():
            consumers.setdefault(name, []).append((k.name, n, ok))
    for ch in program.all_channels():
        depths[ch.name] = ch.depth

    for name in sorted(set(producers) | set(consumers)):
        report.bump("channels_checked")
        p = producers.get(name, [])
        c = consumers.get(name, [])
        if len(p) != 1 or len(c) != 1:
            report.diagnostics.append(Diagnostic(
                "RC001", "error",
                f"channel {name} needs exactly one producer and one consumer "
                f"(producers: {[k for k, _, _ in p]}, "
                f"consumers: {[k for k, _, _ in c]})",
                location=name,
            ))
            continue
        (pk, wn, wok), (ck, rn, rok) = p[0], c[0]
        if not (wok and rok):
            report.diagnostics.append(Diagnostic(
                "RC002", "warn",
                f"channel {name}: {'write' if not wok else 'read'} count is "
                f"symbolic or conditional — protocol unprovable",
                location=name,
            ))
            continue
        if wn != rn:
            report.diagnostics.append(Diagnostic(
                "RC001", "error",
                f"channel {name}: producer {pk} writes {wn} element(s) per "
                f"activation but consumer {ck} reads {rn} — the "
                f"{'consumer' if rn > wn else 'producer'} blocks forever",
                location=name,
            ))
            continue
        report.bump("channels_matched")
        _check_depth(name, depths.get(name, 0), wn, report)

    _check_wait_cycles(program, producers, consumers, report)
    if plan is not None:
        _check_plan_consistency(program, plan, report)
    return report


# ---------------------------------------------------------------------------
def _check_depth(name: str, depth: int, traffic: int, report: VerifyReport) -> None:
    if depth > traffic:
        report.diagnostics.append(Diagnostic(
            "RC004", "warn",
            f"channel {name}: FIFO depth {depth} exceeds the {traffic} "
            f"element(s) ever in flight per activation — wasted BRAM",
            location=name,
        ))
    elif 0 < depth < traffic:
        report.diagnostics.append(Diagnostic(
            "RC005", "info",
            f"channel {name}: FIFO depth {depth} is below the producer's "
            f"{traffic}-element per-activation traffic — concurrent "
            f"execution may back-pressure (thesis §4.6)",
            location=name,
        ))


# ---------------------------------------------------------------------------
def _check_wait_cycles(
    program: Program,
    producers: Dict[str, List[Tuple[str, int, bool]]],
    consumers: Dict[str, List[Tuple[str, int, bool]]],
    report: VerifyReport,
) -> None:
    """Edge consumer-kernel -> producer-kernel per channel; cycles deadlock."""
    edges: Dict[str, List[Tuple[str, str]]] = {}  # kernel -> [(producer, channel)]
    for name, cons in consumers.items():
        prods = producers.get(name, [])
        for ck, _, _ in cons:
            for pk, _, _ in prods:
                edges.setdefault(ck, []).append((pk, name))

    state: Dict[str, int] = {}  # 0 = visiting, 1 = done
    stack: List[Tuple[str, str]] = []

    def dfs(k: str) -> Optional[List[Tuple[str, str]]]:
        state[k] = 0
        for nxt, ch in edges.get(k, ()):
            if state.get(nxt) == 0:
                return stack + [(nxt, ch)]
            if nxt not in state:
                stack.append((nxt, ch))
                cycle = dfs(nxt)
                stack.pop()
                if cycle is not None:
                    return cycle
        state[k] = 1
        return None

    for k in sorted(edges):
        if k in state:
            continue
        stack.clear()
        stack.append((k, ""))
        cycle = dfs(k)
        if cycle is not None:
            culprit = cycle[-1][0]
            start = next(i for i, (kk, _) in enumerate(cycle) if kk == culprit)
            loop = cycle[start:]
            chain = " -> ".join(
                f"{kk} (waits on {ch})" if ch else kk for kk, ch in loop
            )
            report.diagnostics.append(Diagnostic(
                "RC003", "error",
                f"wait cycle in the static channel graph: {chain} — every "
                f"kernel in the cycle blocks on a channel fed by another "
                f"blocked kernel (deadlock)",
                location=loop[0][1] or loop[-1][1],
            ))
            return  # one cycle diagnosis is enough


# ---------------------------------------------------------------------------
def _check_plan_consistency(
    program: Program, plan: PipelinePlan, report: VerifyReport
) -> None:
    for stage in plan.stages:
        try:
            kernel = program.kernel(stage.kernel_name)
        except KeyError:
            report.diagnostics.append(Diagnostic(
                "RC006", "error",
                f"plan stage {stage.layer} names kernel "
                f"{stage.kernel_name} which is not in the program",
                location=stage.layer,
            ))
            continue
        reads, writes = kernel.channels()
        if stage.channel_out != bool(writes):
            report.diagnostics.append(Diagnostic(
                "RC006", "error",
                f"plan stage {stage.layer}: channel_out={stage.channel_out} "
                f"but kernel {kernel.name} writes "
                f"{len(writes)} channel(s)",
                kernel=kernel.name, location=stage.layer,
            ))
        if stage.channel_in != bool(reads):
            report.diagnostics.append(Diagnostic(
                "RC006", "error",
                f"plan stage {stage.layer}: channel_in={stage.channel_in} "
                f"but kernel {kernel.name} reads "
                f"{len(reads)} channel(s)",
                kernel=kernel.name, location=stage.layer,
            ))
        if stage.channel_out and writes:
            depth = max(ch.depth for ch in writes)
            if stage.channel_depth != depth:
                report.diagnostics.append(Diagnostic(
                    "RC006", "error",
                    f"plan stage {stage.layer}: channel_depth="
                    f"{stage.channel_depth} but the kernel's output channel "
                    f"has depth {depth}",
                    kernel=kernel.name, location=stage.layer,
                ))
