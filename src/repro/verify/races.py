"""Unroll write-race detection and def-before-use analysis.

AOC replicates the body of an ``#pragma unroll`` loop into parallel
hardware (thesis §5): all unrolled iterations execute concurrently.  Two
iterations may therefore race when a ``Store`` under an unrolled loop
targets the *same* address in different iterations.  The detector
reasons with :func:`repro.ir.analysis.stride_of` on the store index:

* a non-zero constant stride means distinct iterations write distinct
  addresses — disjoint, proven race-free;
* stride 0 with a value that reads the stored location back
  (``acc[i] = acc[i] + ...``) is a reduction update — AOC serializes it
  through the dependence chain (it builds an adder tree), not a race;
* stride 0 with an iteration-dependent value is a real race — two
  replicas drive different values onto one address (**RR001**, error);
* a non-affine store index leaves disjointness unprovable (**RR003**).

The def-before-use pass (**RR002**) flags reads of kernel-allocated
(local/register) buffers that can execute before any store to the
buffer: in OpenCL such reads return undefined data.  Granularity is the
whole buffer, walked in program order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir import expr as _e
from repro.ir import stmt as _s
from repro.ir.analysis import free_vars, stride_of
from repro.ir.functor import StmtVisitor
from repro.ir.kernel import Kernel
from repro.verify.diagnostics import Diagnostic, VerifyReport

#: rule IDs this analyzer may emit (tools/lint.py cross-checks)
RULES = ("RR001", "RR002", "RR003")

Bindings = Dict[_e.Var, int]


def _collect_stores(body: _s.Stmt) -> List[_s.Store]:
    out: List[_s.Store] = []

    class _V(StmtVisitor):
        def visit_Store(self, st: _s.Store) -> None:
            out.append(st)
            self.generic_visit_stmt(st)

    _V().visit_stmt(body)
    return out


def _reads_back(store: _s.Store) -> bool:
    """True if the stored value loads the same buffer at the same index."""
    found = False

    class _V(StmtVisitor):
        def visit_Load(self, e: _e.Load) -> None:
            nonlocal found
            if e.buffer is store.buffer and _e.structural_equal(e.index, store.index):
                found = True
            self.generic_visit(e)

    _V().visit(store.value)
    return found


def check_races(
    kernel: Kernel,
    binding_sets: Optional[List[Bindings]] = None,
    report: Optional[VerifyReport] = None,
) -> VerifyReport:
    """Run the unroll-race and def-before-use analyses over one kernel.

    ``binding_sets`` carries the concrete shape/stride values of a folded
    kernel's invocations, so symbolic store strides (``ff * s_o0``) fold
    to constants and disjointness becomes provable per parameterization.
    """
    if report is None:
        report = VerifyReport(subject=kernel.name)
    sets = binding_sets if binding_sets else [{}]
    seen: Set[tuple] = set()
    for bindings in sets:
        _check_unroll_races(kernel, bindings, report, seen)
    _check_def_before_use(kernel, report)
    report.bump("kernels_race_checked")
    return report


# ---------------------------------------------------------------------------
def _check_unroll_races(
    kernel: Kernel, bindings: Bindings, report: VerifyReport, seen: Set[tuple]
) -> None:
    def walk(s: _s.Stmt) -> None:
        if isinstance(s, _s.For):
            if s.kind is _s.ForKind.UNROLLED:
                _check_one_unrolled(kernel, s, bindings, report, seen)
            walk(s.body)
        else:
            for c in s.children():
                walk(c)

    walk(kernel.body)


def _check_one_unrolled(
    kernel: Kernel,
    loop: _s.For,
    bindings: Bindings,
    report: VerifyReport,
    seen: Set[tuple],
) -> None:
    var = loop.loop_var
    # a factor-1 "unroll" replicates nothing, so nothing can race
    if loop.unroll_factor == 1 or loop.static_extent == 1:
        return

    def diag(rule: str, severity: str, message: str) -> None:
        key = (rule, var.name, message)
        if key not in seen:
            seen.add(key)
            report.diagnostics.append(Diagnostic(
                rule, severity, message, kernel=kernel.name, location=var.name,
            ))

    for store in _collect_stores(loop.body):
        report.bump("unrolled_stores_checked")
        stride = stride_of(store.index, var, bindings)
        if stride is None:
            diag(
                "RR003", "warn",
                f"store to {store.buffer.name} under unrolled loop "
                f"{var.name}: index is not affine in {var.name} — "
                f"disjointness unprovable",
            )
            continue
        if stride != 0:
            report.bump("unrolled_stores_disjoint")
            continue  # distinct iterations hit distinct addresses
        if _reads_back(store):
            report.bump("unrolled_reduction_updates")
            continue  # read-modify-write: a dependence chain, not a race
        if var in free_vars(store.value):
            diag(
                "RR001", "error",
                f"store to {store.buffer.name} under unrolled loop "
                f"{var.name}: all iterations write the same address with "
                f"iteration-dependent values — replicated hardware races",
            )
        # else: every replica writes the same value — redundant but benign


# ---------------------------------------------------------------------------
def _check_def_before_use(kernel: Kernel, report: VerifyReport) -> None:
    """Flag loads of kernel-allocated buffers before any store to them."""
    stored: Set[str] = set()
    flagged: Set[str] = set()
    local_names = {b.name for b in kernel.local_buffers()}

    def check_expr(e: _e.Expr) -> None:
        if isinstance(e, _e.Load):
            name = e.buffer.name
            if name in local_names and name not in stored and name not in flagged:
                flagged.add(name)
                report.diagnostics.append(Diagnostic(
                    "RR002", "warn",
                    f"load of {e.buffer.scope} buffer {name} can execute "
                    f"before any store to it (undefined data)",
                    kernel=kernel.name, location=name,
                ))
        for c in e.children():
            check_expr(c)

    def walk(s: _s.Stmt) -> None:
        if isinstance(s, _s.Store):
            check_expr(s.index)
            check_expr(s.value)
            stored.add(s.buffer.name)
        elif isinstance(s, _s.Evaluate):
            check_expr(s.value)
        elif isinstance(s, _s.ChannelWrite):
            check_expr(s.value)
        elif isinstance(s, _s.For):
            check_expr(s.extent)
            walk(s.body)
        elif isinstance(s, _s.IfThenElse):
            check_expr(s.cond)
            walk(s.then_body)
            if s.else_body is not None:
                walk(s.else_body)
        elif isinstance(s, (_s.Allocate, _s.AttrStmt)):
            walk(s.body)
        elif isinstance(s, _s.SeqStmt):
            for c in s.stmts:
                walk(c)

    walk(kernel.body)
