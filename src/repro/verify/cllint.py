"""Lint over emitted OpenCL-C source (the ``codegen`` stage's artifact).

The other analyzers work on IR; this one checks the text AOC would
actually consume, so hand-edited or externally produced ``.cl`` files
get the same gate.  Checks:

* **RL001** — a kernel parameter never referenced in the kernel body
  (dead argument; costs an LSU/port for nothing);
* **RL002** — a ``global`` pointer parameter without ``restrict``
  (AOC must assume aliasing and serializes overlapping accesses,
  thesis §4.4);
* **RL003** — ``barrier(...)`` lexically inside an ``if`` block
  (divergent control: work-items that skip the barrier hang the rest);
* **RL004** — ``read_channel_intel``/``write_channel_intel`` on a
  channel with no file-scope ``channel`` declaration.

The linter is a single pass over the text with brace tracking — no C
parser — which is exactly enough for compiler-emitted source.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.verify.diagnostics import Diagnostic, VerifyReport

#: rule IDs this analyzer may emit (tools/lint.py cross-checks)
RULES = ("RL001", "RL002", "RL003", "RL004")

_CHANNEL_DECL = re.compile(r"^channel\s+\w+\s+(\w+)")
_KERNEL_SIG = re.compile(r"kernel\s+void\s+(\w+)\s*\(([^)]*)\)")
_CHANNEL_USE = re.compile(r"(?:read|write)_channel_intel\s*\(\s*(\w+)")
_WORD = r"(?<![A-Za-z0-9_]){}(?![A-Za-z0-9_])"


def _param_name(param: str) -> Optional[str]:
    """Last identifier of a C parameter declarator."""
    words = re.findall(r"[A-Za-z_]\w*", param)
    return words[-1] if words else None


def lint_source(source: str, report: Optional[VerifyReport] = None) -> VerifyReport:
    """Lint one emitted ``.cl`` translation unit."""
    if report is None:
        report = VerifyReport(subject="<source>")
    lines = source.splitlines()
    declared_channels = {
        m.group(1) for line in lines for m in [_CHANNEL_DECL.match(line.strip())] if m
    }
    report.bump("source_lines", len(lines))

    for name, params, body, body_line in _kernels(lines):
        report.bump("kernels_linted")
        for param in params:
            pname = _param_name(param)
            if pname is None:
                continue
            if not re.search(_WORD.format(re.escape(pname)), body):
                report.diagnostics.append(Diagnostic(
                    "RL001", "warn",
                    f"argument {pname!r} is never referenced in the body",
                    kernel=name, location=pname,
                ))
            if "global" in param.split() and "restrict" not in param.split():
                report.diagnostics.append(Diagnostic(
                    "RL002", "warn",
                    f"global pointer argument {pname!r} lacks restrict — "
                    f"AOC must assume aliasing",
                    kernel=name, location=pname,
                ))
        _check_barriers(name, body, body_line, report)
        for m in _CHANNEL_USE.finditer(body):
            if m.group(1) not in declared_channels:
                report.diagnostics.append(Diagnostic(
                    "RL004", "error",
                    f"channel {m.group(1)!r} is used but never declared at "
                    f"file scope",
                    kernel=name, location=m.group(1),
                ))
    return report


# ---------------------------------------------------------------------------
def _kernels(lines: List[str]) -> List[Tuple[str, List[str], str, int]]:
    """Yield (name, params, body text, first body line) per kernel."""
    out = []
    i = 0
    while i < len(lines):
        m = _KERNEL_SIG.search(lines[i])
        if m is None:
            i += 1
            continue
        name = m.group(1)
        params = [p.strip() for p in m.group(2).split(",") if p.strip()]
        depth = lines[i].count("{") - lines[i].count("}")
        body_lines: List[str] = []
        start = i + 1
        i += 1
        while i < len(lines) and depth > 0:
            depth += lines[i].count("{") - lines[i].count("}")
            if depth > 0:
                body_lines.append(lines[i])
            i += 1
        out.append((name, params, "\n".join(body_lines), start))
    return out


def _check_barriers(name: str, body: str, body_line: int, report: VerifyReport) -> None:
    """Flag barriers lexically inside an ``if``/``else`` block."""
    stack: List[str] = []
    for off, line in enumerate(body.splitlines()):
        stripped = line.strip()
        opens = line.count("{")
        closes = line.count("}")
        if "barrier" in stripped and "(" in stripped and "if" in stack:
            report.diagnostics.append(Diagnostic(
                "RL003", "error",
                "barrier inside divergent control flow — work-items that "
                "skip it deadlock the work-group",
                kernel=name, location=f"line {body_line + off + 1}",
            ))
        for _ in range(closes):
            if stack:
                stack.pop()
        kind = "if" if re.search(r"(?<!\w)(if|else)(?!\w)", stripped) else "block"
        for _ in range(opens):
            stack.append(kind)
            kind = "block"
