"""Static memory liveness, interference and DDR-arena planning (RM rules).

The folded runtime routes every inter-layer activation through global
memory (thesis Chapter 3), so the board's DDR capacity — not just
BRAM/DSP — bounds how many replicas a board can host.  This analyzer
reasons about that footprint *statically*, before any synthesis time is
spent:

1. **Liveness** — walk the :class:`~repro.runtime.plan.FoldedPlan`
   invocation sequence (one kernel launch per fused node, in graph
   order) and compute, for every activation value, the half-open
   invocation interval during which its bytes must survive: defined at
   the invocation that produces it, dead after its last reader.  For a
   :class:`~repro.runtime.plan.PipelinePlan` every globally-buffered
   stage is concurrently resident, so all intervals span the whole plan
   (channel-fed handoffs never touch DDR and are excluded).
2. **Interference** — two values interfere iff their live intervals
   overlap; the network input interferes with the first layer's output,
   a residual shortcut stays live across the block it skips.
3. **Coloring** — a deterministic first-fit offset assignment packs
   non-interfering values into one shared DDR *arena*: values are
   placed in definition order, each at the lowest 4-byte-aligned offset
   where it fits below/above every already-placed interfering slot.
4. **Certification** — :func:`check_memory` re-derives liveness from
   the graph+plan and proves the :class:`MemoryPlan` sound: every pair
   of address-overlapping slots has disjoint live ranges (else RM001),
   every slot lies inside the arena with its recorded size matching the
   value's actual byte count — and, when the lowered program is
   available, the kernel's output-buffer capacity under its invocation
   bindings (:func:`repro.verify.bounds.buffer_capacity`) — so no
   access can escape its slot (else RM004).  The verdict is a
   serializable :class:`MemoryCertificate` keyed by the plan's content
   fingerprint.

Rules:

========  ========  ==========================================================
RM001     error     reuse pair with overlapping live ranges (clobber)
RM002     error     buffer size unresolvable under bindings (symbolic shape)
RM003     error     arena + weights exceed the board's DDR capacity
RM004     error     plan drift / access escapes its assigned slot
RM005     advice    non-interfering buffers left unshared (wasted bytes)
========  ========  ==========================================================

The certified plan is *adopted*, not just reported:
``flow.folded.plan_folded`` attaches it to the ``FoldedPlan``, the
functional executor allocates one arena array and hands kernels views
into it (bit-identical logits — the coloring proof is exactly the
statement that zero-filling a slot before its defining invocation can
never destroy a still-needed value), DSE dominance pruning gains a
``ddr_bytes`` axis, and the serving layer derives replicas-per-board
from the same footprint.  ``python -m repro.report --memory
NETWORK[:BOARD]`` prints the liveness table and arena map standalone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.device.boards import Board
from repro.pipeline.fingerprint import fingerprint
from repro.runtime.plan import FoldedPlan, PipelinePlan
from repro.verify.bounds import buffer_capacity
from repro.verify.diagnostics import Diagnostic, VerifyReport

__all__ = [
    "BufferLife",
    "MemoryPlan",
    "MemoryCertificate",
    "Footprint",
    "plan_memory",
    "check_memory",
    "network_footprint",
    "format_memory_plan",
]

#: rule IDs this analyzer may emit (tools/lint.py cross-checks)
RULES = ("RM001", "RM002", "RM003", "RM004", "RM005")

#: every tensor in the reproduction is float32
ELEM_BYTES = 4


# ---------------------------------------------------------------------------
# liveness
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BufferLife:
    """One activation value's life over the invocation sequence."""

    #: canonical value name (the producing node's output-node name;
    #: the graph input keeps its own name)
    name: str
    #: producing layer ("<input>" for the network input)
    layer: str
    size_bytes: int
    #: index of the invocation that defines the value (input: 0)
    first: int
    #: index of the last invocation that reads it (>= first)
    last: int

    def overlaps(self, other: "BufferLife") -> bool:
        return self.first <= other.last and other.first <= self.last


def _numel_or_none(shape) -> Optional[int]:
    n = 1
    for d in shape:
        if not isinstance(d, int):
            return None
        n *= d
    return n


def _folded_sequence(fused, plan: FoldedPlan):
    """Yield ``(fused_node, read_value_names)`` per invocation, or a
    drift message when the plan does not match the graph."""
    node_of = {fn.name: fn for fn in fused}
    seq = []
    for inv in plan.invocations:
        fn = node_of.get(inv.layer)
        if fn is None:
            return None, f"invocation layer {inv.layer!r} not in the fused graph"
        seq.append((fn, (inv.input_node,) + tuple(inv.extra_input_nodes)))
    return seq, None


def _graph_sequence(fused):
    """Graph-order pseudo-invocations (``_FoldedBuilder`` emits exactly
    one invocation per fused node in this order, so graph-order liveness
    equals invocation-order liveness)."""
    seq = []
    for fn in fused:
        reads = (fn.anchor.inputs[0].name,) + tuple(
            n.name for n in fn.extra_inputs
        )
        seq.append((fn, reads))
    return seq


def _liveness(
    fused, seq, report: Optional[VerifyReport] = None
) -> Optional[List[BufferLife]]:
    """Compute per-value live intervals over an invocation sequence.

    Returns ``None`` (after reporting RM002/RM004) when a size is
    symbolic or the sequence reads a value no invocation produced.
    """
    graph_in = fused.graph.input.name
    #: node name -> canonical value name (epilogue outputs and the
    #: anchor share the kernel's single output buffer, matching the
    #: executor's aliasing)
    alias: Dict[str, str] = {graph_in: graph_in}
    first: Dict[str, int] = {graph_in: 0}
    last: Dict[str, int] = {graph_in: 0}
    layer: Dict[str, str] = {graph_in: "<input>"}
    sizes: Dict[str, Optional[int]] = {
        graph_in: _numel_or_none(fused.graph.input.out_shape)
    }
    order: List[str] = [graph_in]

    ok = True
    for i, (fn, reads) in enumerate(seq):
        for r in reads:
            v = alias.get(r)
            if v is None:
                ok = False
                if report is not None:
                    report.extend([Diagnostic(
                        "RM004", "error",
                        f"invocation {i} ({fn.name}) reads value {r!r} "
                        "that no earlier invocation produces (plan/graph "
                        "drift)",
                        location=fn.name,
                    )])
                continue
            last[v] = max(last[v], i)
        v = fn.output_node.name
        alias[v] = v
        alias[fn.anchor.name] = v
        if v not in first:
            order.append(v)
        first[v] = i
        last[v] = max(last.get(v, i), i)
        layer[v] = fn.name
        sizes[v] = _numel_or_none(fn.out_shape)

    for v in order:
        if sizes[v] is None:
            ok = False
            if report is not None:
                report.extend([Diagnostic(
                    "RM002", "error",
                    f"value {v!r} ({layer[v]}) has a symbolic shape; its "
                    "DDR footprint cannot be bounded statically",
                    location=layer[v],
                )])
    if not ok:
        return None
    return [
        BufferLife(v, layer[v], sizes[v] * ELEM_BYTES, first[v], last[v])
        for v in order
    ]


def _pipelined_lives(
    fused, plan: PipelinePlan, report: Optional[VerifyReport] = None
) -> Optional[List[BufferLife]]:
    """Residency for a pipelined plan: every globally-buffered stage is
    concurrently live (all kernels resident), channel handoffs are not
    DDR traffic at all."""
    nodes = list(fused)
    if len(nodes) != len(plan.stages):
        if report is not None:
            report.extend([Diagnostic(
                "RM004", "error",
                f"plan has {len(plan.stages)} stages but the fused graph "
                f"has {len(nodes)} nodes (plan/graph drift)",
            )])
        return None
    span = max(len(nodes) - 1, 0)
    lives: List[BufferLife] = []
    n_in = _numel_or_none(fused.graph.input.out_shape)
    sym: List[str] = []
    if n_in is None:
        sym.append("<input>")
    else:
        lives.append(BufferLife(
            fused.graph.input.name, "<input>", n_in * ELEM_BYTES, 0, span))
    for fn, stage in zip(nodes, plan.stages):
        if stage.channel_out:
            continue  # streams to a FIFO, never materialized in DDR
        n = _numel_or_none(fn.out_shape)
        if n is None:
            sym.append(fn.name)
            continue
        lives.append(BufferLife(
            fn.output_node.name, fn.name, n * ELEM_BYTES, 0, span))
    if sym:
        if report is not None:
            report.extend([Diagnostic(
                "RM002", "error",
                f"stage(s) {', '.join(sym)} have symbolic shapes; the "
                "pipelined residency cannot be bounded statically",
            )])
        return None
    return lives


# ---------------------------------------------------------------------------
# coloring
# ---------------------------------------------------------------------------
def _align(n: int) -> int:
    return (n + ELEM_BYTES - 1) // ELEM_BYTES * ELEM_BYTES


def _color(lives: Sequence[BufferLife]) -> Tuple[int, Dict[str, int]]:
    """Deterministic first-fit offset assignment.

    Values are placed in ``(first, name)`` order; each goes at the
    lowest aligned offset whose ``[offset, offset+size)`` range avoids
    every already-placed *interfering* slot.  Non-interfering values may
    overlap freely — that is the reuse.
    """
    offsets: Dict[str, int] = {}
    placed: List[BufferLife] = []
    arena = 0
    for life in sorted(lives, key=lambda l: (l.first, l.name)):
        busy = sorted(
            (offsets[p.name], offsets[p.name] + p.size_bytes)
            for p in placed
            if p.overlaps(life)
        )
        off = 0
        for lo, hi in busy:
            if off + life.size_bytes <= lo:
                break
            off = max(off, _align(hi))
        offsets[life.name] = off
        arena = max(arena, off + life.size_bytes)
        placed.append(life)
    return arena, offsets


# ---------------------------------------------------------------------------
# the plan artifact
# ---------------------------------------------------------------------------
@dataclass
class MemoryPlan:
    """A certified assignment of activation values to one DDR arena.

    Serializable and content-addressed: :attr:`key` is the sha256
    fingerprint of the allocation itself (offsets, sizes, intervals,
    arena extent), so two builds that reach the same allocation share
    one certificate.
    """

    subject: str
    arena_bytes: int
    #: what one-buffer-per-activation allocation would cost
    naive_bytes: int
    #: canonical value name -> arena byte offset
    offsets: Dict[str, int]
    #: canonical value name -> slot size in bytes
    sizes: Dict[str, int]
    #: canonical value name -> (first, last) invocation interval
    intervals: Dict[str, Tuple[int, int]]
    #: canonical value name -> producing layer
    layers: Dict[str, str]
    #: address-overlapping value pairs (the reuses), each sorted by name
    reuse_pairs: List[Tuple[str, str]] = field(default_factory=list)
    #: content fingerprint (filled by :func:`plan_memory`)
    key: str = ""

    # ------------------------------------------------------------------
    @property
    def saved_bytes(self) -> int:
        return self.naive_bytes - self.arena_bytes

    def slot(self, name: str) -> Tuple[int, int]:
        """``[start, end)`` byte range of a value's arena slot."""
        off = self.offsets[name]
        return off, off + self.sizes[name]

    def compute_key(self) -> str:
        return fingerprint([
            "memory-plan",
            self.arena_bytes,
            sorted(self.offsets.items()),
            sorted(self.sizes.items()),
            sorted(self.intervals.items()),
        ])

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "key": self.key,
            "arena_bytes": self.arena_bytes,
            "naive_bytes": self.naive_bytes,
            "saved_bytes": self.saved_bytes,
            "offsets": dict(self.offsets),
            "sizes": dict(self.sizes),
            "intervals": {k: list(v) for k, v in self.intervals.items()},
            "layers": dict(self.layers),
            "reuse_pairs": [list(p) for p in self.reuse_pairs],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "MemoryPlan":
        return cls(
            subject=d["subject"],
            arena_bytes=d["arena_bytes"],
            naive_bytes=d["naive_bytes"],
            offsets=dict(d["offsets"]),
            sizes=dict(d["sizes"]),
            intervals={k: tuple(v) for k, v in d["intervals"].items()},
            layers=dict(d["layers"]),
            reuse_pairs=[tuple(p) for p in d["reuse_pairs"]],
            key=d.get("key", ""),
        )


def _reuse_pairs(
    lives: Sequence[BufferLife], offsets: Dict[str, int]
) -> List[Tuple[str, str]]:
    pairs = []
    ls = sorted(lives, key=lambda l: l.name)
    for i, a in enumerate(ls):
        for b in ls[i + 1:]:
            a0, a1 = offsets[a.name], offsets[a.name] + a.size_bytes
            b0, b1 = offsets[b.name], offsets[b.name] + b.size_bytes
            if a0 < b1 and b0 < a1:
                pairs.append((a.name, b.name))
    return pairs


def _lives_of(fused, plan, report: Optional[VerifyReport] = None):
    if isinstance(plan, PipelinePlan):
        return _pipelined_lives(fused, plan, report)
    seq, drift = _folded_sequence(fused, plan)
    if seq is None:
        if report is not None:
            report.extend([Diagnostic("RM004", "error", drift)])
        return None
    return _liveness(fused, seq, report)


def plan_memory(fused, plan, subject: str = "") -> Optional[MemoryPlan]:
    """Liveness + coloring for a deployment plan.

    Returns ``None`` when liveness cannot be bounded (symbolic shapes
    or plan/graph drift) — the verify stage reports the RM002/RM004
    finding; builders just skip arena adoption.
    """
    lives = _lives_of(fused, plan)
    if lives is None:
        return None
    arena, offsets = _color(lives)
    mp = MemoryPlan(
        subject=subject,
        arena_bytes=arena,
        naive_bytes=sum(l.size_bytes for l in lives),
        offsets=offsets,
        sizes={l.name: l.size_bytes for l in lives},
        intervals={l.name: (l.first, l.last) for l in lives},
        layers={l.name: l.layer for l in lives},
    )
    mp.reuse_pairs = _reuse_pairs(lives, offsets)
    mp.key = mp.compute_key()
    return mp


# ---------------------------------------------------------------------------
# weights + whole-network footprint
# ---------------------------------------------------------------------------
def _param_count(fn) -> int:
    """Parameter elements a fused node contributes to DDR (weights,
    bias, folded batchnorm scale/shift)."""
    a = fn.anchor.attrs
    in_shape = fn.anchor.inputs[0].out_shape
    n = 0
    if fn.op == "conv2d":
        k, f = a["filters"], a["field"]
        c1 = in_shape[0] if isinstance(in_shape[0], int) else 0
        n = k * c1 * f * f + (k if a.get("bias", True) else 0)
    elif fn.op == "depthwise_conv2d":
        c1 = in_shape[0] if isinstance(in_shape[0], int) else 0
        f = a["field"]
        n = c1 * f * f + (c1 if a.get("bias", True) else 0)
    elif fn.op == "dense":
        m = a["units"]
        d = in_shape[0] if isinstance(in_shape[0], int) else 0
        n = d * m + (m if a.get("bias", True) else 0)
    if fn.has_batchnorm and isinstance(fn.out_shape[0], int):
        n += 2 * fn.out_shape[0]
    return n


def weights_bytes(fused) -> int:
    """Total parameter bytes the network keeps resident in DDR."""
    return sum(_param_count(fn) for fn in fused) * ELEM_BYTES


@dataclass(frozen=True)
class Footprint:
    """A network's static DDR demand on one board."""

    arena_bytes: int
    naive_bytes: int
    weights_bytes: int

    @property
    def ddr_bytes(self) -> int:
        """Resident total: activation arena + parameters."""
        return self.arena_bytes + self.weights_bytes


def network_footprint(fused, pipelined: bool = False) -> Footprint:
    """Static DDR footprint of a fused graph, plan-free.

    Folded deployments launch one invocation per fused node in graph
    order, so graph-order liveness is exact.  ``pipelined=True`` makes
    every activation concurrently resident (all kernels live at once),
    the conservative bound for channel-free pipelined levels.
    """
    seq = _graph_sequence(fused)
    lives = _liveness(fused, seq)
    w = weights_bytes(fused)
    if lives is None:
        return Footprint(0, 0, w)
    naive = sum(l.size_bytes for l in lives)
    if pipelined:
        return Footprint(naive, naive, w)
    arena, _ = _color(lives)
    return Footprint(arena, naive, w)


# ---------------------------------------------------------------------------
# certification
# ---------------------------------------------------------------------------
@dataclass
class MemoryCertificate:
    """Machine-checkable verdict over one :class:`MemoryPlan`."""

    #: 'certified' | 'rejected'
    status: str
    #: the MemoryPlan content fingerprint this verdict is keyed by
    key: str
    #: pairwise disjointness + slot-containment checks performed
    checks: int
    #: RM rules fired while checking (empty when certified)
    rules: Tuple[str, ...] = ()

    @property
    def certified(self) -> bool:
        return self.status == "certified"

    def to_dict(self) -> Dict[str, object]:
        return {
            "status": self.status,
            "key": self.key,
            "checks": self.checks,
            "rules": list(self.rules),
        }


def _check_slots(
    memory: MemoryPlan, lives: List[BufferLife], report: VerifyReport
) -> int:
    """RM001/RM004 core: recompute liveness, prove every slot sound."""
    checks = 0
    by_name = {l.name: l for l in lives}

    # -- drift: value sets, sizes and intervals must match exactly -----
    for l in lives:
        checks += 1
        if l.name not in memory.offsets:
            report.extend([Diagnostic(
                "RM004", "error",
                f"live value {l.name!r} ({l.layer}) has no arena slot",
                location=l.layer,
            )])
            continue
        off = memory.offsets[l.name]
        size = memory.sizes.get(l.name)
        if size != l.size_bytes:
            report.extend([Diagnostic(
                "RM004", "error",
                f"slot for {l.name!r} records {size} bytes but the value "
                f"is {l.size_bytes} bytes (access would escape the slot)",
                location=l.layer,
            )])
        if off % ELEM_BYTES != 0 or off < 0 or off + l.size_bytes > memory.arena_bytes:
            report.extend([Diagnostic(
                "RM004", "error",
                f"slot [{off}, {off + l.size_bytes}) for {l.name!r} is "
                f"misaligned or outside the {memory.arena_bytes}-byte arena",
                location=l.layer,
            )])
        if memory.intervals.get(l.name) != (l.first, l.last):
            report.extend([Diagnostic(
                "RM004", "error",
                f"recorded live interval {memory.intervals.get(l.name)} for "
                f"{l.name!r} drifts from the recomputed ({l.first}, {l.last})",
                location=l.layer,
            )])
    for name in memory.offsets:
        if name not in by_name:
            checks += 1
            report.extend([Diagnostic(
                "RM004", "error",
                f"arena slot {name!r} corresponds to no live value "
                "(stale plan)",
            )])

    # -- soundness: overlapping slots need disjoint live ranges --------
    ls = sorted((l for l in lives if l.name in memory.offsets),
                key=lambda l: l.name)
    for i, a in enumerate(ls):
        for b in ls[i + 1:]:
            checks += 1
            a0, a1 = memory.offsets[a.name], memory.offsets[a.name] + a.size_bytes
            b0, b1 = memory.offsets[b.name], memory.offsets[b.name] + b.size_bytes
            if a0 < b1 and b0 < a1 and a.overlaps(b):
                report.extend([Diagnostic(
                    "RM001", "error",
                    f"values {a.name!r} (live [{a.first}, {a.last}]) and "
                    f"{b.name!r} (live [{b.first}, {b.last}]) share arena "
                    f"bytes [{max(a0, b0)}, {min(a1, b1)}) while both live "
                    "— the reuse would clobber a needed activation",
                    location=f"{a.layer}/{b.layer}",
                )])
    return checks


def check_memory(
    fused,
    plan,
    program=None,
    board: Optional[Board] = None,
    subject: str = "",
    memory: Optional[MemoryPlan] = None,
) -> Tuple[VerifyReport, Optional[MemoryPlan], MemoryCertificate]:
    """Certify a deployment plan's memory behaviour.

    Recomputes liveness from ``fused``+``plan``, then proves the
    :class:`MemoryPlan` (the one attached to the plan, or a freshly
    colored one) sound: RM001 overlapping live reuse, RM002 unbounded
    sizes, RM003 board DDR capacity, RM004 drift/slot escapes, RM005
    advice when safe reuse is left on the table.  Returns ``(report,
    memory_plan, certificate)``; the report is mergeable into the
    pipeline's verify-stage report.
    """
    report = VerifyReport(subject=subject or "memory")
    checks = 0

    lives = _lives_of(fused, plan, report)
    if memory is None:
        memory = getattr(plan, "memory", None)
    if lives is None:
        cert = MemoryCertificate(
            "rejected", memory.key if memory else "", checks,
            tuple(sorted({d.rule for d in report.diagnostics})))
        return report, memory, cert

    if memory is None:
        # nothing attached: certify a fresh coloring (report-only mode)
        memory = plan_memory(fused, plan, subject=subject)

    checks += _check_slots(memory, lives, report)

    # -- program cross-check: output capacity under bindings -----------
    if program is not None and isinstance(plan, FoldedPlan):
        node_of = {fn.name: fn for fn in fused}
        for inv in plan.invocations:
            fn = node_of.get(inv.layer)
            if fn is None:
                continue
            kernel = program.kernel(inv.kernel_name)
            out = next(
                (b for b in kernel.args if b.name == kernel.output_buffer),
                None,
            )
            if out is None:
                continue
            checks += 1
            # cache-replayed kernels carry their own alpha-equivalent
            # vars; adopt the invocation's same-named bindings first
            cap = buffer_capacity(out, kernel.bind_by_name(inv.bindings))
            vname = fn.output_node.name
            if cap is None:
                report.extend([Diagnostic(
                    "RM002", "error",
                    f"output buffer {out.name!r} of kernel "
                    f"{kernel.name} has symbolic capacity under invocation "
                    f"{inv.layer}'s bindings — its arena slot cannot be "
                    "proven to contain every store",
                    kernel=kernel.name, location=inv.layer,
                )])
            elif vname in memory.sizes and cap * ELEM_BYTES != memory.sizes[vname]:
                report.extend([Diagnostic(
                    "RM004", "error",
                    f"kernel {kernel.name} writes {cap * ELEM_BYTES} bytes "
                    f"for {vname!r} but the arena slot holds "
                    f"{memory.sizes[vname]} (access escapes the slot)",
                    kernel=kernel.name, location=inv.layer,
                )])

    # -- RM005: reuse left on the table --------------------------------
    optimal_arena, _ = _color(lives)
    if memory.arena_bytes > optimal_arena:
        wasted = memory.arena_bytes - optimal_arena
        report.extend([Diagnostic(
            "RM005", "advice",
            f"arena is {memory.arena_bytes} bytes but non-interfering "
            f"values could share down to {optimal_arena} — {wasted} bytes "
            "of reusable DDR left unshared",
        )])

    # -- RM003: board capacity ------------------------------------------
    w_bytes = weights_bytes(fused)
    ddr_total = memory.arena_bytes + w_bytes
    if board is not None and board.ddr_bytes and ddr_total > board.ddr_bytes:
        checks += 1
        report.extend([Diagnostic(
            "RM003", "error",
            f"network needs {ddr_total} DDR bytes (arena {memory.arena_bytes}"
            f" + weights {w_bytes}) but board {board.name} has "
            f"{board.ddr_bytes}",
        )])

    report.bump("memory_values", len(lives))
    report.bump("memory_arena_bytes", memory.arena_bytes)
    report.bump("memory_naive_bytes", memory.naive_bytes)
    report.bump("memory_saved_bytes",
                max(memory.naive_bytes - memory.arena_bytes, 0))
    report.bump("memory_reuse_pairs", len(memory.reuse_pairs))
    report.bump("memory_weights_bytes", w_bytes)
    report.bump("memory_ddr_bytes", ddr_total)
    report.bump("memory_checks", checks)

    rm_rules = tuple(sorted({
        d.rule for d in report.diagnostics if d.severity == "error"
    }))
    cert = MemoryCertificate(
        "certified" if not rm_rules else "rejected",
        memory.key, checks, rm_rules or tuple(sorted(
            {d.rule for d in report.diagnostics})),
    )
    return report, memory, cert


# ---------------------------------------------------------------------------
# rendering (repro.report --memory)
# ---------------------------------------------------------------------------
def _human(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"


def format_memory_plan(
    memory: MemoryPlan,
    fused=None,
    board: Optional[Board] = None,
) -> str:
    """Liveness table + arena map + verdict, for the ``--memory`` CLI."""
    lines = [f"memory: {memory.subject or '<plan>'}  (key {memory.key[:12]})"]
    lines.append("  liveness (invocation intervals):")
    lines.append(f"    {'value':<28} {'layer':<16} {'bytes':>10}  live")
    for name, (f0, l0) in sorted(
        memory.intervals.items(), key=lambda kv: (kv[1][0], kv[0])
    ):
        lines.append(
            f"    {name:<28} {memory.layers.get(name, '?'):<16} "
            f"{memory.sizes[name]:>10}  [{f0}, {l0}]"
        )
    lines.append("  arena map (offset-ordered):")
    lines.append(f"    {'offset':>10} {'bytes':>10}  value")
    shared = {n for pair in memory.reuse_pairs for n in pair}
    for name, off in sorted(memory.offsets.items(), key=lambda kv: (kv[1], kv[0])):
        tag = "  (shared)" if name in shared else ""
        lines.append(f"    {off:>10} {memory.sizes[name]:>10}  {name}{tag}")
    pct = (100.0 * memory.saved_bytes / memory.naive_bytes
           if memory.naive_bytes else 0.0)
    lines.append(
        f"  arena {_human(memory.arena_bytes)} vs naive "
        f"{_human(memory.naive_bytes)} — {_human(memory.saved_bytes)} "
        f"({pct:.0f}%) saved across {len(memory.reuse_pairs)} reuse pair(s)"
    )
    if fused is not None:
        w = weights_bytes(fused)
        total = memory.arena_bytes + w
        line = (f"  resident DDR: {_human(total)} "
                f"(arena + {_human(w)} weights)")
        if board is not None and board.ddr_bytes:
            fit = "fits" if total <= board.ddr_bytes else "EXCEEDS"
            per = board.ddr_bytes // total if total else 0
            line += (f" — {fit} {board.name} DDR {_human(board.ddr_bytes)}"
                     f" ({per} replica(s)/board)")
        lines.append(line)
    return "\n".join(lines)
