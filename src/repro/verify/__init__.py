"""Static verification of lowered kernels, emitted OpenCL, and plans.

A bitstream takes hours to synthesize, so defects that only surface at
runtime — an out-of-bounds store, a write race between unrolled
replicas, a channel protocol mismatch that deadlocks the pipeline — are
the most expensive class of bug in the FPGA flow.  This package proves
their absence *before* synthesis, as the ``verify`` stage between
``codegen`` and ``synthesize`` in every deployment pipeline.

Seven analyzer families, each with stable rule IDs:

* **bounds** (``RB``) — interval analysis of every ``Load``/``Store``
  index under symbolic shape bindings; folded kernels are verified once
  per distinct binding set.  A *proven* violation (RB001, error) is
  distinct from an *unprovable* access (RB002, warn).
* **races** (``RR``) — stride-based disjointness of stores under
  unrolled loops (reductions are recognized, not flagged) plus a
  def-before-use pass over kernel-local buffers.
* **channels** (``RC``) — read/write count matching, FIFO depth
  sanity, wait-cycle (deadlock) detection, and plan/program consistency:
  the compile-time complement of the runtime watchdog's
  :class:`~repro.resilience.watchdog.ChannelWaitGraph`.
* **lint** (``RL``) — checks over the emitted OpenCL text (unused
  arguments, missing ``restrict``, barriers in divergent control,
  undeclared channels).
* **performance** (``RP``) — the static advisor: II-bottleneck
  attribution with the register-cache rewrite, replicated/non-aligned
  LSU detection, reuse-distance vs the LSU cache, and compute- vs
  memory-bound classification against a board's bandwidth roof.  RP
  findings carry the ``advice`` severity and never fail a build; the
  companion :mod:`~repro.verify.dominance` module turns the same model
  into partial-order proofs that let the DSE skip dominated tilings
  before synthesis.
* **memory** (``RM``) — whole-network liveness over the execution
  plan's invocation sequence, interference-based coloring of activation
  buffers into one shared DDR arena, and a machine-checkable soundness
  certificate (:class:`~repro.verify.memory.MemoryCertificate`): reuse
  pairs must have disjoint live ranges (RM001), sizes must be bounded
  under bindings (RM002), the footprint must fit the board's DDR
  (RM003), and the plan must not drift from the program (RM004); RM005
  advice names reusable-but-unshared bytes.  The certified
  :class:`~repro.verify.memory.MemoryPlan` is adopted by deployments
  (the executor allocates the arena), the DSE partial order
  (``StaticProfile.ddr_bytes``) and the serving layer's
  replicas-per-board packing.
* **equivalence** (``RE``) — translation validation of schedule
  rewrites: per-transform legality proofs for every recipe step plus a
  whole-kernel symbolic store-set/value comparison between the naive
  and scheduled lowerings.  A proof yields a serializable
  :class:`~repro.verify.equiv.EquivCertificate`, cached by content
  fingerprint, so the DSE/autofix/autotune accept paths trust
  certificates instead of interpreter cross-checks; an unprovable
  kernel (RE006) falls back to exactly one dynamic check.

Entry points: :func:`verify_build` merges all analyzers into one
:class:`VerifyReport` (pass a ``board`` to include the RP advisor);
:func:`assert_clean` raises :class:`~repro.errors.VerificationError` on
any error-severity finding; :func:`certify_build` certifies every
kernel of a scheduled build.  The full rule catalog lives in
``docs/verification.md``.
"""

from repro.verify.advisor import (
    SUGGESTIONS,
    format_advice,
    format_prune_preview,
    prune_preview,
)
from repro.verify.bounds import buffer_capacity, check_bounds
from repro.verify.channels import channel_counts, check_channels
from repro.verify.cllint import lint_source
from repro.verify.diagnostics import RULES, SEVERITIES, Diagnostic, VerifyReport
from repro.verify.equiv import (
    EquivCertificate,
    certify_bodies,
    certify_build,
    certify_kernel,
    clear_equiv_cache,
    dynamic_equiv_check,
    equiv_cache_stats,
)
from repro.verify.dominance import (
    PruneDecision,
    StaticProfile,
    dominates,
    infeasible_reason,
    plan_conv_sweep,
    profile_conv_tiling,
)
from repro.verify.interval import Interval, interval_of
from repro.verify.memory import (
    BufferLife,
    Footprint,
    MemoryCertificate,
    MemoryPlan,
    check_memory,
    format_memory_plan,
    network_footprint,
    plan_memory,
    weights_bytes,
)
from repro.verify.perf import check_perf, roof_elems
from repro.verify.races import check_races
from repro.verify.verifier import assert_clean, binding_sets_of, verify_build

__all__ = [
    "Diagnostic",
    "BufferLife",
    "EquivCertificate",
    "Footprint",
    "Interval",
    "MemoryCertificate",
    "MemoryPlan",
    "PruneDecision",
    "RULES",
    "SEVERITIES",
    "SUGGESTIONS",
    "StaticProfile",
    "VerifyReport",
    "assert_clean",
    "binding_sets_of",
    "buffer_capacity",
    "certify_bodies",
    "certify_build",
    "certify_kernel",
    "channel_counts",
    "check_bounds",
    "check_channels",
    "check_memory",
    "check_perf",
    "check_races",
    "clear_equiv_cache",
    "dominates",
    "dynamic_equiv_check",
    "equiv_cache_stats",
    "format_advice",
    "format_memory_plan",
    "format_prune_preview",
    "infeasible_reason",
    "interval_of",
    "lint_source",
    "network_footprint",
    "plan_conv_sweep",
    "profile_conv_tiling",
    "plan_memory",
    "prune_preview",
    "roof_elems",
    "verify_build",
    "weights_bytes",
]
