"""Rendering and aggregation of performance advice (`--advise` backend).

Turns the RP findings of :mod:`repro.verify.perf` into the
human-readable report ``python -m repro.report --advise`` prints: each
finding with its rule ID, and under it the one-line schedule rewrite
from the cookbook that removes it.  :func:`prune_preview` additionally
dry-runs the dominance pruner over the default 1x1 tiling grid so the
report shows how much synthesis a pruned sweep would skip.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.aoc.constants import AOCConstants, DEFAULT_CONSTANTS
from repro.device.boards import Board
from repro.relay.passes import FusedGraph
from repro.topi import ConvTiling
from repro.verify.diagnostics import VerifyReport
from repro.verify.dominance import group_members, plan_conv_sweep

#: RP rule -> the cookbook rewrite that removes the finding
#: (docs/schedule_cookbook.md, "Reading advisor output")
SUGGESTIONS: Dict[str, str] = {
    "RP001": "st.cache_write('register') on the accumulator, write back after the reduction (Listing 5.2)",
    "RP002": "reorder or re-tile so the unrolled dimension strides contiguously (coalescible LSU)",
    "RP003": "build with pin_unit_stride=True so the innermost stride is the constant 1 (Listing 5.11)",
    "RP004": "st.cache_read(...) a block, or tile the reuse loop until the block fits the LSU cache",
    "RP005": "cut DRAM traffic before adding compute: fuse the epilogue, cache reuse, or change boards",
    "RP006": "reduce the unroll width along the coalesced dimension to the bandwidth roof",
}

#: rule IDs this module may mention (tools/lint.py cross-checks); the
#: advisor renders perf.py's findings and emits no IDs of its own
RULES = tuple(sorted(SUGGESTIONS))


def format_advice(report: VerifyReport) -> str:
    """Human-readable advisor section for one verified build."""
    lines = [f"advice: {report.subject}"]
    advice = report.advice
    if not advice:
        lines.append("  no performance findings — the schedule looks tight")
    for d in sorted(advice, key=lambda d: (d.rule, d.kernel, d.location)):
        lines.append("  " + d.format())
        fix = SUGGESTIONS.get(d.rule)
        if fix:
            lines.append(f"      fix: {fix}")
    if report.errors or report.warnings:
        lines.append(
            f"  (plus {len(report.errors)} error(s), "
            f"{len(report.warnings)} warning(s) — see --verify)"
        )
    return "\n".join(lines)


def prune_preview(
    fused: FusedGraph,
    board: Board,
    constants: AOCConstants = DEFAULT_CONSTANTS,
    pin_unit_stride: bool = True,
    w2vec_options=(7,),
    c2vec_options=(4, 8, 16, 32),
    c1vec_options=(4, 8, 16),
) -> Optional[Dict[str, object]]:
    """Dry-run dominance pruning over the default 1x1 tiling grid.

    Returns None when the network has no 1x1 convolution group (nothing
    to sweep).  Otherwise a dict with the candidate/kept/pruned counts
    and the per-pruned-tiling reasons, deterministically ordered — the
    statistics block ``--advise`` prints.
    """
    from repro.flow.dse import divides_all

    group = ("conv", 1, 1)
    members = group_members(fused, group)
    if not members:
        return None
    w2e = [fn.anchor.out_shape[2] for fn in members]
    c2e = [fn.anchor.out_shape[0] for fn in members]
    c1e = [fn.anchor.inputs[0].out_shape[0] for fn in members]
    tilings = [
        ConvTiling(w2vec=w2, c2vec=c2, c1vec=c1)
        for w2 in w2vec_options if divides_all(w2, w2e)
        for c2 in c2vec_options if divides_all(c2, c2e)
        for c1 in c1vec_options if divides_all(c1, c1e)
    ]
    decisions = plan_conv_sweep(
        fused, group, tilings, board, constants, pin_unit_stride
    )
    pruned: List[Dict[str, object]] = [
        {
            "tiling": f"w2vec={d.tiling.w2vec} c2vec={d.tiling.c2vec} "
                      f"c1vec={d.tiling.c1vec}",
            "reason": d.reason,
        }
        for d in decisions if d.pruned
    ]
    return {
        "group": "conv 1x1/1",
        "candidates": len(decisions),
        "kept": sum(1 for d in decisions if not d.pruned),
        "pruned_static": len(pruned),
        "pruned": pruned,
    }


def format_prune_preview(preview: Dict[str, object]) -> str:
    lines = [
        f"dominance pruning ({preview['group']} tiling grid): "
        f"{preview['kept']}/{preview['candidates']} candidates need "
        f"synthesis, {preview['pruned_static']} pruned statically"
    ]
    for p in preview["pruned"]:
        lines.append(f"  - {p['tiling']}: {p['reason']}")
    return "\n".join(lines)
