"""Static bounds checking of every buffer access in a lowered kernel.

Walks a kernel body keeping an interval environment (loop variables at
their trip ranges, symbolic shape/stride arguments at their bound
values) and evaluates each ``Load``/``Store`` index to a range:

* range inside ``[0, capacity-1]`` — proven in range;
* range entirely outside — **RB001** (violation), reported as an error
  when the access provably executes (all enclosing loops have at least
  one iteration and no conditional guards it), RB002 otherwise;
* anything else (overlap, symbolic extent, non-affine index) —
  **RB002** (unprovable), a warning, never an error.

Folded kernels are verified once per binding set: the caller passes the
concrete shape/stride values of each layer invocation, so a kernel
shared by many layers gets one verdict per distinct parameterization.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir import expr as _e
from repro.ir import stmt as _s
from repro.ir.buffer import Buffer
from repro.ir.kernel import Kernel
from repro.verify.diagnostics import Diagnostic, VerifyReport
from repro.verify.interval import Env, Interval, interval_of

#: rule IDs this analyzer may emit (tools/lint.py cross-checks)
RULES = ("RB001", "RB002")

Bindings = Dict[_e.Var, int]


def buffer_capacity(buf: Buffer, bindings: Optional[Bindings] = None) -> Optional[int]:
    """Element count of a buffer under shape bindings; None if symbolic."""
    bindings = bindings or {}
    n = 1
    for d in buf.shape:
        if isinstance(d, int):
            n *= d
        else:
            v = bindings.get(d)
            if v is None:
                return None
            n *= v
    return n


class _BoundsChecker:
    def __init__(self, kernel: Kernel, bindings: Bindings,
                 report: VerifyReport, label: str) -> None:
        self.kernel = kernel
        self.report = report
        self.label = label
        self.bindings = bindings
        self.env: Env = {v: Interval.point(c) for v, c in bindings.items()}
        #: False once inside a conditional or a possibly-zero-trip loop
        self.definite = True
        #: (kernel, buffer, rule) already reported, to keep reports terse
        self.seen: set = set()

    # ------------------------------------------------------------------
    def run(self) -> None:
        self._stmt(self.kernel.body)

    # ------------------------------------------------------------------
    def _stmt(self, s: _s.Stmt) -> None:
        if isinstance(s, _s.SeqStmt):
            for c in s.stmts:
                self._stmt(c)
        elif isinstance(s, _s.For):
            self._expr(s.extent)
            ext = interval_of(s.extent, self.env)
            saved_env = self.env.get(s.loop_var)
            saved_def = self.definite
            if ext is not None and ext.hi >= 1:
                self.env[s.loop_var] = Interval.extent(ext.hi)
                if ext.lo < 1:
                    self.definite = False
            else:
                # unknown or zero trip count: loop var stays unbounded
                self.env.pop(s.loop_var, None)
                self.definite = False
            self._stmt(s.body)
            if saved_env is not None:
                self.env[s.loop_var] = saved_env
            else:
                self.env.pop(s.loop_var, None)
            self.definite = saved_def
        elif isinstance(s, _s.Store):
            self._expr(s.index)
            self._expr(s.value)
            self._access(s.buffer, s.index, "store")
        elif isinstance(s, _s.Evaluate):
            self._expr(s.value)
        elif isinstance(s, _s.ChannelWrite):
            self._expr(s.value)
        elif isinstance(s, _s.IfThenElse):
            self._expr(s.cond)
            saved = self.definite
            self.definite = False
            self._stmt(s.then_body)
            if s.else_body is not None:
                self._stmt(s.else_body)
            self.definite = saved
        elif isinstance(s, (_s.Allocate, _s.AttrStmt)):
            self._stmt(s.body)

    # ------------------------------------------------------------------
    def _expr(self, e: _e.Expr) -> None:
        if isinstance(e, _e.Load):
            self._access(e.buffer, e.index, "load")
        for child in e.children():
            self._expr(child)

    # ------------------------------------------------------------------
    def _access(self, buf: Buffer, index: _e.Expr, what: str) -> None:
        self.report.bump("accesses_checked")
        cap = buffer_capacity(buf, self.bindings)
        rng = interval_of(index, self.env)
        if cap is None:
            self._diag("RB002", "warn", buf, (
                f"{what} of {buf.name}: buffer capacity is symbolic under "
                f"{self.label or 'the empty binding set'} — bounds unprovable"
            ))
            return
        if rng is None:
            self._diag("RB002", "warn", buf, (
                f"{what} of {buf.name}: index range is not statically "
                f"evaluable — bounds unprovable"
            ))
            return
        if 0 <= rng.lo and rng.hi < cap:
            self.report.bump("accesses_proven")
            return
        if rng.hi < 0 or rng.lo >= cap:
            # every possible index is outside the buffer
            sev = "error" if self.definite else "warn"
            rule = "RB001" if self.definite else "RB002"
            self._diag(rule, sev, buf, (
                f"{what} of {buf.name}: index range {rng} is entirely "
                f"outside [0, {cap - 1}]"
                + ("" if self.definite else " (access may not execute)")
            ))
            return
        self._diag("RB002", "warn", buf, (
            f"{what} of {buf.name}: index range {rng} overlaps the end of "
            f"[0, {cap - 1}] — bounds unprovable"
        ))

    def _diag(self, rule: str, severity: str, buf: Buffer, message: str) -> None:
        key = (rule, buf.name, message)
        if key in self.seen:
            return
        self.seen.add(key)
        if rule == "RB002":
            self.report.bump("accesses_unprovable")
        location = buf.name if not self.label else f"{buf.name}@{self.label}"
        self.report.diagnostics.append(
            Diagnostic(rule, severity, message, kernel=self.kernel.name,
                       location=location)
        )


def check_bounds(
    kernel: Kernel,
    binding_sets: Optional[List[Bindings]] = None,
    report: Optional[VerifyReport] = None,
) -> VerifyReport:
    """Bounds-check one kernel under each binding set.

    ``binding_sets`` is a list of Var->int maps (one per distinct
    parameterization of a folded kernel); static kernels pass none and
    are checked once with an empty binding set.
    """
    if report is None:
        report = VerifyReport(subject=kernel.name)
    sets = binding_sets if binding_sets else [{}]
    for bindings in sets:
        # adopt same-named vars: the plan's bindings may come from an
        # alpha-equivalent build of a lower-cache-replayed kernel
        bindings = kernel.bind_by_name(bindings)
        by_name = sorted({v.name: c for v, c in bindings.items()}.items())
        label = ",".join(f"{n}={c}" for n, c in by_name)
        _BoundsChecker(kernel, bindings, report, label).run()
    report.bump("kernels_bounds_checked")
    return report
