"""Calibration constants of the AOC/Quartus model.

Every tunable of the offline-compiler model lives here, with the thesis
passage that motivates it.  The defaults are calibrated so the benchmark
suite reproduces the *shape* of the thesis's evaluation tables (see
EXPERIMENTS.md); they are not claims about the real toolchain.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AOCConstants:
    """Tunables of the synthesis/timing model."""

    # -- initiation intervals (Section 5.1.1) ---------------------------
    #: II of a reduction accumulating into a *global* scratchpad through a
    #: load-store unit.  The thesis quotes II=5 for the inner loop; its
    #: measured baselines behave worse (the read-add-write feedback path
    #: through the memory system serializes), so the model uses 8
    ii_global_accum: int = 8
    #: II once the accumulator is a register/local cache (single-cycle
    #: accumulator inferred; "AOC is now able to schedule ... with an II=1")
    ii_local_accum: int = 1

    # -- pipeline fill ----------------------------------------------------
    #: cycles paid on each entry into a non-unrolled loop (pipeline fill/
    #: drain); dominates kernels with short inner loops such as depthwise
    #: convolutions
    loop_fill_cycles: int = 18
    #: extra issue pressure per arbitration-sharing replicated LSU stream:
    #: effective II multiplier = max(1, replicas / lsu_ports)
    lsu_ports: int = 8
    #: ceiling on the replicated-stream arbitration stall (the arbiter
    #: tree pipelines beyond this width)
    max_mem_stall: int = 4

    # -- memory system ----------------------------------------------------
    #: usable fraction of theoretical peak bandwidth for aligned bursts
    bw_efficiency_aligned: float = 0.75
    #: usable fraction for non-aligned (symbolic-stride) burst-coalesced
    #: LSUs (Section 2.4.3: "many unaligned requests result in poor
    #: performance")
    bw_efficiency_nonaligned: float = 0.45
    #: BRAM cache attached to a cached burst-coalesced LSU ("often a 256
    #: kbit or 512 kbit cache"); bytes
    lsu_cache_bytes: int = 64 * 1024
    #: maximum single-LSU access width in elements (32-bit floats); wider
    #: requests are split
    max_lsu_width_elems: int = 64
    #: elements per cycle for pure data-movement kernels (pad/flatten):
    #: AOC's streaming LSUs burst simple sequential copies wider than one
    #: element even without explicit unrolling
    transform_simd_width: int = 4

    # -- resource model (per-unit ALUT/FF/RAM/DSP costs) ------------------
    #: fixed kernel overhead (dispatch, control)
    alut_kernel_base: int = 2000
    #: per-loop control/bound-check logic ("loops incur area overhead")
    alut_per_loop: int = 150
    #: burst-coalesced LSU base cost (control shared by replicas)
    alut_per_lsu: int = 1400
    #: datapath cost of each replicated stream beyond the first
    alut_per_replica: int = 3300
    #: ALUTs per element of LSU access width (widened datapaths)
    alut_per_width_elem: int = 40
    #: extra factor for non-aligned LSUs
    nonaligned_lsu_factor: float = 1.25
    #: per unrolled floating-point op datapath glue
    alut_per_unrolled_op: int = 26
    #: ALUTs per channel endpoint
    alut_per_channel: int = 150
    #: flip-flops per ALUT (registers roughly track logic)
    ff_per_alut: float = 2.0
    #: M20K block size in bits
    bram_block_bits: int = 20480
    #: RAM blocks per cached LSU (512-kbit cache)
    bram_per_cached_lsu: int = 26
    #: RAM blocks per (non-cached) burst-coalesced LSU burst buffer
    bram_per_lsu: int = 4
    #: RAM blocks per replicated *non-aligned* stream (reorder buffers)
    bram_per_nonaligned_replica: int = 12
    #: write-port replication divisor: concurrent writers per BRAM port
    bram_write_ports: int = 2
    #: DSPs per fused multiply-accumulate (-fpc -fp-relaxed packs one MAC
    #: per DSP, Section 4.10)
    dsp_per_mac: int = 1
    #: fixed DSPs per kernel (address/index arithmetic, fp compares)
    dsp_kernel_base: int = 8

    # -- fmax / routing model (Section 6.5) -------------------------------
    #: per-family base clock before degradation, MHz (set on the board)
    #: fmax drop per unit of DSP-utilization fraction (fanout of
    #: distributing operands to unrolled datapaths; slope calibrated to
    #: the thesis's Table 6.6 single-kernel sweep)
    fmax_dsp_slope: float = 0.45
    #: fmax drop per unit of (logic+RAM) congestion above the free level
    fmax_congestion_slope: float = 0.08
    #: default congestion metric beyond which Quartus routing fails
    #: (boards may override; Stratix 10 HyperFlex routes are strict)
    routing_fail_threshold: float = 0.92
    #: fmax factor applied when any kernel carries a global-scratchpad
    #: accumulation feedback path (naive designs close timing worse)
    fmax_global_accum_factor: float = 0.82
    #: weight of replicated-LSU streams in the congestion metric
    congestion_replica_weight: float = 0.003

    # -- host/runtime overheads -------------------------------------------
    #: host-side cost to enqueue one kernel, microseconds
    enqueue_overhead_us: float = 28.0
    #: additional per-dispatch device-side launch latency for non-autorun
    #: kernels, microseconds
    launch_latency_us: float = 14.0


DEFAULT_CONSTANTS = AOCConstants()
