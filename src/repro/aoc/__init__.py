"""The Intel-AOC offline-compiler behavioural model.

Dependence analysis -> initiation intervals, LSU inference (coalescing,
replication, alignment, caches), ALUT/FF/BRAM/DSP estimation, fmax and
routing, with ``compile_program(..., placement_seed=N)`` modelling
Quartus seed sweeps.  Contract: identical inputs produce identical
:class:`Bitstream` objects, and the thesis's fit/route failures
reproduce at the same design points (``FitError``/``RoutingError``).
"""

from repro.aoc.analysis import AccessSite, KernelAnalysis, LSU
from repro.aoc.compiler import Bitstream, HwKernel, compile_program
from repro.aoc.constants import AOCConstants, DEFAULT_CONSTANTS
from repro.aoc.fmax import TimingReport, congestion_metric, timing
from repro.aoc.resources import ResourceEstimate, estimate_kernel
from repro.aoc.report import area_row, format_area_table

__all__ = [
    "AOCConstants", "AccessSite", "Bitstream", "DEFAULT_CONSTANTS",
    "HwKernel", "KernelAnalysis", "LSU", "ResourceEstimate", "TimingReport",
    "area_row", "compile_program", "congestion_metric", "estimate_kernel",
    "format_area_table", "timing",
]
