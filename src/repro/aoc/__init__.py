"""The Intel-AOC offline-compiler model: analysis, resources, fmax, fit."""

from repro.aoc.analysis import AccessSite, KernelAnalysis, LSU
from repro.aoc.compiler import Bitstream, HwKernel, compile_program
from repro.aoc.constants import AOCConstants, DEFAULT_CONSTANTS
from repro.aoc.fmax import TimingReport, congestion_metric, timing
from repro.aoc.resources import ResourceEstimate, estimate_kernel
from repro.aoc.report import area_row, format_area_table

__all__ = [
    "AOCConstants", "AccessSite", "Bitstream", "DEFAULT_CONSTANTS",
    "HwKernel", "KernelAnalysis", "LSU", "ResourceEstimate", "TimingReport",
    "area_row", "compile_program", "congestion_metric", "estimate_kernel",
    "format_area_table", "timing",
]
