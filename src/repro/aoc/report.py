"""Fitter-report style formatting (the thesis's area tables)."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.aoc.compiler import Bitstream


def area_row(bs: Bitstream) -> Dict[str, object]:
    """One row of a Table 6.5-style area report."""
    u = bs.utilization()
    return {
        "board": bs.board.name,
        "logic_pct": round(100 * u["logic"]),
        "ram_pct": round(100 * u["ram"]),
        "dsp_pct": round(100 * u["dsp"]),
        "dsps": bs.total.dsps,
        "fmax_mhz": round(bs.fmax_mhz),
    }


def format_area_table(rows: Sequence[Dict[str, object]], title: str) -> str:
    """Render area rows as an aligned text table."""
    header = f"{'design':<22} {'board':<7} {'Logic':>6} {'RAM':>6} {'DSP':>6} {'fmax':>6}"
    lines = [title, header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{str(r.get('design', '')):<22} {str(r['board']):<7} "
            f"{r['logic_pct']:>5}% {r['ram_pct']:>5}% {r['dsp_pct']:>5}% "
            f"{r['fmax_mhz']:>4}MHz"
        )
    return "\n".join(lines)
