"""Clock-frequency and routing-congestion model (thesis Section 6.5).

fmax degrades with (a) the fanout of distributing operands from global-
memory LSUs into the replicated DSP datapaths — proportional to DSP
utilization — and (b) overall logic/RAM congestion.  Past a congestion
threshold Quartus routing *fails* (the thesis's 7/16/8 tiling on the
S10SX and 7/32/8 on the S10MX).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aoc.constants import AOCConstants
from repro.aoc.resources import ResourceEstimate
from repro.device.boards import Board


@dataclass
class TimingReport:
    """Result of the place-and-route timing model."""

    fmax_mhz: float
    congestion: float
    routed: bool

    @property
    def period_ns(self) -> float:
        return 1e3 / self.fmax_mhz


def congestion_metric(
    total: ResourceEstimate, board: Board, lsu_replicas: int, c: AOCConstants
) -> float:
    """Routing-pressure proxy in [0, ~1.5]."""
    alut_frac = total.aluts / board.avail_aluts
    ram_frac = total.rams / board.avail_rams
    dsp_frac = total.dsps / board.avail_dsps
    return (
        0.45 * alut_frac
        + 0.35 * ram_frac
        + 0.20 * dsp_frac
        + c.congestion_replica_weight * lsu_replicas
    )


def timing(
    total: ResourceEstimate, board: Board, lsu_replicas: int, c: AOCConstants
) -> TimingReport:
    """Compute the design fmax, or mark the design unroutable."""
    congestion = congestion_metric(total, board, lsu_replicas, c)
    dsp_frac = total.dsps / board.avail_dsps
    derate = (
        c.fmax_dsp_slope * dsp_frac
        + c.fmax_congestion_slope * max(0.0, congestion - 0.25)
    )
    fmax = board.base_fmax_mhz * max(0.25, 1.0 - derate)
    routed = congestion <= board.routing_threshold
    return TimingReport(fmax_mhz=fmax, congestion=congestion, routed=routed)
