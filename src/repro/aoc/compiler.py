"""The offline-compiler model: kernels -> synthesized bitstream.

``compile_program`` plays the role of ``aoc``: it analyzes every kernel,
estimates resources, checks fit against the target board (raising
:class:`~repro.errors.FitError` exactly where the thesis's naive
MobileNet/ResNet designs fail on the Arria 10), runs the timing/routing
model (raising :class:`~repro.errors.RoutingError` for over-tiled
designs), and returns a :class:`Bitstream` whose per-kernel handles the
runtime simulator uses to cost invocations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.aoc.analysis import Bindings, KernelAnalysis
from repro.aoc.constants import AOCConstants, DEFAULT_CONSTANTS
from repro.aoc.fmax import TimingReport, timing
from repro.aoc.resources import ResourceEstimate, channel_rams, estimate_kernel
from repro.device.boards import Board
from repro.errors import AOCError, FitError, RoutingError, RuntimeSimError
from repro.ir.kernel import Kernel, Program


@dataclass
class HwKernel:
    """One synthesized kernel: its analysis + resource estimate."""

    kernel: Kernel
    analysis: KernelAnalysis
    resources: ResourceEstimate


class Bitstream:
    """A fitted, routed design for one board."""

    def __init__(
        self,
        program: Program,
        board: Board,
        hw: Dict[str, HwKernel],
        total: ResourceEstimate,
        timing_report: TimingReport,
        constants: AOCConstants,
    ) -> None:
        self.program = program
        self.board = board
        self.hw = hw
        self.total = total
        self.timing = timing_report
        self.constants = constants

    @property
    def fmax_mhz(self) -> float:
        return self.timing.fmax_mhz

    # ------------------------------------------------------------------
    def utilization(self) -> Dict[str, float]:
        """Whole-chip utilization fractions (static partition included),
        as the thesis's fitter-report tables count them."""
        b = self.board
        return {
            "logic": (self.total.aluts + b.static_aluts) / b.aluts,
            "ram": (self.total.rams + b.static_rams) / b.rams,
            "dsp": self.total.dsps / b.dsps,
        }

    # ------------------------------------------------------------------
    def hw_kernel(self, name: str) -> HwKernel:
        """The synthesized kernel named ``name``.

        Raises :class:`~repro.errors.RuntimeSimError` (not a bare
        ``KeyError``) for an unknown name, listing what the bitstream
        actually provides — the failure a bad host program hits first.
        """
        try:
            return self.hw[name]
        except KeyError:
            raise RuntimeSimError(
                f"bitstream {self.program.name!r} has no kernel {name!r}; "
                f"available kernels: {', '.join(sorted(self.hw)) or '(none)'}"
            ) from None

    def kernel_cycles(self, name: str, bindings: Optional[Bindings] = None) -> int:
        return self.hw_kernel(name).analysis.compute_cycles(bindings)

    def kernel_time_us(self, name: str, bindings: Optional[Bindings] = None) -> float:
        """Device-side execution time of one invocation, microseconds.

        The larger of the compute-issue time and the DRAM-traffic time
        (bandwidth roofline at this kernel's LSU efficiency).
        """
        hwk = self.hw_kernel(name)
        cycles = hwk.analysis.compute_cycles(bindings)
        if hwk.analysis.is_pure_transform():
            cycles = cycles / self.constants.transform_simd_width
        t_compute = cycles / self.fmax_mhz  # MHz -> us
        traffic = hwk.analysis.traffic_bytes(bindings)
        bw_bytes_per_us = (
            self.board.peak_bw_gbs * hwk.analysis.bw_efficiency() * 1e3
        )
        t_mem = traffic / bw_bytes_per_us
        return max(t_compute, t_mem)

    def kernel_flops(self, name: str, bindings: Optional[Bindings] = None) -> int:
        return self.hw_kernel(name).analysis.flops(bindings)

    def __repr__(self) -> str:
        u = self.utilization()
        return (
            f"Bitstream({self.program.name}@{self.board.name}: "
            f"logic {u['logic']:.0%}, ram {u['ram']:.0%}, dsp {u['dsp']:.0%}, "
            f"fmax {self.fmax_mhz:.0f} MHz)"
        )


def _seed_relief(program_name: str, board_name: str, seed: int) -> float:
    """Congestion relief a fresh placement seed buys, in [0, 0.08].

    Deterministic per (program, board, seed); seed 0 — the default
    placement — gets no relief, so baseline behaviour is unchanged.
    Relief is one-sided: a new seed can rescue a marginal design but
    never breaks one that already routes (optimistic vs. real Quartus,
    where seeds cut both ways, but it keeps recovery monotone).
    """
    if seed == 0:
        return 0.0
    rng = random.Random(f"placement:{program_name}:{board_name}:{seed}")
    return rng.uniform(0.0, 0.08)


def _injected_synth_fault(program: Program, board: Board) -> None:
    """Probe the active fault plan at the synthesize boundary."""
    from repro.resilience.faults import probe  # local: avoids import cycle

    fault = probe("synthesize", program.name)
    if fault is None:
        return
    if fault.kind == "routing":
        err: AOCError = RoutingError(
            f"injected: routing failure for {program.name} on {board.name} "
            f"(placement congestion, fault plan)"
        )
    elif fault.kind == "fit":
        err = FitError(
            f"injected: fit failure for {program.name} on {board.name} "
            f"(fault plan)"
        )
    else:
        err = AOCError(
            f"injected: offline-compiler crash while synthesizing "
            f"{program.name} (fault plan)"
        )
    err.transient = fault.transient
    err.injected = True
    raise err


def compile_program(
    program: Program,
    board: Board,
    constants: AOCConstants = DEFAULT_CONSTANTS,
    strict_fit: bool = True,
    placement_seed: int = 0,
) -> Bitstream:
    """Synthesize a program for a board (the ``aoc`` invocation).

    Raises :class:`FitError` when the design exceeds board resources and
    :class:`RoutingError` when congestion defeats the router.  Pass
    ``strict_fit=False`` to obtain the bitstream object anyway (used by
    area-exploration benches to report the failure point).

    ``placement_seed`` models Quartus's ``-seed``: a non-zero seed
    re-randomizes placement, which can relieve marginal routing
    congestion (see :func:`_seed_relief`).  Structural failures — fit
    overflows and single-kernel fanout — are seed-independent, exactly
    as on real hardware.
    """
    program.validate_channels()
    _injected_synth_fault(program, board)
    hw: Dict[str, HwKernel] = {}
    total = ResourceEstimate()
    replicas = 0
    for kernel in program.kernels:
        analysis = KernelAnalysis(kernel, constants)
        res = estimate_kernel(analysis, constants)
        hw[kernel.name] = HwKernel(kernel, analysis, res)
        total = total + res
        replicas += analysis.excess_lsu_replicas()
    for ch in program.all_channels():
        total = total + ResourceEstimate(
            aluts=2 * constants.alut_per_channel,
            ffs=4 * constants.alut_per_channel,
            rams=channel_rams(ch.depth, constants),
        )

    report = timing(total, board, replicas, constants)
    # single-kernel fanout: distributing operands into one kernel's
    # replicated datapath stresses routing independently of total area
    # (Section 6.5's 7/16/8-on-S10SX failure)
    max_fanout = max((h.analysis.dsp_count() for h in hw.values()), default=0)
    if max_fanout > board.max_kernel_fanout:
        report = TimingReport(
            fmax_mhz=report.fmax_mhz, congestion=report.congestion, routed=False
        )
    # designs with global-scratchpad accumulation feedback close timing
    # noticeably worse (observed across the thesis's base rows); scale the
    # penalty by how much of the design carries such feedback paths
    n_feedback = sum(
        1
        for hwk in hw.values()
        if any(
            node.ii_dep >= constants.ii_global_accum
            for node in hwk.analysis.loops.values()
        )
    )
    if n_feedback and hw:
        frac = (n_feedback / len(hw)) ** 0.5
        factor = 1.0 - (1.0 - constants.fmax_global_accum_factor) * frac
        report = TimingReport(
            fmax_mhz=report.fmax_mhz * factor,
            congestion=report.congestion,
            routed=report.routed,
        )
    # placement-seed sweep: a new seed can relieve marginal congestion,
    # but never fixes a fanout (structural) routing failure
    if (
        placement_seed
        and not report.routed
        and max_fanout <= board.max_kernel_fanout
    ):
        relieved = report.congestion * (
            1.0 - _seed_relief(program.name, board.name, placement_seed)
        )
        if relieved <= board.routing_threshold:
            report = TimingReport(
                fmax_mhz=report.fmax_mhz, congestion=relieved, routed=True
            )
    bitstream = Bitstream(program, board, hw, total, report, constants)

    if strict_fit:
        b = board
        failures = []
        if total.aluts > b.avail_aluts:
            failures.append(
                f"logic {total.aluts} > {b.avail_aluts} available ALUTs"
            )
        if total.rams > b.avail_rams:
            failures.append(f"RAM {total.rams} > {b.avail_rams} available M20Ks")
        if total.dsps > b.avail_dsps:
            failures.append(f"DSP {total.dsps} > {b.avail_dsps} available DSPs")
        if total.ffs > b.avail_ffs:
            failures.append(f"FF {total.ffs} > {b.avail_ffs} available FFs")
        if failures:
            raise FitError(
                f"{program.name} does not fit on {b.name}: " + "; ".join(failures)
            )
        if not report.routed:
            raise RoutingError(
                f"{program.name} on {b.name}: routing fails (congestion "
                f"{report.congestion:.2f} vs threshold "
                f"{b.routing_threshold:.2f}, max kernel fanout {max_fanout} "
                f"vs {b.max_kernel_fanout})"
            )
    return bitstream
