"""Static analysis of kernel IR: the front half of the AOC model.

For each kernel this derives, once:

* the loop tree with dependence-based initiation intervals (II) —
  accumulation into a global scratchpad gives II=5, into a register II=1
  (thesis Section 5.1.1);
* global-memory access sites and the load-store units (LSUs) AOC would
  infer for them: access width from coalescible unrolled dimensions,
  replication for non-coalescible ones, alignment from whether strides
  are compile-time constants (Sections 2.4.3, 5.3);
* evaluators for cycle count, FLOPs and DRAM traffic as functions of the
  symbolic-shape bindings, used by the runtime simulator per invocation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import AOCError
from repro.ir import expr as _e
from repro.ir import stmt as _s
from repro.ir.analysis import eval_int, free_vars, stride_of, count_flops_expr
from repro.ir.buffer import Buffer
from repro.ir.kernel import Kernel
from repro.aoc.constants import AOCConstants, DEFAULT_CONSTANTS

Bindings = Dict[_e.Var, int]


@dataclass
class AccessSite:
    """One static load/store on a global buffer."""

    buffer: Buffer
    is_store: bool
    index: _e.Expr
    #: enclosing unrolled loops as (var, static extent), outermost first
    unrolled: Tuple[Tuple[_e.Var, int], ...]
    #: enclosing non-unrolled loops as (var, extent expr), outermost first
    serial: Tuple[Tuple[_e.Var, _e.Expr], ...]
    cached: bool
    #: the LSU inferred for this site (set after inference; global only)
    lsu: Optional["LSU"] = None


@dataclass
class LSU:
    """A load-store unit inferred for an access site."""

    buffer_name: str
    is_store: bool
    width_elems: int
    replicas: int
    aligned: bool
    cached: bool

    @property
    def width_bits(self) -> int:
        return self.width_elems * 32


@dataclass
class LoopNode:
    """Analysis record of one For statement."""

    stmt: _s.For
    ii_dep: int = 1
    ii_mem: int = 1
    #: buffer whose loop-carried dependence sets ``ii_dep`` (None if 1)
    ii_dep_buffer: Optional[str] = None
    #: memory scope of that buffer ("global" / "local" / "register")
    ii_dep_scope: Optional[str] = None
    #: buffer whose replicated LSU streams set ``ii_mem`` (None if 1)
    ii_mem_buffer: Optional[str] = None

    @property
    def ii(self) -> int:
        return max(self.ii_dep, self.ii_mem)

    @property
    def bottleneck(self) -> Optional[str]:
        """What limits this loop: 'dependence', 'memory', or None."""
        if self.ii <= 1:
            return None
        return "dependence" if self.ii_dep >= self.ii_mem else "memory"


class KernelAnalysis:
    """All static facts about a kernel, plus binding-parameterized costs."""

    def __init__(self, kernel: Kernel, constants: AOCConstants = DEFAULT_CONSTANTS) -> None:
        self.kernel = kernel
        self.c = constants
        self.sites: List[AccessSite] = []
        self.loops: Dict[int, LoopNode] = {}
        self.loop_count = 0
        self.channel_ops = 0
        self.uses_select = False
        self.uses_mod = False
        self._scalar_args = set(kernel.scalar_args)
        self._walk(kernel.body, [], [])
        self.lsus: List[LSU] = []
        for site in self.sites:
            if site.buffer.scope == "global":
                site.lsu = self._infer_lsu(site)
                self.lsus.append(site.lsu)
        self._assign_dep_ii()
        self._assign_mem_ii()
        self._cycles_cache: Dict[Tuple[Tuple[str, int], ...], int] = {}

    def __reduce__(self):
        # ``loops`` is keyed by id(stmt), which does not survive a
        # pickle round-trip (the persistent compile cache); re-analyze
        # from (kernel, constants) — deterministic and cheap — instead
        # of restoring stale ids.
        return (KernelAnalysis, (self.kernel, self.c))

    # ------------------------------------------------------------------
    # collection
    def _walk(
        self,
        s: _s.Stmt,
        unrolled: List[Tuple[_e.Var, int]],
        serial: List[Tuple[_e.Var, _e.Expr]],
    ) -> None:
        if isinstance(s, _s.SeqStmt):
            for c in s.stmts:
                self._walk(c, unrolled, serial)
        elif isinstance(s, _s.For):
            self.loop_count += 1
            self.loops[id(s)] = LoopNode(s)
            if s.kind is _s.ForKind.UNROLLED and s.unroll_factor is None:
                ext = s.static_extent
                if ext is None:
                    raise AOCError(
                        f"kernel {self.kernel.name}: fully-unrolled loop "
                        f"{s.loop_var.name} has a non-constant bound"
                    )
                self._walk(s.body, unrolled + [(s.loop_var, ext)], serial)
            elif s.kind is _s.ForKind.UNROLLED:
                # partial unroll: inner factor is spatial, remainder serial
                self._walk(
                    s.body,
                    unrolled + [(s.loop_var, s.unroll_factor)],
                    serial + [(s.loop_var, s.extent)],
                )
            else:
                self._walk(s.body, unrolled, serial + [(s.loop_var, s.extent)])
        elif isinstance(s, (_s.Allocate, _s.AttrStmt)):
            self._walk(s.body, unrolled, serial)
        elif isinstance(s, _s.IfThenElse):
            self._scan_expr(s.cond, unrolled, serial)
            self._walk(s.then_body, unrolled, serial)
            if s.else_body is not None:
                self._walk(s.else_body, unrolled, serial)
        elif isinstance(s, _s.Store):
            self._scan_expr(s.value, unrolled, serial)
            self._scan_expr(s.index, unrolled, serial)
            self.sites.append(
                AccessSite(
                    s.buffer, True, s.index, tuple(unrolled), tuple(serial),
                    cached=False,
                )
            )
        elif isinstance(s, _s.ChannelWrite):
            self.channel_ops += 1
            self._scan_expr(s.value, unrolled, serial)
        elif isinstance(s, _s.Evaluate):
            self._scan_expr(s.value, unrolled, serial)

    def _scan_expr(
        self,
        e: _e.Expr,
        unrolled: List[Tuple[_e.Var, int]],
        serial: List[Tuple[_e.Var, _e.Expr]],
    ) -> None:
        if isinstance(e, _e.Load):
            self.sites.append(
                AccessSite(
                    e.buffer, False, e.index, tuple(unrolled), tuple(serial),
                    cached=e.buffer.name in self.kernel.cached_reads,
                )
            )
            self._scan_expr(e.index, unrolled, serial)
            return
        if isinstance(e, _e.Select):
            self.uses_select = True
        if isinstance(e, _e.Mod):
            self.uses_mod = True
        if isinstance(e, _e.ChannelRead):
            self.channel_ops += 1
        for child in e.children():
            self._scan_expr(child, unrolled, serial)

    # ------------------------------------------------------------------
    # LSU inference
    def _infer_lsu(self, site: AccessSite) -> LSU:
        # Coalesce unrolled dimensions while they extend a contiguous span
        # (stride <= current span); otherwise replicate the LSU — this is
        # what produces "C1vec x F LSUs for I" in thesis Section 5.1.1.
        strided: List[Tuple[int, int]] = []  # (|stride|, extent)
        replicas = 1
        aligned = True
        for var, extent in site.unrolled:
            s = stride_of(site.index, var)
            if s is None:
                replicas *= extent
                aligned = False
            elif s != 0:
                strided.append((abs(s), extent))
        span = 1
        for stride, extent in sorted(strided):
            if stride <= span:
                span += (extent - 1) * stride
            else:
                replicas *= extent
        if span > self.c.max_lsu_width_elems:
            replicas *= math.ceil(span / self.c.max_lsu_width_elems)
            span = self.c.max_lsu_width_elems
        # symbolic strides in the index defeat compile-time alignment
        if free_vars(site.index) & self._scalar_args:
            aligned = False
        # AOC infers a cache when the access pattern "seems repetitive"
        # (Section 2.4.3): a read re-issued across serial loops that do
        # not advance the address.  Tiny operands (biases, scalars) live
        # in registers instead of earning a BRAM cache.
        cached = site.cached
        if not site.is_store and not cached:
            repetitive = any(
                stride_of(site.index, var) == 0 for var, _ in site.serial
            )
            n = site.buffer.num_elements()
            substantial = n is None or n * 4 >= 2048
            cached = repetitive and substantial
        return LSU(
            site.buffer.name,
            site.is_store,
            span,
            replicas,
            aligned,
            cached,
        )

    # ------------------------------------------------------------------
    # dependence-based II
    def _assign_dep_ii(self) -> None:
        self._dep_walk(self.kernel.body, [])

    def _dep_walk(self, s: _s.Stmt, serial_stack: List[_s.For]) -> None:
        if isinstance(s, _s.SeqStmt):
            for c in s.stmts:
                self._dep_walk(c, serial_stack)
        elif isinstance(s, _s.For):
            if s.kind is _s.ForKind.UNROLLED and s.unroll_factor is None:
                self._dep_walk(s.body, serial_stack)
            else:
                self._dep_walk(s.body, serial_stack + [s])
        elif isinstance(s, (_s.Allocate, _s.AttrStmt)):
            self._dep_walk(s.body, serial_stack)
        elif isinstance(s, _s.IfThenElse):
            self._dep_walk(s.then_body, serial_stack)
            if s.else_body is not None:
                self._dep_walk(s.else_body, serial_stack)
        elif isinstance(s, _s.Store):
            if not self._is_accumulation(s):
                return
            # innermost enclosing serial loop whose var does not advance
            # the accumulator address carries the dependence; trip-1 loops
            # collapse away and cannot carry it
            for loop in reversed(serial_stack):
                if loop.static_extent == 1:
                    continue
                if stride_of(s.index, loop.loop_var) == 0:
                    ii = (
                        self.c.ii_global_accum
                        if s.buffer.scope == "global"
                        else self.c.ii_local_accum
                    )
                    node = self.loops[id(loop)]
                    if ii > node.ii_dep:
                        node.ii_dep = ii
                        node.ii_dep_buffer = s.buffer.name
                        node.ii_dep_scope = s.buffer.scope
                    break

    @staticmethod
    def _is_accumulation(store: _s.Store) -> bool:
        hits: List[bool] = []

        def scan(e: _e.Expr) -> None:
            if isinstance(e, _e.Load) and e.buffer is store.buffer:
                if _e.structural_equal(e.index, store.index):
                    hits.append(True)
            for c in e.children():
                scan(c)

        scan(store.value)
        return bool(hits)

    # ------------------------------------------------------------------
    # memory-arbitration II: replicated read streams share LSU ports
    def _assign_mem_ii(self) -> None:
        for site in self.sites:
            lsu = site.lsu
            # aligned (compile-time-analyzable) replicas schedule cleanly;
            # non-aligned replicated streams contend in the arbiter
            if lsu is None or lsu.is_store or lsu.replicas <= 1 or lsu.aligned:
                continue
            stall = min(
                self.c.max_mem_stall, math.ceil(lsu.replicas / self.c.lsu_ports)
            )
            if stall <= 1 or not site.serial:
                continue
            inner_var = site.serial[-1][0]
            for node in self.loops.values():
                if node.stmt.loop_var is inner_var and stall > node.ii_mem:
                    node.ii_mem = stall
                    node.ii_mem_buffer = lsu.buffer_name

    # ------------------------------------------------------------------
    # II attribution
    def max_ii(self) -> int:
        """Worst initiation interval across the kernel's loop nest."""
        return max((n.ii for n in self.loops.values()), default=1)

    def ii_attribution(self) -> List[Dict[str, object]]:
        """Per-loop bottleneck attribution for every loop with II > 1.

        Each record names the loop variable, the II, the limiting
        mechanism (``dependence`` or ``memory``) and the buffer that
        causes it — the facts AOC's HTML report spreads over the loop
        analysis and LSU pages, gathered for the performance advisor.
        Records are sorted by (descending II, loop var) so the worst
        bottleneck is first and the order is deterministic.
        """
        out: List[Dict[str, object]] = []
        for node in self.loops.values():
            if node.ii <= 1:
                continue
            cause = node.bottleneck
            out.append(
                {
                    "loop": node.stmt.loop_var.name,
                    "ii": node.ii,
                    "cause": cause,
                    "buffer": (
                        node.ii_dep_buffer
                        if cause == "dependence"
                        else node.ii_mem_buffer
                    ),
                    "scope": (
                        node.ii_dep_scope if cause == "dependence" else "global"
                    ),
                }
            )
        out.sort(key=lambda r: (-int(r["ii"]), str(r["loop"])))
        return out

    # ------------------------------------------------------------------
    # cost evaluators
    def _eval_extent(self, e: _e.Expr, bindings: Bindings) -> int:
        v = eval_int(e, bindings)
        if v is None:
            raise AOCError(
                f"kernel {self.kernel.name}: cannot evaluate loop extent "
                f"{e!r} — missing symbolic bindings"
            )
        return v

    def _rebind(self, bindings: Optional[Bindings]) -> Bindings:
        """Remap bindings onto this kernel's own ``Var`` objects by name.

        Bindings are identity-keyed, but a bitstream replayed from the
        compile cache gets paired with invocation plans built from a
        different (alpha-equivalent) program, whose symbolic vars are
        distinct objects with the same names.
        """
        if not bindings:
            return {}
        own = getattr(self, "_own_vars", None)
        if own is None:
            own = {v.name: v for v in self.kernel.scalar_args}
            # buffer-shape vars (n_hi, ...) may not be kernel body args
            for site in self.sites:
                for d in tuple(site.buffer.shape) + tuple(site.buffer.strides or ()):
                    if isinstance(d, _e.Var):
                        own.setdefault(d.name, d)
            self._own_vars = own
        out = dict(bindings)
        for v, val in bindings.items():
            tgt = own.get(v.name)
            if tgt is not None and tgt not in out:
                out[tgt] = val
        return out

    def compute_cycles(self, bindings: Optional[Bindings] = None) -> int:
        """Issue-slot cycle estimate for one invocation."""
        bindings = self._rebind(bindings)
        key = tuple(sorted((v.name, val) for v, val in bindings.items()))
        if key not in self._cycles_cache:
            self._cycles_cache[key] = max(1, self._cycles(self.kernel.body, bindings))
        return self._cycles_cache[key]

    def _cycles(self, s: _s.Stmt, b: Bindings) -> int:
        if isinstance(s, _s.SeqStmt):
            return sum(self._cycles(c, b) for c in s.stmts)
        if isinstance(s, _s.For):
            node = self.loops[id(s)]
            n = self._eval_extent(s.extent, b)
            if s.kind is _s.ForKind.UNROLLED:
                if s.unroll_factor is None:
                    return self._cycles(s.body, b)
                n = math.ceil(n / s.unroll_factor)
            if n <= 1:
                # trip-1 loops collapse: no control, no pipeline fill
                return self._cycles(s.body, b)
            return self.c.loop_fill_cycles + n * node.ii * self._cycles(s.body, b)
        if isinstance(s, (_s.Allocate, _s.AttrStmt)):
            return self._cycles(s.body, b)
        if isinstance(s, _s.IfThenElse):
            t = self._cycles(s.then_body, b)
            e = self._cycles(s.else_body, b) if s.else_body is not None else 0
            return max(t, e)
        return 1  # Store / ChannelWrite / Evaluate issue slot

    def flops(self, bindings: Optional[Bindings] = None) -> int:
        """Floating-point operations per invocation."""
        return self._flops(self.kernel.body, self._rebind(bindings))

    def _flops(self, s: _s.Stmt, b: Bindings) -> int:
        if isinstance(s, _s.SeqStmt):
            return sum(self._flops(c, b) for c in s.stmts)
        if isinstance(s, _s.For):
            return self._eval_extent(s.extent, b) * self._flops(s.body, b)
        if isinstance(s, (_s.Allocate, _s.AttrStmt)):
            return self._flops(s.body, b)
        if isinstance(s, _s.IfThenElse):
            t = self._flops(s.then_body, b)
            e = self._flops(s.else_body, b) if s.else_body is not None else 0
            return max(t, e)
        if isinstance(s, (_s.Store, _s.ChannelWrite, _s.Evaluate)):
            return count_flops_expr(s.value)
        return 0

    def traffic_bytes(self, bindings: Optional[Bindings] = None) -> int:
        """Approximate DRAM traffic per invocation.

        Per access site: the whole buffer is touched once (``unique``)
        multiplied by the trip counts of enclosing serial loops whose
        variables do not advance the address (re-reads).  A cached LSU
        whose working set fits the 512-kbit cache pays ``unique`` once.
        """
        b = self._rebind(bindings)
        total = 0
        for site in self.sites:
            if site.buffer.scope != "global":
                continue
            unique = self._buffer_bytes(site.buffer, b)
            reread = 1
            for var, extent in site.serial:
                if stride_of(site.index, var) == 0:
                    reread *= self._eval_extent(
                        extent if isinstance(extent, _e.Expr) else _e.IntImm(extent), b
                    )
            if site.lsu is not None and site.lsu.cached and unique <= self.c.lsu_cache_bytes:
                reread = 1
            total += unique * reread
        return total

    def _buffer_bytes(self, buf: Buffer, b: Bindings) -> int:
        n = 1
        for d in buf.shape:
            if isinstance(d, int):
                n *= d
            else:
                v = eval_int(d, b)
                if v is None:
                    raise AOCError(
                        f"kernel {self.kernel.name}: unbound buffer dim "
                        f"{d.name} of {buf.name}"
                    )
                n *= v
        return n * 4

    # ------------------------------------------------------------------
    # spatial hardware
    def dsp_count(self) -> int:
        """DSPs: one per fused MAC in the replicated (unrolled) datapath."""
        flops = self._spatial_flops(self.kernel.body)
        return max(0, math.ceil(flops / 2 * self.c.dsp_per_mac))

    def _spatial_flops(self, s: _s.Stmt) -> int:
        if isinstance(s, _s.SeqStmt):
            return sum(self._spatial_flops(c) for c in s.stmts)
        if isinstance(s, _s.For):
            if s.kind is _s.ForKind.UNROLLED:
                n = s.unroll_factor or s.static_extent or 1
                return n * self._spatial_flops(s.body)
            return self._spatial_flops(s.body)
        if isinstance(s, (_s.Allocate, _s.AttrStmt)):
            return self._spatial_flops(s.body)
        if isinstance(s, _s.IfThenElse):
            t = self._spatial_flops(s.then_body)
            e = self._spatial_flops(s.else_body) if s.else_body is not None else 0
            return t + e
        if isinstance(s, (_s.Store, _s.ChannelWrite, _s.Evaluate)):
            return count_flops_expr(s.value)
        return 0

    # ------------------------------------------------------------------
    def is_pure_transform(self) -> bool:
        """True for kernels that move data without floating-point work
        (padding, flatten/transpose) — thesis's 'transform' kernels."""
        return self._spatial_flops(self.kernel.body) == 0

    def has_nonaligned_lsu(self) -> bool:
        return any(not l.aligned for l in self.lsus)

    def total_lsu_replicas(self) -> int:
        return sum(l.replicas for l in self.lsus)

    def excess_lsu_replicas(self) -> int:
        """Replicated streams beyond the first per LSU (routing pressure)."""
        return sum(max(0, l.replicas - 1) for l in self.lsus)

    def bw_efficiency(self) -> float:
        """Fraction of peak DRAM bandwidth this kernel's LSUs achieve."""
        if not self.lsus:
            return self.c.bw_efficiency_aligned
        if self.has_nonaligned_lsu():
            return self.c.bw_efficiency_nonaligned
        return self.c.bw_efficiency_aligned
