"""Resource estimation: ALUTs, FFs, M20K RAM blocks and DSPs per kernel.

The cost model follows the thesis's causal account (Sections 2.4.2/2.4.3,
4.1, 6.5): LSUs — especially cached and non-aligned burst-coalesced ones —
dominate logic and BRAM; unrolling replicates DSPs and datapath glue;
local buffers consume BRAM replicated for concurrent write ports; loop
control adds fixed logic per loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.aoc.analysis import KernelAnalysis
from repro.aoc.constants import AOCConstants
from repro.ir.analysis import eval_int


@dataclass
class ResourceEstimate:
    """Estimated resource usage of one kernel (or a whole design)."""

    aluts: int = 0
    ffs: int = 0
    rams: int = 0
    dsps: int = 0

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            self.aluts + other.aluts,
            self.ffs + other.ffs,
            self.rams + other.rams,
            self.dsps + other.dsps,
        )

    def __repr__(self) -> str:
        return (
            f"Resources(aluts={self.aluts}, ffs={self.ffs}, "
            f"rams={self.rams}, dsps={self.dsps})"
        )


def _local_buffer_rams(analysis: KernelAnalysis, c: AOCConstants) -> int:
    """M20K blocks for local/register buffers, with port replication."""
    rams = 0
    for buf in analysis.kernel.local_buffers():
        n = 1
        symbolic = False
        for d in buf.shape:
            if isinstance(d, int):
                n *= d
            else:
                v = eval_int(d, {})
                if v is None:
                    symbolic = True
                    break
                n *= v
        if symbolic:
            # compiler must size for the worst case it cannot know; it
            # allocates a fixed conservative buffer
            n = 16 * 1024
        bits = n * 32
        if buf.scope == "register" and n <= 64:
            continue  # small arrays land in FFs, not BRAM
        # concurrent unrolled writers force replication/banking
        writers = 1
        for site in analysis.sites:
            if site.buffer.name != buf.name or not site.is_store:
                continue
            w = 1
            for _, extent in site.unrolled:
                w *= extent
            writers = max(writers, w)
        replication = max(1, math.ceil(writers / c.bram_write_ports))
        rams += max(1, math.ceil(bits / c.bram_block_bits)) * replication
    return rams


def estimate_kernel(analysis: KernelAnalysis, c: AOCConstants) -> ResourceEstimate:
    """Estimate one kernel's post-fit resource usage."""
    aluts = c.alut_kernel_base
    aluts += analysis.loop_count * c.alut_per_loop
    rams = _local_buffer_rams(analysis, c)
    for lsu in analysis.lsus:
        cost = c.alut_per_lsu + c.alut_per_replica * (lsu.replicas - 1)
        cost += c.alut_per_width_elem * lsu.width_elems
        if not lsu.aligned:
            cost = int(cost * c.nonaligned_lsu_factor)
        aluts += cost
        per_replica_brams = (
            c.bram_per_nonaligned_replica if not lsu.aligned else c.bram_per_lsu
        )
        rams += per_replica_brams * lsu.replicas
        # widened LSUs buffer a burst of their width
        rams += math.ceil(lsu.width_bits * 16 / c.bram_block_bits)
        if lsu.cached:
            rams += c.bram_per_cached_lsu
    dsps = analysis.dsp_count() + c.dsp_kernel_base
    aluts += dsps * 2 * c.alut_per_unrolled_op
    aluts += analysis.channel_ops * c.alut_per_channel
    ffs = int(aluts * c.ff_per_alut)
    return ResourceEstimate(aluts=aluts, ffs=ffs, rams=rams, dsps=dsps)


def channel_rams(depth_elems: int, c: AOCConstants) -> int:
    """M20K blocks for one buffered channel FIFO."""
    if depth_elems <= 16:
        return 0  # register FIFO
    return max(1, math.ceil(depth_elems * 32 / c.bram_block_bits))
