"""Exception hierarchy for the repro compiler stack.

Every layer of the flow (IR construction, scheduling, code generation,
offline compilation, runtime simulation) raises a subclass of
:class:`ReproError` so callers can catch stack-specific failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class IRError(ReproError):
    """Malformed IR: bad dtypes, out-of-scope variables, invalid nodes."""


class ScheduleError(ReproError):
    """Invalid schedule transformation (unknown axis, bad factor, ...)."""


class LoweringError(ReproError):
    """A schedule could not be lowered to statement IR."""


class CodegenError(ReproError):
    """The OpenCL code generator met an unsupported construct."""


class AOCError(ReproError):
    """Base class for offline-compiler (synthesis) failures."""


class FitError(AOCError):
    """The design exceeds the board's ALUT/FF/BRAM/DSP resources.

    This is the error the thesis hits when mapping naive MobileNet/ResNet
    bitstreams onto the Arria 10: the kernel system plus static partition
    does not fit, so no bitstream is produced.
    """


class RoutingError(AOCError):
    """Quartus routing failed due to congestion (Section 6.5 of the thesis)."""


class RuntimeSimError(ReproError):
    """Host-runtime simulation error (deadlocked channels, bad enqueue...)."""


class PipelineError(ReproError):
    """Misuse of the stage pipeline (missing artifact, duplicate stage).

    Domain failures inside a stage keep their own class (``FitError`` is
    still raised as ``FitError``) and gain ``.stage``/``.diagnostic``
    attributes pointing at the failing stage and the partial trace.
    """


class UnsupportedError(ReproError):
    """Feature intentionally out of scope for this reproduction."""
