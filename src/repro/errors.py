"""Exception hierarchy for the repro compiler stack.

Every layer of the flow (IR construction, scheduling, code generation,
offline compilation, runtime simulation) raises a subclass of
:class:`ReproError` so callers can catch stack-specific failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package.

    Two class-level flags drive the :mod:`repro.resilience` layer:

    ``transient``
        The failure is expected to clear on retry (a crashed AOC run, a
        dropped DMA transfer).  Retry policies only re-attempt transient
        errors; the compile cache never records them as deterministic
        outcomes.
    ``injected``
        The error was raised by an active :class:`~repro.resilience.FaultPlan`
        rather than by the model itself.  Injected failures are likewise
        never cached.
    """

    transient: bool = False
    injected: bool = False


class IRError(ReproError):
    """Malformed IR: bad dtypes, out-of-scope variables, invalid nodes."""


class ScheduleError(ReproError):
    """Invalid schedule transformation (unknown axis, bad factor, ...)."""


class LoweringError(ReproError):
    """A schedule could not be lowered to statement IR."""


class CodegenError(ReproError):
    """The OpenCL code generator met an unsupported construct."""


class AOCError(ReproError):
    """Base class for offline-compiler (synthesis) failures."""


class FitError(AOCError):
    """The design exceeds the board's ALUT/FF/BRAM/DSP resources.

    This is the error the thesis hits when mapping naive MobileNet/ResNet
    bitstreams onto the Arria 10: the kernel system plus static partition
    does not fit, so no bitstream is produced.
    """


class RoutingError(AOCError):
    """Quartus routing failed due to congestion (Section 6.5 of the thesis)."""


class RuntimeSimError(ReproError):
    """Host-runtime simulation error (deadlocked channels, bad enqueue...)."""


class TransferError(RuntimeSimError):
    """A host<->device DMA transfer (or its enqueue) failed.

    Transient by default: real PCIe transfers fail sporadically and
    succeed on re-enqueue, which is how the runtime recovers from them.
    """

    transient = True


class DeviceLostError(RuntimeSimError):
    """The device disappeared mid-run (bus reset, driver crash).

    Transient by default: re-opening the context usually recovers.
    """

    transient = True


class DeadlockError(RuntimeSimError):
    """The runtime watchdog's verdict: a channel-wait cycle or a stage
    that exceeded the virtual-time budget.  Carries a diagnosis of which
    stage is blocked on which channel and the occupancy at stall time.
    """


class VerificationError(ReproError):
    """The static verifier found error-severity defects in a build.

    Raised by the ``verify`` pipeline stage (and by
    ``repro.verify.assert_clean``) before any synthesis time is spent.
    Carries the full :class:`~repro.verify.VerifyReport` as ``.report``
    so callers can render every diagnostic, not just the message.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class PipelineError(ReproError):
    """Misuse of the stage pipeline (missing artifact, duplicate stage).

    Domain failures inside a stage keep their own class (``FitError`` is
    still raised as ``FitError``) and gain ``.stage``/``.diagnostic``
    attributes pointing at the failing stage and the partial trace.
    """


class UnsupportedError(ReproError):
    """Feature intentionally out of scope for this reproduction."""
