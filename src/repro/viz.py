"""Terminal-friendly ASCII charts for the reproduced figures.

The benchmark harness regenerates the thesis's figures as data series;
this module renders them as ASCII bar/line charts so ``pytest -s`` and
the example scripts show the same visual story (matplotlib is not
available in the offline environment).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.errors import ReproError

_BAR = "#"


def bar_chart(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    fmt: str = "{:.0f}",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ReproError("labels/values length mismatch")
    if not values:
        return title
    peak = max(values)
    label_w = max(len(str(l)) for l in labels)
    lines = [title]
    for label, value in zip(labels, values):
        n = 0 if peak <= 0 else int(round(width * value / peak))
        lines.append(
            f"{str(label):>{label_w}} | {_BAR * n} {fmt.format(value)}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    groups: Sequence[str],
    series: Dict[str, Sequence[float]],
    width: int = 40,
    fmt: str = "{:.0f}",
) -> str:
    """Grouped horizontal bars: per group, one bar per series."""
    peak = max(max(v) for v in series.values())
    label_w = max(
        [len(g) for g in groups] + [len(s) + 2 for s in series]
    )
    lines = [title]
    for gi, group in enumerate(groups):
        lines.append(f"{group}:")
        for sname, values in series.items():
            value = values[gi]
            n = 0 if peak <= 0 else int(round(width * value / peak))
            lines.append(
                f"  {sname:>{label_w}} | {_BAR * n} {fmt.format(value)}"
            )
    return "\n".join(lines)


def line_chart(
    title: str,
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
    logy: bool = False,
) -> str:
    """ASCII scatter/line chart of one or more series over shared x values."""
    if not series:
        raise ReproError("no series to plot")
    marks = "ox+*@%&"
    all_vals = [v for vals in series.values() for v in vals]
    lo, hi = min(all_vals), max(all_vals)
    if logy:
        if lo <= 0:
            raise ReproError("log-scale chart needs positive values")
        lo, hi = math.log10(lo), math.log10(hi)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = min(xs), max(xs)
    span_x = (x_hi - x_lo) or 1.0
    for si, (name, vals) in enumerate(series.items()):
        for x, v in zip(xs, vals):
            vv = math.log10(v) if logy else v
            col = int((x - x_lo) / span_x * (width - 1))
            row = height - 1 - int((vv - lo) / (hi - lo) * (height - 1))
            grid[row][col] = marks[si % len(marks)]
    lines = [title]
    top = 10 ** hi if logy else hi
    bot = 10 ** lo if logy else lo
    for i, row in enumerate(grid):
        prefix = f"{top:9.3g} |" if i == 0 else (
            f"{bot:9.3g} |" if i == height - 1 else " " * 10 + "|"
        )
        lines.append(prefix + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(
        " " * 11 + f"{x_lo:<10.3g}{'x':^{max(0, width - 20)}}{x_hi:>10.3g}"
    )
    legend = "  ".join(
        f"{marks[i % len(marks)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def utilization_heatmap(
    title: str,
    utilization: float,
    cells: int = 40,
    rows: int = 4,
    seed: int = 7,
) -> str:
    """A Fig 6.8-style routing-utilization map: the hotter the design,
    the more saturated cells (deterministic pseudo-random placement)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    density = rng.uniform(0.3, 1.0, (rows, cells)) * min(1.5, utilization)
    palette = " .:-=+*#%@"
    lines = [title]
    for r in range(rows):
        row = "".join(
            palette[min(len(palette) - 1, int(d * (len(palette) - 1)))]
            for d in density[r]
        )
        lines.append("|" + row + "|")
    lines.append(f"(congestion metric: {utilization:.2f}; '@' ~ >95% routed)")
    return "\n".join(lines)
