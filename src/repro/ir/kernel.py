"""The Kernel artifact: what the code generator emits and AOC consumes.

One :class:`Kernel` corresponds to one OpenCL ``kernel void`` function.
Its signature is the list of global buffers plus any scalar (symbolic
shape/stride) arguments; parameterized kernels (thesis Section 5.3) are
exactly kernels with a non-empty ``scalar_args`` list.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import IRError
from repro.ir import expr as _e
from repro.ir import stmt as _s
from repro.ir.analysis import stmt_free_vars
from repro.ir.buffer import Buffer, Channel
from repro.ir.functor import StmtVisitor


class Kernel:
    """A single OpenCL kernel: signature + lowered body + attributes."""

    def __init__(
        self,
        name: str,
        args: Sequence[Buffer],
        body: _s.Stmt,
        scalar_args: Sequence[_e.Var] = (),
        autorun: bool = False,
    ) -> None:
        if not name.isidentifier():
            raise IRError(f"kernel name {name!r} is not a valid identifier")
        self.name = name
        self.args: Tuple[Buffer, ...] = tuple(args)
        self.scalar_args: Tuple[_e.Var, ...] = tuple(scalar_args)
        self.body = body
        self.autorun = autorun
        #: names of input buffers whose reads are cached on-chip (schedule
        #: metadata consumed by the AOC resource/bandwidth model)
        self.cached_reads: Sequence[str] = ()
        #: names of signature buffers that are compiler-created global
        #: scratchpads (the naive schedules' accumulators); the host/
        #: interpreter allocates these, they carry no user data
        self.scratch_args: Sequence[str] = ()
        #: name of the buffer holding this kernel's result (None when the
        #: output streams to a channel)
        self.output_buffer: Optional[str] = None
        if autorun and self.args:
            raise IRError(
                f"kernel {name}: autorun kernels cannot access global memory "
                "(thesis Section 4.7)"
            )
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        declared = {b.name for b in self.args}
        allocated: Set[str] = set()

        class _V(StmtVisitor):
            def visit_Allocate(self, a: _s.Allocate) -> None:
                allocated.add(a.buffer.name)
                self.generic_visit_stmt(a)

        _V().visit_stmt(self.body)

        used: Set[Buffer] = set()

        class _U(StmtVisitor):
            def visit_Load(self, e: _e.Load) -> None:
                used.add(e.buffer)
                self.generic_visit(e)

            def visit_Store(self, st: _s.Store) -> None:
                used.add(st.buffer)
                self.generic_visit_stmt(st)

        _U().visit_stmt(self.body)
        for buf in used:
            if buf.scope == "global" and buf.name not in declared:
                raise IRError(
                    f"kernel {self.name}: global buffer {buf.name} used but "
                    "not in the signature"
                )
            if buf.scope != "global" and buf.name not in allocated:
                raise IRError(
                    f"kernel {self.name}: {buf.scope} buffer {buf.name} used "
                    "but never allocated"
                )
        scalar_names = {v for v in self.scalar_args}
        loop_bound: Set[_e.Var] = set()

        class _L(StmtVisitor):
            def visit_For(self, f: _s.For) -> None:
                loop_bound.add(f.loop_var)
                self.generic_visit_stmt(f)

        _L().visit_stmt(self.body)
        for v in stmt_free_vars(self.body):
            if v not in scalar_names and v not in loop_bound:
                raise IRError(
                    f"kernel {self.name}: free variable {v.name} is neither a "
                    "loop var nor a scalar argument"
                )

    # ------------------------------------------------------------------
    @property
    def is_parameterized(self) -> bool:
        """True if the kernel takes symbolic shape/stride arguments."""
        return bool(self.scalar_args)

    def bind_by_name(self, bindings: Dict[_e.Var, int]) -> Dict[_e.Var, int]:
        """Remap a foreign binding dict onto this kernel's own vars.

        Bindings are identity-keyed, but a kernel replayed from the
        per-kernel lower cache (:mod:`repro.flow.incremental`) gets
        paired with invocation plans built by a later, alpha-equivalent
        schedule whose symbolic vars are distinct objects with the same
        names.  Returns the bindings extended with entries for this
        kernel's same-named scalar-argument and buffer-shape/stride
        vars; existing entries are never overridden.
        """
        if not bindings:
            return dict(bindings or {})
        own: Dict[str, _e.Var] = {v.name: v for v in self.scalar_args}
        for buf in self.args:
            for d in tuple(buf.shape) + tuple(buf.strides or ()):
                if isinstance(d, _e.Var):
                    own.setdefault(d.name, d)
        out = dict(bindings)
        for v, val in bindings.items():
            tgt = own.get(v.name)
            if tgt is not None and tgt not in out:
                out[tgt] = val
        return out

    def channels(self) -> Tuple[Set[Channel], Set[Channel]]:
        """Channels (read, written) by this kernel."""
        reads: Set[Channel] = set()
        writes: Set[Channel] = set()

        class _V(StmtVisitor):
            def visit_ChannelRead(self, e: _e.ChannelRead) -> None:
                reads.add(e.channel)

            def visit_ChannelWrite(self, s: _s.ChannelWrite) -> None:
                writes.add(s.channel)
                self.generic_visit_stmt(s)

        _V().visit_stmt(self.body)
        return reads, writes

    def local_buffers(self) -> List[Buffer]:
        """All non-global buffers allocated in the body."""
        out: List[Buffer] = []

        class _V(StmtVisitor):
            def visit_Allocate(self, a: _s.Allocate) -> None:
                out.append(a.buffer)
                self.generic_visit_stmt(a)

        _V().visit_stmt(self.body)
        return out

    def __repr__(self) -> str:
        tags = []
        if self.autorun:
            tags.append("autorun")
        if self.is_parameterized:
            tags.append("parameterized")
        suffix = f" [{', '.join(tags)}]" if tags else ""
        return f"Kernel({self.name}, {len(self.args)} bufs{suffix})"


class Program:
    """A compilation unit: the set of kernels synthesized into one bitstream,
    together with the channels connecting them."""

    def __init__(self, kernels: Sequence[Kernel], name: str = "program") -> None:
        names = [k.name for k in kernels]
        if len(set(names)) != len(names):
            raise IRError("duplicate kernel names in program")
        self.name = name
        self.kernels: Tuple[Kernel, ...] = tuple(kernels)

    def kernel(self, name: str) -> Kernel:
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(name)

    def all_channels(self) -> Set[Channel]:
        out: Set[Channel] = set()
        for k in self.kernels:
            r, w = k.channels()
            out |= r | w
        return out

    def validate_channels(self) -> None:
        """Every channel must have exactly one producer and one consumer."""
        producers: Dict[Channel, List[str]] = {}
        consumers: Dict[Channel, List[str]] = {}
        for k in self.kernels:
            r, w = k.channels()
            for ch in w:
                producers.setdefault(ch, []).append(k.name)
            for ch in r:
                consumers.setdefault(ch, []).append(k.name)
        for ch in set(producers) | set(consumers):
            p = producers.get(ch, [])
            c = consumers.get(ch, [])
            if len(p) != 1 or len(c) != 1:
                raise IRError(
                    f"channel {ch.name} needs exactly one producer and one "
                    f"consumer (got {p} -> {c})"
                )

    def __repr__(self) -> str:
        return f"Program({self.name}, {len(self.kernels)} kernels)"
