"""IR simplification: constant folding and degenerate-loop elimination.

The lowering phase can emit degenerate structures — trip-count-1 loops
(e.g. the ``rco`` loop of a conv whose channel tiling equals the channel
count), additions of zero from empty paddings, multiplications by one
from unit strides.  AOC's front end folds these before scheduling; this
pass does the same so the emitted OpenCL matches what the thesis's
listings show and the analysis layer sees canonical IR.
"""

from __future__ import annotations

from typing import Optional

from repro.ir import expr as _e
from repro.ir import stmt as _s
from repro.ir.functor import StmtMutator, substitute_stmt
from repro.ir.kernel import Kernel


class _Folder(StmtMutator):
    """Bottom-up constant folding + algebraic identities + loop collapse."""

    # -- expressions -----------------------------------------------------
    def generic_mutate(self, e: _e.Expr) -> _e.Expr:
        e = super().generic_mutate(e)
        if isinstance(e, _e._BinaryOp):
            return self._fold_binary(e)
        return e

    @staticmethod
    def _int(e: _e.Expr) -> Optional[int]:
        return e.value if isinstance(e, _e.IntImm) else None

    @staticmethod
    def _float(e: _e.Expr) -> Optional[float]:
        return e.value if isinstance(e, _e.FloatImm) else None

    def _fold_binary(self, e: _e._BinaryOp) -> _e.Expr:
        a, b = e.a, e.b
        ia, ib = self._int(a), self._int(b)
        # integer constant folding
        if ia is not None and ib is not None:
            if isinstance(e, _e.Add):
                return _e.IntImm(ia + ib)
            if isinstance(e, _e.Sub):
                return _e.IntImm(ia - ib)
            if isinstance(e, _e.Mul):
                return _e.IntImm(ia * ib)
            if isinstance(e, _e.FloorDiv) and ib != 0:
                return _e.IntImm(ia // ib)
            if isinstance(e, _e.Mod) and ib != 0:
                return _e.IntImm(ia % ib)
            if isinstance(e, _e.Min):
                return _e.IntImm(min(ia, ib))
            if isinstance(e, _e.Max):
                return _e.IntImm(max(ia, ib))
            if isinstance(e, _e.LT):
                return _e.IntImm(int(ia < ib))
            if isinstance(e, _e.LE):
                return _e.IntImm(int(ia <= ib))
            if isinstance(e, _e.GT):
                return _e.IntImm(int(ia > ib))
            if isinstance(e, _e.GE):
                return _e.IntImm(int(ia >= ib))
            if isinstance(e, _e.EQ):
                return _e.IntImm(int(ia == ib))
            if isinstance(e, _e.NE):
                return _e.IntImm(int(ia != ib))
        # algebraic identities (int and float)
        if isinstance(e, _e.Add):
            if ia == 0:
                return b
            if ib == 0:
                return a
            if self._float(a) == 0.0 and b.dtype == _e.FLOAT32:
                return b
            if self._float(b) == 0.0 and a.dtype == _e.FLOAT32:
                return a
        if isinstance(e, _e.Sub) and (ib == 0 or self._float(b) == 0.0):
            return a
        if isinstance(e, _e.Mul):
            if ia == 1 or self._float(a) == 1.0:
                return b
            if ib == 1 or self._float(b) == 1.0:
                return a
            if ia == 0:
                return a
            if ib == 0:
                return b
        if isinstance(e, _e.FloorDiv) and ib == 1:
            return a
        return e

    # -- statements --------------------------------------------------------
    def mutate_For(self, s: _s.For) -> Optional[_s.Stmt]:
        extent = self.mutate(s.extent)
        body = self.mutate_stmt(s.body)
        if body is None:
            return None
        if isinstance(extent, _e.IntImm) and extent.value == 1:
            # collapse the loop: substitute iterator := 0 in the body
            collapsed = substitute_stmt(body, {s.loop_var: _e.IntImm(0)})
            folded = self.mutate_stmt(collapsed)
            return folded
        if extent is s.extent and body is s.body:
            return s
        return _s.For(s.loop_var, extent, body, s.kind, s.unroll_factor)

    def mutate_IfThenElse(self, s: _s.IfThenElse) -> Optional[_s.Stmt]:
        cond = self.mutate(s.cond)
        then_body = self.mutate_stmt(s.then_body)
        else_body = self.mutate_stmt(s.else_body) if s.else_body else None
        if isinstance(cond, _e.IntImm):  # folded comparison
            return then_body if cond.value else else_body
        if then_body is None and else_body is None:
            return None
        if cond is s.cond and then_body is s.then_body and else_body is s.else_body:
            return s
        return _s.IfThenElse(cond, then_body or _s.Evaluate(_e.IntImm(0)), else_body)


def simplify_stmt(s: _s.Stmt) -> _s.Stmt:
    """Simplify a statement tree (pure; the input is not modified)."""
    out = _Folder().mutate_stmt(s)
    assert out is not None, "simplification removed the whole body"
    return out


def simplify_kernel(kernel: Kernel) -> Kernel:
    """Return a kernel with a simplified body (same signature/metadata).

    Scalar arguments that become unused after folding are retained — the
    host ABI stays stable across simplification.
    """
    body = simplify_stmt(kernel.body)
    if body is kernel.body:
        return kernel
    out = Kernel(
        kernel.name,
        kernel.args,
        body,
        scalar_args=kernel.scalar_args,
        autorun=kernel.autorun,
    )
    out.cached_reads = kernel.cached_reads
    out.scratch_args = kernel.scratch_args
    out.output_buffer = kernel.output_buffer
    return out
