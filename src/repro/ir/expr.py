"""Scalar expression IR.

This mirrors the lowered tensor-IR expression language of TVM that the
thesis's kernels are generated from: integer/float immediates, variables,
arithmetic, comparisons, selects, buffer loads, intrinsic calls and channel
reads.  Expressions are immutable trees; Python operators are overloaded so
compute definitions read naturally (``a[i] * w[j] + b[k]``).

Two dtypes are used throughout the reproduction: ``int32`` for indices and
shape/stride arguments, ``float32`` for tensor data.  This matches the
thesis, which deploys single-precision floating-point networks.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Union

from repro.errors import IRError

INT32 = "int32"
FLOAT32 = "float32"
BOOL = "bool"

#: Types accepted wherever an expression is expected.
ExprLike = Union["Expr", int, float]


def _dtype_of(a: "Expr", b: "Expr") -> str:
    """Result dtype of a binary arithmetic op (float wins over int)."""
    if FLOAT32 in (a.dtype, b.dtype):
        return FLOAT32
    return INT32


class Expr:
    """Base class of all scalar expressions.

    Subclasses define ``__slots__`` with their child fields; structural
    equality and hashing are provided so expressions can be deduplicated
    and compared in tests.
    """

    __slots__ = ("dtype",)
    dtype: str

    # -- operator sugar ------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return Add(self, const_like(other, self))

    def __radd__(self, other: ExprLike) -> "Expr":
        return Add(const_like(other, self), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return Sub(self, const_like(other, self))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return Sub(const_like(other, self), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return Mul(self, const_like(other, self))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return Mul(const_like(other, self), self)

    def __truediv__(self, other: ExprLike) -> "Expr":
        return Div(self, const_like(other, self))

    def __rtruediv__(self, other: ExprLike) -> "Expr":
        return Div(const_like(other, self), self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv(self, const_like(other, self))

    def __mod__(self, other: ExprLike) -> "Expr":
        return Mod(self, const_like(other, self))

    def __neg__(self) -> "Expr":
        return Sub(const(0, self.dtype), self)

    # comparisons intentionally build IR nodes, so Python's chained
    # comparison and __eq__-based container behaviours are unavailable;
    # use ``same_as`` / ``structural_equal`` for identity tests.
    def __lt__(self, other: ExprLike) -> "Expr":
        return LT(self, const_like(other, self))

    def __le__(self, other: ExprLike) -> "Expr":
        return LE(self, const_like(other, self))

    def __gt__(self, other: ExprLike) -> "Expr":
        return GT(self, const_like(other, self))

    def __ge__(self, other: ExprLike) -> "Expr":
        return GE(self, const_like(other, self))

    def equal(self, other: ExprLike) -> "Expr":
        """Build an equality-comparison IR node (``==`` is kept for Python)."""
        return EQ(self, const_like(other, self))

    def same_as(self, other: object) -> bool:
        """Reference identity (TVM naming)."""
        return self is other

    # children -----------------------------------------------------------
    def children(self) -> Iterable["Expr"]:
        """Yield direct sub-expressions (for generic traversal)."""
        for name in self.__slots__:
            value = getattr(self, name)
            if isinstance(value, Expr):
                yield value
            elif isinstance(value, (tuple, list)):
                for item in value:
                    if isinstance(item, Expr):
                        yield item

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        from repro.ir.printer import expr_str

        return expr_str(self)


class IntImm(Expr):
    """Integer immediate."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise IRError(f"IntImm needs an int, got {value!r}")
        self.value = value
        self.dtype = INT32


class FloatImm(Expr):
    """Single-precision float immediate."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = float(value)
        self.dtype = FLOAT32


class StringImm(Expr):
    """String immediate (pragma payloads and attribute values)."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value
        self.dtype = "handle"


class Var(Expr):
    """A named scalar variable: loop iterators, symbolic shapes, kernel args.

    Symbolic-shape execution (thesis Section 5.3) represents unknown tensor
    dimensions as ``Var`` objects that become runtime kernel arguments.
    """

    __slots__ = ("name",)

    def __init__(self, name: str, dtype: str = INT32) -> None:
        if not name:
            raise IRError("Var needs a non-empty name")
        self.name = name
        self.dtype = dtype


class _BinaryOp(Expr):
    """Shared base for binary arithmetic/compare nodes."""

    __slots__ = ("a", "b")
    op_name = "?"

    def __init__(self, a: ExprLike, b: ExprLike) -> None:
        self.a = convert(a)
        self.b = convert(b)
        self.dtype = self._result_dtype()

    def _result_dtype(self) -> str:
        return _dtype_of(self.a, self.b)


class Add(_BinaryOp):
    op_name = "+"


class Sub(_BinaryOp):
    op_name = "-"


class Mul(_BinaryOp):
    op_name = "*"


class Div(_BinaryOp):
    """True (float) division."""

    op_name = "/"


class FloorDiv(_BinaryOp):
    """Integer floor division (C ``/`` on non-negative operands)."""

    op_name = "//"


class Mod(_BinaryOp):
    """Integer modulo; flagged expensive on FPGAs by the AOC model."""

    op_name = "%"


class Min(_BinaryOp):
    op_name = "min"


class Max(_BinaryOp):
    op_name = "max"


class _CmpOp(_BinaryOp):
    def _result_dtype(self) -> str:
        return BOOL


class LT(_CmpOp):
    op_name = "<"


class LE(_CmpOp):
    op_name = "<="


class GT(_CmpOp):
    op_name = ">"


class GE(_CmpOp):
    op_name = ">="


class EQ(_CmpOp):
    op_name = "=="


class NE(_CmpOp):
    op_name = "!="


class And(_CmpOp):
    op_name = "&&"


class Or(_CmpOp):
    op_name = "||"


class Not(Expr):
    __slots__ = ("a",)

    def __init__(self, a: ExprLike) -> None:
        self.a = convert(a)
        self.dtype = BOOL


class Cast(Expr):
    """Explicit dtype conversion."""

    __slots__ = ("value",)

    def __init__(self, dtype: str, value: ExprLike) -> None:
        self.value = convert(value)
        self.dtype = dtype


class Select(Expr):
    """Ternary select: ``cond ? then_value : else_value``.

    Both arms are evaluated (this is how generated OpenCL padding kernels
    behave, and why the thesis finds them inefficient on FPGA).
    """

    __slots__ = ("cond", "then_value", "else_value")

    def __init__(self, cond: ExprLike, then_value: ExprLike, else_value: ExprLike) -> None:
        self.cond = convert(cond)
        self.then_value = convert(then_value)
        self.else_value = convert(else_value)
        if self.then_value.dtype != self.else_value.dtype:
            raise IRError("Select arms must share a dtype")
        self.dtype = self.then_value.dtype


class Call(Expr):
    """Intrinsic call (``exp``, ``sqrt``...).  Pure by construction."""

    INTRINSICS = ("exp", "sqrt", "fabs", "floor", "ceil", "tanh", "log")

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[ExprLike], dtype: str = FLOAT32) -> None:
        if name not in self.INTRINSICS:
            raise IRError(f"unknown intrinsic {name!r}")
        self.name = name
        self.args = tuple(convert(a) for a in args)
        self.dtype = dtype


class Load(Expr):
    """Flat-indexed load from a buffer: ``buffer[index]``."""

    __slots__ = ("buffer", "index")

    def __init__(self, buffer: Any, index: ExprLike) -> None:
        self.buffer = buffer
        self.index = convert(index)
        if self.index.dtype != INT32:
            raise IRError("Load index must be int32")
        self.dtype = buffer.dtype


class ChannelRead(Expr):
    """Blocking read from an Intel OpenCL channel (``read_channel_intel``)."""

    __slots__ = ("channel",)

    def __init__(self, channel: Any) -> None:
        self.channel = channel
        self.dtype = channel.dtype


class Reduce(Expr):
    """Unresolved reduction over one or more reduce axes.

    Only appears inside tensor-expression compute bodies; lowering turns
    it into an init + accumulate loop nest.  ``kind`` is ``"sum"``,
    ``"max"`` or ``"min"``.
    """

    KINDS = ("sum", "max", "min")
    IDENTITY = {"sum": 0.0, "max": -3.402823e38, "min": 3.402823e38}

    __slots__ = ("kind", "value", "axes")

    def __init__(self, kind: str, value: ExprLike, axes: Sequence[Any]) -> None:
        if kind not in self.KINDS:
            raise IRError(f"unknown reduction kind {kind!r}")
        if not axes:
            raise IRError("Reduce needs at least one axis")
        self.kind = kind
        self.value = convert(value)
        self.axes = tuple(axes)
        self.dtype = self.value.dtype

    def combine(self, acc: Expr, update: Expr) -> Expr:
        """Apply the reduction combinator to (accumulator, update)."""
        if self.kind == "sum":
            return Add(acc, update)
        if self.kind == "max":
            return Max(acc, update)
        return Min(acc, update)

    @property
    def identity(self) -> "FloatImm":
        return FloatImm(self.IDENTITY[self.kind])


# ---------------------------------------------------------------------------
# constructors


def const(value: Union[int, float], dtype: str = INT32) -> Expr:
    """Make an immediate of the given dtype."""
    if dtype == INT32:
        return IntImm(int(value))
    if dtype == FLOAT32:
        return FloatImm(float(value))
    raise IRError(f"cannot make a constant of dtype {dtype}")


def const_like(value: ExprLike, ref: Expr) -> Expr:
    """Convert ``value`` to an Expr, using ``ref``'s dtype for raw numbers."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise IRError("bool immediates are not supported")
    if isinstance(value, int) and ref.dtype == INT32:
        return IntImm(value)
    if isinstance(value, (int, float)):
        return FloatImm(float(value))
    return convert(value)


def convert(value: ExprLike) -> Expr:
    """Coerce a Python number to an immediate (ints->IntImm, floats->FloatImm).

    IterVars (duck-typed via their ``var`` attribute) convert to their
    underlying loop variable so reduce axes can be used in index math.
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise IRError("bool immediates are not supported")
    if isinstance(value, int):
        return IntImm(value)
    if isinstance(value, float):
        return FloatImm(value)
    inner = getattr(value, "var", None)
    if isinstance(inner, Var):
        return inner
    raise IRError(f"cannot convert {value!r} to an expression")


def fmax(a: ExprLike, b: ExprLike) -> Expr:
    """Elementwise max intrinsic (ReLU building block)."""
    return Max(convert(a), convert(b))


def fmin(a: ExprLike, b: ExprLike) -> Expr:
    return Min(convert(a), convert(b))


def exp(a: ExprLike) -> Expr:
    """Exponential intrinsic (softmax building block)."""
    return Call("exp", [a])


def structural_equal(a: Expr, b: Expr) -> bool:
    """Deep structural comparison of two expression trees.

    ``Var`` nodes compare by identity (two distinct vars with the same name
    are different), immediates by value, everything else recursively.
    """
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, (IntImm, FloatImm, StringImm)):
        return a.value == b.value
    if isinstance(a, Var):
        return a is b
    if isinstance(a, Load):
        return a.buffer is b.buffer and structural_equal(a.index, b.index)
    if isinstance(a, ChannelRead):
        return a.channel is b.channel
    if isinstance(a, Call):
        return a.name == b.name and all(
            structural_equal(x, y) for x, y in zip(a.args, b.args)
        )
    ca, cb = list(a.children()), list(b.children())
    if len(ca) != len(cb):
        return False
    return all(structural_equal(x, y) for x, y in zip(ca, cb))
