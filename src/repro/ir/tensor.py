"""Tensor-expression layer: placeholders, compute ops and iteration variables.

This is the reproduction's equivalent of TVM's ``te`` module that the
thesis builds its operator inventory on (Section 2.5.1):

* :func:`placeholder` declares an input tensor;
* :func:`compute` declares an output tensor from an index-wise expression;
* :func:`reduce_axis` + :func:`sum`/:func:`max_reduce` declare reductions.

A compute body may carry a fused *epilogue* — the injective operations
(bias add, ReLU, batch-norm, residual add) that Relay's operator-fusion
pass attaches to the output of convolutions and dense layers (Section 3.1).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

from repro.errors import IRError
from repro.ir import expr as _e
from repro.ir.buffer import Buffer

DimLike = Union[int, _e.Var]


class IterVar:
    """An iteration variable with an extent and a kind.

    ``kind`` is ``"data"`` for output (parallel) axes and ``"reduce"`` for
    reduction axes.  Extents may be symbolic for parameterized kernels.
    """

    __slots__ = ("var", "extent", "kind")

    def __init__(
        self, var: _e.Var, extent: Union[int, _e.Expr], kind: str = "data"
    ) -> None:
        if kind not in ("data", "reduce"):
            raise IRError(f"bad IterVar kind {kind!r}")
        if isinstance(extent, int) and extent <= 0:
            raise IRError(f"IterVar {var.name}: non-positive extent {extent}")
        self.var = var
        self.extent = extent
        self.kind = kind

    @property
    def name(self) -> str:
        return self.var.name

    @property
    def static_extent(self) -> Optional[int]:
        if isinstance(self.extent, int):
            return self.extent
        if isinstance(self.extent, _e.IntImm):
            return self.extent.value
        return None

    @property
    def is_reduce(self) -> bool:
        return self.kind == "reduce"

    # arithmetic sugar so reduce axes compose in index expressions
    # (``I[rc, yy + ry, xx + rx]``): delegate to the underlying Var.
    def __add__(self, other):
        return self.var + other

    def __radd__(self, other):
        return other + self.var if isinstance(other, _e.Expr) else self.var + other

    def __sub__(self, other):
        return self.var - other

    def __mul__(self, other):
        return self.var * other

    def __rmul__(self, other):
        return other * self.var if isinstance(other, _e.Expr) else self.var * other

    def extent_expr(self) -> _e.Expr:
        return self.extent if isinstance(self.extent, _e.Expr) else _e.IntImm(self.extent)

    def __repr__(self) -> str:
        if isinstance(self.extent, _e.Expr):
            from repro.ir.printer import expr_str

            ext = expr_str(self.extent)
        else:
            ext = str(self.extent)
        return f"IterVar({self.name}:{ext}:{self.kind})"


#: Epilogue signature: (accumulated value, output index vars) -> final value.
Epilogue = Callable[..., _e.Expr]


class Tensor:
    """A named tensor: either a placeholder or the result of a compute op.

    Indexing a tensor (``t[i, j]``) builds a :class:`~repro.ir.expr.Load`
    on its backing buffer, so compute bodies written against tensors lower
    directly to flat-indexed IR.
    """

    __slots__ = ("name", "shape", "dtype", "buffer", "op")

    def __init__(
        self,
        name: str,
        shape: Sequence[DimLike],
        dtype: str = _e.FLOAT32,
        op: Optional["ComputeOp"] = None,
        scope: str = "global",
    ) -> None:
        self.name = name
        self.shape = tuple(shape)
        self.dtype = dtype
        self.buffer = Buffer(name, self.shape, dtype, scope)
        self.op = op

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def is_placeholder(self) -> bool:
        return self.op is None

    def __getitem__(self, indices) -> _e.Load:
        if not isinstance(indices, tuple):
            indices = (indices,)
        return self.buffer.load(*indices)

    def num_elements(self) -> Optional[int]:
        return self.buffer.num_elements()

    def __repr__(self) -> str:
        dims = "x".join(
            d.name if isinstance(d, _e.Var) else str(d) for d in self.shape
        )
        kind = "placeholder" if self.is_placeholder else "compute"
        return f"Tensor({self.name}: [{dims}], {kind})"


class ComputeOp:
    """An index-wise tensor computation, possibly with a reduction.

    ``body`` is the per-output-element expression; if it is a
    :class:`~repro.ir.expr.Reduce`, lowering produces init/accumulate/
    writeback loop nests.  ``epilogue`` (if set) is applied to the final
    value right before it is stored — this is where fused activations and
    batch norms live.
    """

    __slots__ = ("name", "axes", "reduce_axes", "body", "epilogue", "inputs")

    def __init__(
        self,
        name: str,
        axes: Sequence[IterVar],
        body: _e.Expr,
        inputs: Sequence[Tensor],
        epilogue: Optional[Epilogue] = None,
    ) -> None:
        self.name = name
        self.axes: Tuple[IterVar, ...] = tuple(axes)
        if any(ax.is_reduce for ax in self.axes):
            raise IRError("output axes must be data axes")
        self.body = body
        self.reduce_axes: Tuple[IterVar, ...] = (
            body.axes if isinstance(body, _e.Reduce) else ()
        )
        self.epilogue = epilogue
        self.inputs = tuple(inputs)

    @property
    def has_reduction(self) -> bool:
        return isinstance(self.body, _e.Reduce)

    def __repr__(self) -> str:
        return f"ComputeOp({self.name}, axes={[a.name for a in self.axes]})"


_unique_counter = [0]


def _fresh(prefix: str) -> str:
    _unique_counter[0] += 1
    return f"{prefix}{_unique_counter[0]}"


def reset_fresh_names() -> None:
    """Restart the name uniquifier (called at the top of a build).

    Axis names carry a process-global counter, so without a reset two
    otherwise identical builds emit differently-named loop variables and
    the generated source is not content-addressable.  Builders reset the
    counter before constructing tensors; uniqueness within one program
    is preserved because the counter only restarts between builds.
    """
    _unique_counter[0] = 0


def placeholder(shape: Sequence[DimLike], name: str, dtype: str = _e.FLOAT32) -> Tensor:
    """Declare an input tensor (weights, activations, biases)."""
    return Tensor(name, shape, dtype)


def reduce_axis(extent: DimLike, name: str) -> IterVar:
    """Declare a reduction axis of the given extent."""
    return IterVar(_e.Var(name), extent, kind="reduce")


def sum(value: _e.ExprLike, axes: Sequence[IterVar]) -> _e.Reduce:
    """Sum-reduction of ``value`` over ``axes``."""
    return _e.Reduce("sum", value, axes)


def max_reduce(value: _e.ExprLike, axes: Sequence[IterVar]) -> _e.Reduce:
    """Max-reduction (max pooling)."""
    return _e.Reduce("max", value, axes)


def compute(
    shape: Sequence[DimLike],
    fcompute: Callable[..., _e.Expr],
    name: str,
    inputs: Sequence[Tensor],
    axis_names: Optional[Sequence[str]] = None,
    epilogue: Optional[Epilogue] = None,
) -> Tensor:
    """Declare an output tensor computed index-wise by ``fcompute``.

    ``fcompute`` receives one loop variable per output dimension and
    returns the per-element expression (optionally a Reduce).
    ``inputs`` lists tensors read by the body *and* the epilogue so the
    kernel signature and the functional executor know every operand.
    """
    shape = tuple(shape)
    if axis_names is None:
        axis_names = [f"ax{i}" for i in range(len(shape))]
    if len(axis_names) != len(shape):
        raise IRError("axis_names length must match shape")
    axes = [
        IterVar(_e.Var(_fresh(nm + "_")), ext) for nm, ext in zip(axis_names, shape)
    ]
    body = fcompute(*[ax.var for ax in axes])
    if not isinstance(body, _e.Expr):
        raise IRError("fcompute must return an expression")
    op = ComputeOp(name, axes, body, inputs, epilogue)
    return Tensor(name, shape, body.dtype, op=op)
