"""Static analyses over the IR used by the scheduler and the AOC model.

Includes constant evaluation of integer expressions under variable
bindings, free-variable collection, and affine stride extraction — the
machinery AOC's model uses to decide whether accesses can be coalesced
(compile-time-known stride 1) or not (symbolic strides, thesis §5.3).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.ir import expr as _e
from repro.ir import stmt as _s
from repro.ir.functor import ExprVisitor, StmtVisitor

Bindings = Dict[_e.Var, int]


def eval_int(e: _e.Expr, bindings: Optional[Bindings] = None) -> Optional[int]:
    """Evaluate an int32 expression to a constant; None if symbolic.

    ``bindings`` maps symbolic vars (shape arguments) to concrete values;
    unbound vars make the result None.
    """
    bindings = bindings or {}
    if isinstance(e, _e.IntImm):
        return e.value
    if isinstance(e, _e.Var):
        return bindings.get(e)
    if isinstance(e, _e._BinaryOp):
        a = eval_int(e.a, bindings)
        b = eval_int(e.b, bindings)
        if a is None or b is None:
            return None
        if isinstance(e, _e.Add):
            return a + b
        if isinstance(e, _e.Sub):
            return a - b
        if isinstance(e, _e.Mul):
            return a * b
        if isinstance(e, _e.FloorDiv):
            # a zero divisor is not a constant-foldable expression, it is
            # a malformed one; report "not evaluable" instead of raising
            return None if b == 0 else a // b
        if isinstance(e, _e.Mod):
            return None if b == 0 else a % b
        if isinstance(e, _e.Min):
            return min(a, b)
        if isinstance(e, _e.Max):
            return max(a, b)
    return None


def free_vars(e: _e.Expr) -> Set[_e.Var]:
    """Collect every Var referenced in an expression."""

    class _V(ExprVisitor):
        def __init__(self) -> None:
            self.vars: Set[_e.Var] = set()

        def visit_Var(self, v: _e.Var) -> None:
            self.vars.add(v)

    v = _V()
    v.visit(e)
    return v.vars


def stmt_free_vars(s: _s.Stmt) -> Set[_e.Var]:
    """Collect every Var referenced anywhere in a statement tree."""

    class _V(StmtVisitor):
        def __init__(self) -> None:
            self.vars: Set[_e.Var] = set()

        def visit_Var(self, v: _e.Var) -> None:
            self.vars.add(v)

    v = _V()
    v.visit_stmt(s)
    return v.vars


def stride_of(
    index: _e.Expr, var: _e.Var, bindings: Optional[Bindings] = None
) -> Optional[int]:
    """Coefficient of ``var`` in an affine index expression.

    Returns the constant stride with which ``index`` advances per unit of
    ``var``, or None when the expression is not affine in ``var`` or the
    stride is not a compile-time constant (symbolic strides).  A var that
    does not appear at all has stride 0.  ``bindings`` lets symbolic
    coefficients (shape/stride arguments of folded kernels) fold to
    constants.
    """
    if isinstance(index, _e.Var):
        return 1 if index is var else 0
    if isinstance(index, (_e.IntImm, _e.FloatImm)):
        return 0
    if isinstance(index, _e.Add):
        a = stride_of(index.a, var, bindings)
        b = stride_of(index.b, var, bindings)
        if a is None or b is None:
            return None
        return a + b
    if isinstance(index, _e.Sub):
        a = stride_of(index.a, var, bindings)
        b = stride_of(index.b, var, bindings)
        if a is None or b is None:
            return None
        return a - b
    if isinstance(index, _e.Mul):
        sa = stride_of(index.a, var, bindings)
        sb = stride_of(index.b, var, bindings)
        if sa is None or sb is None:
            return None
        if sa == 0 and sb == 0:
            return 0
        if sa == 0:
            # a is constant w.r.t. var; stride = const(a) * sb
            ca = eval_int(index.a, bindings)
            return None if ca is None else ca * sb
        if sb == 0:
            cb = eval_int(index.b, bindings)
            return None if cb is None else cb * sa
        return None  # quadratic in var
    if isinstance(index, (_e.FloorDiv, _e.Mod)):
        a = stride_of(index.a, var, bindings)
        b = stride_of(index.b, var, bindings)
        if a == 0 and b == 0:
            return 0
        return None  # non-affine in var
    # conservative default: unknown if var occurs, else 0
    return 0 if var not in free_vars(index) else None


def dependence_distance(
    store_index: _e.Expr,
    load_index: _e.Expr,
    var: _e.Var,
    bindings: Optional[Bindings] = None,
) -> Optional[int]:
    """Loop-carried dependence distance between a store and a load, in
    iterations of ``var``.

    The store writes ``f(var)`` and the load reads ``g(var)``; the
    distance is the ``d`` with ``f(i) == g(i + d)`` — the number of
    iterations after which a written value is read back.  Both indices
    must be affine in ``var`` with the *same* stride (otherwise the pair
    aliases at most once and carries no recurrence).  A zero-stride pair
    with equal offsets is the accumulation pattern: distance 1, the
    recurrence AOC pays II for (thesis Section 5.1.1).  Returns None
    when there is no provable loop-carried dependence.
    """
    sf = stride_of(store_index, var, bindings)
    sg = stride_of(load_index, var, bindings)
    if sf is None or sg is None or sf != sg:
        return None
    # equal strides make f - g constant in var, so evaluate it at var=0
    at_zero = dict(bindings or {})
    at_zero[var] = 0
    delta = eval_int(_e.Sub(store_index, load_index), at_zero)
    if sf == 0:
        return 1 if delta == 0 else None
    if delta is None or delta % sf != 0:
        return None
    d = delta // sf
    return d if d > 0 else None


def reuse_distance(
    index: _e.Expr,
    loops,
    bindings: Optional[Bindings] = None,
) -> Optional[int]:
    """Iteration distance between successive touches of one address.

    ``loops`` is the enclosing serial loop nest as ``(var, extent)``
    pairs, outermost first (the shape of ``AccessSite.serial``).  The
    innermost loop whose variable does not advance the address carries
    the temporal reuse; the distance is the product of the trip counts
    of the loops nested *inside* it that do advance it — i.e. how many
    distinct addresses stream past before the same one returns.  This
    is the working-set size a cache must hold to convert the re-reads
    into hits.  Returns None when no enclosing loop carries reuse, or
    when a stride or extent cannot be resolved under ``bindings``.
    """
    carrier = None
    for depth, (var, _extent) in enumerate(loops):
        s = stride_of(index, var, bindings)
        if s is None:
            return None
        if s == 0:
            carrier = depth
    if carrier is None:
        return None
    distance = 1
    for var, extent in loops[carrier + 1:]:
        if stride_of(index, var, bindings) == 0:
            continue
        e = extent if isinstance(extent, _e.Expr) else _e.IntImm(extent)
        n = eval_int(e, bindings)
        if n is None:
            return None
        distance *= max(1, n)
    return distance


def contains_reduce(e: _e.Expr) -> bool:
    """True if a Reduce node appears anywhere in the expression."""

    class _V(ExprVisitor):
        found = False

        def visit_Reduce(self, r: _e.Reduce) -> None:
            self.found = True

    v = _V()
    v.visit(e)
    return v.found


def count_flops_expr(e: _e.Expr) -> int:
    """Count floating-point add/sub/mul/div/min/max/exp ops in an expression."""

    class _V(ExprVisitor):
        def __init__(self) -> None:
            self.flops = 0

        def generic_visit(self, node: _e.Expr) -> None:
            if (
                isinstance(node, (_e.Add, _e.Sub, _e.Mul, _e.Div, _e.Min, _e.Max))
                and node.dtype == _e.FLOAT32
            ):
                self.flops += 1
            elif isinstance(node, _e.Call):
                self.flops += 1
            super().generic_visit(node)

    v = _V()
    v.visit(e)
    return v.flops
