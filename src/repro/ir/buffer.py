"""Buffers and channels: the memory objects referenced by lowered IR.

A :class:`Buffer` corresponds to one OpenCL memory object.  Its *scope*
determines how the AOC model implements it (thesis Section 2.4.2):

``global``
    External memory (DDR4/HBM2); accessed through load-store units.
``local``
    On-chip block RAM shared within a kernel.
``register``
    Private registers; small accumulators created by cached writes
    (Section 4.5).
``constant``
    Constant cache carved out of global memory.

Shapes may mix integers and :class:`~repro.ir.expr.Var` — symbolic
dimensions are how parameterized kernels (Section 5.3) are expressed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.errors import IRError
from repro.ir import expr as _e

SCOPES = ("global", "local", "register", "constant")

ShapeDim = Union[int, _e.Var]


class Buffer:
    """A typed, shaped memory object with an allocation scope.

    ``strides`` (optional) gives an explicit per-dimension stride, each an
    int or a symbolic Var.  TVM's symbolic-shape kernels pass strides as
    runtime arguments (thesis Listing 5.10); a symbolic stride on the
    innermost dimension is what prevents AOC from coalescing accesses, and
    pinning it to the literal ``1`` (Listing 5.11) is the workaround this
    reproduction also implements.
    """

    __slots__ = ("name", "shape", "dtype", "scope", "strides")

    def __init__(
        self,
        name: str,
        shape: Sequence[ShapeDim],
        dtype: str = _e.FLOAT32,
        scope: str = "global",
        strides: Optional[Sequence[ShapeDim]] = None,
    ) -> None:
        if scope not in SCOPES:
            raise IRError(f"unknown buffer scope {scope!r}")
        if not name:
            raise IRError("Buffer needs a name")
        shape = tuple(shape)
        for dim in shape:
            if isinstance(dim, int):
                if dim <= 0:
                    raise IRError(f"buffer {name}: non-positive dim {dim}")
            elif not isinstance(dim, _e.Var):
                raise IRError(f"buffer {name}: dim must be int or Var, got {dim!r}")
        self.name = name
        self.shape: Tuple[ShapeDim, ...] = shape
        self.dtype = dtype
        self.scope = scope
        if strides is not None:
            strides = tuple(strides)
            if len(strides) != len(shape):
                raise IRError(f"buffer {name}: strides/shape rank mismatch")
        self.strides: Optional[Tuple[ShapeDim, ...]] = strides

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def is_symbolic(self) -> bool:
        """True if any dimension is a symbolic Var."""
        return any(isinstance(d, _e.Var) for d in self.shape)

    def num_elements(self) -> Optional[int]:
        """Static element count, or None if the shape is symbolic."""
        if self.is_symbolic:
            return None
        total = 1
        for d in self.shape:
            total *= int(d)
        return total

    def size_bytes(self) -> Optional[int]:
        """Static byte size (float32/int32 are 4 bytes), or None."""
        n = self.num_elements()
        return None if n is None else n * 4

    def require_num_elements(self) -> int:
        """Element count, raising when the shape is symbolic.

        Callers that *allocate* (host buffers, arena slots, transfer
        sizes) must use this instead of :meth:`num_elements`: a silently
        propagated ``None`` turns into a ``TypeError`` far from the
        cause.  The failure is the RM002 condition — a size unresolvable
        without bindings — reported where it arises.
        """
        n = self.num_elements()
        if n is None:
            sym = ", ".join(
                d.name for d in self.shape if isinstance(d, _e.Var)
            )
            raise IRError(
                f"buffer {self.name}: size is symbolic in ({sym}) and "
                "cannot be resolved without bindings (RM002) — bind the "
                "shape vars or verify the plan with repro.verify.memory"
            )
        return n

    def require_size_bytes(self) -> int:
        """Byte size, raising (RM002 condition) when symbolic."""
        return self.require_num_elements() * 4

    def flatten_index(self, indices: Sequence[_e.ExprLike]) -> _e.Expr:
        """Row-major flattening of multi-dimensional indices.

        Symbolic dims appear as Var factors in the resulting affine
        expression — exactly the stride expressions the thesis shows in
        Listing 5.10 that defeat AOC's access coalescing.
        """
        if len(indices) != self.ndim:
            raise IRError(
                f"buffer {self.name}: {len(indices)} indices for {self.ndim} dims"
            )
        if self.strides is not None:
            flat: _e.Expr = _e.IntImm(0)
            for stride, idx in zip(self.strides, indices):
                stride_e = stride if isinstance(stride, _e.Expr) else _e.IntImm(int(stride))
                flat = flat + _e.convert(idx) * stride_e
            return _simplify_affine(flat)
        flat = _e.convert(indices[0])
        for dim, idx in zip(self.shape[1:], indices[1:]):
            dim_e = dim if isinstance(dim, _e.Expr) else _e.IntImm(int(dim))
            flat = flat * dim_e + _e.convert(idx)
        return _simplify_affine(flat)

    def load(self, *indices: _e.ExprLike) -> _e.Load:
        """Build a Load of this buffer at multi-dim indices."""
        return _e.Load(self, self.flatten_index(indices))

    def __getitem__(self, indices) -> _e.Load:
        if not isinstance(indices, tuple):
            indices = (indices,)
        return self.load(*indices)

    def with_scope(self, scope: str) -> "Buffer":
        """Copy of this buffer in a different scope (cache_write helper)."""
        return Buffer(self.name, self.shape, self.dtype, scope, self.strides)

    def __repr__(self) -> str:
        dims = "x".join(
            d.name if isinstance(d, _e.Var) else str(d) for d in self.shape
        )
        return f"Buffer({self.name}: {self.dtype}[{dims}] @{self.scope})"


class Channel:
    """An Intel OpenCL channel: a FIFO datapath between two kernels.

    ``depth`` is the buffered-FIFO capacity in elements; the thesis sizes it
    to hold the producer's output feature map so producers never stall
    (Section 4.11).  Depth 0 models an unbuffered (register) channel.
    """

    __slots__ = ("name", "dtype", "depth")

    def __init__(self, name: str, dtype: str = _e.FLOAT32, depth: int = 0) -> None:
        if depth < 0:
            raise IRError("channel depth must be >= 0")
        self.name = name
        self.dtype = dtype
        self.depth = depth

    def read(self) -> _e.ChannelRead:
        return _e.ChannelRead(self)

    def __repr__(self) -> str:
        return f"Channel({self.name}, depth={self.depth})"


def _simplify_affine(e: _e.Expr) -> _e.Expr:
    """Light constant folding over +,*,// so flattened indices stay readable."""
    if isinstance(e, _e.Add):
        a, b = _simplify_affine(e.a), _simplify_affine(e.b)
        if isinstance(a, _e.IntImm) and isinstance(b, _e.IntImm):
            return _e.IntImm(a.value + b.value)
        if isinstance(a, _e.IntImm) and a.value == 0:
            return b
        if isinstance(b, _e.IntImm) and b.value == 0:
            return a
        return _e.Add(a, b)
    if isinstance(e, _e.Mul):
        a, b = _simplify_affine(e.a), _simplify_affine(e.b)
        if isinstance(a, _e.IntImm) and isinstance(b, _e.IntImm):
            return _e.IntImm(a.value * b.value)
        if isinstance(a, _e.IntImm) and a.value == 1:
            return b
        if isinstance(b, _e.IntImm) and b.value == 1:
            return a
        if isinstance(a, _e.IntImm) and a.value == 0:
            return a
        if isinstance(b, _e.IntImm) and b.value == 0:
            return b
        return _e.Mul(a, b)
    return e
