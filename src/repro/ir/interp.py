"""A NumPy-backed interpreter for lowered kernel IR.

Executes a :class:`~repro.ir.kernel.Kernel` body element-by-element in
Python.  This is the reproduction's ground-truth semantics: every schedule
(naive or optimized) must produce the same numbers through this interpreter
as the pure-NumPy reference operators, which is how tests establish that
the transformations in Chapter 4/5 of the thesis are semantics-preserving.

It is deliberately simple and slow (used on small shapes only); the fast
functional path for whole networks lives in :mod:`repro.runtime.executor`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import RuntimeSimError
from repro.ir import expr as _e
from repro.ir import stmt as _s
from repro.ir.buffer import Buffer, Channel
from repro.ir.kernel import Kernel

_F32 = np.float32

# Scalar intrinsics run through the float32 NumPy ufuncs, NOT ``math.*``:
# ``math.exp`` would compute in float64 and round once at the end, which
# differs in the last ulp from the single-rounding float32 ufunc.  Routing
# both the scalar and vectorized interpreters through the same ufuncs makes
# them agree bit-for-bit by construction.
_INTRINSICS = {
    "exp": np.exp,
    "sqrt": np.sqrt,
    "fabs": np.abs,
    "floor": np.floor,
    "ceil": np.ceil,
    "tanh": np.tanh,
    "log": np.log,
}


class ChannelState:
    """FIFO state shared between interpreted kernels.

    Backed by a list plus a read cursor so the vectorized interpreter can
    push/pop whole array chunks (:meth:`write_chunk` / :meth:`read_chunk`)
    without per-element deque traffic; the scalar :meth:`write` /
    :meth:`read` API is unchanged.  Values are stored as Python floats,
    which hold every float32 exactly, so chunk round-trips are bit-exact.
    """

    def __init__(self, channel: Channel) -> None:
        self.channel = channel
        self._items: List[float] = []
        self._head = 0

    def __len__(self) -> int:
        return len(self._items) - self._head

    def _compact(self) -> None:
        if self._head > 4096 and self._head * 2 > len(self._items):
            del self._items[: self._head]
            self._head = 0

    def write(self, value: float) -> None:
        self._items.append(float(value))

    def read(self) -> float:
        if self._head >= len(self._items):
            raise RuntimeSimError(
                f"read from empty channel {self.channel.name}: interpreted "
                "kernels must be run producer-first"
            )
        value = self._items[self._head]
        self._head += 1
        self._compact()
        return _F32(value)

    def write_chunk(self, values: np.ndarray) -> None:
        """Append a flat float32 array, preserving element order."""
        self._items.extend(np.asarray(values, dtype=_F32).ravel().tolist())

    def read_chunk(self, n: int) -> np.ndarray:
        """Pop the next ``n`` values as a float32 array (FIFO order)."""
        if len(self) < n:
            raise RuntimeSimError(
                f"read from empty channel {self.channel.name}: interpreted "
                "kernels must be run producer-first"
            )
        out = np.array(
            self._items[self._head : self._head + n], dtype=_F32
        )
        self._head += n
        self._compact()
        return out


class Interpreter:
    """Interprets one kernel invocation.

    Parameters
    ----------
    buffers:
        Maps buffer *name* -> 1-D ``np.ndarray`` backing store (flat,
        row-major).  Must contain an entry for every global buffer in the
        kernel signature; local/register buffers are allocated on demand.
    bindings:
        Values for the kernel's symbolic scalar arguments (parameterized
        kernels).
    channels:
        Shared :class:`ChannelState` per channel name, for pipelined
        multi-kernel programs.
    """

    def __init__(
        self,
        buffers: Dict[str, np.ndarray],
        bindings: Optional[Dict[_e.Var, int]] = None,
        channels: Optional[Dict[str, ChannelState]] = None,
    ) -> None:
        self.buffers = buffers
        self.env: Dict[_e.Var, float] = dict(bindings or {})
        self.channels = channels if channels is not None else {}

    # ------------------------------------------------------------------
    def run(self, kernel: Kernel) -> None:
        for buf in kernel.args:
            if buf.name not in self.buffers:
                if buf.name in kernel.scratch_args:
                    n = buf.num_elements()
                    if n is None:
                        n = self._symbolic_numel(buf)
                    self.buffers[buf.name] = np.zeros(n, dtype=_F32)
                    continue
                raise RuntimeSimError(f"missing buffer {buf.name}")
        # bindings may come from an alpha-equivalent schedule build when
        # the kernel replays from the per-kernel lower cache — adopt
        # same-named entries onto this kernel's own vars
        self.env.update(kernel.bind_by_name(self.env))
        for var in kernel.scalar_args:
            if var not in self.env:
                raise RuntimeSimError(f"missing scalar argument {var.name}")
        self._exec(kernel.body)

    # -- statements -----------------------------------------------------
    def _exec(self, s: _s.Stmt) -> None:
        if isinstance(s, _s.SeqStmt):
            for c in s.stmts:
                self._exec(c)
        elif isinstance(s, _s.For):
            extent = int(self._eval(s.extent))
            var = s.loop_var
            for i in range(extent):
                self.env[var] = i
                self._exec(s.body)
            self.env.pop(var, None)
        elif isinstance(s, _s.Store):
            arr = self._storage(s.buffer)
            idx = int(self._eval(s.index))
            val = self._eval(s.value)
            if arr.dtype == _F32:
                val = _F32(val)
            arr[idx] = val
        elif isinstance(s, _s.IfThenElse):
            if self._eval(s.cond):
                self._exec(s.then_body)
            elif s.else_body is not None:
                self._exec(s.else_body)
        elif isinstance(s, _s.Allocate):
            n = 1
            for d in s.buffer.shape:
                n *= int(self._eval(d if isinstance(d, _e.Expr) else _e.IntImm(d)))
            # fresh allocation per entry (loop bodies re-allocate)
            self.buffers[s.buffer.name] = np.zeros(n, dtype=_F32)
            self._exec(s.body)
        elif isinstance(s, _s.AttrStmt):
            self._exec(s.body)
        elif isinstance(s, _s.ChannelWrite):
            self._channel(s.channel).write(_F32(self._eval(s.value)))
        elif isinstance(s, _s.Evaluate):
            self._eval(s.value)
        else:
            raise RuntimeSimError(f"cannot interpret {type(s).__name__}")

    # -- expressions ------------------------------------------------------
    def _eval(self, e: _e.Expr):
        if isinstance(e, _e.IntImm):
            return e.value
        if isinstance(e, _e.FloatImm):
            return _F32(e.value)
        if isinstance(e, _e.Var):
            try:
                return self.env[e]
            except KeyError:
                raise RuntimeSimError(f"unbound variable {e.name}") from None
        if isinstance(e, _e.Load):
            arr = self._storage(e.buffer)
            return arr[int(self._eval(e.index))]
        if isinstance(e, _e.ChannelRead):
            return self._channel(e.channel).read()
        if isinstance(e, _e._BinaryOp):
            a = self._eval(e.a)
            b = self._eval(e.b)
            is_f32 = e.dtype == _e.FLOAT32
            if isinstance(e, _e.Add):
                r = a + b
            elif isinstance(e, _e.Sub):
                r = a - b
            elif isinstance(e, _e.Mul):
                r = a * b
            elif isinstance(e, _e.Div):
                r = a / b
            elif isinstance(e, _e.FloorDiv):
                return int(a) // int(b)
            elif isinstance(e, _e.Mod):
                return int(a) % int(b)
            elif isinstance(e, _e.Min):
                r = min(a, b)
            elif isinstance(e, _e.Max):
                r = max(a, b)
            elif isinstance(e, _e.LT):
                return a < b
            elif isinstance(e, _e.LE):
                return a <= b
            elif isinstance(e, _e.GT):
                return a > b
            elif isinstance(e, _e.GE):
                return a >= b
            elif isinstance(e, _e.EQ):
                return a == b
            elif isinstance(e, _e.NE):
                return a != b
            elif isinstance(e, _e.And):
                return bool(a) and bool(b)
            elif isinstance(e, _e.Or):
                return bool(a) or bool(b)
            else:  # pragma: no cover
                raise RuntimeSimError(f"unhandled op {type(e).__name__}")
            return _F32(r) if is_f32 else r
        if isinstance(e, _e.Not):
            return not bool(self._eval(e.a))
        if isinstance(e, _e.Cast):
            v = self._eval(e.value)
            return _F32(v) if e.dtype == _e.FLOAT32 else int(v)
        if isinstance(e, _e.Select):
            if self._eval(e.cond):
                return self._eval(e.then_value)
            return self._eval(e.else_value)
        if isinstance(e, _e.Call):
            args = [_F32(self._eval(a)) for a in e.args]
            return _F32(_INTRINSICS[e.name](*args))
        raise RuntimeSimError(f"cannot evaluate {type(e).__name__}")

    def _symbolic_numel(self, buffer: Buffer) -> int:
        n = 1
        for d in buffer.shape:
            n *= int(self._eval(d if isinstance(d, _e.Expr) else _e.IntImm(d)))
        return n

    # ------------------------------------------------------------------
    def _storage(self, buffer: Buffer) -> np.ndarray:
        arr = self.buffers.get(buffer.name)
        if arr is None:
            raise RuntimeSimError(f"buffer {buffer.name} has no storage")
        return arr

    def _channel(self, ch: Channel) -> ChannelState:
        st = self.channels.get(ch.name)
        if st is None:
            st = ChannelState(ch)
            self.channels[ch.name] = st
        return st


def run_kernel(
    kernel: Kernel,
    buffers: Dict[str, np.ndarray],
    bindings: Optional[Dict[_e.Var, int]] = None,
    channels: Optional[Dict[str, ChannelState]] = None,
) -> None:
    """Interpret one kernel invocation in place (buffers are mutated)."""
    Interpreter(buffers, bindings, channels).run(kernel)


def run_program_sequential(
    kernels,
    buffers: Dict[str, np.ndarray],
    bindings: Optional[Dict[_e.Var, int]] = None,
) -> None:
    """Interpret a list of kernels in order with shared channel state.

    Producer kernels must precede consumers (sufficient for feed-forward
    layer pipelines, where channels act as unbounded FIFOs functionally).
    """
    channels: Dict[str, ChannelState] = {}
    for k in kernels:
        Interpreter(buffers, bindings, channels).run(k)
