"""Human-readable pretty printer for IR expressions and statements.

The output is C-like pseudocode close to the listings in the thesis; the
real OpenCL-C emission lives in :mod:`repro.codegen.opencl`.  This printer
is used by ``repr`` and by tests asserting loop structure.
"""

from __future__ import annotations

from repro.ir import expr as _e
from repro.ir import stmt as _s

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "//": 6,
    "%": 6,
}


def expr_str(e: _e.Expr, parent_prec: int = 0) -> str:
    """Render an expression as C-like text."""
    if isinstance(e, _e.IntImm):
        return str(e.value)
    if isinstance(e, _e.FloatImm):
        return f"{e.value:g}f"
    if isinstance(e, _e.StringImm):
        return repr(e.value)
    if isinstance(e, _e.Var):
        return e.name
    if isinstance(e, (_e.Min, _e.Max)):
        fn = "min" if isinstance(e, _e.Min) else "max"
        return f"{fn}({expr_str(e.a)}, {expr_str(e.b)})"
    if isinstance(e, _e._BinaryOp):
        op = e.op_name
        prec = _PRECEDENCE.get(op, 7)
        inner = f"{expr_str(e.a, prec)} {op} {expr_str(e.b, prec + 1)}"
        return f"({inner})" if prec < parent_prec else inner
    if isinstance(e, _e.Not):
        return f"!{expr_str(e.a, 8)}"
    if isinstance(e, _e.Cast):
        return f"({e.dtype}){expr_str(e.value, 8)}"
    if isinstance(e, _e.Select):
        return (
            f"({expr_str(e.cond)} ? {expr_str(e.then_value)}"
            f" : {expr_str(e.else_value)})"
        )
    if isinstance(e, _e.Call):
        return f"{e.name}({', '.join(expr_str(a) for a in e.args)})"
    if isinstance(e, _e.Load):
        return f"{e.buffer.name}[{expr_str(e.index)}]"
    if isinstance(e, _e.ChannelRead):
        return f"read_channel_intel({e.channel.name})"
    if isinstance(e, _e.Reduce):
        axes = ", ".join(ax.var.name for ax in e.axes)
        return f"{e.kind}({expr_str(e.value)}, axis=[{axes}])"
    return f"<{type(e).__name__}>"


def stmt_str(s: _s.Stmt, indent: int = 0) -> str:
    """Render a statement tree as indented pseudocode."""
    pad = "  " * indent
    if isinstance(s, _s.Store):
        return f"{pad}{s.buffer.name}[{expr_str(s.index)}] = {expr_str(s.value)};"
    if isinstance(s, _s.Evaluate):
        return f"{pad}{expr_str(s.value)};"
    if isinstance(s, _s.ChannelWrite):
        return f"{pad}write_channel_intel({s.channel.name}, {expr_str(s.value)});"
    if isinstance(s, _s.SeqStmt):
        return "\n".join(stmt_str(c, indent) for c in s.stmts)
    if isinstance(s, _s.For):
        v = s.loop_var.name
        header = f"{pad}for ({v} = 0; {v} < {expr_str(s.extent)}; ++{v})"
        pragma = ""
        if s.kind is _s.ForKind.UNROLLED:
            factor = "" if s.unroll_factor is None else f" {s.unroll_factor}"
            pragma = f"{pad}#pragma unroll{factor}\n"
        elif s.kind is _s.ForKind.PIPELINED:
            pragma = f"{pad}// pipelined\n"
        return f"{pragma}{header} {{\n{stmt_str(s.body, indent + 1)}\n{pad}}}"
    if isinstance(s, _s.IfThenElse):
        out = f"{pad}if ({expr_str(s.cond)}) {{\n{stmt_str(s.then_body, indent + 1)}\n{pad}}}"
        if s.else_body is not None:
            out += f" else {{\n{stmt_str(s.else_body, indent + 1)}\n{pad}}}"
        return out
    if isinstance(s, _s.Allocate):
        dims = "][".join(
            d.name if isinstance(d, _e.Var) else str(d) for d in s.buffer.shape
        )
        decl = f"{pad}{s.buffer.scope} float {s.buffer.name}[{dims}];"
        return f"{decl}\n{stmt_str(s.body, indent)}"
    if isinstance(s, _s.AttrStmt):
        return f"{pad}// attr {s.key} = {s.value}\n{stmt_str(s.body, indent)}"
    return f"{pad}<{type(s).__name__}>"
