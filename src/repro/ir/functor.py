"""Generic traversal infrastructure: visitors and mutators over IR trees.

:class:`ExprVisitor`/:class:`StmtVisitor` implement post-order traversal
with per-node-type hooks; :class:`ExprMutator`/:class:`StmtMutator`
rebuild trees functionally (the input IR is never modified in place).
All compiler passes (unroll expansion, variable substitution, dependence
analysis, the interpreter) are built on these.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.ir import expr as _e
from repro.ir import stmt as _s


class ExprVisitor:
    """Post-order expression visitor. Override ``visit_<cls>`` methods."""

    def visit(self, e: _e.Expr) -> None:
        method = getattr(self, f"visit_{type(e).__name__}", None)
        if method is not None:
            method(e)
        else:
            self.generic_visit(e)

    def generic_visit(self, e: _e.Expr) -> None:
        for child in e.children():
            self.visit(child)


class ExprMutator:
    """Functional expression rewriter. Override ``mutate_<cls>`` methods.

    Default behaviour reconstructs each node from mutated children; nodes
    whose children are unchanged are returned as-is (preserving sharing).
    """

    def mutate(self, e: _e.Expr) -> _e.Expr:
        method = getattr(self, f"mutate_{type(e).__name__}", None)
        if method is not None:
            return method(e)
        return self.generic_mutate(e)

    def generic_mutate(self, e: _e.Expr) -> _e.Expr:
        if isinstance(e, (_e.IntImm, _e.FloatImm, _e.StringImm, _e.Var)):
            return e
        if isinstance(e, _e._BinaryOp):
            a, b = self.mutate(e.a), self.mutate(e.b)
            if a is e.a and b is e.b:
                return e
            return type(e)(a, b)
        if isinstance(e, _e.Not):
            a = self.mutate(e.a)
            return e if a is e.a else _e.Not(a)
        if isinstance(e, _e.Cast):
            v = self.mutate(e.value)
            return e if v is e.value else _e.Cast(e.dtype, v)
        if isinstance(e, _e.Select):
            c = self.mutate(e.cond)
            t = self.mutate(e.then_value)
            f = self.mutate(e.else_value)
            if c is e.cond and t is e.then_value and f is e.else_value:
                return e
            return _e.Select(c, t, f)
        if isinstance(e, _e.Call):
            args = tuple(self.mutate(a) for a in e.args)
            if all(a is b for a, b in zip(args, e.args)):
                return e
            return _e.Call(e.name, args, e.dtype)
        if isinstance(e, _e.Load):
            idx = self.mutate(e.index)
            return e if idx is e.index else _e.Load(e.buffer, idx)
        if isinstance(e, _e.ChannelRead):
            return e
        if isinstance(e, _e.Reduce):
            v = self.mutate(e.value)
            return e if v is e.value else _e.Reduce(e.kind, v, e.axes)
        raise NotImplementedError(f"no mutate rule for {type(e).__name__}")


class StmtVisitor(ExprVisitor):
    """Post-order statement visitor; also walks embedded expressions."""

    def visit_stmt(self, s: _s.Stmt) -> None:
        method = getattr(self, f"visit_{type(s).__name__}", None)
        if method is not None:
            method(s)
        else:
            self.generic_visit_stmt(s)

    def generic_visit_stmt(self, s: _s.Stmt) -> None:
        if isinstance(s, _s.Store):
            self.visit(s.index)
            self.visit(s.value)
        elif isinstance(s, _s.Evaluate):
            self.visit(s.value)
        elif isinstance(s, _s.ChannelWrite):
            self.visit(s.value)
        elif isinstance(s, _s.For):
            self.visit(s.extent)
        elif isinstance(s, _s.IfThenElse):
            self.visit(s.cond)
        for child in s.children():
            self.visit_stmt(child)


class StmtMutator(ExprMutator):
    """Functional statement rewriter."""

    def mutate_stmt(self, s: _s.Stmt) -> Optional[_s.Stmt]:
        method = getattr(self, f"mutate_{type(s).__name__}", None)
        if method is not None:
            return method(s)
        return self.generic_mutate_stmt(s)

    def generic_mutate_stmt(self, s: _s.Stmt) -> Optional[_s.Stmt]:
        if isinstance(s, _s.Store):
            idx, val = self.mutate(s.index), self.mutate(s.value)
            if idx is s.index and val is s.value:
                return s
            return _s.Store(s.buffer, idx, val)
        if isinstance(s, _s.Evaluate):
            v = self.mutate(s.value)
            return s if v is s.value else _s.Evaluate(v)
        if isinstance(s, _s.ChannelWrite):
            v = self.mutate(s.value)
            return s if v is s.value else _s.ChannelWrite(s.channel, v)
        if isinstance(s, _s.SeqStmt):
            new = [self.mutate_stmt(c) for c in s.stmts]
            new = [c for c in new if c is not None]
            if len(new) == len(s.stmts) and all(a is b for a, b in zip(new, s.stmts)):
                return s
            if not new:
                return None
            return _s.SeqStmt(new)
        if isinstance(s, _s.For):
            extent = self.mutate(s.extent)
            body = self.mutate_stmt(s.body)
            if body is None:
                return None
            if extent is s.extent and body is s.body:
                return s
            return _s.For(s.loop_var, extent, body, s.kind, s.unroll_factor)
        if isinstance(s, _s.IfThenElse):
            cond = self.mutate(s.cond)
            then_body = self.mutate_stmt(s.then_body)
            else_body = self.mutate_stmt(s.else_body) if s.else_body else None
            if cond is s.cond and then_body is s.then_body and else_body is s.else_body:
                return s
            if then_body is None and else_body is None:
                return None
            return _s.IfThenElse(cond, then_body, else_body)
        if isinstance(s, _s.Allocate):
            body = self.mutate_stmt(s.body)
            if body is None:
                return None
            return s if body is s.body else _s.Allocate(s.buffer, body)
        if isinstance(s, _s.AttrStmt):
            body = self.mutate_stmt(s.body)
            if body is None:
                return None
            return s if body is s.body else _s.AttrStmt(s.key, s.value, body)
        raise NotImplementedError(f"no mutate rule for {type(s).__name__}")


class Substituter(ExprMutator):
    """Replace variables by expressions (used by unrolling & binding)."""

    def __init__(self, mapping: Dict[_e.Var, _e.Expr]) -> None:
        self.mapping = mapping

    def mutate_Var(self, e: _e.Var) -> _e.Expr:
        return self.mapping.get(e, e)


class StmtSubstituter(StmtMutator, Substituter):
    """Variable substitution over whole statement trees."""

    def __init__(self, mapping: Dict[_e.Var, _e.Expr]) -> None:
        Substituter.__init__(self, mapping)


def substitute(e: _e.Expr, mapping: Dict[_e.Var, _e.Expr]) -> _e.Expr:
    """Substitute variables in an expression."""
    return Substituter(mapping).mutate(e)


def substitute_stmt(s: _s.Stmt, mapping: Dict[_e.Var, _e.Expr]) -> _s.Stmt:
    """Substitute variables in a statement tree."""
    out = StmtSubstituter(mapping).mutate_stmt(s)
    assert out is not None
    return out


def visit_exprs(s: _s.Stmt, fn: Callable[[_e.Expr], None]) -> None:
    """Call ``fn`` on every (sub)expression embedded in ``s``."""

    class _V(StmtVisitor):
        def generic_visit(self, e: _e.Expr) -> None:
            fn(e)
            super().generic_visit(e)

    _V().visit_stmt(s)
