"""A vectorized interpreter for lowered kernel IR.

Executes whole loop bands as NumPy array operations instead of walking
them element-by-element like :class:`~repro.ir.interp.Interpreter`.  The
contract is strict: for every construct it vectorizes, the result is
**bit-identical in float32** to the scalar interpreter; any construct it
cannot prove safe falls back to the scalar loop at that nesting level
(inner loops are re-tried).  The fallback decision is made before any
state is mutated, so a band either executes fully vectorized or not at
all — there is never a half-vectorized rollback.

How a band executes
-------------------
A *band* is one ``For`` subtree.  Every loop variable in it becomes a
broadcast ``np.arange`` axis; each leaf statement (``Store``,
``ChannelWrite``, ``Evaluate``) is evaluated once over the cartesian
product of its enclosing loop extents.  Executing the leaves one after
the other (instead of interleaved per iteration) is loop distribution,
which is only sound under the dependence rules checked in phase A:

* a buffer written by one leaf and touched by another must be allocated
  *inside* the band (it is then privatized per iteration lane, so leaves
  only communicate lane-locally, in program order);
* a store that reads its own buffer must match the reduction pattern the
  lowerer emits (``buf[i] = combine(buf[i], update)``) — it is folded
  with ``np.add.accumulate`` (or ``maximum``/``minimum``), which applies
  the combiner in exactly the scalar iteration order, keeping float32
  results bit-identical (``np.sum``'s pairwise reduction would not be);
* all other stores must hit pairwise-distinct addresses (checked with
  ``np.unique``);
* each channel is popped by at most one leaf and pushed by at most one
  leaf, never both in one band, and the FIFO must already hold the whole
  chunk a consumer needs.

Phase A (planning) evaluates every index expression — these are pure
functions of loop variables and scalar bindings — checks bounds, zero
divisors, address uniqueness and channel budgets, and raises
:class:`_Fallback` on any violation.  Phase B (execution) then performs
the gathers, arithmetic, scatters and channel chunk transfers; by
construction it cannot fail after phase A passed.

Every band attempt is recorded in :attr:`VectorizedInterpreter.events`
(kind ``"vectorized"`` or ``"fallback"`` plus a reason), so tests can
prove that each shipped kernel either vectorizes or falls back cleanly.
"""

from __future__ import annotations

import math
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.errors import RuntimeSimError
from repro.ir import expr as _e
from repro.ir import stmt as _s
from repro.ir.buffer import Buffer
from repro.ir.interp import _INTRINSICS, ChannelState, Interpreter, _F32
from repro.ir.kernel import Kernel

__all__ = ["VectorizedInterpreter", "BandEvent", "run_kernel_vectorized"]

#: Largest per-leaf iteration-space size executed as one array op.  Bigger
#: bands would materialize multi-GB index arrays; the loop above the limit
#: runs as a Python loop and the loops below it vectorize instead.
BAND_SIZE_LIMIT = 1 << 22


class _Fallback(Exception):
    """Raised during planning when a band cannot be vectorized soundly."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


class BandEvent(NamedTuple):
    """One vectorization attempt: a band executed or fell back."""

    kind: str  # 'vectorized' | 'fallback'
    loop_var: str
    detail: str


class _Axis(NamedTuple):
    var: _e.Var
    extent: int
    pos: int  # depth in the leaf's loop path == broadcast axis position


class _Private(NamedTuple):
    """A buffer allocated inside the band, expanded to one copy per lane."""

    buffer: Buffer
    numel: int
    prefix: Tuple[_Axis, ...]  # loop path at the allocation point
    lane_count: int
    data: np.ndarray


def _to_f32(x):
    """Coerce any evaluation result to float32 without double rounding."""
    if isinstance(x, np.ndarray):
        return x if x.dtype == _F32 else x.astype(_F32)
    return _F32(x)


def _is_pure(e: _e.Expr) -> bool:
    """True when ``e`` reads no buffer and no channel."""
    if isinstance(e, (_e.Load, _e.ChannelRead)):
        return False
    return all(_is_pure(c) for c in e.children())


class _Leaf:
    """One vectorizable leaf statement plus its planning results."""

    __slots__ = (
        "stmt", "path", "shape", "numel", "kind", "flat_idx", "lanes",
        "perm", "red_k", "red_op", "update", "target", "access", "env",
        "reads_channels",
    )

    def __init__(self, stmt: _s.Stmt, path: Tuple[_Axis, ...]) -> None:
        self.stmt = stmt
        self.path = path
        self.shape = tuple(ax.extent for ax in path)
        self.numel = math.prod(self.shape)
        self.kind = ""
        self.flat_idx: Optional[np.ndarray] = None
        self.lanes: Optional[np.ndarray] = None
        self.perm: Tuple[int, ...] = ()
        self.red_k = 0
        self.red_op: Optional[type] = None
        self.update: Optional[_e.Expr] = None
        self.target: Optional[str] = None
        #: id(Load/Store node) -> its effective index array, precomputed in
        #: phase A (includes the lane base for privatized buffers)
        self.access: Dict[int, object] = {}
        self.env: Dict[_e.Var, np.ndarray] = {}
        for ax in path:
            rshape = [1] * len(path)
            rshape[ax.pos] = ax.extent
            self.env[ax.var] = np.arange(
                ax.extent, dtype=np.int64
            ).reshape(rshape)
        self.reads_channels: List[str] = []


class _BandPlan:
    """Phase A product: validated leaves, private buffers, channel budget."""

    def __init__(self, interp: "VectorizedInterpreter", root: _s.For) -> None:
        self.it = interp
        self.root = root
        self.leaves: List[_Leaf] = []
        self.privates: Dict[str, _Private] = {}
        self._collect(root, ())
        self._check_cross_leaf()

    # -- collection -----------------------------------------------------
    def _collect(self, s: _s.Stmt, path: Tuple[_Axis, ...]) -> None:
        if isinstance(s, _s.For):
            extent = self._band_invariant_int(s.extent, "loop extent")
            ax = _Axis(s.loop_var, extent, len(path))
            if any(p.var is s.loop_var for p in path):
                raise _Fallback(f"loop variable {s.loop_var.name} shadowed")
            self._collect(s.body, path + (ax,))
        elif isinstance(s, _s.SeqStmt):
            for child in s.stmts:
                self._collect(child, path)
        elif isinstance(s, _s.AttrStmt):
            self._collect(s.body, path)
        elif isinstance(s, _s.Allocate):
            name = s.buffer.name
            if name in self.privates:
                raise _Fallback(f"buffer {name} allocated twice in band")
            numel = 1
            for d in s.buffer.shape:
                d = d if isinstance(d, _e.Expr) else _e.IntImm(int(d))
                numel *= self._band_invariant_int(d, "allocation shape")
            lane_count = math.prod(ax.extent for ax in path)
            if lane_count * numel > BAND_SIZE_LIMIT:
                raise _Fallback("privatized allocation exceeds size limit")
            self.privates[name] = _Private(
                s.buffer, numel, path, lane_count,
                np.zeros(lane_count * numel, dtype=_F32),
            )
            self._collect(s.body, path)
        elif isinstance(s, (_s.Store, _s.ChannelWrite, _s.Evaluate)):
            self._add_leaf(s, path)
        elif isinstance(s, _s.IfThenElse):
            raise _Fallback("data-dependent control flow (IfThenElse)")
        else:
            raise _Fallback(f"unsupported statement {type(s).__name__}")

    def _band_invariant_int(self, e: _e.Expr, what: str) -> int:
        if isinstance(e, _e.IntImm):
            return e.value
        if not _is_pure(e):
            raise _Fallback(f"{what} reads memory")
        try:
            return int(self.it._eval(e))
        except RuntimeSimError:
            raise _Fallback(f"{what} depends on a band loop variable") from None

    def _add_leaf(self, s: _s.Stmt, path: Tuple[_Axis, ...]) -> None:
        leaf = _Leaf(s, path)
        if leaf.numel > BAND_SIZE_LIMIT:
            raise _Fallback("band exceeds vector size limit")
        checker = _LeafChecker(self, leaf)
        if isinstance(s, _s.Store):
            checker.classify_store()
        else:
            checker.walk(s.value, in_select=False)
            leaf.kind = "chanwrite" if isinstance(s, _s.ChannelWrite) else "eval"
        leaf.reads_channels = sorted(checker.channel_reads)
        self.leaves.append(leaf)

    # -- cross-leaf dependence + channel rules --------------------------
    def _check_cross_leaf(self) -> None:
        writers: Dict[str, List[int]] = {}
        readers: Dict[str, List[int]] = {}
        chan_readers: Dict[str, List[int]] = {}
        chan_writers: Dict[str, List[int]] = {}
        for i, leaf in enumerate(self.leaves):
            if isinstance(leaf.stmt, _s.Store):
                writers.setdefault(leaf.stmt.buffer.name, []).append(i)
            for name in _loaded_buffers(leaf.stmt):
                readers.setdefault(name, []).append(i)
            for name in leaf.reads_channels:
                chan_readers.setdefault(name, []).append(i)
            if isinstance(leaf.stmt, _s.ChannelWrite):
                chan_writers.setdefault(leaf.stmt.channel.name, []).append(i)
        for name, w in writers.items():
            if name in self.privates:
                continue  # lane-private: program order per lane is preserved
            if len(w) > 1:
                raise _Fallback(f"buffer {name} written by multiple statements")
            others = [i for i in readers.get(name, ()) if i != w[0]]
            if others:
                raise _Fallback(
                    f"buffer {name} written by one statement and read by "
                    "another"
                )
        for name, r in chan_readers.items():
            if len(r) > 1:
                raise _Fallback(f"channel {name} read by multiple statements")
            if name in chan_writers:
                raise _Fallback(f"channel {name} both read and written in band")
            state = self.it.channels.get(name)
            needed = self.leaves[r[0]].numel
            if state is None or len(state) < needed:
                raise _Fallback(
                    f"channel {name} holds fewer than {needed} values"
                )
        for name, w in chan_writers.items():
            if len(w) > 1:
                raise _Fallback(f"channel {name} written by multiple statements")

    # -- phase B --------------------------------------------------------
    def execute(self) -> None:
        for leaf in self.leaves:
            ev = _VecEval(self, leaf)
            s = leaf.stmt
            if leaf.kind == "parallel":
                arr = self._storage(s.buffer)
                val = ev.eval(s.value)
                if arr.dtype == _F32:
                    val = _to_f32(val)
                arr[leaf.flat_idx] = np.broadcast_to(val, leaf.shape).ravel()
            elif leaf.kind == "reduce":
                arr = self._storage(s.buffer)
                val = ev.eval(leaf.update)
                if arr.dtype == _F32:
                    val = _to_f32(val)
                lanes = leaf.lanes
                vals = (
                    np.broadcast_to(val, leaf.shape)
                    .transpose(leaf.perm)
                    .reshape(lanes.size, leaf.red_k)
                )
                init = arr[lanes].reshape(lanes.size, 1)
                chain = np.concatenate([init, vals], axis=1)
                if leaf.red_op is _e.Add:
                    folded = np.add.accumulate(chain, axis=1, dtype=arr.dtype)
                elif leaf.red_op is _e.Max:
                    folded = np.maximum.accumulate(chain, axis=1)
                else:
                    folded = np.minimum.accumulate(chain, axis=1)
                arr[lanes] = folded[:, -1]
            elif leaf.kind == "chanwrite":
                state = self.it._channel(s.channel)
                val = _to_f32(ev.eval(s.value))
                state.write_chunk(np.broadcast_to(val, leaf.shape).ravel())
            else:  # 'eval': run for channel-pop side effects only
                ev.eval(s.value)
        # Scalar semantics leave the last iteration's allocation visible in
        # the buffer map after the band; reproduce that so post-run buffer
        # inspection (and the soundness tests) see identical state.
        for name, pb in self.privates.items():
            if pb.lane_count > 0:
                start = (pb.lane_count - 1) * pb.numel
                self.it.buffers[name] = pb.data[start : start + pb.numel].copy()

    def _storage(self, buffer: Buffer) -> np.ndarray:
        pb = self.privates.get(buffer.name)
        if pb is not None:
            return pb.data
        arr = self.it.buffers.get(buffer.name)
        if arr is None:  # phase A verified existence; defensive only
            raise RuntimeSimError(f"buffer {buffer.name} has no storage")
        return arr


def _loaded_buffers(s: _s.Stmt) -> List[str]:
    names: List[str] = []

    def visit(e: _e.Expr) -> None:
        if isinstance(e, _e.Load):
            names.append(e.buffer.name)
        for c in e.children():
            visit(c)

    if isinstance(s, _s.Store):
        visit(s.index)
        visit(s.value)
    else:
        visit(s.value)
    return names


class _LeafChecker:
    """Phase A validation + pure-index evaluation for one leaf."""

    def __init__(self, plan: _BandPlan, leaf: _Leaf) -> None:
        self.plan = plan
        self.leaf = leaf
        self.channel_reads: set = set()
        self.loads: List[_e.Load] = []

    # -- expression validation ------------------------------------------
    def walk(self, e: _e.Expr, in_select: bool) -> None:
        if isinstance(e, _e.Load):
            self.loads.append(e)
            self._check_access(e, e.index)
        elif isinstance(e, _e.ChannelRead):
            if in_select:
                raise _Fallback("channel read under a select")
            if e.channel.name in self.channel_reads:
                raise _Fallback(
                    f"channel {e.channel.name} read twice in one statement"
                )
            self.channel_reads.add(e.channel.name)
        elif isinstance(e, (_e.FloorDiv, _e.Mod)):
            if e.a.dtype != _e.INT32 or e.b.dtype != _e.INT32:
                raise _Fallback("non-integer floordiv/mod")
            if not _is_pure(e):
                raise _Fallback("integer division on loaded values")
            self.walk(e.a, in_select)
            self.walk(e.b, in_select)
            divisor = self._eval_pure(e.b)
            if np.any(np.asarray(divisor) == 0):
                raise _Fallback("integer division by zero")
        elif isinstance(e, _e.Select):
            self.walk(e.cond, True)
            self.walk(e.then_value, True)
            self.walk(e.else_value, True)
        elif isinstance(e, _e.Var):
            if e not in self.leaf.env and e not in self.plan.it.env:
                raise _Fallback(f"unbound variable {e.name}")
        elif isinstance(e, (_e.IntImm, _e.FloatImm)):
            pass
        elif isinstance(e, (_e._BinaryOp, _e.Not, _e.Cast, _e.Call)):
            for c in e.children():
                self.walk(c, in_select)
        else:
            raise _Fallback(f"cannot vectorize {type(e).__name__}")

    def _check_access(self, node: _e.Expr, index: _e.Expr) -> np.ndarray:
        """Validate one Load/Store address and cache its effective index."""
        if not _is_pure(index):
            raise _Fallback("index expression reads memory")
        self.walk(index, in_select=False)  # nested divisor / var checks
        idx = self._eval_pure(index)
        arr = np.asarray(idx)
        if arr.size and (arr.min() < 0):
            raise _Fallback("negative buffer index")
        buffer = node.buffer  # Load and Store both carry .buffer
        pb = self.plan.privates.get(buffer.name)
        if pb is not None:
            if arr.size and arr.max() >= pb.numel:
                raise _Fallback("index out of bounds")
            base = 0
            stride = pb.numel
            for ax in reversed(pb.prefix):
                base = base + self.leaf.env[ax.var] * stride
                stride *= ax.extent
            idx = base + idx
        else:
            store = self.plan.it.buffers.get(buffer.name)
            if store is None:
                raise _Fallback(f"buffer {buffer.name} has no storage")
            if arr.size and arr.max() >= store.size:
                raise _Fallback("index out of bounds")
        self.leaf.access[id(node)] = idx
        return np.asarray(idx)

    def _eval_pure(self, e: _e.Expr):
        try:
            return _VecEval(self.plan, self.leaf).eval(e)
        except (RuntimeSimError, KeyError) as err:
            raise _Fallback(f"index evaluation failed: {err}") from None

    # -- store classification -------------------------------------------
    def classify_store(self) -> None:
        s = self.leaf.stmt
        assert isinstance(s, _s.Store)
        idx = self._check_access(s, s.index)
        self.walk(s.value, in_select=False)
        self.leaf.target = s.buffer.name
        self_loads = [ld for ld in self.loads if ld.buffer.name == s.buffer.name]
        eff = self.leaf.access[id(s)]  # effective index (private base added)
        if not self_loads:
            flat = np.broadcast_to(
                np.asarray(eff), self.leaf.shape
            ).ravel().astype(np.int64, copy=False)
            if flat.size and np.unique(flat).size != flat.size:
                raise _Fallback("overlapping parallel stores")
            self.leaf.kind = "parallel"
            self.leaf.flat_idx = flat
            return
        v = s.value
        is_reduce = (
            isinstance(v, (_e.Add, _e.Max, _e.Min))
            and isinstance(v.a, _e.Load)
            and v.a.buffer.name == s.buffer.name
            and _e.structural_equal(v.a.index, s.index)
            and len(self_loads) == 1
        )
        if not is_reduce:
            raise _Fallback(
                "store reads its own buffer outside the reduction pattern"
            )
        ndim = len(self.leaf.shape)
        full = np.broadcast_to(np.asarray(eff), self.leaf.shape)
        bshape = np.shape(eff) if np.ndim(eff) == ndim else (1,) * ndim
        par = [j for j in range(ndim) if bshape[j] != 1]
        red = [j for j in range(ndim) if bshape[j] == 1]
        pb = self.plan.privates.get(s.buffer.name)
        if pb is not None and any(ax.pos in red for ax in pb.prefix):
            # the scalar path re-zeros the allocation on those iterations,
            # so they are not a running reduction
            raise _Fallback("allocation re-created inside reduction axes")
        sel = tuple(slice(None) if j in par else 0 for j in range(ndim))
        lanes = np.asarray(full[sel]).ravel().astype(np.int64, copy=False)
        if lanes.size and np.unique(lanes).size != lanes.size:
            raise _Fallback("reduction lanes collide")
        self.leaf.kind = "reduce"
        self.leaf.lanes = lanes
        self.leaf.perm = tuple(par + red)
        self.leaf.red_k = math.prod(self.leaf.shape[j] for j in red) if red else 1
        self.leaf.red_op = type(v)
        self.leaf.update = v.b


class _VecEval:
    """Evaluates an expression over a leaf's broadcast loop axes.

    Pure sub-results cached during phase A (access indices in particular)
    are reused; loads, channel pops and arithmetic on loaded values run
    here, in phase B.
    """

    def __init__(self, plan: _BandPlan, leaf: _Leaf) -> None:
        self.plan = plan
        self.leaf = leaf

    def eval(self, e: _e.Expr):
        if isinstance(e, _e.IntImm):
            return e.value
        if isinstance(e, _e.FloatImm):
            return _F32(e.value)
        if isinstance(e, _e.Var):
            arr = self.leaf.env.get(e)
            if arr is not None:
                return arr
            try:
                return self.plan.it.env[e]
            except KeyError:
                raise RuntimeSimError(f"unbound variable {e.name}") from None
        if isinstance(e, _e.Load):
            # phase A cached the effective index for every Load it admitted
            # (private lane bases included); evaluating e.index here would
            # miss the base, so a cache miss is a planning bug, not a path.
            idx = self.leaf.access[id(e)]
            arr = self.plan._storage(e.buffer)
            return arr[idx]
        if isinstance(e, _e.ChannelRead):
            state = self.plan.it._channel(e.channel)
            return state.read_chunk(self.leaf.numel).reshape(self.leaf.shape)
        if isinstance(e, _e._BinaryOp):
            return self._binop(e)
        if isinstance(e, _e.Not):
            return np.logical_not(self.eval(e.a))
        if isinstance(e, _e.Cast):
            v = self.eval(e.value)
            if e.dtype == _e.FLOAT32:
                return _to_f32(v)
            if isinstance(v, np.ndarray):
                return v.astype(np.int64)
            return int(v)
        if isinstance(e, _e.Select):
            cond = self.eval(e.cond)
            t = self.eval(e.then_value)
            f = self.eval(e.else_value)
            return np.where(cond, t, f)
        if isinstance(e, _e.Call):
            args = [_to_f32(self.eval(a)) for a in e.args]
            return _to_f32(_INTRINSICS[e.name](*args))
        raise RuntimeSimError(f"cannot evaluate {type(e).__name__}")

    def _binop(self, e: _e._BinaryOp):
        a = self.eval(e.a)
        b = self.eval(e.b)
        if e.dtype == _e.FLOAT32:
            a = _to_f32(a)
            b = _to_f32(b)
        cls = type(e)
        if cls is _e.Add:
            return a + b
        if cls is _e.Sub:
            return a - b
        if cls is _e.Mul:
            return a * b
        if cls is _e.Div:
            return a / b
        if cls is _e.FloorDiv:
            return a // b
        if cls is _e.Mod:
            return a % b
        if cls is _e.Min:
            return np.minimum(a, b)
        if cls is _e.Max:
            return np.maximum(a, b)
        if cls is _e.LT:
            return a < b
        if cls is _e.LE:
            return a <= b
        if cls is _e.GT:
            return a > b
        if cls is _e.GE:
            return a >= b
        if cls is _e.EQ:
            return np.equal(a, b)
        if cls is _e.NE:
            return np.not_equal(a, b)
        if cls is _e.And:
            return np.logical_and(a, b)
        if cls is _e.Or:
            return np.logical_or(a, b)
        raise RuntimeSimError(f"unhandled op {type(e).__name__}")


class VectorizedInterpreter(Interpreter):
    """Drop-in :class:`Interpreter` that executes loop bands as array ops.

    Same constructor and :meth:`run` contract as the scalar interpreter;
    results are bit-identical in float32.  Per-band outcomes are recorded
    in :attr:`events` so callers can audit what vectorized and why any
    loop fell back.
    """

    def __init__(
        self,
        buffers: Dict[str, np.ndarray],
        bindings: Optional[Dict[_e.Var, int]] = None,
        channels: Optional[Dict[str, ChannelState]] = None,
    ) -> None:
        super().__init__(buffers, bindings, channels)
        self.events: List[BandEvent] = []

    def _exec(self, s: _s.Stmt) -> None:
        if isinstance(s, _s.For):
            try:
                self._exec_band(s)
                return
            except _Fallback as fb:
                self.events.append(
                    BandEvent("fallback", s.loop_var.name, fb.reason)
                )
            # scalar loop at this level; inner loops re-try vectorization
            extent = int(self._eval(s.extent))
            var = s.loop_var
            for i in range(extent):
                self.env[var] = i
                self._exec(s.body)
            self.env.pop(var, None)
        else:
            super()._exec(s)

    def _exec_band(self, root: _s.For) -> None:
        plan = _BandPlan(self, root)  # phase A: may raise _Fallback
        plan.execute()  # phase B: cannot fail after phase A passed
        self.events.append(
            BandEvent(
                "vectorized", root.loop_var.name,
                f"{len(plan.leaves)} statement(s)",
            )
        )


def run_kernel_vectorized(
    kernel: Kernel,
    buffers: Dict[str, np.ndarray],
    bindings: Optional[Dict[_e.Var, int]] = None,
    channels: Optional[Dict[str, ChannelState]] = None,
) -> VectorizedInterpreter:
    """Interpret one kernel invocation through the vectorized path.

    Buffers are mutated in place, exactly like :func:`repro.ir.run_kernel`;
    returns the interpreter so callers can inspect :attr:`events`.
    """
    vi = VectorizedInterpreter(buffers, bindings, channels)
    vi.run(kernel)
    return vi
