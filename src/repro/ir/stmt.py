"""Statement IR: the lowered loop-nest language that kernels are made of.

A kernel body is a tree of statements.  Loops carry a *kind* that records
how the schedule asked the offline compiler to implement them:

``SERIAL``
    Ordinary loop; AOC will try to pipeline it (II analysis decides).
``UNROLLED``
    ``#pragma unroll [N]`` — fully or partially replicated hardware.
``PIPELINED``
    Explicitly marked pipelineable (the default outcome for clean loops).

This matches the control the thesis exercises through TVM schedule
primitives and AOC pragmas (Chapter 4).
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Optional, Sequence, Union

from repro.errors import IRError
from repro.ir import expr as _e
from repro.ir.buffer import Buffer, Channel


class ForKind(enum.Enum):
    """How a loop should be realized in hardware."""

    SERIAL = "serial"
    UNROLLED = "unrolled"
    PIPELINED = "pipelined"


class Stmt:
    """Base class of all statements."""

    __slots__ = ()

    def children(self) -> Iterable["Stmt"]:
        """Yield direct child statements."""
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        from repro.ir.printer import stmt_str

        return stmt_str(self)


class Store(Stmt):
    """``buffer[index] = value``."""

    __slots__ = ("buffer", "index", "value")

    def __init__(self, buffer: Buffer, index: _e.ExprLike, value: _e.ExprLike) -> None:
        self.buffer = buffer
        self.index = _e.convert(index)
        self.value = _e.convert(value)
        if self.index.dtype != _e.INT32:
            raise IRError("Store index must be int32")


class Evaluate(Stmt):
    """Evaluate an expression for its effect (channel reads in isolation)."""

    __slots__ = ("value",)

    def __init__(self, value: _e.ExprLike) -> None:
        self.value = _e.convert(value)


class ChannelWrite(Stmt):
    """``write_channel_intel(channel, value)``."""

    __slots__ = ("channel", "value")

    def __init__(self, channel: Channel, value: _e.ExprLike) -> None:
        self.channel = channel
        self.value = _e.convert(value)


class SeqStmt(Stmt):
    """Ordered sequence of statements. Nested sequences are flattened."""

    __slots__ = ("stmts",)

    def __init__(self, stmts: Sequence[Stmt]) -> None:
        flat: List[Stmt] = []
        for s in stmts:
            if isinstance(s, SeqStmt):
                flat.extend(s.stmts)
            elif s is not None:
                flat.append(s)
        self.stmts = tuple(flat)

    def children(self) -> Iterable[Stmt]:
        return self.stmts


class For(Stmt):
    """Counted loop ``for (var = 0; var < extent; ++var) body``.

    ``extent`` may be a symbolic :class:`~repro.ir.expr.Var` for
    parameterized kernels.  ``unroll_factor`` only applies to
    partially-unrolled loops (``kind == UNROLLED`` with a factor smaller
    than the extent); ``None`` means full unroll for UNROLLED loops.
    """

    __slots__ = ("loop_var", "extent", "body", "kind", "unroll_factor")

    def __init__(
        self,
        loop_var: _e.Var,
        extent: Union[int, _e.Expr],
        body: Stmt,
        kind: ForKind = ForKind.SERIAL,
        unroll_factor: Optional[int] = None,
    ) -> None:
        if not isinstance(loop_var, _e.Var):
            raise IRError("For needs a Var loop variable")
        self.loop_var = loop_var
        self.extent = _e.convert(extent)
        self.body = body
        self.kind = kind
        if unroll_factor is not None and unroll_factor < 1:
            raise IRError("unroll factor must be >= 1")
        self.unroll_factor = unroll_factor

    def children(self) -> Iterable[Stmt]:
        yield self.body

    @property
    def static_extent(self) -> Optional[int]:
        """Trip count if statically known, else None (symbolic)."""
        return self.extent.value if isinstance(self.extent, _e.IntImm) else None


class IfThenElse(Stmt):
    """Conditional statement (padding kernels use these)."""

    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond: _e.ExprLike, then_body: Stmt, else_body: Optional[Stmt] = None) -> None:
        self.cond = _e.convert(cond)
        self.then_body = then_body
        self.else_body = else_body

    def children(self) -> Iterable[Stmt]:
        yield self.then_body
        if self.else_body is not None:
            yield self.else_body


class Allocate(Stmt):
    """Allocate a non-global buffer for the duration of ``body``."""

    __slots__ = ("buffer", "body")

    def __init__(self, buffer: Buffer, body: Stmt) -> None:
        if buffer.scope == "global":
            raise IRError("global buffers are kernel arguments, not allocations")
        self.buffer = buffer
        self.body = body

    def children(self) -> Iterable[Stmt]:
        yield self.body


class AttrStmt(Stmt):
    """Generic annotation wrapper (e.g. pragma payloads)."""

    __slots__ = ("key", "value", "body")

    def __init__(self, key: str, value: object, body: Stmt) -> None:
        self.key = key
        self.value = value
        self.body = body

    def children(self) -> Iterable[Stmt]:
        yield self.body


def seq(*stmts: Optional[Stmt]) -> Stmt:
    """Convenience sequence constructor that drops Nones and unwraps singles."""
    items = [s for s in stmts if s is not None]
    if not items:
        raise IRError("empty statement sequence")
    if len(items) == 1:
        return items[0]
    return SeqStmt(items)
