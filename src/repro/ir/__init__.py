"""Tensor-expression and statement IR (the reproduction's mini-TVM core).

Public surface::

    from repro import ir

    A = ir.placeholder((64, 32), "A")
    k = ir.reduce_axis(32, "k")
    C = ir.compute((64,), lambda i: ir.sum(A[i, k], [k]), "C", inputs=[A])
"""

from repro.ir.expr import (
    BOOL,
    FLOAT32,
    INT32,
    Add,
    And,
    Call,
    Cast,
    ChannelRead,
    Div,
    EQ,
    Expr,
    FloatImm,
    FloorDiv,
    GE,
    GT,
    IntImm,
    LE,
    Load,
    LT,
    Max,
    Min,
    Mod,
    Mul,
    NE,
    Not,
    Or,
    Reduce,
    Select,
    StringImm,
    Sub,
    Var,
    const,
    convert,
    exp,
    fmax,
    fmin,
    structural_equal,
)
from repro.ir.buffer import Buffer, Channel
from repro.ir.stmt import (
    Allocate,
    AttrStmt,
    ChannelWrite,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    SeqStmt,
    Stmt,
    Store,
    seq,
)
from repro.ir.tensor import (
    ComputeOp,
    IterVar,
    Tensor,
    compute,
    max_reduce,
    placeholder,
    reduce_axis,
    reset_fresh_names,
    sum,
)
from repro.ir.kernel import Kernel, Program
from repro.ir.analysis import (
    count_flops_expr,
    eval_int,
    free_vars,
    stride_of,
)
from repro.ir.functor import (
    ExprMutator,
    ExprVisitor,
    StmtMutator,
    StmtVisitor,
    substitute,
    substitute_stmt,
)
from repro.ir.printer import expr_str, stmt_str
from repro.ir.interp import ChannelState, Interpreter, run_kernel, run_program_sequential
from repro.ir.vinterp import BandEvent, VectorizedInterpreter, run_kernel_vectorized
from repro.ir.simplify import simplify_kernel, simplify_stmt

__all__ = [
    "Add", "And", "Allocate", "AttrStmt", "BOOL", "BandEvent", "Buffer",
    "Call", "Cast",
    "Channel", "ChannelRead", "ChannelState", "ChannelWrite", "ComputeOp",
    "Div", "EQ", "Evaluate", "Expr", "ExprMutator", "ExprVisitor", "FLOAT32",
    "FloatImm", "FloorDiv", "For", "ForKind", "GE", "GT", "IfThenElse",
    "INT32", "IntImm", "Interpreter", "IterVar", "Kernel", "LE", "Load", "LT", "Max",
    "Min", "Mod", "Mul", "NE", "Not", "Or", "Program", "Reduce", "Select",
    "SeqStmt", "Stmt", "StmtMutator", "StmtVisitor", "Store", "StringImm",
    "Sub", "Tensor", "Var", "compute", "const", "convert",
    "count_flops_expr", "eval_int", "exp", "expr_str", "fmax", "fmin",
    "free_vars", "max_reduce", "placeholder", "reduce_axis",
    "reset_fresh_names", "run_kernel", "run_kernel_vectorized",
    "run_program_sequential", "seq", "stmt_str", "stride_of",
    "VectorizedInterpreter",
    "simplify_kernel", "simplify_stmt", "structural_equal", "substitute", "substitute_stmt", "sum",
]
