"""Winograd what-if projection over compiled deployments (§6.6 follow-up).

Projects how a deployment's single-stride 3x3 convolutions would perform
if their kernels used the Winograd F(2x2, 3x3) algorithm (as DiCecco et
al.'s engine does): per invocation the compute time divides by the 2.25x
multiplication reduction while the weight traffic grows 16/9.  Other
kernels are untouched — Winograd does not apply to them, which is the
thesis's stated reason for implementing direct convolutions instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ReproError
from repro.nn.winograd import winograd_savings

_MUL_REDUCTION = 2.25
_WEIGHT_OVERHEAD = 16.0 / 9.0


@dataclass
class WinogradProjection:
    """Projected effect of Winograd 3x3 kernels on one deployment."""

    fps_direct: float
    fps_winograd: float
    speedup: float
    eligible_time_share: float  #: runtime share of 1-stride 3x3 convs
    weight_storage_overhead: float = _WEIGHT_OVERHEAD


def project_winograd(deployment) -> WinogradProjection:
    """Project a folded deployment onto Winograd 3x3 convolutions."""
    if deployment.mode != "folded":
        raise ReproError("Winograd projection applies to folded deployments")
    bs = deployment.bitstream
    board = bs.board
    base = deployment.run()

    device_us = 0.0
    eligible_us = 0.0
    total_us = 0.0
    for inv in deployment.plan.invocations:
        hwk = bs.hw[inv.kernel_name]
        cycles = hwk.analysis.compute_cycles(inv.bindings)
        if hwk.analysis.is_pure_transform():
            cycles /= bs.constants.transform_simd_width
        t_compute = cycles / bs.fmax_mhz
        traffic = hwk.analysis.traffic_bytes(inv.bindings)
        bw = board.peak_bw_gbs * hwk.analysis.bw_efficiency() * 1e3
        t_mem = traffic / bw
        t = max(t_compute, t_mem)
        total_us += t
        if inv.op_label == "3x3 conv S=1":
            eligible_us += t
            t = max(t_compute / _MUL_REDUCTION, t_mem * _WEIGHT_OVERHEAD)
        device_us += t

    host_and_io = base.host_overhead_us + base.write_us + base.read_us
    fps_w = 1e6 / (device_us + host_and_io)
    return WinogradProjection(
        fps_direct=base.fps,
        fps_winograd=fps_w,
        speedup=fps_w / base.fps,
        eligible_time_share=eligible_us / total_us if total_us else 0.0,
    )


def layer_accounting(deployment) -> Dict[str, Dict[str, float]]:
    """Per-eligible-layer Winograd multiplication/storage accounting."""
    out: Dict[str, Dict[str, float]] = {}
    for fn in deployment.fused:
        if fn.op != "conv2d":
            continue
        a = fn.anchor.attrs
        if a["field"] != 3 or a["stride"] != 1:
            continue
        c1 = fn.anchor.inputs[0].out_shape[0]
        k, ho, wo = fn.anchor.out_shape
        out[fn.name] = winograd_savings(c1, k, ho, wo)
    return out
