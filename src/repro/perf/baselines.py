"""CPU/GPU baseline throughput models (thesis Section 6.2/6.4).

The thesis compares its FPGA deployments against Keras/TensorFlow on a
dual Xeon 8280 (``TF-CPU``), TVM's LLVM backend with an n-thread sweep
(``TVM-nT``), and TensorFlow+cuDNN on a GTX 1060 (``TF-cuDNN``).  We
cannot re-run that hardware, so this module provides **calibrated
analytic models**: single-thread throughput anchored to the thesis's
published measurements, and an Amdahl-style thread-scaling curve fitted
through the published multi-thread endpoints:

``fps(t) = fps1 * t / (1 + sigma * (t - 1))``

with ``sigma`` the serialization fraction per network.  LeNet is modelled
with its observed *negative* scaling (the thesis: "We observe a decrease
in performance as the number of threads increase").  See DESIGN.md's
substitution table; EXPERIMENTS.md records these as reference inputs,
not as reproduced measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ReproError


@dataclass(frozen=True)
class BaselineAnchors:
    """Published reference FPS for one network (thesis Tables 6.10/6.12/6.15)."""

    tf_cpu: float  #: Keras/TensorFlow, default thread pool
    tvm_1t: float  #: TVM LLVM backend, one thread
    tvm_best: float  #: TVM at its best measured thread count
    tvm_best_threads: int
    tf_cudnn: float  #: TensorFlow + cuDNN on the GTX 1060


#: thesis-published baseline numbers per network
PAPER_ANCHORS: Dict[str, BaselineAnchors] = {
    "lenet5": BaselineAnchors(
        tf_cpu=1075.0, tvm_1t=2345.0, tvm_best=2345.0, tvm_best_threads=1,
        tf_cudnn=1604.0,
    ),
    "mobilenet_v1": BaselineAnchors(
        tf_cpu=21.6, tvm_1t=15.6, tvm_best=90.1, tvm_best_threads=56,
        tf_cudnn=43.7,
    ),
    "resnet18": BaselineAnchors(
        tf_cpu=16.3, tvm_1t=5.8, tvm_best=54.3, tvm_best_threads=56,
        tf_cudnn=46.5,
    ),
    "resnet34": BaselineAnchors(
        tf_cpu=10.7, tvm_1t=1.2, tvm_best=13.7, tvm_best_threads=56,
        tf_cudnn=31.7,
    ),
}


def _anchors(network: str) -> BaselineAnchors:
    try:
        return PAPER_ANCHORS[network]
    except KeyError:
        raise ReproError(
            f"no baseline anchors for network {network!r}; "
            f"known: {sorted(PAPER_ANCHORS)}"
        ) from None


def tf_cpu_fps(network: str) -> float:
    """Keras/TensorFlow CPU throughput (default thread pool)."""
    return _anchors(network).tf_cpu


def tf_cudnn_fps(network: str) -> float:
    """TensorFlow + cuDNN throughput on the GTX 1060."""
    return _anchors(network).tf_cudnn


def _sigma(a: BaselineAnchors) -> float:
    """Serialization fraction solving the Amdahl curve through the
    published best-thread-count endpoint."""
    t = a.tvm_best_threads
    if t <= 1:
        return 1.0
    speedup = a.tvm_best / a.tvm_1t
    # fps(t)/fps(1) = t / (1 + sigma (t-1))  =>  sigma = (t/speedup - 1)/(t-1)
    return max(0.0, (t / speedup - 1.0) / (t - 1.0))


def tvm_cpu_fps(network: str, threads: int) -> float:
    """TVM LLVM-backend CPU throughput at a given thread count.

    LeNet's curve is decreasing (measured in the thesis); the large
    networks follow the fitted Amdahl curve.
    """
    if threads < 1:
        raise ReproError("thread count must be >= 1")
    a = _anchors(network)
    if network == "lenet5":
        # small layers: extra threads only add synchronization cost
        return a.tvm_1t / (1.0 + 0.35 * (threads - 1) ** 0.7)
    sigma = _sigma(a)
    return a.tvm_1t * threads / (1.0 + sigma * (threads - 1))


def tvm_sweep(network: str, thread_counts=(1, 2, 4, 8, 16, 32, 56)) -> Dict[int, float]:
    """The TVM-nT sweep series plotted in Figures 6.4-6.7."""
    return {t: tvm_cpu_fps(network, t) for t in thread_counts}


def best_cpu_fps(network: str) -> float:
    """Best CPU configuration the thesis compares against."""
    a = _anchors(network)
    return max(a.tf_cpu, a.tvm_best)
