"""Quantization what-if projection (thesis Section 8.1 future work).

The thesis argues reduced precision would relieve its two limits: DSP
packing ("two low-precision integer operations computed per cycle as
opposed to one per DSP") and LSU width/cache footprint ("the reduced
amount of bits decreases LSU bit width and cache sizes").

This module projects a compiled fp32 deployment onto int16/int8 using
the AOC model's own compute/memory decomposition: compute time scales
with DSP packing, memory time with bytes per element, and the resource
estimate scales accordingly.  It is a *projection*, not a re-synthesis —
exactly the kind of estimate the thesis's future-work section reasons
with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ReproError

#: DSP packing factor and bytes per element per precision
PRECISIONS: Dict[str, Dict[str, float]] = {
    "fp32": {"ops_per_dsp": 1.0, "bytes": 4.0},
    "int16": {"ops_per_dsp": 2.0, "bytes": 2.0},  # 18x18 DSP mode
    "int8": {"ops_per_dsp": 4.0, "bytes": 1.0},
}


@dataclass
class PrecisionProjection:
    """Projected deployment figures at a reduced precision."""

    precision: str
    fps: float
    speedup_vs_fp32: float
    dsp_util: float
    ram_util: float
    fits: bool


def project_precision(deployment, precision: str) -> PrecisionProjection:
    """Project a folded deployment's throughput/resources to a precision.

    Per invocation the compute time divides by the DSP packing factor and
    the memory time scales with bytes-per-element; host overheads and
    transfers shrink with the input footprint.
    """
    if precision not in PRECISIONS:
        raise ReproError(
            f"unknown precision {precision!r}; options: {sorted(PRECISIONS)}"
        )
    if deployment.mode != "folded":
        raise ReproError("precision projection applies to folded deployments")
    p = PRECISIONS[precision]
    pack = p["ops_per_dsp"]
    byte_scale = p["bytes"] / 4.0

    bs = deployment.bitstream
    board = bs.board
    base = deployment.run()

    device_us = 0.0
    for inv in deployment.plan.invocations:
        hwk = bs.hw[inv.kernel_name]
        cycles = hwk.analysis.compute_cycles(inv.bindings)
        if hwk.analysis.is_pure_transform():
            cycles /= bs.constants.transform_simd_width
        t_compute = cycles / bs.fmax_mhz / pack
        traffic = hwk.analysis.traffic_bytes(inv.bindings) * byte_scale
        bw = board.peak_bw_gbs * hwk.analysis.bw_efficiency() * 1e3
        device_us += max(t_compute, traffic / bw)

    host_us = base.host_overhead_us
    transfer_us = (base.write_us + base.read_us) * byte_scale
    total_us = device_us + host_us + transfer_us
    fps = 1e6 / total_us

    util = bs.utilization()
    dsp_util = util["dsp"] / pack
    ram_util = max(
        board.static_rams / board.rams, util["ram"] * (0.5 + 0.5 * byte_scale)
    )
    return PrecisionProjection(
        precision=precision,
        fps=fps,
        speedup_vs_fp32=fps * base.time_per_image_us / 1e6,
        dsp_util=dsp_util,
        ram_util=ram_util,
        fits=dsp_util <= 1.0 and ram_util <= 1.0,
    )


def precision_sweep(deployment) -> Dict[str, PrecisionProjection]:
    """Project all supported precisions for one deployment."""
    return {p: project_precision(deployment, p) for p in PRECISIONS}
