"""Baseline performance models and related-work reference numbers.

Calibrated TF-CPU / TVM-no-tuning / TF-cuDNN baselines, the thesis's
related-work comparison table, and int16/int8 quantization projections.
Contract: published anchor numbers in, FPS curves out; also the
CPU-rung service model the serving layer charges for shed requests.
"""

from repro.perf.baselines import (
    PAPER_ANCHORS,
    best_cpu_fps,
    tf_cpu_fps,
    tf_cudnn_fps,
    tvm_cpu_fps,
    tvm_sweep,
)
from repro.perf import related_work
from repro.perf.quantization import (
    PRECISIONS,
    PrecisionProjection,
    precision_sweep,
    project_precision,
)
from repro.perf.winograd import WinogradProjection, layer_accounting, project_winograd

__all__ = [
    "PAPER_ANCHORS", "PRECISIONS", "PrecisionProjection", "best_cpu_fps",
    "precision_sweep", "project_precision", "related_work", "tf_cpu_fps",
    "tf_cudnn_fps", "tvm_cpu_fps", "tvm_sweep", "WinogradProjection",
    "layer_accounting", "project_winograd",
]
