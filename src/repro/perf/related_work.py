"""Published numbers of the three related works the thesis compares to
(Tables 6.17, 6.18, 6.19).

These are the literature-reported values (DiCecco et al.'s Caffeinated
FPGAs, Hadjis et al.'s TensorFlow-to-Cloud-FPGAs, Sharma et al.'s
DNNWeaver); the comparison benches pair them with the numbers measured
from *our* deployments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RelatedWorkEntry:
    """One published accelerator result used in a comparison table."""

    work: str
    workload: str
    platform: str
    total_dsps: int
    precision: str
    batch: int
    fmax_mhz: Optional[float]
    gflops: Optional[float]
    latency_ms: Optional[float] = None
    dsp_util_pct: Optional[float] = None
    note: str = ""


CAFFEINATED_FPGAS = RelatedWorkEntry(
    work="DiCecco et al. (Caffeinated FPGAs)",
    workload="geomean 3x3 convs in AlexNet/VGG-A/Overfeat/GoogLeNet",
    platform="Virtex 7 XC7VX690T-2",
    total_dsps=3600,
    precision="32b float",
    batch=64,
    fmax_mhz=200.0,
    gflops=50.0,
    dsp_util_pct=36.3,
    note="Winograd convolution engine; effective GFLOPS assume direct conv",
)

HADJIS_LENET = RelatedWorkEntry(
    work="Hadjis et al. (TF to Cloud FPGAs)",
    workload="LeNet",
    platform="Xilinx UltraScale+ VU9P",
    total_dsps=6840,
    precision="32b fixed",
    batch=1,
    fmax_mhz=125.0,
    gflops=3.49,
    latency_ms=0.656,
    dsp_util_pct=26.7,
    note="Spatial hardware-IR flow; FP-op count differs from ours (2.29M vs 389K)",
)

HADJIS_RESNET50 = RelatedWorkEntry(
    work="Hadjis et al. (TF to Cloud FPGAs)",
    workload="ResNet-50",
    platform="Xilinx UltraScale+ VU9P",
    total_dsps=6840,
    precision="32b fixed",
    batch=1,
    fmax_mhz=125.0,
    gflops=36.1,
    latency_ms=216.0,
    dsp_util_pct=87.8,
)

DNNWEAVER_LENET = RelatedWorkEntry(
    work="Sharma et al. (DNNWeaver)",
    workload="LeNet",
    platform="Arria 10 GX",
    total_dsps=1518,
    precision="16b fixed",
    batch=1,
    fmax_mhz=200.0,
    gflops=None,
    dsp_util_pct=94.86,
    note="Reports 12x speedup over a 4-core Xeon E3 with Caffe",
)

DNNWEAVER_ALEXNET = RelatedWorkEntry(
    work="Sharma et al. (DNNWeaver)",
    workload="AlexNet",
    platform="Arria 10 GX",
    total_dsps=1518,
    precision="16b fixed",
    batch=1,
    fmax_mhz=200.0,
    gflops=184.33,
    dsp_util_pct=88.54,
    note="GFLOPS as reported in the Venieris et al. survey",
)

ALL_RELATED = (
    CAFFEINATED_FPGAS,
    HADJIS_LENET,
    HADJIS_RESNET50,
    DNNWEAVER_LENET,
    DNNWEAVER_ALEXNET,
)
