"""AlexNet (Krizhevsky et al., 2012) — the Section 6.6 comparison network.

DNNWeaver reports 184.33 GFLOPS on an AlexNet accelerator and DiCecco et
al.'s geomean includes AlexNet's 3x3 convolutions; the thesis could only
compare against them with MobileNet/ResNet proxies ("MobileNet and
AlexNet have significant differences in architecture, and thus, this is
not a complete comparison but the closest one that can be made with our
evaluations").  This reproduction deploys AlexNet itself, so the §6.6
comparisons can also be made like-for-like.

The single-column variant with 2012 channel counts (~1.3-1.5G FP ops,
~61M parameters; DNNWeaver's table lists AlexNet at 1.33G ops) and ReLU
activations; LRN layers are omitted as in all modern deployments.
"""

from __future__ import annotations

from repro.relay.graph import Graph, GraphBuilder


def alexnet(num_classes: int = 1000) -> Graph:
    """Build AlexNet for 3x224x224 inputs."""
    g = GraphBuilder("alexnet")
    x = g.input((3, 224, 224))
    # conv1: 11x11/4 'valid-ish' (pad 2 keeps 55x55 geometry: (224+4-11)/4+1)
    x = g.pad(x, 2, name="pad1")
    x = g.conv2d(x, filters=64, field=11, stride=4, name="conv1")
    x = g.relu(x)
    x = g.maxpool(x, field=3, stride=2, name="pool1")  # 27x27
    # conv2: 5x5 pad 2
    x = g.pad(x, 2, name="pad2")
    x = g.conv2d(x, filters=192, field=5, stride=1, name="conv2")
    x = g.relu(x)
    x = g.maxpool(x, field=3, stride=2, name="pool2")  # 13x13
    # conv3-5: 3x3 pad 1
    x = g.pad(x, 1, name="pad3")
    x = g.conv2d(x, filters=384, field=3, stride=1, name="conv3")
    x = g.relu(x)
    x = g.pad(x, 1, name="pad4")
    x = g.conv2d(x, filters=256, field=3, stride=1, name="conv4")
    x = g.relu(x)
    x = g.pad(x, 1, name="pad5")
    x = g.conv2d(x, filters=256, field=3, stride=1, name="conv5")
    x = g.relu(x)
    x = g.maxpool(x, field=3, stride=2, name="pool5")  # 6x6
    x = g.flatten(x, name="flatten")
    x = g.dense(x, 4096, name="fc6")
    x = g.relu(x)
    x = g.dense(x, 4096, name="fc7")
    x = g.relu(x)
    x = g.dense(x, num_classes, name="fc8")
    x = g.softmax(x, name="softmax")
    return g.build()
