"""Benchmark network definitions: LeNet-5, MobileNetV1, ResNet-18/34."""

from repro.models.alexnet import alexnet
from repro.models.lenet import lenet5
from repro.models.mobilenet import mobilenet_v1
from repro.models.resnet import resnet, resnet18, resnet34, resnet50

__all__ = ["alexnet", "lenet5", "mobilenet_v1", "resnet", "resnet18", "resnet34", "resnet50"]
