"""Benchmark network definitions.

LeNet-5, AlexNet, MobileNetV1 and ResNet-18/34/50 (plus BN variants)
as graph constructors.  Contract: a model is a zero-argument function
returning a fresh ``relay`` graph; the name registry the deployment
flow looks models up in is ``repro.flow.stages.MODELS``.
"""

from repro.models.alexnet import alexnet
from repro.models.lenet import lenet5
from repro.models.mobilenet import mobilenet_v1
from repro.models.resnet import resnet, resnet18, resnet34, resnet50

__all__ = ["alexnet", "lenet5", "mobilenet_v1", "resnet", "resnet18", "resnet34", "resnet50"]
