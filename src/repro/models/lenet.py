"""LeNet-5 as deployed in the thesis (Table 2.1).

Input is a 1x28x28 MNIST digit.  The thesis modernizes the original
LeCun architecture with ReLU activations and a softmax output; pooling
layers halve the spatial size (the table's output shapes imply stride 2).
389K FP operations and ~60K parameters.
"""

from __future__ import annotations

from repro.relay.graph import Graph, GraphBuilder


def lenet5() -> Graph:
    """Build the LeNet-5 graph used in every LeNet experiment."""
    g = GraphBuilder("lenet5")
    x = g.input((1, 28, 28))
    x = g.conv2d(x, filters=6, field=3, stride=1, name="conv1")
    x = g.relu(x)
    x = g.maxpool(x, field=2, stride=2, name="pool1")
    x = g.conv2d(x, filters=16, field=3, stride=1, name="conv2")
    x = g.relu(x)
    x = g.maxpool(x, field=2, stride=2, name="pool2")
    x = g.flatten(x, name="flatten")
    x = g.dense(x, 120, name="dense1")
    x = g.relu(x)
    x = g.dense(x, 84, name="dense2")
    x = g.relu(x)
    x = g.dense(x, 10, name="dense3")
    x = g.softmax(x, name="softmax")
    return g.build()
