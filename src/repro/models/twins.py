"""Reduced *twin* networks for interpreter-level verification.

The full MobileNetV1/ResNet-18 graphs are intractable for the scalar IR
interpreter (hundreds of millions of loop iterations at 224x224), so
they cannot anchor an end-to-end ``vectorized == scalar`` soundness
check directly.  Each twin here is a shape-reduced graph built from the
**same operator species** as its full network: it instantiates every
parameterized kernel group the full network compiles to (same group
keys, hence byte-identical kernel *names*, and — when built with the
full network's :func:`~repro.flow.deploy.default_folded_config` — the
same schedule recipes), plus reduced static kernels of the same op
kinds (stem conv, pooling, global average pool, dense, softmax).

Twin shapes are chosen to respect the thesis tiling divisibility rules
(``w2vec=7`` wants output widths in {7, 14}, pointwise ``c1vec``/
``c2vec`` want channel counts divisible by up to 32), so the symbolic
group kernels execute with realistic bindings rather than degenerate
ones.  Tests assert that the parameterized kernel names of a twin build
are a superset of the full network's, so species coverage cannot drift
silently as the models evolve.
"""

from __future__ import annotations

from repro.relay.graph import Graph, GraphBuilder

__all__ = ["mobilenet_v1_twin", "resnet18_twin", "TWINS"]


def mobilenet_v1_twin() -> Graph:
    """MobileNetV1 species at toy scale (input 1x57x57, <0.5 MFLOPs).

    Covers the full network's parameterized groups — pointwise 1x1 conv
    (relu6), depthwise 3x3 at strides 1 and 2, pads (0,1) and (1,1) —
    each at least twice so grouping kicks in, plus a static stem conv.
    """
    g = GraphBuilder("mobilenet_v1_twin")
    x = g.input((1, 57, 57))
    x = g.pad(x, (0, 1), name="pad_conv1")
    x = g.conv2d(x, filters=8, field=3, stride=2, name="conv1")  # static
    x = g.relu6(x)
    # two stride-2 depthwise stages: 28 -> 14 -> 7
    x = g.pad(x, (0, 1), name="pad_dw1")
    x = g.depthwise_conv2d(x, field=3, stride=2, name="dw1")
    x = g.relu6(x)
    x = g.pad(x, (0, 1), name="pad_dw2")
    x = g.depthwise_conv2d(x, field=3, stride=2, name="dw2")
    x = g.relu6(x)
    x = g.conv2d(x, filters=32, field=1, name="pw1")
    x = g.relu6(x)
    # two stride-1 depthwise stages at 7x7
    x = g.pad(x, 1, name="pad_dw3")
    x = g.depthwise_conv2d(x, field=3, stride=1, name="dw3")
    x = g.relu6(x)
    x = g.conv2d(x, filters=32, field=1, name="pw2")
    x = g.relu6(x)
    x = g.pad(x, 1, name="pad_dw4")
    x = g.depthwise_conv2d(x, field=3, stride=1, name="dw4")
    x = g.relu6(x)
    x = g.global_avgpool(x, name="gap")
    x = g.dense(x, 10, name="fc")
    x = g.softmax(x, name="softmax")
    return g.build()


def _twin_block(g: GraphBuilder, x, filters: int, stride: int, name: str):
    """A basic residual block, mirroring :func:`repro.models.resnet`."""
    shortcut = x
    if stride != 1 or shortcut.out_shape[0] != filters:
        shortcut = g.conv2d(
            shortcut, filters=filters, field=1, stride=stride,
            name=f"{name}_proj",
        )
    if stride == 2:
        x = g.pad(x, (0, 1), name=f"{name}_pad1")
    else:
        x = g.pad(x, 1, name=f"{name}_pad1")
    y = g.conv2d(x, filters=filters, field=3, stride=stride,
                 name=f"{name}_conv1")
    y = g.relu(y)
    y = g.pad(y, 1, name=f"{name}_pad2")
    y = g.conv2d(y, filters=filters, field=3, stride=1,
                 name=f"{name}_conv2")
    y = g.add(y, shortcut, name=f"{name}_add")
    y = g.relu(y)
    return y


def resnet18_twin() -> Graph:
    """ResNet-18 species at toy scale (input 1x55x55, ~1 MFLOP).

    Two projected stride-2 residual blocks (28 -> 14 -> 7) cover the
    3x3 s2, residual 3x3 s1 and 1x1 s2 projection groups twice each;
    two plain 3x3 s1 convolutions cover the non-residual group.  The
    stem uses a 5x5 conv so it stays a static kernel like the full
    network's 7x7 (a 3x3 stem would join a parameterized group).
    """
    g = GraphBuilder("resnet18_twin")
    x = g.input((1, 55, 55))
    x = g.pad(x, (2, 2), name="pad_conv1")
    x = g.conv2d(x, filters=8, field=5, stride=2, name="conv1")  # static
    x = g.relu(x)
    x = _twin_block(g, x, 8, 2, "b1")
    x = _twin_block(g, x, 8, 2, "b2")
    x = g.pad(x, 1, name="pad_c3")
    x = g.conv2d(x, filters=8, field=3, stride=1, name="c3")
    x = g.relu(x)
    x = g.pad(x, 1, name="pad_c4")
    x = g.conv2d(x, filters=8, field=3, stride=1, name="c4")
    x = g.relu(x)
    x = g.maxpool(x, 3, 2, name="pool1")
    x = g.global_avgpool(x, name="gap")
    x = g.dense(x, 10, name="fc")
    x = g.softmax(x, name="softmax")
    return g.build()


#: full-network name -> tractable stand-in for interpreter execution
TWINS = {
    "mobilenet_v1": mobilenet_v1_twin,
    "resnet18": resnet18_twin,
}
