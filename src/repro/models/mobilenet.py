"""MobileNetV1 as deployed in the thesis (Table 2.2).

Input 3x224x224.  Depthwise-separable blocks: 3x3 depthwise + 1x1
pointwise convolution, ReLU6 activations, global average pooling and a
1000-way fully-connected classifier.  1x1 convolutions carry 94.9% of
the multiply-adds — the fact the folded deployment exploits.

Padding appears as explicit nodes (TVM generates separate padding
kernels); stride-2 'same' convolutions pad asymmetrically (0 before,
1 after) in TensorFlow convention so output sizes halve exactly.
"""

from __future__ import annotations

from repro.relay.graph import Graph, GraphBuilder

#: (stride, output channels of the pointwise conv) per separable block
_BLOCKS = [
    (1, 64),
    (2, 128),
    (1, 128),
    (2, 256),
    (1, 256),
    (2, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (2, 1024),
    (1, 1024),
]


def mobilenet_v1(num_classes: int = 1000, batchnorm: bool = False) -> Graph:
    """Build the MobileNetV1 graph (alpha=1.0, 224x224 input).

    ``batchnorm=True`` builds the published conv-BN-ReLU6 form (bias-free
    convolutions with fused inference batch norms); the default bias form
    matches the thesis's FLOP/parameter accounting.
    """
    g = GraphBuilder("mobilenet_v1" + ("_bn" if batchnorm else ""))
    use_bias = not batchnorm

    def bn(x, name):
        return g.batchnorm(x, name=name) if batchnorm else x

    x = g.input((3, 224, 224))
    # stem: 3x3 conv stride 2 ('same': asymmetric 0/1 padding)
    x = g.pad(x, (0, 1), name="pad_conv1")
    x = g.conv2d(x, filters=32, field=3, stride=2, bias=use_bias, name="conv1")
    x = bn(x, "conv1_bn")
    x = g.relu6(x)
    for i, (stride, filters) in enumerate(_BLOCKS, start=2):
        if stride == 2:
            x = g.pad(x, (0, 1), name=f"pad_conv{i}_dw")
        else:
            x = g.pad(x, 1, name=f"pad_conv{i}_dw")
        x = g.depthwise_conv2d(x, field=3, stride=stride, bias=use_bias,
                               name=f"conv{i}_dw")
        x = bn(x, f"conv{i}_dw_bn")
        x = g.relu6(x)
        x = g.conv2d(x, filters=filters, field=1, stride=1, bias=use_bias,
                     name=f"conv{i}")
        x = bn(x, f"conv{i}_bn")
        x = g.relu6(x)
    x = g.global_avgpool(x, name="gap")
    x = g.dense(x, num_classes, name="fc")
    x = g.softmax(x, name="softmax")
    return g.build()
