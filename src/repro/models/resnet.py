"""ResNet-18/34 as deployed in the thesis (Table 2.3), plus ResNet-50.

Input 3x224x224.  Basic residual blocks (two 3x3 convolutions plus an
identity shortcut); stage transitions use stride-2 convolutions with a
1x1 projection on the shortcut (the thesis's ResNet kernel inventory in
Table 6.13 includes exactly these kernels: 7x7 conv, 3x3 conv S=1/S=2,
1x1 conv, 3x3 pool, softmax).

Padding is explicit (separate pad kernels), asymmetric for stride-2
'same' convolutions, matching the TensorFlow/Keras convention and the
thesis's observation that padding kernels consume 8-22% of runtime.
"""

from __future__ import annotations


from repro.errors import ReproError
from repro.relay.graph import Graph, GraphBuilder, OpNode

#: blocks per stage (stage channel widths are 64/128/256/512)
_STAGES = {18: (2, 2, 2, 2), 34: (3, 4, 6, 3), 50: (3, 4, 6, 3)}
_WIDTHS = (64, 128, 256, 512)
#: depths built from bottleneck (1x1 -> 3x3 -> 1x1 expand-by-4) blocks
_BOTTLENECK_DEPTHS = (50,)


def _basic_block(
    g: GraphBuilder, x: OpNode, filters: int, stride: int, name: str,
    batchnorm: bool = False,
) -> OpNode:
    """Two 3x3 convs + shortcut; stride-2 variants project the shortcut."""
    use_bias = not batchnorm

    def bn(t, tag):
        return g.batchnorm(t, name=f"{name}_{tag}") if batchnorm else t

    shortcut = x
    # projection first so the residual add fuses into the main-branch conv2
    if stride != 1 or shortcut.out_shape[0] != filters:
        shortcut = g.conv2d(
            shortcut, filters=filters, field=1, stride=stride, bias=use_bias,
            name=f"{name}_proj",
        )
        shortcut = bn(shortcut, "bn_proj")
    if stride == 2:
        x = g.pad(x, (0, 1), name=f"{name}_pad1")
    else:
        x = g.pad(x, 1, name=f"{name}_pad1")
    y = g.conv2d(x, filters=filters, field=3, stride=stride, bias=use_bias,
                 name=f"{name}_conv1")
    y = bn(y, "bn1")
    y = g.relu(y)
    y = g.pad(y, 1, name=f"{name}_pad2")
    y = g.conv2d(y, filters=filters, field=3, stride=1, bias=use_bias,
                 name=f"{name}_conv2")
    y = bn(y, "bn2")
    y = g.add(y, shortcut, name=f"{name}_add")
    y = g.relu(y)
    return y


def _bottleneck_block(
    g: GraphBuilder, x: OpNode, filters: int, stride: int, name: str,
    batchnorm: bool = False,
) -> OpNode:
    """1x1 reduce -> 3x3 -> 1x1 expand (x4) + shortcut — the ResNet-50
    block the thesis's Section 6.6 comparison target (Hadjis et al.) uses."""
    use_bias = not batchnorm
    expanded = filters * 4

    def bn(t, tag):
        return g.batchnorm(t, name=f"{name}_{tag}") if batchnorm else t

    shortcut = x
    if stride != 1 or shortcut.out_shape[0] != expanded:
        shortcut = g.conv2d(
            shortcut, filters=expanded, field=1, stride=stride, bias=use_bias,
            name=f"{name}_proj",
        )
        shortcut = bn(shortcut, "bn_proj")
    y = g.conv2d(x, filters=filters, field=1, stride=1, bias=use_bias,
                 name=f"{name}_conv1")
    y = bn(y, "bn1")
    y = g.relu(y)
    if stride == 2:
        y = g.pad(y, (0, 1), name=f"{name}_pad2")
    else:
        y = g.pad(y, 1, name=f"{name}_pad2")
    y = g.conv2d(y, filters=filters, field=3, stride=stride, bias=use_bias,
                 name=f"{name}_conv2")
    y = bn(y, "bn2")
    y = g.relu(y)
    y = g.conv2d(y, filters=expanded, field=1, stride=1, bias=use_bias,
                 name=f"{name}_conv3")
    y = bn(y, "bn3")
    y = g.add(y, shortcut, name=f"{name}_add")
    y = g.relu(y)
    return y


def resnet(depth: int, num_classes: int = 1000, batchnorm: bool = False) -> Graph:
    """Build ResNet-18/34 (basic blocks) or ResNet-50 (bottlenecks)."""
    if depth not in _STAGES:
        raise ReproError(f"unsupported ResNet depth {depth} (18, 34 or 50)")
    g = GraphBuilder(f"resnet{depth}" + ("_bn" if batchnorm else ""))
    use_bias = not batchnorm
    x = g.input((3, 224, 224))
    # stem: 7x7 s2 'same' (asymmetric 2/3 padding), then 3x3 s2 maxpool
    x = g.pad(x, (2, 3), name="pad_conv1")
    x = g.conv2d(x, filters=64, field=7, stride=2, bias=use_bias, name="conv1")
    if batchnorm:
        x = g.batchnorm(x, name="conv1_bn")
    x = g.relu(x)
    x = g.pad(x, (0, 1), name="pad_pool1")
    x = g.maxpool(x, field=3, stride=2, name="pool1")
    block = _bottleneck_block if depth in _BOTTLENECK_DEPTHS else _basic_block
    for stage, (blocks, filters) in enumerate(zip(_STAGES[depth], _WIDTHS), start=2):
        for b in range(blocks):
            stride = 2 if (stage > 2 and b == 0) else 1
            x = block(g, x, filters, stride, name=f"conv{stage}_{b+1}",
                      batchnorm=batchnorm)
    x = g.global_avgpool(x, name="gap")
    x = g.dense(x, num_classes, name="fc")
    x = g.softmax(x, name="softmax")
    return g.build()


def resnet18(num_classes: int = 1000) -> Graph:
    """ResNet-18 (3.66G FP ops, 11.7M parameters in the thesis's count)."""
    return resnet(18, num_classes)


def resnet34(num_classes: int = 1000) -> Graph:
    """ResNet-34 (7.36G FP ops, 21.8M parameters in the thesis's count)."""
    return resnet(34, num_classes)


def resnet50(num_classes: int = 1000) -> Graph:
    """ResNet-50 (~7.7G FP ops, ~25.5M parameters) — the network Hadjis
    et al. benchmark; the thesis compares its ResNet-34 against it."""
    return resnet(50, num_classes)
