"""FPGA board descriptors and host-transfer models.

The three thesis boards (Arria 10 GX, Stratix 10 SX, Stratix 10 MX)
with their real resource counts, plus the Appendix-A host<->device
transfer-rate ramp (including the MX's pathological host-write path).
Contract: every board-specific number lives here and nowhere else.
"""

from repro.device.boards import ALL_BOARDS, ARRIA10, Board, STRATIX10_MX, STRATIX10_SX, board_by_name
from repro.device.transfer import d2h_time_us, effective_d2h_gbs, effective_h2d_gbs, h2d_time_us

__all__ = [
    "ALL_BOARDS", "ARRIA10", "Board", "STRATIX10_MX", "STRATIX10_SX",
    "board_by_name", "d2h_time_us", "effective_d2h_gbs", "effective_h2d_gbs",
    "h2d_time_us",
]
