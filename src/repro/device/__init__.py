"""FPGA board descriptors and host-transfer models."""

from repro.device.boards import ALL_BOARDS, ARRIA10, Board, STRATIX10_MX, STRATIX10_SX, board_by_name
from repro.device.transfer import d2h_time_us, effective_d2h_gbs, effective_h2d_gbs, h2d_time_us

__all__ = [
    "ALL_BOARDS", "ARRIA10", "Board", "STRATIX10_MX", "STRATIX10_SX",
    "board_by_name", "d2h_time_us", "effective_d2h_gbs", "effective_h2d_gbs",
    "h2d_time_us",
]
