"""FPGA board descriptors (thesis Tables 6.1 and 6.2).

Resource counts, static-partition overheads, external-memory bandwidths
and PCIe generations are the thesis's real values.  ``base_fmax_mhz`` is
the model's pre-degradation clock per family (calibrated so the fitted
designs land near the thesis's reported fmax values); the Stratix 10 MX
engineering sample carries its pathological host-write bandwidth
(Section 6.3.1, Appendix A).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Board:
    """One FPGA platform."""

    name: str
    family: str
    #: total resources (Table 6.2)
    aluts: int
    ffs: int
    rams: int  # M20K blocks
    dsps: int
    #: static partition usage (Table 6.2)
    static_aluts: int
    static_ffs: int
    static_rams: int
    #: theoretical peak external-memory bandwidth, GB/s (Table 6.1);
    #: the S10MX figure is one HBM pseudo-channel — the only one the
    #: thesis's BSP could use
    peak_bw_gbs: float
    #: PCIe host link: effective host->device / device->host GB/s
    h2d_gbs: float
    d2h_gbs: float
    #: per-transfer fixed latency, microseconds
    transfer_latency_us: float
    #: model's base clock before congestion degradation, MHz
    base_fmax_mhz: float
    #: Quartus >= 19.1 no longer auto-unrolls small-trip-count loops
    #: (thesis footnote 4: the S10MX baseline lacks the free FxF unroll)
    auto_unroll_small_loops: bool
    #: host-side cost to enqueue one kernel on this platform's CPU, us
    enqueue_overhead_us: float = 28.0
    #: congestion level at which this board's router gives up (HyperFlex
    #: fabrics are strict; the thesis's 7/16/8 tiling fails on the S10SX)
    routing_threshold: float = 1.1
    #: largest single-kernel spatial datapath (DSPs) the router can fan
    #: out operands to; the empirical frontier of thesis Section 6.5
    #: (896-MAC pointwise kernels route on the S10MX and A10 but not the
    #: S10SX)
    max_kernel_fanout: int = 1100
    #: global-memory (DDR/HBM) capacity visible to kernels, bytes; the
    #: static memory certifier (RM003) and the serving layer's
    #: replicas-per-board packing both bound footprints against this
    ddr_bytes: int = 8 << 30

    @property
    def avail_aluts(self) -> int:
        return self.aluts - self.static_aluts

    @property
    def avail_ffs(self) -> int:
        return self.ffs - self.static_ffs

    @property
    def avail_rams(self) -> int:
        return self.rams - self.static_rams

    @property
    def avail_dsps(self) -> int:
        return self.dsps

    def __str__(self) -> str:
        return self.name


ARRIA10 = Board(
    name="A10",
    family="Arria 10 GX",
    aluts=740_500,
    ffs=1_481_000,
    rams=2_336,
    dsps=1_518,
    static_aluts=113_900,
    static_ffs=227_800,
    static_rams=377,
    peak_bw_gbs=34.1,
    h2d_gbs=3.0,  # PCIe gen3 x8 effective
    d2h_gbs=3.0,
    transfer_latency_us=12.0,
    base_fmax_mhz=235.0,
    auto_unroll_small_loops=True,  # Quartus 17.1.1
    enqueue_overhead_us=52.0,  # older host platform (Xeon 8180 node)
    routing_threshold=1.1,
    max_kernel_fanout=1100,
    ddr_bytes=8 << 30,  # 2x 4 GB DDR4 banks on the dev kit
)

STRATIX10_SX = Board(
    name="S10SX",
    family="Stratix 10 SX",
    aluts=1_666_240,
    ffs=3_457_330,
    rams=11_254,
    dsps=5_760,
    static_aluts=200_000,
    static_ffs=275_150,
    static_rams=467,
    peak_bw_gbs=76.8,
    h2d_gbs=6.0,  # PCIe gen3 x16 effective
    d2h_gbs=6.0,
    transfer_latency_us=10.0,
    base_fmax_mhz=238.0,
    auto_unroll_small_loops=True,  # Quartus 18.1.2
    enqueue_overhead_us=18.0,
    routing_threshold=0.78,
    max_kernel_fanout=800,
    ddr_bytes=32 << 30,  # 4x 8 GB DDR4 banks
)

STRATIX10_MX = Board(
    name="S10MX",
    family="Stratix 10 MX HBM",
    aluts=1_405_440,
    ffs=2_810_880,
    rams=6_847,
    dsps=3_960,
    static_aluts=13_132,
    static_ffs=20_030,
    static_rams=112,
    peak_bw_gbs=12.8,  # one HBM pseudo-channel (BSP limitation)
    # engineering-sample BSP: pathologically slow host writes (Fig 6.2 /
    # Appendix A); reads are merely poor
    h2d_gbs=0.12,
    d2h_gbs=0.9,
    transfer_latency_us=35.0,
    base_fmax_mhz=320.0,
    auto_unroll_small_loops=False,  # Quartus 19.1
    enqueue_overhead_us=30.0,
    routing_threshold=1.2,
    max_kernel_fanout=1300,
    ddr_bytes=16 << 30,  # 16 GB HBM2 stack
)

ALL_BOARDS = (STRATIX10_MX, STRATIX10_SX, ARRIA10)


def board_by_name(name: str) -> Board:
    """Look up a board by its short name ('A10', 'S10SX', 'S10MX')."""
    for b in ALL_BOARDS:
        if b.name == name:
            return b
    raise KeyError(name)
