"""Host <-> device buffer transfer model (thesis Appendix A / Fig 6.2).

Transfer time = fixed latency + size / effective bandwidth, with the
effective bandwidth ramping with transfer size (small transfers are
latency-bound; large transfers approach the PCIe link rate).  The
Stratix 10 MX engineering sample's host->device writes are pathologically
slow, which makes LeNet on that board transfer-bound.
"""

from __future__ import annotations

from repro.device.boards import Board


def _ramp(size_bytes: int, peak_gbs: float) -> float:
    """Effective GB/s for a given transfer size (saturating ramp).

    Bandwidth reaches half of peak at 64 KiB and saturates beyond ~1 MiB,
    the familiar shape of PCIe transfer-rate curves.
    """
    half_point = 64 * 1024.0
    frac = size_bytes / (size_bytes + half_point)
    return max(peak_gbs * frac, 1e-6)


def h2d_time_us(board: Board, size_bytes: int) -> float:
    """Host-to-device (buffer write) time in microseconds."""
    if size_bytes <= 0:
        return 0.0
    bw = _ramp(size_bytes, board.h2d_gbs)
    return board.transfer_latency_us + size_bytes / (bw * 1e3)


def d2h_time_us(board: Board, size_bytes: int) -> float:
    """Device-to-host (buffer read) time in microseconds."""
    if size_bytes <= 0:
        return 0.0
    bw = _ramp(size_bytes, board.d2h_gbs)
    return board.transfer_latency_us + size_bytes / (bw * 1e3)


def effective_h2d_gbs(board: Board, size_bytes: int) -> float:
    """Achieved host->device bandwidth for a transfer (Appendix A rows)."""
    t = h2d_time_us(board, size_bytes)
    return size_bytes / (t * 1e3)


def effective_d2h_gbs(board: Board, size_bytes: int) -> float:
    """Achieved device->host bandwidth for a transfer (Appendix A rows)."""
    t = d2h_time_us(board, size_bytes)
    return size_bytes / (t * 1e3)
