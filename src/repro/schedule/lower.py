"""Lowering: turn scheduled compute ops into kernel loop-nest IR.

Reproduces the structures in the thesis's Chapter 5 listings:

* naive reduction stages accumulate into a **global** scratchpad with a
  separate writeback loop (Listing 5.1, the II=5 serial-execution culprit);
* optimized stages accumulate into a **register/local** tile with the
  epilogue fused into the writeback at the tile boundary (Listings 5.2-5.4,
  three nests: init / reduce / write, all inner loops unrolled);
* stages can be *attached* (``compute_at``) inside a consumer loop, which
  is how the naive softmax (Listing 5.7) recomputes its max/sum per output
  element and how LICM (Listing 5.8) hoists them out;
* output feature maps can stream to an OpenCL channel instead of global
  memory, and inputs can arrive from channels into a local copy (§4.6).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import LoweringError
from repro.ir import expr as _e
from repro.ir import stmt as _s
from repro.ir.analysis import stmt_free_vars
from repro.ir.buffer import Buffer, Channel
from repro.ir.functor import StmtMutator, substitute
from repro.ir.kernel import Kernel
from repro.ir.tensor import IterVar, Tensor
from repro.schedule.schedule import Schedule, Stage


class _BufferReplacer(StmtMutator):
    """Replace loads/stores on one buffer with another buffer."""

    def __init__(self, mapping: Dict[Buffer, Buffer]) -> None:
        self.mapping = mapping

    def mutate_Load(self, e: _e.Load) -> _e.Expr:
        idx = self.mutate(e.index)
        buf = self.mapping.get(e.buffer, e.buffer)
        if buf is e.buffer and idx is e.index:
            return e
        return _e.Load(buf, idx)

    def mutate_Store(self, s: _s.Store) -> _s.Stmt:
        idx = self.mutate(s.index)
        val = self.mutate(s.value)
        buf = self.mapping.get(s.buffer, s.buffer)
        if buf is s.buffer and idx is s.index and val is s.value:
            return s
        return _s.Store(buf, idx, val)


def _loop_kind(stage: Stage, axis: IterVar) -> Tuple[_s.ForKind, Optional[int]]:
    if stage.is_unrolled(axis):
        return _s.ForKind.UNROLLED, stage.unrolled[axis]
    return _s.ForKind.SERIAL, None


def _nest(
    stage: Stage,
    axes: Sequence[IterVar],
    innermost: _s.Stmt,
    attachments: Optional[Dict[IterVar, List[_s.Stmt]]] = None,
) -> _s.Stmt:
    """Wrap ``innermost`` in loops over ``axes`` (outermost first).

    ``attachments`` maps an axis to statements emitted at the top of that
    axis's loop body (compute_at support).
    """
    body = innermost
    for ax in reversed(axes):
        if attachments and ax in attachments:
            body = _s.seq(*(attachments[ax] + [body]))
        kind, factor = _loop_kind(stage, ax)
        body = _s.For(ax.var, ax.extent_expr(), body, kind, factor)
    return body


class _StageLowerer:
    """Lower one stage to a statement, tracking scratch allocations."""

    def __init__(self, owner: "_ScheduleLowerer", stage: Stage, out_buffer: Buffer,
                 output_channel: Optional[Channel] = None) -> None:
        self.owner = owner
        self.stage = stage
        self.out_buffer = out_buffer
        self.output_channel = output_channel

    # ------------------------------------------------------------------
    def lower(self, attachments: Optional[Dict[IterVar, List[_s.Stmt]]] = None) -> _s.Stmt:
        stage, op = self.stage, self.stage.op
        sub = stage.substitution()
        data_idx = [substitute(ax.var, sub) for ax in op.axes]

        if not op.has_reduction:
            value = substitute(op.body, sub)
            value = self._epilogue(value, data_idx)
            store = self._store_out(data_idx, value)
            return _nest(stage, stage.leaf_axes, store, attachments)

        outer, region = stage.outer_and_region()
        tile_axes = [ax for ax in region if not ax.is_reduce]
        reduce_body: _e.Reduce = op.body  # type: ignore[assignment]

        tmp_shape: List[int] = []
        for ax in tile_axes:
            ext = ax.static_extent
            if ext is None:
                raise LoweringError(
                    f"{op.name}: accumulator tile axis {ax.name} must have a "
                    "static extent"
                )
            tmp_shape.append(ext)
        if not tmp_shape:
            tmp_shape = [1]
        scope = stage.scratch_scope
        tmp = Buffer(
            self.owner.fresh_name(op.name + "_acc"),
            tmp_shape,
            _e.FLOAT32,
            scope if scope != "global" else "global",
        )
        if scope == "global":
            self.owner.global_scratch.append(tmp)

        if tile_axes:
            tmp_idx = tmp.flatten_index([ax.var for ax in tile_axes])
        else:
            tmp_idx = _e.IntImm(0)

        init = _nest(
            stage,
            tile_axes,
            _s.Store(tmp, tmp_idx, reduce_body.identity),
        )
        update = substitute(reduce_body.value, sub)
        acc = _nest(
            stage,
            region,
            _s.Store(tmp, tmp_idx, reduce_body.combine(_e.Load(tmp, tmp_idx), update)),
        )
        final = self._epilogue(_e.Load(tmp, tmp_idx), data_idx)
        wb = _nest(stage, tile_axes, self._store_out(data_idx, final))

        inner = _s.seq(init, acc, wb)
        if scope != "global":
            inner = _s.Allocate(tmp, inner)
        return _nest(stage, outer, inner, attachments)

    # ------------------------------------------------------------------
    def _epilogue(self, value: _e.Expr, data_idx: Sequence[_e.Expr]) -> _e.Expr:
        if self.stage.op.epilogue is None:
            return value
        return self.stage.op.epilogue(value, *data_idx)

    def _store_out(self, data_idx: Sequence[_e.Expr], value: _e.Expr) -> _s.Stmt:
        if self.output_channel is not None:
            return _s.ChannelWrite(self.output_channel, value)
        return _s.Store(self.out_buffer, self.out_buffer.flatten_index(data_idx), value)


class _ScheduleLowerer:
    """Lower a whole schedule (possibly multi-stage) into one kernel."""

    def __init__(self, sch: Schedule) -> None:
        self.sch = sch
        self.global_scratch: List[Buffer] = []
        self._names: Set[str] = set()

    def fresh_name(self, base: str) -> str:
        name = base
        i = 0
        while name in self._names:
            i += 1
            name = f"{base}_{i}"
        self._names.add(name)
        return name

    def lower_body(
        self,
        output_channel: Optional[Channel],
        attach: Dict[Stage, Tuple[Stage, IterVar]],
    ) -> _s.Stmt:
        # group attachments per (consumer stage, axis)
        per_site: Dict[Tuple[int, IterVar], List[Stage]] = {}
        roots: List[Tuple[Tensor, Stage]] = []
        for tensor, stage in zip(self.sch.tensors, self.sch.stages):
            site = attach.get(stage)
            if site is None:
                roots.append((tensor, stage))
            else:
                consumer, axis = site
                key = (id(consumer), axis)
                per_site.setdefault(key, []).append(stage)

        stage_tensor = {stage: tensor for tensor, stage in zip(self.sch.tensors, self.sch.stages)}

        def lower_stage(tensor: Tensor, stage: Stage, channel: Optional[Channel]) -> _s.Stmt:
            attachments: Dict[IterVar, List[_s.Stmt]] = {}
            for ax in stage.leaf_axes:
                key = (id(stage), ax)
                if key in per_site:
                    attachments[ax] = [
                        lower_stage(stage_tensor[child], child, None)
                        for child in per_site[key]
                    ]
            return _StageLowerer(self, stage, tensor.buffer, channel).lower(attachments)

        parts: List[_s.Stmt] = []
        for i, (tensor, stage) in enumerate(roots):
            is_output = tensor is self.sch.output
            parts.append(lower_stage(tensor, stage, output_channel if is_output else None))
        return _s.seq(*parts)


def lower_stage_body(sch: Schedule) -> _s.Stmt:
    """Lower a schedule to its raw loop-nest statement, pre-simplification.

    The equivalence certifier (:mod:`repro.verify.equiv`) compares the
    naive and scheduled lowerings *before* :func:`simplify_stmt` folds
    constants and collapses trip-1 loops, so the store/loop structure it
    reasons about is exactly what the lowerer emitted.
    """
    return _ScheduleLowerer(sch).lower_body(None, {})


def lower(
    sch: Schedule,
    kernel_name: str,
    *,
    output_channel: Optional[Channel] = None,
    input_channels: Optional[Dict[str, Channel]] = None,
    compute_at: Optional[Dict[Stage, Tuple[Stage, IterVar]]] = None,
    autorun: bool = False,
) -> Kernel:
    """Lower a schedule to a :class:`~repro.ir.kernel.Kernel`.

    Parameters
    ----------
    output_channel:
        If given, the output tensor is streamed to this channel instead of
        being written to global memory (pipelined execution, §4.6).
    input_channels:
        Maps input tensor *names* to channels; the kernel begins by reading
        the whole tensor from the channel into a local copy (channel data
        cannot be re-read, §4.6), and all body reads are redirected there.
    compute_at:
        Optional stage attachment map: stage -> (consumer stage, axis).
    autorun:
        Declare the kernel autorun (requires no global buffers, §4.7).
    """
    input_channels = input_channels or {}
    lowerer = _ScheduleLowerer(sch)
    body = lowerer.lower_body(output_channel, compute_at or {})

    # collect input placeholder buffers (those not computed by this schedule)
    computed = {t.name for t in sch.tensors}
    inputs: List[Buffer] = []
    seen: Set[str] = set()
    for stage in sch.stages:
        for t in stage.op.inputs:
            if t.name not in computed and t.name not in seen:
                seen.add(t.name)
                inputs.append(t.buffer)

    # channel-fed inputs: copy into a local buffer, then redirect reads
    preludes: List[_s.Stmt] = []
    replaced: Dict[Buffer, Buffer] = {}
    channel_input_names: Set[str] = set()
    for buf in inputs:
        ch = input_channels.get(buf.name)
        if ch is None:
            continue
        n = buf.num_elements()
        if n is None:
            raise LoweringError(
                f"channel-fed input {buf.name} must have a static shape"
            )
        local = Buffer(lowerer.fresh_name(buf.name + "_ch"), buf.shape, buf.dtype, "local")
        i = _e.Var(lowerer.fresh_name("cidx"))
        preludes.append(
            _s.For(i, _e.IntImm(n), _s.Store(local, i, _e.ChannelRead(ch)))
        )
        replaced[buf] = local
        channel_input_names.add(buf.name)

    if replaced:
        new_body = _BufferReplacer(replaced).mutate_stmt(body)
        assert new_body is not None
        body = _s.seq(*preludes, new_body)
        for local in replaced.values():
            body = _s.Allocate(local, body)

    args: List[Buffer] = [b for b in inputs if b.name not in channel_input_names]
    if output_channel is None:
        args.append(sch.output.buffer)
    # intermediate stage outputs (multi-stage kernels like softmax) are
    # global scratch buffers in TVM's lowering (Listings 5.7/5.8)
    intermediates = [
        t.buffer
        for t in sch.tensors[:-1]
        if t.buffer.scope == "global"
    ]
    args.extend(intermediates)
    args.extend(lowerer.global_scratch)

    # scalar args: free vars that are not loop-bound (symbolic shapes/strides)
    loop_vars: Set[_e.Var] = set()

    class _L(StmtMutator):
        def mutate_For(self, f: _s.For):
            loop_vars.add(f.loop_var)
            return self.generic_mutate_stmt(f)

    _L().mutate_stmt(body)
    scalar_args = sorted(
        (v for v in stmt_free_vars(body) if v not in loop_vars),
        key=lambda v: v.name,
    )

    # fold constants and collapse degenerate (trip-1) loops, as AOC's
    # front end would before scheduling
    from repro.ir.simplify import simplify_stmt

    body = simplify_stmt(body)
    kernel = Kernel(kernel_name, args, body, scalar_args=scalar_args, autorun=autorun)
    # propagate schedule metadata for the AOC model and the host runtime
    kernel.cached_reads = sorted(
        {name for stage in sch.stages for name in stage.cached_reads}
    )
    kernel.scratch_args = tuple(b.name for b in intermediates) + tuple(
        b.name for b in lowerer.global_scratch
    )
    kernel.output_buffer = (
        sch.output.buffer.name if output_channel is None else None
    )
    return kernel
