"""Schedules: loop-level transformation plans for compute ops.

This reproduces the TVM schedule primitives the thesis applies in
Chapter 5: ``split`` (strip mining, §4.2), ``tile`` (multi-dim strip
mining), ``reorder``, ``unroll`` (§4.1), ``cache_write``/``set_scope``
(cached writes, §4.5), ``writeback_at`` (the axis at which the
activation/writeback stage is computed — loop fusion per §4.3 is the act
of moving it inward so the epilogue lives in the main nest), and
``cache_read`` (read caches, §5.1.1).

A :class:`Stage` owns an ordered *leaf axis list* mixing data and reduce
axes.  Lowering (:mod:`repro.schedule.lower`) interprets that list as:

* all leaf axes up to and including ``writeback_axis`` are *outer* loops;
* the remaining axes form the *accumulation region*; data axes inside the
  region define the accumulator tile (the ``tmp[W_2vec]`` arrays of
  Listings 5.3/5.4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ScheduleError
from repro.ir import expr as _e
from repro.ir.tensor import ComputeOp, IterVar, Tensor


class SplitRel:
    """Record of one split: parent -> (outer, inner) with a factor."""

    __slots__ = ("parent", "outer", "inner", "factor")

    def __init__(self, parent: IterVar, outer: IterVar, inner: IterVar, factor: int) -> None:
        self.parent = parent
        self.outer = outer
        self.inner = inner
        self.factor = factor


class Stage:
    """Schedule state for one compute op."""

    def __init__(self, op: ComputeOp) -> None:
        self.op = op
        #: interleaved leaf order; starts as data axes then reduce axes
        self.leaf_axes: List[IterVar] = list(op.axes) + list(op.reduce_axes)
        self.splits: List[SplitRel] = []
        self.unrolled: Dict[IterVar, Optional[int]] = {}
        #: scope of the accumulation scratchpad: 'global' is the naive TVM
        #: HLS default (§3.2); 'register'/'local' are cached writes (§4.5)
        self.scratch_scope: str = "global"
        #: leaf data axis whose body contains init/accumulate/writeback;
        #: None means the innermost data axis (per-element accumulation)
        self.writeback_axis: Optional[IterVar] = None
        #: tensors whose reads should be cached on-chip (metadata consumed
        #: by the AOC model; §5.1.1 "we create read caches for I and W")
        self.cached_reads: List[str] = []

    # -- axis bookkeeping ------------------------------------------------
    def _find(self, axis: IterVar) -> int:
        for i, ax in enumerate(self.leaf_axes):
            if ax is axis:
                return i
        raise ScheduleError(f"axis {axis.name} is not a leaf axis of {self.op.name}")

    @property
    def data_axes(self) -> List[IterVar]:
        return [ax for ax in self.leaf_axes if not ax.is_reduce]

    @property
    def reduce_axes(self) -> List[IterVar]:
        return [ax for ax in self.leaf_axes if ax.is_reduce]

    def axis_by_name(self, name: str) -> IterVar:
        """Find a leaf axis by (exact) variable name."""
        for ax in self.leaf_axes:
            if ax.name == name:
                return ax
        raise ScheduleError(f"no leaf axis named {name!r} in {self.op.name}")

    # -- primitives --------------------------------------------------------
    def split(self, axis: IterVar, factor: int) -> Tuple[IterVar, IterVar]:
        """Strip-mine ``axis`` by ``factor`` -> (outer, inner).

        Static extents must divide evenly (thesis §4.11 requirement 2 —
        epilogue loops are never generated).  Symbolic extents are allowed
        (parameterized kernels); divisibility becomes a runtime contract.
        """
        if factor < 1:
            raise ScheduleError("split factor must be >= 1")
        i = self._find(axis)
        ext = axis.static_extent
        if ext is not None:
            if ext % factor != 0:
                raise ScheduleError(
                    f"axis {axis.name} extent {ext} not divisible by {factor} "
                    "(the flow never generates remainder epilogues)"
                )
            outer_extent: object = ext // factor
        else:
            outer_extent = _e.FloorDiv(axis.extent_expr(), _e.IntImm(factor))
        outer = IterVar(_e.Var(axis.name + "o"), outer_extent, axis.kind)
        inner = IterVar(_e.Var(axis.name + "i"), factor, axis.kind)
        self.leaf_axes[i : i + 1] = [outer, inner]
        self.splits.append(SplitRel(axis, outer, inner, factor))
        if self.writeback_axis is axis:
            self.writeback_axis = outer
        return outer, inner

    def tile(
        self, x: IterVar, y: IterVar, x_factor: int, y_factor: int
    ) -> Tuple[IterVar, IterVar, IterVar, IterVar]:
        """2-D tiling: split both axes and order as (xo, yo, xi, yi)."""
        xo, xi = self.split(x, x_factor)
        yo, yi = self.split(y, y_factor)
        # move yo before xi
        self.leaf_axes.remove(yo)
        self.leaf_axes.insert(self._find(xi), yo)
        return xo, yo, xi, yi

    def reorder(self, *axes: IterVar) -> None:
        """Set the relative order of the given leaf axes.

        Axes not mentioned keep their positions; mentioned axes are
        permuted into the listed order across the slots they occupy.
        """
        idxs = sorted(self._find(ax) for ax in axes)
        if len(set(idxs)) != len(axes):
            raise ScheduleError("reorder arguments must be distinct leaf axes")
        for slot, ax in zip(idxs, axes):
            self.leaf_axes[slot] = ax

    def unroll(self, axis: IterVar, factor: Optional[int] = None) -> None:
        """Mark a leaf axis unrolled (``#pragma unroll [factor]``).

        Full unrolling of an axis with a symbolic extent is rejected, as
        AOC rejects non-constant loop bounds (§4.1).
        """
        self._find(axis)
        if axis.static_extent is None and factor is None:
            raise ScheduleError(
                f"cannot fully unroll symbolic axis {axis.name}: AOC requires "
                "compile-time constant bounds"
            )
        self.unrolled[axis] = factor

    def cache_write(self, scope: str = "register") -> None:
        """Accumulate into an on-chip scratchpad instead of global memory."""
        if scope not in ("register", "local"):
            raise ScheduleError("cache_write scope must be 'register' or 'local'")
        self.scratch_scope = scope

    def cache_read(self, tensor: Tensor) -> None:
        """Mark a tensor's reads as cached on-chip (BRAM) by AOC."""
        if tensor.name not in [t.name for t in self.op.inputs]:
            raise ScheduleError(f"{tensor.name} is not an input of {self.op.name}")
        if tensor.name not in self.cached_reads:
            self.cached_reads.append(tensor.name)

    def writeback_at(self, axis: Optional[IterVar]) -> None:
        """Choose the loop level whose body holds init/accumulate/writeback.

        ``axis`` must be a data leaf axis; every leaf axis after it is
        part of the accumulation region.  ``None`` restores the default
        (innermost data axis => scalar accumulator).
        """
        if axis is not None:
            i = self._find(axis)
            if axis.is_reduce:
                raise ScheduleError("writeback axis must be a data axis")
            # all reduce axes must come after the writeback axis
            for ax in self.leaf_axes[: i + 1]:
                if ax.is_reduce:
                    raise ScheduleError(
                        "reduce axes cannot be outside the writeback axis"
                    )
        self.writeback_axis = axis

    # -- lowering-facing queries ---------------------------------------
    def outer_and_region(self) -> Tuple[List[IterVar], List[IterVar]]:
        """Split the leaf list into (outer loops, accumulation region)."""
        if not self.op.has_reduction:
            return list(self.leaf_axes), []
        wb = self.writeback_axis
        if wb is None:
            # innermost data axis before the first reduce axis
            first_reduce = min(
                i for i, ax in enumerate(self.leaf_axes) if ax.is_reduce
            )
            data_before = [
                ax for ax in self.leaf_axes[:first_reduce] if not ax.is_reduce
            ]
            if not data_before:
                return [], list(self.leaf_axes)
            wb = data_before[-1]
        i = self._find(wb)
        outer = self.leaf_axes[: i + 1]
        region = self.leaf_axes[i + 1 :]
        for ax in outer:
            if ax.is_reduce:
                raise ScheduleError(
                    f"reduce axis {ax.name} is outside the writeback axis"
                )
        if not any(ax.is_reduce for ax in region):
            raise ScheduleError("accumulation region has no reduce axis")
        return list(outer), list(region)

    def substitution(self) -> Dict[_e.Var, _e.Expr]:
        """Mapping split axis vars -> leaf index expressions.

        Splits may chain (an inner axis split again); applying them in
        creation order and rewriting earlier entries keeps every mapping
        expressed purely in terms of current leaf axes.
        """
        from repro.ir.functor import substitute

        mapping: Dict[_e.Var, _e.Expr] = {}
        for rel in self.splits:
            expr = rel.outer.var * rel.factor + rel.inner.var
            sub = {rel.parent.var: expr}
            for k in list(mapping):
                mapping[k] = substitute(mapping[k], sub)
            mapping[rel.parent.var] = expr
        return mapping

    def is_unrolled(self, axis: IterVar) -> bool:
        return axis in self.unrolled

    def __repr__(self) -> str:
        order = ", ".join(
            ("*" if ax in self.unrolled else "") + ax.name for ax in self.leaf_axes
        )
        return f"Stage({self.op.name}: [{order}], scratch={self.scratch_scope})"


class Schedule:
    """A collection of stages, one per compute tensor, lowered together.

    For single-op kernels there is exactly one stage; multi-stage kernels
    (softmax) hold several, lowered in order into one kernel body.
    """

    def __init__(self, tensors: Sequence[Tensor]) -> None:
        self.tensors: Tuple[Tensor, ...] = tuple(tensors)
        self.stages: List[Stage] = []
        #: strides the pin_unit_stride transform replaced with the literal
        #: 1, as (buffer name, original stride expr).  The equivalence
        #: certifier (repro.verify.equiv, RE005) proves each original
        #: stride binds to 1 in every binding set.
        self.pinned_strides: List[Tuple[str, _e.Expr]] = []
        for t in self.tensors:
            if t.op is None:
                raise ScheduleError(f"{t.name} is a placeholder, not a compute op")
            self.stages.append(Stage(t.op))

    def __getitem__(self, tensor: Tensor) -> Stage:
        for t, s in zip(self.tensors, self.stages):
            if t is tensor:
                return s
        raise ScheduleError(f"{tensor.name} is not scheduled here")

    @property
    def output(self) -> Tensor:
        return self.tensors[-1]


def create_schedule(*tensors: Tensor) -> Schedule:
    """Create a schedule over one or more compute tensors (last = output)."""
    return Schedule(tensors)
