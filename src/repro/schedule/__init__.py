"""Schedule primitives and lowering (the reproduction's mini-TVM scheduler)."""

from repro.schedule.schedule import Schedule, SplitRel, Stage, create_schedule
from repro.schedule.lower import lower

__all__ = ["Schedule", "SplitRel", "Stage", "create_schedule", "lower"]
