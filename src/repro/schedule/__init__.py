"""Schedule primitives and lowering (the reproduction's mini-TVM scheduler).

``split`` / ``reorder`` / ``unroll`` / ``cache_write`` /
``writeback_at`` and friends, plus the lowering from a scheduled stage
to nested-loop statement IR.  Contract: schedules only reorganize
iteration — they never change kernel semantics, so every scheduled
kernel still matches ``repro.nn`` numerically.
"""

from repro.schedule.schedule import Schedule, SplitRel, Stage, create_schedule
from repro.schedule.lower import lower
from repro.schedule.transforms import (
    CATALOG,
    ScheduleRecipe,
    TransformStep,
    canonical_axis,
    recipe,
    step,
)

__all__ = [
    "Schedule",
    "SplitRel",
    "Stage",
    "create_schedule",
    "lower",
    "CATALOG",
    "ScheduleRecipe",
    "TransformStep",
    "canonical_axis",
    "recipe",
    "step",
]
