"""Composable, serializable schedule transforms (recipes).

A :class:`ScheduleRecipe` is an ordered list of named transform steps —
the declarative form of the imperative ``Stage`` calls the thesis's
Chapter 5 listings apply by hand.  Recipes are pure data: they can be
composed (``+``), diffed, round-tripped through dict/JSON, fingerprinted
for the content-addressed compile cache, and *applied* to any
freshly-created :class:`~repro.schedule.schedule.Schedule` whose axes
match by canonical name.  The schedule builders in ``repro.topi`` emit
recipes, ``flow.folded`` applies them, and ``flow.autofix`` rewrites
them from advisor findings — one vocabulary end to end.

Axis references are *canonical names*: ``repro.ir.compute`` uniquifies
data axis names (``ff`` becomes ``ff_1``), and split children append
``o``/``i`` (``ff_1o``), so a recipe names the axis ``ff`` or ``ffo``
and :func:`canonical_axis` strips the uniquifying suffix at apply time.
That keeps one recipe applicable to every kernel instance of the same
operator shape.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ScheduleError
from repro.ir import expr as _e

#: transform catalog: step name -> human-readable contract.  The lint
#: gate (tools/lint.py) keeps this table and docs/schedules.md in sync.
CATALOG: Dict[str, str] = {
    "split": "strip-mine an axis by a factor into (outer, inner)",
    "tile": "2-D strip mining: split two axes and interleave as (xo, yo, xi, yi)",
    "reorder": "permute the named leaf axes across the slots they occupy",
    "unroll": "mark a leaf axis unrolled (optionally by a partial factor)",
    "cache_write": "accumulate into an on-chip scratchpad scope instead of global memory",
    "cache_read": "cache one input tensor's reads on-chip (BRAM)",
    "writeback_at": "choose the data axis whose body holds init/accumulate/writeback",
    "pin_unit_stride": "pin symbolic innermost buffer strides to the literal 1",
}

_UNIQ_SUFFIX = re.compile(r"_\d+")


def canonical_axis(name: str) -> str:
    """Strip the uniquifying ``_N`` suffix: ``ff_1o`` -> ``ffo``."""
    return _UNIQ_SUFFIX.sub("", name, count=1)


def _freeze(value: object) -> object:
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value: object) -> object:
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class TransformStep:
    """One named transform with keyword arguments, as pure data."""

    op: str
    args: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.op not in CATALOG:
            raise ScheduleError(
                f"unknown transform {self.op!r}; catalog: {sorted(CATALOG)}"
            )

    @property
    def kwargs(self) -> Dict[str, object]:
        return dict(self.args)

    def to_dict(self) -> Dict[str, object]:
        return {"op": self.op, "args": {k: _thaw(v) for k, v in self.args}}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "TransformStep":
        args = tuple(sorted((k, _freeze(v)) for k, v in dict(d["args"]).items()))
        return cls(op=str(d["op"]), args=args)

    def format(self) -> str:
        inside = ", ".join(f"{k}={v!r}" for k, v in self.args)
        return f"{self.op}({inside})"


def step(op: str, **kwargs: object) -> TransformStep:
    """Build a :class:`TransformStep` from keyword arguments."""
    return TransformStep(op=op, args=tuple(sorted((k, _freeze(v)) for k, v in kwargs.items())))


@dataclass(frozen=True)
class ScheduleRecipe:
    """An immutable, composable sequence of transform steps."""

    steps: Tuple[TransformStep, ...] = field(default_factory=tuple)

    # -- composition ---------------------------------------------------
    def then(self, s: TransformStep) -> "ScheduleRecipe":
        return ScheduleRecipe(self.steps + (s,))

    def __add__(self, other: "ScheduleRecipe") -> "ScheduleRecipe":
        return ScheduleRecipe(self.steps + other.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __bool__(self) -> bool:
        return bool(self.steps)

    # -- builder API (one method per catalog entry) --------------------
    def split(self, axis: str, factor: int) -> "ScheduleRecipe":
        return self.then(step("split", axis=axis, factor=factor))

    def tile(self, x: str, y: str, x_factor: int, y_factor: int) -> "ScheduleRecipe":
        return self.then(step("tile", x=x, y=y, x_factor=x_factor, y_factor=y_factor))

    def reorder(self, *axes: str) -> "ScheduleRecipe":
        return self.then(step("reorder", axes=list(axes)))

    def unroll(self, axis: str, factor: Optional[int] = None) -> "ScheduleRecipe":
        return self.then(step("unroll", axis=axis, factor=factor))

    def cache_write(self, scope: str = "register") -> "ScheduleRecipe":
        return self.then(step("cache_write", scope=scope))

    def cache_read(self, input: Optional[int] = None, tensor: Optional[str] = None) -> "ScheduleRecipe":
        if (input is None) == (tensor is None):
            raise ScheduleError("cache_read takes exactly one of input= or tensor=")
        if input is not None:
            return self.then(step("cache_read", input=input))
        return self.then(step("cache_read", tensor=tensor))

    def writeback_at(self, axis: Optional[str]) -> "ScheduleRecipe":
        return self.then(step("writeback_at", axis=axis))

    def pin_unit_stride(self) -> "ScheduleRecipe":
        return self.then(step("pin_unit_stride"))

    # -- application ---------------------------------------------------
    def apply(self, sch, stage_index: int = 0):
        """Apply every step to ``sch.stages[stage_index]``; returns ``sch``.

        Axis arguments are resolved by canonical name against the
        stage's *current* leaf axes, so later steps see the children of
        earlier splits (``xxo``/``xxi`` after ``split('xx', ...)``).
        """
        st = sch.stages[stage_index]
        for s in self.steps:
            self._apply_step(sch, st, s)
        return sch

    def _apply_step(self, sch, st, s: TransformStep) -> None:
        kw = s.kwargs
        if s.op == "split":
            st.split(_resolve_axis(st, str(kw["axis"])), int(kw["factor"]))
        elif s.op == "tile":
            st.tile(
                _resolve_axis(st, str(kw["x"])),
                _resolve_axis(st, str(kw["y"])),
                int(kw["x_factor"]),
                int(kw["y_factor"]),
            )
        elif s.op == "reorder":
            st.reorder(*[_resolve_axis(st, str(a)) for a in kw["axes"]])
        elif s.op == "unroll":
            factor = kw.get("factor")
            st.unroll(_resolve_axis(st, str(kw["axis"])), None if factor is None else int(factor))
        elif s.op == "cache_write":
            st.cache_write(str(kw["scope"]))
        elif s.op == "cache_read":
            st.cache_read(_resolve_input(st, kw))
        elif s.op == "writeback_at":
            axis = kw.get("axis")
            st.writeback_at(None if axis is None else _resolve_axis(st, str(axis)))
        elif s.op == "pin_unit_stride":
            _pin_unit_strides(sch, st)
        else:  # pragma: no cover — __post_init__ rejects unknown ops
            raise ScheduleError(f"unknown transform {s.op!r}")

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {"version": 1, "steps": [s.to_dict() for s in self.steps]}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ScheduleRecipe":
        if d.get("version") != 1:
            raise ScheduleError(f"unsupported recipe version {d.get('version')!r}")
        return cls(tuple(TransformStep.from_dict(s) for s in d["steps"]))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleRecipe":
        return cls.from_dict(json.loads(text))

    # -- identity ------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the recipe — the compile-cache key component."""
        from repro.pipeline.fingerprint import fingerprint

        return fingerprint(["schedule-recipe", self.to_dict()])

    def diff(self, other: "ScheduleRecipe") -> List[str]:
        """Step-level diff: common prefix kept, then ``-``/``+`` lines."""
        common = 0
        for a, b in zip(self.steps, other.steps):
            if a != b:
                break
            common += 1
        lines = [f"  {s.format()}" for s in self.steps[:common]]
        lines += [f"- {s.format()}" for s in self.steps[common:]]
        lines += [f"+ {s.format()}" for s in other.steps[common:]]
        return lines

    def format(self) -> str:
        return " -> ".join(s.format() for s in self.steps) or "(empty)"


def _resolve_axis(st, name: str):
    """Find the leaf axis whose canonical name matches ``name``."""
    hits = [ax for ax in st.leaf_axes if canonical_axis(ax.name) == name]
    if not hits:
        hits = [ax for ax in st.leaf_axes if ax.name == name]
    if not hits:
        leaves = [canonical_axis(ax.name) for ax in st.leaf_axes]
        raise ScheduleError(
            f"recipe axis {name!r} not found in {st.op.name}; leaves: {leaves}"
        )
    if len(hits) > 1:
        raise ScheduleError(
            f"recipe axis {name!r} is ambiguous in {st.op.name}: "
            f"{[ax.name for ax in hits]}"
        )
    return hits[0]


def _resolve_input(st, kw: Dict[str, object]):
    if "tensor" in kw:
        name = str(kw["tensor"])
        for t in st.op.inputs:
            if t.name == name:
                return t
        raise ScheduleError(
            f"recipe cache_read tensor {name!r} is not an input of {st.op.name}"
        )
    idx = int(kw["input"])
    inputs = list(st.op.inputs)
    if not 0 <= idx < len(inputs):
        raise ScheduleError(
            f"recipe cache_read input {idx} out of range for {st.op.name} "
            f"({len(inputs)} inputs)"
        )
    return inputs[idx]


def _pin_unit_strides(sch, st) -> None:
    """Rewrite symbolic innermost strides to the literal 1 (idempotent).

    Each replaced stride expression is recorded on the schedule
    (``sch.pinned_strides``) so the equivalence certifier can prove the
    pin is sound — i.e. every binding set actually binds it to 1.
    """
    tensors = list(st.op.inputs) + [t for t in sch.tensors]
    pins = getattr(sch, "pinned_strides", None)
    for t in tensors:
        buf = t.buffer
        strides = getattr(buf, "strides", None)
        if not strides:
            continue
        inner = strides[-1]
        if isinstance(inner, int) or isinstance(inner, _e.IntImm):
            continue
        if pins is not None:
            pins.append((buf.name, inner))
        buf.strides = tuple(strides[:-1]) + (1,)


def recipe(steps: Iterable[TransformStep] = ()) -> ScheduleRecipe:
    """Convenience constructor (``recipe().split(...).unroll(...)``)."""
    return ScheduleRecipe(tuple(steps))
