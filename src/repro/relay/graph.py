"""Graph-level IR: the reproduction's Relay.

A :class:`Graph` is a DAG of :class:`OpNode` operations with inferred
shapes.  Networks are built through :class:`GraphBuilder` (the moral
equivalent of importing a frozen model through TVM's frontend,
thesis Section 3.1).  Tensors are CHW with an implicit N=1 batch.

The operator vocabulary covers everything LeNet-5, MobileNetV1 and
ResNet-18/34 need: conv2d, depthwise conv, dense, max/avg pooling,
global average pooling, softmax, flatten, zero padding, ReLU/ReLU6,
bias add, inference batch norm and residual add.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.nn.functional import conv2d_out_size

Shape = Tuple[int, ...]

#: ops that are injective/elementwise and fusable into a producer
INJECTIVE_OPS = ("relu", "relu6", "bias_add", "batchnorm", "add")

#: ops that anchor a kernel (complex ops in TVM fusion terminology)
ANCHOR_OPS = (
    "conv2d",
    "depthwise_conv2d",
    "dense",
    "maxpool",
    "avgpool",
    "global_avgpool",
    "softmax",
    "flatten",
    "pad",
)

ALL_OPS = ("input",) + ANCHOR_OPS + INJECTIVE_OPS


class OpNode:
    """One operation in the graph."""

    def __init__(
        self,
        name: str,
        op: str,
        inputs: Sequence["OpNode"],
        attrs: Optional[Dict[str, object]] = None,
        out_shape: Optional[Shape] = None,
    ) -> None:
        if op not in ALL_OPS:
            raise ReproError(f"unknown op {op!r}")
        self.name = name
        self.op = op
        self.inputs: Tuple[OpNode, ...] = tuple(inputs)
        self.attrs: Dict[str, object] = dict(attrs or {})
        self.out_shape: Shape = out_shape if out_shape is not None else ()

    # -- parameters -----------------------------------------------------
    def weight_shapes(self) -> Dict[str, Shape]:
        """Parameter tensors owned by this node (name suffix -> shape)."""
        a = self.attrs
        if self.op == "conv2d":
            c1 = self.inputs[0].out_shape[0]
            shapes = {"weight": (a["filters"], c1, a["field"], a["field"])}
            if a.get("bias", True):
                shapes["bias"] = (a["filters"],)
            return shapes
        if self.op == "depthwise_conv2d":
            c = self.inputs[0].out_shape[0]
            shapes = {"weight": (c, 1, a["field"], a["field"])}
            if a.get("bias", True):
                shapes["bias"] = (c,)
            return shapes
        if self.op == "dense":
            c1 = self.inputs[0].out_shape[0]
            shapes = {"weight": (a["units"], c1)}
            if a.get("bias", True):
                shapes["bias"] = (a["units"],)
            return shapes
        if self.op == "batchnorm":
            c = self.out_shape[0]
            return {"gamma": (c,), "beta": (c,), "mean": (c,), "var": (c,)}
        return {}

    def num_params(self) -> int:
        """Trainable parameter count of this node."""
        total = 0
        for shape in self.weight_shapes().values():
            n = 1
            for d in shape:
                n *= d
            total += n
        return total

    def flops(self) -> int:
        """Floating-point operations (mul and add counted separately,
        thesis Section 6.1.2) for one forward pass of this node."""
        a = self.attrs
        if self.op == "conv2d":
            k, ho, wo = self.out_shape
            c1 = self.inputs[0].out_shape[0]
            return 2 * k * ho * wo * c1 * a["field"] * a["field"]
        if self.op == "depthwise_conv2d":
            c, ho, wo = self.out_shape
            return 2 * c * ho * wo * a["field"] * a["field"]
        if self.op == "dense":
            (m,) = self.out_shape
            c1 = self.inputs[0].out_shape[0]
            return 2 * m * c1
        if self.op in ("maxpool", "avgpool"):
            c, ho, wo = self.out_shape
            return c * ho * wo * a["field"] * a["field"]
        if self.op == "global_avgpool":
            c, h, w = self.inputs[0].out_shape
            return c * h * w
        if self.op == "softmax":
            (n,) = self.out_shape
            return 4 * n  # max, sub+exp, sum, div
        if self.op in ("relu", "relu6", "bias_add", "add", "batchnorm"):
            n = 1
            for d in self.out_shape:
                n *= d
            return n * (2 if self.op == "batchnorm" else 1)
        return 0

    def __repr__(self) -> str:
        return f"OpNode({self.name}: {self.op} -> {self.out_shape})"


class Graph:
    """A DAG of op nodes in topological order (inputs first)."""

    def __init__(self, nodes: Sequence[OpNode], name: str = "net") -> None:
        self.name = name
        self.nodes: List[OpNode] = list(nodes)
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ReproError("duplicate node names in graph")
        self._by_name = {n.name: n for n in self.nodes}
        # topological sanity: inputs must precede users
        seen = set()
        for n in self.nodes:
            for i in n.inputs:
                if i.name not in seen:
                    raise ReproError(
                        f"graph not topologically ordered: {n.name} uses "
                        f"{i.name} before it is defined"
                    )
            seen.add(n.name)

    def __getitem__(self, name: str) -> OpNode:
        return self._by_name[name]

    def __iter__(self) -> Iterable[OpNode]:
        return iter(self.nodes)

    @property
    def input(self) -> OpNode:
        ins = [n for n in self.nodes if n.op == "input"]
        if len(ins) != 1:
            raise ReproError("graph must have exactly one input")
        return ins[0]

    @property
    def output(self) -> OpNode:
        return self.nodes[-1]

    def total_flops(self) -> int:
        """Total FLOPs of one forward pass."""
        return sum(n.flops() for n in self.nodes)

    def total_params(self) -> int:
        """Total trainable parameters."""
        return sum(n.num_params() for n in self.nodes)

    def param_shapes(self) -> Dict[str, Shape]:
        """All parameter tensors: '<node>.<suffix>' -> shape."""
        out: Dict[str, Shape] = {}
        for n in self.nodes:
            for suffix, shape in n.weight_shapes().items():
                out[f"{n.name}.{suffix}"] = shape
        return out

    def consumers(self, node: OpNode) -> List[OpNode]:
        return [n for n in self.nodes if node in n.inputs]

    def __repr__(self) -> str:
        return f"Graph({self.name}, {len(self.nodes)} nodes)"


class GraphBuilder:
    """Fluent builder for networks (the model-definition frontend)."""

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self.nodes: List[OpNode] = []
        self._counter: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _name(self, base: str, given: Optional[str]) -> str:
        if given is not None:
            return given
        i = self._counter.get(base, 0) + 1
        self._counter[base] = i
        return f"{base}{i}"

    def _add(self, node: OpNode) -> OpNode:
        self.nodes.append(node)
        return node

    # -- ops -------------------------------------------------------------
    def input(self, shape: Shape, name: str = "data") -> OpNode:
        return self._add(OpNode(name, "input", [], out_shape=tuple(shape)))

    def pad(self, x: OpNode, pad, name: Optional[str] = None) -> OpNode:
        """Explicit zero-padding node (int or (before, after) pair).

        TVM emits padding as its own kernel, so models here carry explicit
        pad nodes; conv nodes always receive pre-padded inputs (pad=0).
        """
        c, h, w = x.out_shape
        before, after = (pad, pad) if isinstance(pad, int) else tuple(pad)
        total = before + after
        return self._add(
            OpNode(
                self._name("pad", name),
                "pad",
                [x],
                {"pad": (before, after)},
                (c, h + total, w + total),
            )
        )

    def conv2d(
        self,
        x: OpNode,
        filters: int,
        field: int,
        stride: int = 1,
        pad: int = 0,
        bias: bool = True,
        name: Optional[str] = None,
    ) -> OpNode:
        c, h, w = x.out_shape
        ho = conv2d_out_size(h, field, stride, pad)
        wo = conv2d_out_size(w, field, stride, pad)
        return self._add(
            OpNode(
                self._name("conv", name),
                "conv2d",
                [x],
                {
                    "filters": filters,
                    "field": field,
                    "stride": stride,
                    "pad": pad,
                    "bias": bias,
                },
                (filters, ho, wo),
            )
        )

    def depthwise_conv2d(
        self,
        x: OpNode,
        field: int,
        stride: int = 1,
        pad: int = 0,
        bias: bool = True,
        name: Optional[str] = None,
    ) -> OpNode:
        c, h, w = x.out_shape
        ho = conv2d_out_size(h, field, stride, pad)
        wo = conv2d_out_size(w, field, stride, pad)
        return self._add(
            OpNode(
                self._name("dwconv", name),
                "depthwise_conv2d",
                [x],
                {"field": field, "stride": stride, "pad": pad, "bias": bias},
                (c, ho, wo),
            )
        )

    def maxpool(self, x: OpNode, field: int, stride: int, name: Optional[str] = None) -> OpNode:
        c, h, w = x.out_shape
        ho = (h - field) // stride + 1
        wo = (w - field) // stride + 1
        return self._add(
            OpNode(
                self._name("pool", name),
                "maxpool",
                [x],
                {"field": field, "stride": stride},
                (c, ho, wo),
            )
        )

    def avgpool(self, x: OpNode, field: int, stride: int, name: Optional[str] = None) -> OpNode:
        c, h, w = x.out_shape
        ho = (h - field) // stride + 1
        wo = (w - field) // stride + 1
        return self._add(
            OpNode(
                self._name("pool", name),
                "avgpool",
                [x],
                {"field": field, "stride": stride},
                (c, ho, wo),
            )
        )

    def global_avgpool(self, x: OpNode, name: Optional[str] = None) -> OpNode:
        c, _, _ = x.out_shape
        return self._add(
            OpNode(self._name("gap", name), "global_avgpool", [x], {}, (c,))
        )

    def flatten(self, x: OpNode, name: Optional[str] = None) -> OpNode:
        n = 1
        for d in x.out_shape:
            n *= d
        return self._add(OpNode(self._name("flatten", name), "flatten", [x], {}, (n,)))

    def dense(
        self, x: OpNode, units: int, bias: bool = True, name: Optional[str] = None
    ) -> OpNode:
        if len(x.out_shape) != 1:
            raise ReproError("dense input must be flattened first")
        return self._add(
            OpNode(
                self._name("dense", name),
                "dense",
                [x],
                {"units": units, "bias": bias},
                (units,),
            )
        )

    def relu(self, x: OpNode, name: Optional[str] = None) -> OpNode:
        return self._add(OpNode(self._name("relu", name), "relu", [x], {}, x.out_shape))

    def relu6(self, x: OpNode, name: Optional[str] = None) -> OpNode:
        return self._add(OpNode(self._name("relu6", name), "relu6", [x], {}, x.out_shape))

    def batchnorm(self, x: OpNode, name: Optional[str] = None) -> OpNode:
        """Inference-time batch normalization over channels (fused into
        the producing convolution by the operator-fusion pass)."""
        if len(x.out_shape) != 3:
            raise ReproError("batchnorm expects a CHW tensor")
        return self._add(
            OpNode(self._name("bn", name), "batchnorm", [x], {}, x.out_shape)
        )

    def add(self, x: OpNode, y: OpNode, name: Optional[str] = None) -> OpNode:
        if x.out_shape != y.out_shape:
            raise ReproError(
                f"add shape mismatch: {x.out_shape} vs {y.out_shape}"
            )
        return self._add(OpNode(self._name("add", name), "add", [x, y], {}, x.out_shape))

    def softmax(self, x: OpNode, name: Optional[str] = None) -> OpNode:
        if len(x.out_shape) != 1:
            raise ReproError("softmax input must be 1-D")
        return self._add(
            OpNode(self._name("softmax", name), "softmax", [x], {}, x.out_shape)
        )

    def build(self) -> Graph:
        return Graph(self.nodes, self.name)
