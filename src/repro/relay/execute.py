"""Functional graph execution with NumPy (both fused and unfused forms).

The unfused executor is the reference semantics; the fused executor runs
at kernel granularity (one call per fused node), which is what the
runtime simulator uses for FPGA deployments.  Tests assert the two agree,
establishing that operator fusion is semantics-preserving.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ReproError
from repro.nn import functional as F
from repro.relay.graph import Graph, OpNode
from repro.relay.passes import FusedGraph, FusedNode

Params = Dict[str, np.ndarray]


def init_params(graph: Graph, seed: int = 0) -> Params:
    """Deterministic He-style random parameters for every weight tensor."""
    rng = np.random.default_rng(seed)
    params: Params = {}
    for name, shape in graph.param_shapes().items():
        fan_in = 1
        for d in shape[1:]:
            fan_in *= d
        scale = np.sqrt(2.0 / max(fan_in, 1))
        if name.endswith((".bias", ".beta")):
            params[name] = np.zeros(shape, np.float32)
        elif name.endswith((".gamma", ".var")):
            params[name] = rng.uniform(0.5, 1.5, shape).astype(np.float32)
        elif name.endswith(".mean"):
            params[name] = (rng.standard_normal(shape) * 0.1).astype(np.float32)
        else:
            params[name] = (rng.standard_normal(shape) * scale).astype(np.float32)
    return params


def _apply_node(node: OpNode, params: Params, values: Dict[str, np.ndarray]) -> np.ndarray:
    a = node.attrs
    ins = [values[i.name] for i in node.inputs]
    if node.op == "pad":
        return F.pad2d(ins[0], a["pad"])
    if node.op == "conv2d":
        bias = params.get(f"{node.name}.bias")
        return F.conv2d(ins[0], params[f"{node.name}.weight"], bias,
                        a["stride"], a["pad"])
    if node.op == "depthwise_conv2d":
        bias = params.get(f"{node.name}.bias")
        return F.depthwise_conv2d(ins[0], params[f"{node.name}.weight"], bias,
                                  a["stride"], a["pad"])
    if node.op == "dense":
        bias = params.get(f"{node.name}.bias")
        return F.dense(ins[0], params[f"{node.name}.weight"], bias)
    if node.op == "maxpool":
        return F.maxpool2d(ins[0], a["field"], a["stride"])
    if node.op == "avgpool":
        return F.avgpool2d(ins[0], a["field"], a["stride"])
    if node.op == "global_avgpool":
        return F.global_avgpool(ins[0])
    if node.op == "flatten":
        return F.flatten(ins[0])
    if node.op == "softmax":
        return F.softmax(ins[0])
    if node.op == "relu":
        return F.relu(ins[0])
    if node.op == "relu6":
        return F.relu6(ins[0])
    if node.op == "add":
        return F.residual_add(ins[0], ins[1])
    if node.op == "batchnorm":
        return F.batchnorm_inference(
            ins[0],
            params[f"{node.name}.gamma"],
            params[f"{node.name}.beta"],
            params[f"{node.name}.mean"],
            params[f"{node.name}.var"],
        )
    raise ReproError(f"cannot execute op {node.op}")  # pragma: no cover


def run_graph(
    graph: Graph,
    x: np.ndarray,
    params: Params,
    record: Optional[Dict[str, np.ndarray]] = None,
) -> np.ndarray:
    """Execute the unfused graph node by node (reference path)."""
    values: Dict[str, np.ndarray] = {graph.input.name: x.astype(np.float32)}
    for node in graph.nodes:
        if node.op == "input":
            continue
        values[node.name] = _apply_node(node, params, values)
        if record is not None:
            record[node.name] = values[node.name]
    return values[graph.output.name]


def run_fused_node(
    fn: FusedNode, params: Params, values: Dict[str, np.ndarray]
) -> np.ndarray:
    """Execute one fused kernel: anchor then its epilogue chain."""
    out = _apply_node(fn.anchor, params, values)
    values[fn.anchor.name] = out
    for epi in fn.epilogue:
        values[epi.name] = _apply_node(epi, params, values)
        out = values[epi.name]
    return out


def run_fused_graph(
    fused: FusedGraph,
    x: np.ndarray,
    params: Params,
    record: Optional[Dict[str, np.ndarray]] = None,
) -> np.ndarray:
    """Execute the fused graph kernel by kernel (deployment path)."""
    values: Dict[str, np.ndarray] = {fused.graph.input.name: x.astype(np.float32)}
    out = x
    for fn in fused:
        out = run_fused_node(fn, params, values)
        if record is not None:
            record[fn.name] = out
    return out
