"""Graph-level passes: operator fusion and kernel grouping.

Reproduces the Relay transformations the thesis relies on (Section 3.1):
injective (elementwise) operations — bias add, batch norm, ReLU/ReLU6 and
residual additions — are fused into the output of the preceding complex
operator, so that a distinct kernel is generated for each convolution,
dense, padding and softmax layer, with activations applied in the kernel
epilogue.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.relay.graph import ANCHOR_OPS, Graph, INJECTIVE_OPS, OpNode


class FusedNode:
    """One kernel-granularity operation after fusion.

    ``anchor`` is the complex op; ``epilogue`` the injective ops fused
    into its output, in application order.  ``extra_inputs`` are the
    additional tensors the epilogue reads (residual shortcut inputs).
    """

    def __init__(self, anchor: OpNode) -> None:
        self.anchor = anchor
        self.epilogue: List[OpNode] = []
        self.extra_inputs: List[OpNode] = []

    @property
    def name(self) -> str:
        return self.anchor.name

    @property
    def op(self) -> str:
        return self.anchor.op

    @property
    def out_shape(self):
        if self.epilogue:
            return self.epilogue[-1].out_shape
        return self.anchor.out_shape

    @property
    def output_node(self) -> OpNode:
        """The graph node whose value this kernel produces."""
        return self.epilogue[-1] if self.epilogue else self.anchor

    def epilogue_kinds(self) -> List[str]:
        return [n.op for n in self.epilogue]

    @property
    def activation(self) -> Optional[str]:
        """Fused activation kind ('relu'/'relu6') if any."""
        for n in self.epilogue:
            if n.op in ("relu", "relu6"):
                return n.op
        return None

    @property
    def has_residual(self) -> bool:
        return any(n.op == "add" for n in self.epilogue)

    @property
    def has_batchnorm(self) -> bool:
        return any(n.op == "batchnorm" for n in self.epilogue)

    @property
    def batchnorm_node(self) -> Optional[OpNode]:
        for n in self.epilogue:
            if n.op == "batchnorm":
                return n
        return None

    def check_canonical_epilogue(self) -> None:
        """The kernel builders emit bias -> batchnorm -> add -> activation;
        reject epilogue chains in any other order."""
        order = {"bias_add": 0, "batchnorm": 1, "add": 2, "relu": 3, "relu6": 3}
        ranks = [order[n.op] for n in self.epilogue]
        if ranks != sorted(ranks):
            raise ReproError(
                f"{self.name}: epilogue {self.epilogue_kinds()} is not in "
                "canonical bias/batchnorm/add/activation order"
            )

    def flops(self) -> int:
        return self.anchor.flops() + sum(n.flops() for n in self.epilogue)

    def __repr__(self) -> str:
        epi = "+".join(self.epilogue_kinds())
        suffix = f" (+{epi})" if epi else ""
        return f"FusedNode({self.name}: {self.op}{suffix})"


class FusedGraph:
    """The kernel-level view of a network after operator fusion."""

    def __init__(self, graph: Graph, nodes: Sequence[FusedNode]) -> None:
        self.graph = graph
        self.nodes: List[FusedNode] = list(nodes)
        self._producer: Dict[str, FusedNode] = {}
        for fn in self.nodes:
            self._producer[fn.output_node.name] = fn

    def producer_of(self, node: OpNode) -> Optional[FusedNode]:
        """Fused node that produces the value of ``node`` (None = graph input)."""
        return self._producer.get(node.name)

    def kernel_inputs(self, fn: FusedNode) -> List[OpNode]:
        """Graph nodes whose values this kernel consumes."""
        return list(fn.anchor.inputs) + list(fn.extra_inputs)

    def __iter__(self):
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def total_flops(self) -> int:
        return sum(fn.flops() for fn in self.nodes)

    def __repr__(self) -> str:
        return f"FusedGraph({self.graph.name}, {len(self.nodes)} kernels)"


def fuse_operators(graph: Graph) -> FusedGraph:
    """Fuse injective ops into their producing complex op.

    An injective node is fused into the fused-group producing its first
    input when that group's output has no other consumer; residual ``add``
    nodes fuse into the producer of whichever operand is an immediately
    preceding convolution, with the other operand becoming an extra kernel
    input.  Injective chains starting at the graph input (rare) raise, as
    the thesis's flow always anchors kernels at complex ops.
    """
    fused: List[FusedNode] = []
    group_of: Dict[str, FusedNode] = {}  # graph node name -> group holding it

    consumer_count: Dict[str, int] = {n.name: 0 for n in graph.nodes}
    for n in graph.nodes:
        for i in n.inputs:
            consumer_count[i.name] += 1

    for node in graph.nodes:
        if node.op == "input":
            continue
        if node.op in ANCHOR_OPS:
            fn = FusedNode(node)
            fused.append(fn)
            group_of[node.name] = fn
            continue
        if node.op not in INJECTIVE_OPS:  # pragma: no cover - vocabulary guard
            raise ReproError(f"unclassified op {node.op}")

        # candidates: producers of each operand whose group output is the
        # operand itself with no other consumer; fuse into the
        # topologically-latest such producer (its value is the freshest —
        # earlier candidates stay as extra kernel inputs, e.g. the residual
        # shortcut of a ResNet block)
        order = {n.name: i for i, n in enumerate(graph.nodes)}
        candidates: List[Tuple[int, FusedNode, OpNode]] = []
        for operand in node.inputs:
            grp = group_of.get(operand.name)
            if (
                grp is not None
                and grp.output_node is operand
                and consumer_count[operand.name] == 1
            ):
                candidates.append((order[grp.anchor.name], grp, operand))
        target: Optional[FusedNode] = None
        chosen: Optional[OpNode] = None
        if candidates:
            _, target, chosen = max(candidates, key=lambda t: t[0])
        extra = [operand for operand in node.inputs if operand is not chosen]
        if target is None:
            raise ReproError(
                f"cannot fuse {node.name} ({node.op}): no single-consumer "
                "complex producer"
            )
        target.epilogue.append(node)
        target.extra_inputs.extend(extra)
        group_of[node.name] = target

    return FusedGraph(graph, fused)
