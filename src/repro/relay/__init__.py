"""Graph-level IR, operator fusion and functional execution.

Model graphs, the fusion pass that groups injective ops behind anchor
ops, and the fused-graph executor.  Contract: ``fuse_operators(graph)``
partitions nodes into one kernel group per anchor, and
``run_fused_graph(fused, x, params)`` is the NumPy reference every
device rung's logits are compared against.
"""

from repro.relay.graph import ANCHOR_OPS, Graph, GraphBuilder, INJECTIVE_OPS, OpNode
from repro.relay.passes import FusedGraph, FusedNode, fuse_operators
from repro.relay.execute import init_params, run_fused_graph, run_graph

__all__ = [
    "ANCHOR_OPS", "FusedGraph", "FusedNode", "Graph", "GraphBuilder",
    "INJECTIVE_OPS", "OpNode", "fuse_operators", "init_params",
    "run_fused_graph", "run_graph",
]
