"""Graph-level IR, operator fusion and functional execution."""

from repro.relay.graph import ANCHOR_OPS, Graph, GraphBuilder, INJECTIVE_OPS, OpNode
from repro.relay.passes import FusedGraph, FusedNode, fuse_operators
from repro.relay.execute import init_params, run_fused_graph, run_graph

__all__ = [
    "ANCHOR_OPS", "FusedGraph", "FusedNode", "Graph", "GraphBuilder",
    "INJECTIVE_OPS", "OpNode", "fuse_operators", "init_params",
    "run_fused_graph", "run_graph",
]
