"""Synthetic input generators for the evaluation workloads.

The thesis tests LeNet on MNIST's 10000-image test set and feeds
MobileNet/ResNet randomly generated ImageNet-sized inputs ("input values
do not alter computation time").  MNIST itself is not available offline,
so :func:`synthetic_digits` draws procedural 28x28 digit glyphs —
deterministic, label-consistent stroke renderings with jitter and noise —
that exercise the same code path; classification *consistency* between
deployments replaces accuracy (the untrained reproduction networks have
no meaningful accuracy anyway).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ReproError

#: 7-segment style segment masks per digit (a, b, c, d, e, f, g)
_SEGMENTS = {
    0: "abcdef",
    1: "bc",
    2: "abged",
    3: "abgcd",
    4: "fgbc",
    5: "afgcd",
    6: "afgedc",
    7: "abc",
    8: "abcdefg",
    9: "abcfgd",
}

#: segment endpoints on a unit glyph box (x0, y0, x1, y1)
_SEGMENT_LINES = {
    "a": (0.2, 0.15, 0.8, 0.15),  # top
    "b": (0.8, 0.15, 0.8, 0.5),  # top right
    "c": (0.8, 0.5, 0.8, 0.85),  # bottom right
    "d": (0.2, 0.85, 0.8, 0.85),  # bottom
    "e": (0.2, 0.5, 0.2, 0.85),  # bottom left
    "f": (0.2, 0.15, 0.2, 0.5),  # top left
    "g": (0.2, 0.5, 0.8, 0.5),  # middle
}


def _draw_line(img: np.ndarray, x0: float, y0: float, x1: float, y1: float,
               thickness: float) -> None:
    """Rasterize a soft line segment onto a float image in place."""
    h, w = img.shape
    ys, xs = np.mgrid[0:h, 0:w]
    px = (xs + 0.5) / w
    py = (ys + 0.5) / h
    # distance from each pixel to the segment
    dx, dy = x1 - x0, y1 - y0
    seg_len2 = dx * dx + dy * dy
    if seg_len2 == 0:
        t = np.zeros_like(px)
    else:
        t = np.clip(((px - x0) * dx + (py - y0) * dy) / seg_len2, 0.0, 1.0)
    cx = x0 + t * dx
    cy = y0 + t * dy
    dist = np.sqrt((px - cx) ** 2 + (py - cy) ** 2)
    stroke = np.clip(1.0 - dist / thickness, 0.0, 1.0)
    np.maximum(img, stroke, out=img)


def render_digit(
    digit: int,
    rng: np.random.Generator,
    size: int = 28,
    jitter: float = 0.03,
    noise: float = 0.05,
) -> np.ndarray:
    """Render one synthetic digit glyph as a (1, size, size) CHW tensor."""
    if not 0 <= digit <= 9:
        raise ReproError(f"digit must be 0-9, got {digit}")
    img = np.zeros((size, size), np.float32)
    shift_x = rng.uniform(-jitter, jitter)
    shift_y = rng.uniform(-jitter, jitter)
    scale = rng.uniform(0.9, 1.1)
    thickness = rng.uniform(0.06, 0.09)
    for seg in _SEGMENTS[digit]:
        x0, y0, x1, y1 = _SEGMENT_LINES[seg]

        def tf(x, y):
            return (
                0.5 + (x - 0.5) * scale + shift_x,
                0.5 + (y - 0.5) * scale + shift_y,
            )

        (x0, y0), (x1, y1) = tf(x0, y0), tf(x1, y1)
        _draw_line(img, x0, y0, x1, y1, thickness)
    img += rng.normal(0, noise, img.shape).astype(np.float32)
    img = np.clip(img, 0.0, 1.0)
    return img[None, :, :].astype(np.float32)


def synthetic_digits(
    n: int, seed: int = 0, size: int = 28
) -> Tuple[np.ndarray, np.ndarray]:
    """A batch of synthetic digits: (images (n,1,size,size), labels (n,))."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 10, n)
    images = np.stack([render_digit(int(d), rng, size) for d in labels])
    return images.astype(np.float32), labels.astype(np.int64)


def imagenet_like(n: int, seed: int = 0, size: int = 224) -> np.ndarray:
    """Random ImageNet-sized CHW inputs, as the thesis uses for the large
    networks (values do not alter computation time)."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 3, size, size)).astype(np.float32)
