"""repro: reproduction of "Optimization of Compiler-Generated OpenCL CNN
Kernels and Runtime for FPGAs" (Seung-Hun Chung, University of Toronto,
2021).

The package implements the thesis's whole system in simulation: a mini
tensor compiler (ir/relay/schedule/topi/codegen), an Intel-AOC offline-
compiler model (aoc), FPGA board models (device), an OpenCL host-runtime
simulator (runtime), the end-to-end deployment flow (flow), CNN model
definitions (models), calibrated CPU/GPU baselines (perf), a staged
compile pipeline with a content-addressed cache (pipeline), fault
injection and recovery (resilience) and a batched multi-replica serving
layer (serve).  docs/architecture.md maps how the packages fit together.

Quickstart::

    from repro.flow import deploy_pipelined
    from repro.device import STRATIX10_SX

    d = deploy_pipelined("lenet5", STRATIX10_SX, level="tvm_autorun")
    print(d.fps(), d.area())
"""

__version__ = "1.0.0"

from repro import device, errors
from repro.flow import deploy_folded, deploy_pipelined

__all__ = ["deploy_folded", "deploy_pipelined", "device", "errors", "__version__"]
