"""Generic retry with exponential backoff and deterministic jitter.

Backoff waits run on a **virtual clock** — tests (and the discrete-event
runtime, whose host clock doubles as the virtual clock) never sleep on
the wall.  Jitter derives from an explicit seed, so a retry schedule is
reproducible given (policy, seed) and the CI fault-seed matrix covers
different schedules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Type

from repro.errors import ReproError
from repro.resilience.events import record

__all__ = ["RetryPolicy", "VirtualClock", "backoff_schedule", "retry"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry knobs.

    ``attempts`` is the total number of tries (1 = no retry); the delay
    before retry *k* (1-based) is
    ``min(max_us, base_us * multiplier**(k-1))`` perturbed by up to
    ``±jitter`` (a fraction).
    """

    attempts: int = 3
    base_us: float = 100.0
    multiplier: float = 2.0
    max_us: float = 10_000.0
    jitter: float = 0.1


class VirtualClock:
    """Accumulates simulated waiting time instead of sleeping."""

    def __init__(self) -> None:
        self.now_us = 0.0

    def sleep_us(self, us: float) -> None:
        self.now_us += us


def backoff_schedule(
    policy: RetryPolicy, seed: int = 0, attempts: Optional[int] = None
) -> List[float]:
    """The deterministic delay (us) before each retry.

    Returns ``attempts - 1`` delays (no delay precedes the first try).
    Same (policy, seed) -> same schedule.
    """
    n = (attempts if attempts is not None else policy.attempts) - 1
    rng = random.Random(f"backoff:{seed}")
    delays = []
    for i in range(max(0, n)):
        d = min(policy.max_us, policy.base_us * policy.multiplier**i)
        d *= 1.0 + policy.jitter * (2.0 * rng.random() - 1.0)
        delays.append(d)
    return delays


def retry(
    fn: Callable[[], object],
    policy: RetryPolicy = RetryPolicy(),
    retry_on: Tuple[Type[BaseException], ...] = (ReproError,),
    clock: Optional[VirtualClock] = None,
    seed: int = 0,
    site: str = "retry",
    label: str = "",
) -> object:
    """Call ``fn`` under ``policy``, backing off on the virtual clock.

    Only exceptions matching ``retry_on`` *and* either marked
    ``transient`` or listed via an explicitly transient class are
    retried... precisely: any ``retry_on`` match is retried; callers
    narrow ``retry_on`` to the transiency they accept.  Raises the last
    error after ``policy.attempts`` tries.
    """
    clock = clock if clock is not None else VirtualClock()
    delays = backoff_schedule(policy, seed)
    what = label or getattr(fn, "__name__", "operation")
    last: Optional[BaseException] = None
    for attempt in range(1, policy.attempts + 1):
        try:
            value = fn()
        except retry_on as err:
            last = err
            if attempt >= policy.attempts:
                record(
                    "giveup", site,
                    f"{what}: {type(err).__name__} persisted after "
                    f"{attempt} attempt(s)",
                    attempt=attempt, t_us=clock.now_us,
                )
                raise
            delay = delays[attempt - 1]
            clock.sleep_us(delay)
            record(
                "retry", site,
                f"{what}: {type(err).__name__}: {err} — backing off "
                f"{delay:.0f}us before attempt {attempt + 1}",
                attempt=attempt, t_us=clock.now_us, delay_us=delay,
            )
        else:
            if attempt > 1:
                record(
                    "recovered", site,
                    f"{what} succeeded on attempt {attempt}",
                    attempt=attempt, t_us=clock.now_us,
                )
            return value
    raise last  # pragma: no cover - loop always returns or raises
