"""Resilient synthesis: transient-failure retry + placement-seed sweep.

Real AOC/Quartus runs fail two ways: transiently (a crashed compile
job — rerun it) and seed-sensitively (routing congestion depends on the
random initial placement — rerun with ``-seed N``).  This wrapper gives
the pipeline's ``synthesize`` stage both recoveries:

* any **transient** :class:`~repro.errors.AOCError` is retried up to
  ``synth_attempts`` times;
* a **deterministic** :class:`~repro.errors.RoutingError` is re-run with
  fresh placement seeds up to ``routing_seeds`` (each attempt passes a
  new ``placement_seed`` to :func:`~repro.aoc.compiler.compile_program`,
  which perturbs the congestion model the way a new Quartus seed
  perturbs placement).

Every attempt is recorded as a resilience event (visible in the stage
trace), and an exhausted failure carries ``.seeds_tried`` so the compile
cache records which seeds were attempted.
"""

from __future__ import annotations

from typing import Optional

from repro.aoc.compiler import Bitstream, compile_program
from repro.aoc.constants import AOCConstants, DEFAULT_CONSTANTS
from repro.device.boards import Board
from repro.errors import AOCError, RoutingError
from repro.ir.kernel import Program
from repro.resilience.config import ResilienceConfig, current_config
from repro.resilience.events import record

__all__ = ["synthesize_resilient"]


def synthesize_resilient(
    program: Program,
    board: Board,
    constants: AOCConstants = DEFAULT_CONSTANTS,
    config: Optional[ResilienceConfig] = None,
) -> Bitstream:
    """``compile_program`` with transient retry and placement-seed sweep.

    With the default config (``routing_seeds=1``) and no active fault
    plan this is behaviourally identical to a bare ``compile_program``
    call: one attempt with placement seed 0.
    """
    cfg = config or current_config()
    seeds_tried = []
    attempt = 0
    while True:
        seed = attempt
        try:
            bitstream = compile_program(
                program, board, constants, placement_seed=seed
            )
        except AOCError as err:
            seeds_tried.append(seed)
            next_attempt = attempt + 1
            transient = getattr(err, "transient", False)
            seed_retry = (
                isinstance(err, RoutingError)
                and next_attempt < cfg.routing_seeds
            )
            transient_retry = transient and next_attempt < cfg.synth_attempts
            if not (seed_retry or transient_retry):
                err.seeds_tried = tuple(seeds_tried)
                if attempt:
                    record(
                        "giveup", "synthesize",
                        f"{program.name}: {type(err).__name__} persists "
                        f"after placement seeds {seeds_tried}",
                        attempt=next_attempt, seeds_tried=list(seeds_tried),
                    )
                raise
            record(
                "retry", "synthesize",
                f"{program.name}: {type(err).__name__}: {err} — "
                f"re-synthesizing with placement seed {next_attempt}",
                attempt=next_attempt, seed=next_attempt,
                transient=transient,
            )
            attempt = next_attempt
        else:
            if attempt:
                record(
                    "recovered", "synthesize",
                    f"{program.name} synthesized with placement seed {seed} "
                    f"after {attempt} failed attempt(s)",
                    attempt=attempt + 1, seed=seed,
                    seeds_tried=list(seeds_tried),
                )
            return bitstream
