"""Fault injection and recovery policies for the deployment flow.

Production FPGA toolchains fail in characteristic ways — hours-long AOC
runs die transiently, Quartus routing is placement-seed-sensitive, deep
channel pipelines deadlock when a stage stalls, DMA transfers drop.
This package makes every one of those failures (a) injectable, so the
recovery paths are testable, and (b) recoverable:

* :class:`FaultPlan` / :class:`Fault` — seeded, deterministic fault
  injection at the flow's real failure boundaries, including the
  serving-time sites (``dispatch`` / ``run_batch`` / ``replica``)
  driving the replica health lifecycle in :mod:`repro.serve.lifecycle`;
* :func:`retry` / :class:`RetryPolicy` — exponential backoff with
  deterministic jitter on a virtual clock (no wall sleeping);
* :func:`synthesize_resilient` — transient-retry + placement-seed sweep
  for the pipeline's ``synthesize`` stage;
* :class:`Watchdog` / :class:`ChannelWaitGraph` — virtual-time bounds
  and channel-wait-cycle (deadlock) detection for the simulated runtime;
* :class:`ResilienceEvent` / :func:`log` — structured, observable
  records of every fault, retry, verdict and fallback.

The degradation ladder that falls back across execution modes lives in
:mod:`repro.flow.deploy` (it needs the deployment builders).

See ``docs/resilience.md`` for the fault taxonomy and policy knobs.
"""

from repro.resilience.config import (
    LifecycleConfig,
    ResilienceConfig,
    configured,
    current_config,
    set_config,
)
from repro.resilience.events import ResilienceEvent, ResilienceLog, log, record
from repro.resilience.faults import (
    FAULT_SEED_ENV,
    KNOWN_SITES,
    Fault,
    FaultPlan,
    active_plan,
    probe,
)
from repro.resilience.retry import (
    RetryPolicy,
    VirtualClock,
    backoff_schedule,
    retry,
)
from repro.resilience.synth import synthesize_resilient
from repro.resilience.watchdog import ChannelWait, ChannelWaitGraph, Watchdog

__all__ = [
    "FAULT_SEED_ENV", "KNOWN_SITES", "ChannelWait", "ChannelWaitGraph",
    "Fault", "FaultPlan", "LifecycleConfig", "ResilienceConfig",
    "ResilienceEvent", "ResilienceLog", "RetryPolicy", "VirtualClock",
    "Watchdog", "active_plan", "backoff_schedule", "configured",
    "current_config", "log", "probe", "record", "retry", "set_config",
    "synthesize_resilient",
]
