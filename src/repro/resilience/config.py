"""Process-wide resilience policy knobs.

The defaults preserve baseline behaviour exactly: deterministic routing
failures raise on the first attempt (``routing_seeds=1`` — only
placement seed 0 is tried), and only *transient* synthesis failures are
retried.  Sweeps and ladders opt into more aggressive recovery via
:func:`configured` or an explicit :class:`ResilienceConfig`.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.resilience.retry import RetryPolicy

__all__ = ["ResilienceConfig", "current_config", "set_config", "configured"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Recovery-policy knobs used across the flow."""

    #: attempts for transient synthesize failures (crashed AOC runs,
    #: injected transient routing errors); each retry bumps the
    #: placement seed, mirroring real Quartus practice
    synth_attempts: int = 3
    #: placement seeds swept on *deterministic* RoutingError (1 = only
    #: seed 0, i.e. no sweep — the baseline behaviour)
    routing_seeds: int = 1
    #: backoff policy for runtime-level retries (DMA re-enqueue, rung
    #: re-runs in the degradation ladder)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: virtual-time budget the ladder's watchdog enforces per run, us
    watchdog_budget_us: float = 1e8
    #: logits cross-check tolerance when verifying a deployment against
    #: the CPU functional reference
    crosscheck_atol: float = 1e-5


_current = ResilienceConfig()


def current_config() -> ResilienceConfig:
    return _current


def set_config(config: ResilienceConfig) -> None:
    global _current
    _current = config


@contextmanager
def configured(**overrides: object) -> Iterator[ResilienceConfig]:
    """Temporarily override resilience knobs::

        with configured(routing_seeds=4):
            deploy_folded(...)
    """
    global _current
    previous = _current
    _current = dataclasses.replace(previous, **overrides)
    try:
        yield _current
    finally:
        _current = previous
