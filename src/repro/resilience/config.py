"""Process-wide resilience policy knobs.

The defaults preserve baseline behaviour exactly: deterministic routing
failures raise on the first attempt (``routing_seeds=1`` — only
placement seed 0 is tried), and only *transient* synthesis failures are
retried.  Sweeps and ladders opt into more aggressive recovery via
:func:`configured` or an explicit :class:`ResilienceConfig`.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ReproError
from repro.resilience.retry import RetryPolicy

__all__ = [
    "LifecycleConfig",
    "ResilienceConfig",
    "current_config",
    "set_config",
    "configured",
]


@dataclass(frozen=True)
class LifecycleConfig:
    """Serving-time replica health policy (see docs/serving.md).

    Drives the per-replica state machine in
    :mod:`repro.serve.lifecycle`: HEALTHY -> SUSPECT -> DRAINING ->
    DEAD -> REPROVISIONING -> HEALTHY.  Lives here (not in the serving
    package) so ``configured(lifecycle=...)`` scopes it like every other
    recovery knob.
    """

    #: consecutive failures that trip the circuit breaker and take the
    #: replica out of the dispatch rotation (DRAINING)
    breaker_failures: int = 2
    #: times one request may be requeued after batch failures before it
    #: is shed to the CPU sideline (guarantees no request is ever stuck)
    retry_budget: int = 3
    #: virtual time one refill (re-provisioning a dead replica) takes, us
    reprovision_us: float = 100_000.0
    #: refills granted per replica per server run; an exhausted replica
    #: stays DEAD and the pool falls toward the CPU rung
    max_refills: int = 1
    #: per-batch service-time bound the serving watchdog enforces, us —
    #: a dispatch whose modeled service exceeds it is declared hung
    batch_budget_us: float = 5e6

    def __post_init__(self) -> None:
        if self.breaker_failures < 1:
            raise ReproError("breaker_failures must be >= 1")
        if self.retry_budget < 0 or self.max_refills < 0:
            raise ReproError("retry_budget and max_refills must be >= 0")
        if self.reprovision_us < 0 or self.batch_budget_us <= 0:
            raise ReproError(
                "reprovision_us must be >= 0 and batch_budget_us > 0"
            )


@dataclass(frozen=True)
class ResilienceConfig:
    """Recovery-policy knobs used across the flow."""

    #: attempts for transient synthesize failures (crashed AOC runs,
    #: injected transient routing errors); each retry bumps the
    #: placement seed, mirroring real Quartus practice
    synth_attempts: int = 3
    #: placement seeds swept on *deterministic* RoutingError (1 = only
    #: seed 0, i.e. no sweep — the baseline behaviour)
    routing_seeds: int = 1
    #: backoff policy for runtime-level retries (DMA re-enqueue, rung
    #: re-runs in the degradation ladder)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: virtual-time budget the ladder's watchdog enforces per run, us
    watchdog_budget_us: float = 1e8
    #: logits cross-check tolerance when verifying a deployment against
    #: the CPU functional reference
    crosscheck_atol: float = 1e-5
    #: serving-time replica health lifecycle policy
    lifecycle: LifecycleConfig = field(default_factory=LifecycleConfig)


_current = ResilienceConfig()


def current_config() -> ResilienceConfig:
    return _current


def set_config(config: ResilienceConfig) -> None:
    global _current
    _current = config


@contextmanager
def configured(**overrides: object) -> Iterator[ResilienceConfig]:
    """Temporarily override resilience knobs::

        with configured(routing_seeds=4):
            deploy_folded(...)
    """
    global _current
    previous = _current
    _current = dataclasses.replace(previous, **overrides)
    try:
        yield _current
    finally:
        _current = previous
