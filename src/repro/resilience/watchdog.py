"""Runtime watchdog: virtual-time bounds and channel-wait-cycle detection.

Deep channel pipelines deadlock when a stage stalls: its input FIFO
fills, back-pressure propagates, and with a feedback topology every
stage ends up waiting on a channel another waiting stage should drain.
The watchdog gives the simulated runtime the two defences the real host
program needs:

* a **virtual-time budget** — any event completing past the budget is
  declared hung (:class:`Watchdog`);
* a **channel-wait graph** — stages blocked on channels form edges to
  the channels' producers; a cycle is a deadlock, reported with each
  blocked stage, the channel it waits on and the FIFO occupancy at
  stall time (:class:`ChannelWaitGraph`).

Both raise :class:`~repro.errors.DeadlockError` (a
:class:`~repro.errors.RuntimeSimError`) carrying the diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import DeadlockError
from repro.resilience.events import record

__all__ = ["Watchdog", "ChannelWaitGraph", "ChannelWait"]


class Watchdog:
    """Bounds the virtual time of one simulated run."""

    def __init__(self, budget_us: float = 1e8) -> None:
        self.budget_us = budget_us
        #: events observed (for post-mortem inspection)
        self.observed = 0

    def observe(self, label: str, end_us: float) -> None:
        """Check one scheduled event against the budget."""
        self.observed += 1
        if end_us > self.budget_us:
            record(
                "watchdog", "device",
                f"event {label!r} exceeds virtual-time budget "
                f"({end_us:.0f}us > {self.budget_us:.0f}us)",
                t_us=end_us,
            )
            raise DeadlockError(
                f"watchdog: event {label!r} ends at {end_us:.0f}us, past the "
                f"virtual-time budget of {self.budget_us:.0f}us — the stage "
                f"is considered hung"
            )

    def channel_stalled(
        self,
        stage: str,
        channel: str,
        occupancy: int,
        depth: int,
        t_us: float = 0.0,
    ) -> None:
        """Declare a permanently stalled channel wait (a hang fault or a
        producer that will never drain)."""
        record(
            "watchdog", "channel",
            f"stage {stage!r} blocked on channel {channel!r} "
            f"(occupancy {occupancy}/{depth}) with no progress",
            t_us=t_us, stage=stage, channel=channel,
            occupancy=occupancy, depth=depth,
        )
        raise DeadlockError(
            f"watchdog: stage {stage!r} is blocked on channel {channel!r} "
            f"(occupancy {occupancy}/{depth} at stall time, t={t_us:.0f}us) "
            f"and the producer cannot make progress"
        )


@dataclass
class ChannelWait:
    """One stage blocked on one channel."""

    stage: str
    channel: str
    occupancy: int = 0
    depth: int = 0


class ChannelWaitGraph:
    """Stages blocked on channels; a cycle through producers = deadlock."""

    def __init__(self) -> None:
        #: channel name -> producing stage
        self.producers: Dict[str, str] = {}
        #: stage -> its current blocked wait
        self.waits: Dict[str, ChannelWait] = {}

    def set_producer(self, channel: str, stage: str) -> None:
        self.producers[channel] = stage

    def wait(
        self, stage: str, channel: str, occupancy: int = 0, depth: int = 0
    ) -> None:
        """Record that ``stage`` is blocked on ``channel``."""
        self.waits[stage] = ChannelWait(stage, channel, occupancy, depth)

    def resume(self, stage: str) -> None:
        """``stage`` made progress; clear its wait."""
        self.waits.pop(stage, None)

    # ------------------------------------------------------------------
    def find_cycle(self) -> Optional[List[ChannelWait]]:
        """A list of waits forming a cycle, or None.

        Edge: waiting stage -> producer of the channel it waits on; a
        cycle means every stage in it waits on a channel whose producer
        is also waiting — nobody can drain anything.
        """
        for start in self.waits:
            seen: List[str] = []
            stage = start
            while stage in self.waits:
                if stage in seen:
                    cycle_stages = seen[seen.index(stage):]
                    return [self.waits[s] for s in cycle_stages]
                seen.append(stage)
                nxt = self.producers.get(self.waits[stage].channel)
                if nxt is None:
                    break
                stage = nxt
        return None

    def check(self, t_us: float = 0.0) -> None:
        """Raise a diagnosing :class:`DeadlockError` if a cycle exists."""
        cycle = self.find_cycle()
        if cycle is None:
            return
        chain = " <- ".join(
            f"{w.stage} waits on {w.channel} "
            f"(occupancy {w.occupancy}/{w.depth})"
            for w in cycle
        )
        record(
            "watchdog", "channel",
            f"channel-wait cycle detected: {chain}",
            t_us=t_us,
            cycle=[w.stage for w in cycle],
        )
        raise DeadlockError(
            f"watchdog: channel-wait cycle at t={t_us:.0f}us — {chain} "
            f"<- {cycle[0].stage} (deadlock)"
        )
