"""Seeded, deterministic fault injection for the deployment flow.

A :class:`FaultPlan` is a context manager holding an ordered list of
:class:`Fault` specs.  While active, the real failure boundaries of the
flow *probe* the plan — ``compile_program`` probes ``synthesize``, the
OpenCL host simulator probes ``enqueue.write`` / ``enqueue.read`` /
``enqueue.kernel`` / ``channel`` / ``device``, the functional executor
probes ``buffer``, and the serving loop probes ``dispatch`` /
``run_batch`` / ``replica`` (batch-submission failures, mid-service
crashes and hangs, replica deaths — see :mod:`repro.serve.lifecycle`) —
and raise or model the corresponding failure when a fault fires.  Every
recovery path (retry/backoff, placement-seed sweep, watchdog,
degradation ladder, replica drain/refill) is therefore testable without
touching any happy-path code.

Determinism: a fault fires on the first ``times`` matching probes, in
program order, and all randomness (jitter, bit-flip positions) derives
from the plan's ``seed`` — by default the ``REPRO_FAULT_SEED``
environment variable, so CI can matrix over seeds and prove recovery is
seed-independent.

With no plan active every probe is a no-op returning ``None``; the
happy path is untouched.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.resilience.events import record

__all__ = [
    "Fault",
    "FaultPlan",
    "KNOWN_SITES",
    "active_plan",
    "probe",
    "FAULT_SEED_ENV",
]

#: environment variable supplying the default fault-plan seed
FAULT_SEED_ENV = "REPRO_FAULT_SEED"

#: every probe site wired into the flow, mapped to the failure kinds the
#: site understands (the taxonomy table in docs/resilience.md)
KNOWN_SITES = {
    "synthesize": ("routing", "fit", "crash"),
    "enqueue.write": ("dma", "hang"),
    "enqueue.read": ("dma", "hang"),
    "enqueue.kernel": ("dma", "hang"),
    "channel": ("stall", "hang"),
    "device": ("device_lost",),
    "buffer": ("bitflip",),
    # serving sites (repro.serve.lifecycle): batch submission, batch
    # execution, and whole-replica health
    "dispatch": ("reject",),
    "run_batch": ("crash", "hang"),
    "replica": ("die",),
}


@dataclass
class Fault:
    """One injected failure mode at one site.

    ``site``
        Injection point: any key of :data:`KNOWN_SITES` — the flow
        sites ``synthesize``, ``enqueue.write``, ``enqueue.read``,
        ``enqueue.kernel``, ``channel``, ``device``, ``buffer`` and the
        serving sites ``dispatch``, ``run_batch``, ``replica``.
    ``kind``
        Failure flavour the site understands: ``routing`` / ``crash``
        / ``fit`` (synthesize), ``dma`` / ``hang`` (enqueue), ``stall``
        / ``hang`` (channel), ``device_lost`` (device), ``bitflip``
        (buffer), ``reject`` (dispatch), ``crash`` / ``hang``
        (run_batch), ``die`` (replica).
    ``times``
        Fire on the first N matching probes, then go quiet (models
        transient failures; use a large value for persistent ones).
    ``match``
        Optional substring filter on the probe label (a kernel/stage
        name), so a fault can target one stage.
    ``param``
        Site-specific magnitude: stall duration in us, bit index for
        bit-flips, hang duration in us.
    ``transient``
        Whether the raised error should be marked retryable.  Injected
        errors are never cached as deterministic outcomes either way.
    """

    site: str
    kind: str
    times: int = 1
    match: str = ""
    param: float = 0.0
    transient: bool = True
    #: number of probes this fault has already fired on
    fired: int = field(default=0, init=False)


class FaultPlan:
    """An active set of faults, installed as a context manager.

    Plans nest: the innermost active plan receives all probes.
    """

    def __init__(self, *faults: Fault, seed: Optional[int] = None) -> None:
        self.faults: List[Fault] = list(faults)
        if seed is None:
            seed = int(os.environ.get(FAULT_SEED_ENV, "0") or "0")
        self.seed = seed
        #: (site, label, kind) of every fault firing, in order
        self.fired: List[tuple] = []

    # -- activation ------------------------------------------------------
    def __enter__(self) -> "FaultPlan":
        _STACK.append(self)
        return self

    def __exit__(self, *exc) -> None:
        _STACK.remove(self)

    # -- probing ---------------------------------------------------------
    def probe(self, site: str, label: str = "") -> Optional[Fault]:
        """Fire (and return) the first matching live fault, else None."""
        for fault in self.faults:
            if fault.site != site or fault.fired >= fault.times:
                continue
            if fault.match and fault.match not in label:
                continue
            fault.fired += 1
            self.fired.append((site, label, fault.kind))
            record(
                "fault", site,
                f"injected {fault.kind} fault" + (f" at {label!r}" if label else ""),
                fault_kind=fault.kind, occurrence=fault.fired, times=fault.times,
            )
            return fault
        return None

    def rng(self, *salt: object) -> random.Random:
        """A deterministic RNG derived from the plan seed and ``salt``."""
        return random.Random(f"fault:{self.seed}:" + ":".join(map(str, salt)))

    def remaining(self) -> int:
        """Total fires left across all faults."""
        return sum(max(0, f.times - f.fired) for f in self.faults)

    def __repr__(self) -> str:
        specs = ", ".join(f"{f.site}/{f.kind}x{f.times}" for f in self.faults)
        return f"FaultPlan(seed={self.seed}: {specs})"


_STACK: List[FaultPlan] = []


def active_plan() -> Optional[FaultPlan]:
    """The innermost active plan, or None."""
    return _STACK[-1] if _STACK else None


def probe(site: str, label: str = "") -> Optional[Fault]:
    """Probe the active plan; no-op (None) when no plan is active."""
    plan = active_plan()
    if plan is None:
        return None
    return plan.probe(site, label)
