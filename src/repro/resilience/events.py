"""Structured resilience events and the process-wide event log.

Every fault, retry, watchdog verdict and degradation fallback is recorded
as a :class:`ResilienceEvent` so recovery behaviour is observable, not
silent.  The :class:`Pipeline` attaches the events fired during each
stage to that stage's :class:`~repro.pipeline.trace.StageRecord` (shown
by ``python -m repro.report --trace``), the
:class:`~repro.flow.deploy.DegradationLadder` returns the events covering
a whole resilient deployment, and the serving layer (:mod:`repro.serve`)
records its overload decisions — ``shed``/``reject`` at admission,
``fallback`` when a replica cannot build its preferred rung — under the
``serve`` site.

The log is an append-only sequence with integer cursors: callers take a
cursor before an operation and ask for everything recorded ``since`` it,
so nested consumers (a stage inside a ladder) never steal each other's
events.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["ResilienceEvent", "ResilienceLog", "log", "record"]


@dataclass
class ResilienceEvent:
    """One observable resilience occurrence."""

    #: 'fault' | 'retry' | 'recovered' | 'giveup' | 'stall' | 'watchdog'
    #: | 'corruption' | 'crosscheck' | 'fallback' | 'served' | 'shed'
    #: | 'reject' — plus the serving lifecycle kinds 'suspect' |
    #: 'breaker' | 'drain' | 'dead' | 'reprovision' | 'refill' |
    #: 'requeue' (docs/serving.md)
    kind: str
    #: injection/recovery site ("synthesize", "enqueue.write", "channel",
    #: "device", "buffer", "ladder", "serve", ...)
    site: str
    #: human-readable description of what happened
    detail: str
    #: 1-based attempt number for retry-shaped events, 0 otherwise
    attempt: int = 0
    #: virtual (simulated) time of the event where meaningful, microseconds
    t_us: float = 0.0
    #: extra structured payload (seeds tried, stall durations, ...)
    data: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "site": self.site,
            "detail": self.detail,
            "attempt": self.attempt,
            "t_us": self.t_us,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ResilienceEvent":
        """Inverse of :meth:`to_dict` (the serialization round-trip)."""
        return cls(
            kind=str(payload["kind"]),
            site=str(payload["site"]),
            detail=str(payload["detail"]),
            attempt=int(payload.get("attempt", 0)),
            t_us=float(payload.get("t_us", 0.0)),
            data=dict(payload.get("data", {})),
        )


class ResilienceLog:
    """Append-only event log with stable integer cursors.

    Old entries are trimmed once the log grows large; cursors remain
    valid because they are absolute offsets, not list indices.
    """

    #: trim to half this size once exceeded (keeps long processes bounded)
    MAX_EVENTS = 65536

    def __init__(self) -> None:
        self._events: List[ResilienceEvent] = []
        self._base = 0  #: absolute offset of _events[0]

    def record(self, event: ResilienceEvent) -> None:
        self._events.append(event)
        if len(self._events) > self.MAX_EVENTS:
            drop = len(self._events) // 2
            del self._events[:drop]
            self._base += drop

    def cursor(self) -> int:
        """Absolute position after the most recent event."""
        return self._base + len(self._events)

    def since(self, cursor: int) -> List[ResilienceEvent]:
        """Events recorded at or after ``cursor`` (oldest first)."""
        start = max(0, cursor - self._base)
        return list(self._events[start:])

    def clear(self) -> None:
        self._base += len(self._events)
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    # -- serialization ---------------------------------------------------
    def to_json(self, indent: int = 0) -> str:
        """Serialize the retained events (cursors are not preserved)."""
        return json.dumps(
            [e.to_dict() for e in self._events], indent=indent or None
        )

    @classmethod
    def from_json(cls, text: str) -> "ResilienceLog":
        """Rebuild a log from :meth:`to_json` output.

        The reconstructed log starts at base 0: absolute cursors from
        the original process are meaningless across a serialization
        boundary, but events round-trip exactly.
        """
        restored = cls()
        for payload in json.loads(text):
            restored.record(ResilienceEvent.from_dict(payload))
        return restored


_LOG = ResilienceLog()


def log() -> ResilienceLog:
    """The process-wide resilience event log."""
    return _LOG


def record(
    kind: str,
    site: str,
    detail: str,
    attempt: int = 0,
    t_us: float = 0.0,
    **data: object,
) -> ResilienceEvent:
    """Record one event on the process-wide log and return it."""
    event = ResilienceEvent(
        kind=kind, site=site, detail=detail, attempt=attempt, t_us=t_us,
        data=data,
    )
    _LOG.record(event)
    return event
