"""Typed artifacts flowing between the deployment pipeline's stages.

The ``schedule`` stage produces a :class:`PipelinedSchedule` or
:class:`FoldedSchedule` — kernels that have been scheduled but not yet
lowered — which the ``lower`` stage turns into an :class:`ir.Program`
and the ``plan`` stage into a runtime execution plan.  Keeping these as
first-class artifacts lets the pipeline time, fingerprint and size each
phase independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import repro.ir as ir
from repro.pipeline import register_canonicalizer, register_describer
from repro.runtime.plan import Invocation
from repro.schedule import Schedule, ScheduleRecipe
from repro.schedule import lower as lower_schedule


@dataclass
class ScheduledKernel:
    """One kernel after schedule selection, before lowering.

    Either ``schedule`` (+ ``lower_options`` forwarded to
    :func:`repro.schedule.lower`) or a ``prebuilt`` kernel for ops whose
    builders emit IR directly (softmax).  ``recipe`` is the declarative
    transform sequence the schedule was built from (None for prebuilt
    kernels); its fingerprint enters the kernel's canonical form, so the
    content-addressed compile cache keys on the recipe.
    """

    name: str
    layer: str
    schedule: Optional[Schedule] = None
    prebuilt: Optional[ir.Kernel] = None
    lower_options: Dict[str, object] = field(default_factory=dict)
    recipe: Optional[ScheduleRecipe] = None

    @property
    def autorun(self) -> bool:
        if self.prebuilt is not None:
            return self.prebuilt.autorun
        return bool(self.lower_options.get("autorun", False))

    def lower(self) -> ir.Kernel:
        if self.prebuilt is not None:
            return self.prebuilt
        return lower_schedule(self.schedule, self.name, **self.lower_options)


@dataclass
class PipelinedSchedule:
    """Scheduled chain network: one kernel per fused node + channel wiring."""

    level: str
    program_name: str
    kernels: List[ScheduledKernel]
    #: producer layer name -> inter-kernel channel
    channels: Dict[str, ir.Channel]
    uses_channels: bool


@dataclass
class FoldedSchedule:
    """Scheduled folded network: grouped kernels + per-layer invocations."""

    program_name: str
    kernels: List[ScheduledKernel]
    invocations: List[Invocation]
    #: group key -> kernel name, for introspection/tests
    groups: Dict[Tuple, str] = field(default_factory=dict)


# -- pipeline integration ---------------------------------------------------

register_canonicalizer(
    ScheduleRecipe,
    lambda r: ["schedule-recipe", r.to_dict()],
)
register_canonicalizer(
    ScheduledKernel,
    lambda s: [
        "scheduled-kernel", s.name, s.layer, s.prebuilt is not None,
        sorted(s.lower_options),
        None if s.recipe is None else s.recipe.fingerprint(),
    ],
)
register_canonicalizer(
    PipelinedSchedule,
    lambda s: [
        "pipelined-schedule", s.level, s.program_name,
        [k for k in s.kernels], s.channels, s.uses_channels,
    ],
)
register_canonicalizer(
    FoldedSchedule,
    lambda s: [
        "folded-schedule", s.program_name, [k for k in s.kernels],
        [i.kernel_name for i in s.invocations],
    ],
)

register_describer(
    PipelinedSchedule,
    lambda s: (
        len(s.kernels),
        {"kernels": len(s.kernels), "channels": len(s.channels)},
    ),
)
register_describer(
    FoldedSchedule,
    lambda s: (
        len(s.kernels),
        {"kernels": len(s.kernels), "invocations": len(s.invocations)},
    ),
)
