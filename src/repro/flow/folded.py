"""Folded (time-multiplexed) deployment builder — thesis Sections 4.9/6.3.2.

Larger networks cannot map one kernel per layer: the LSUs alone exhaust
board resources.  Folded execution groups convolutions by (operation,
filter size, stride, fused-epilogue signature) into **parameterized
kernels** whose channel counts and spatial sizes are runtime arguments
(Section 5.3); every layer becomes one invocation of its group's kernel.
The naive mode builds one static kernel per layer with default schedules —
the baseline that fails to fit on the Arria 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import repro.ir as ir
from repro.device.boards import Board
from repro.errors import UnsupportedError
from repro.flow.artifacts import FoldedSchedule, ScheduledKernel
from repro.relay.passes import FusedGraph, FusedNode
from repro.runtime.plan import FoldedPlan, Invocation
from repro.schedule import create_schedule
from repro.topi import (
    ConvSpec,
    ConvTiling,
    DenseSpec,
    PoolSpec,
    conv2d_symbolic,
    conv2d_tensors,
    dense_tensors,
    depthwise_symbolic,
    depthwise_tensors,
    flatten_tensors,
    gap_tensors,
    pad_symbolic,
    pad_tensors,
    pool_tensors,
    schedule_conv1x1_opt,
    schedule_conv2d_naive,
    schedule_conv2d_opt,
    schedule_dense_naive,
    schedule_dense_opt,
    schedule_depthwise_naive,
    schedule_depthwise_opt,
    schedule_pool_naive,
    schedule_pool_opt,
    schedule_symbolic_conv,
    schedule_transform,
    softmax_kernel_licm,
    softmax_kernel_naive,
)

GroupKey = Tuple


@dataclass
class FoldedConfig:
    """Tiling configuration for a folded deployment.

    ``conv_tilings`` maps ``('conv'|'dw', field, stride)`` to a
    :class:`ConvTiling`; unlisted groups default to FxF unrolling only.
    """

    conv_tilings: Dict[Tuple[str, int, int], ConvTiling] = field(default_factory=dict)
    dense_unroll: int = 32
    naive: bool = False
    #: model the Listing 5.11 stride-pinning workaround (True = coalesced)
    pin_unit_stride: bool = True

    def tiling_for(self, kind: str, f: int, s: int) -> ConvTiling:
        return self.conv_tilings.get((kind, f, s), ConvTiling())


def op_label(fn: FusedNode) -> str:
    """Operation label used by the per-op profiling tables."""
    a = fn.anchor.attrs
    if fn.op == "conv2d":
        f, s = a["field"], a["stride"]
        return f"{f}x{f} conv S={s}"
    if fn.op == "depthwise_conv2d":
        return f"3x3 DW conv S={a['stride']}"
    if fn.op == "pad":
        return "pad"
    if fn.op == "dense":
        return "dense"
    if fn.op in ("maxpool", "avgpool"):
        return "pool"
    if fn.op == "global_avgpool":
        return "avgpool"
    return fn.op


class _FoldedBuilder:
    def __init__(self, fused: FusedGraph, config: FoldedConfig, board: Board) -> None:
        self.fused = fused
        self.config = config
        self.board = board
        self.kernels: List[ScheduledKernel] = []
        self.invocations: List[Invocation] = []
        #: group key -> (kernel name, symbolic handle or None)
        self.groups: Dict[GroupKey, Tuple[str, object]] = {}

    # ------------------------------------------------------------------
    def schedule_graph(self) -> FoldedSchedule:
        """Group layers into kernels and pick every kernel's schedule."""
        counts: Dict[GroupKey, int] = {}
        for fn in self.fused:
            counts[self._group_key(fn)] = counts.get(self._group_key(fn), 0) + 1
        for fn in self.fused:
            key = self._group_key(fn)
            parameterize = (
                not self.config.naive
                and counts[key] > 1
                and fn.op in ("conv2d", "depthwise_conv2d", "pad")
            )
            if parameterize:
                kname, handle = self._get_group_kernel(fn, key)
                bindings = self._bindings(fn, handle)
                prefix = kname[2:]  # strip the "k_" kernel prefix
            else:
                kname = self._schedule_static_kernel(fn)
                bindings = None
                prefix = fn.name
            self.invocations.append(
                Invocation(
                    kernel_name=kname,
                    layer=fn.name,
                    op_label=op_label(fn),
                    bindings=bindings,
                    flops=fn.flops(),
                    buffer_prefix=prefix,
                    input_node=fn.anchor.inputs[0].name,
                    extra_input_nodes=tuple(n.name for n in fn.extra_inputs),
                )
            )
        suffix = "naive" if self.config.naive else "folded"
        return FoldedSchedule(
            program_name=f"{self.fused.graph.name}_{suffix}",
            kernels=self.kernels,
            invocations=self.invocations,
            groups={k: name for k, (name, _) in self.groups.items()},
        )

    # ------------------------------------------------------------------
    def _group_key(self, fn: FusedNode) -> GroupKey:
        a = fn.anchor.attrs
        if fn.op == "conv2d":
            return (
                "conv", a["field"], a["stride"], a.get("bias", True),
                fn.activation, fn.has_residual, fn.has_batchnorm,
            )
        if fn.op == "depthwise_conv2d":
            return (
                "dw", a["field"], a["stride"], a.get("bias", True),
                fn.activation, fn.has_batchnorm,
            )
        if fn.op == "pad":
            return ("pad",) + tuple(a["pad"])
        return ("static", fn.name)

    # ------------------------------------------------------------------
    def _get_group_kernel(self, fn: FusedNode, key: GroupKey):
        if key in self.groups:
            return self.groups[key]
        a = fn.anchor.attrs
        pin = self.config.pin_unit_stride
        base = "_".join(str(p) for p in key).replace("-", "m")
        kname = f"k_{base}"
        if fn.op == "conv2d":
            fn.check_canonical_epilogue()
            f, s = a["field"], a["stride"]
            handle, _, out = conv2d_symbolic(
                f, s, base, bias=a.get("bias", True), activation=fn.activation,
                residual=fn.has_residual, batchnorm=fn.has_batchnorm,
                pin_unit_stride=pin,
            )
            sch = schedule_symbolic_conv(
                out, self.config.tiling_for("conv", f, s), is_1x1=(f == 1)
            )
        elif fn.op == "depthwise_conv2d":
            fn.check_canonical_epilogue()
            f, s = a["field"], a["stride"]
            handle, _, out = depthwise_symbolic(
                f, s, base, bias=a.get("bias", True), activation=fn.activation,
                batchnorm=fn.has_batchnorm, pin_unit_stride=pin,
            )
            sch = schedule_symbolic_conv(
                out, self.config.tiling_for("dw", f, s), is_1x1=False
            )
        elif fn.op == "pad":
            before, after = a["pad"]
            handle, _, out = pad_symbolic(before, after, base)
            sch = create_schedule(out)
        else:  # pragma: no cover
            raise UnsupportedError(f"cannot parameterize {fn.op}")
        self.kernels.append(
            ScheduledKernel(name=kname, layer=fn.name, schedule=sch)
        )
        self.groups[key] = (kname, handle)
        return self.groups[key]

    def _bindings(self, fn: FusedNode, handle):
        c_in = fn.anchor.inputs[0].out_shape
        a = fn.anchor.attrs
        if fn.op == "conv2d":
            c1, hi, wi = c_in
            return handle.bindings(c1, hi, wi, a["filters"])
        if fn.op == "depthwise_conv2d":
            c1, hi, wi = c_in
            return handle.bindings(c1, hi, wi)
        if fn.op == "pad":
            c, hi, wi = c_in
            return handle.bindings(c, hi, wi)
        raise UnsupportedError(fn.op)  # pragma: no cover

    # ------------------------------------------------------------------
    def _schedule_static_kernel(self, fn: FusedNode) -> str:
        a = fn.anchor.attrs
        naive = self.config.naive
        kname = f"k_{fn.name}"
        kern = None
        if fn.op == "conv2d":
            fn.check_canonical_epilogue()
            c1, h, w = fn.anchor.inputs[0].out_shape
            spec = ConvSpec(
                c1=c1, h=h, w=w, k=a["filters"], f=a["field"], s=a["stride"],
                bias=a.get("bias", True), activation=fn.activation,
                residual=fn.has_residual, batchnorm=fn.has_batchnorm,
            )
            _, out = conv2d_tensors(spec, fn.name)
            if naive:
                sch = schedule_conv2d_naive(
                    out, auto_unroll_ff=self.board.auto_unroll_small_loops
                )
            else:
                tiling = self.config.tiling_for("conv", spec.f, spec.s)
                tiling = self._legal_tiling(tiling, spec)
                if spec.f == 1:
                    sch = schedule_conv1x1_opt(out, tiling)
                else:
                    sch = schedule_conv2d_opt(out, tiling)
        elif fn.op == "depthwise_conv2d":
            fn.check_canonical_epilogue()
            c1, h, w = fn.anchor.inputs[0].out_shape
            spec = ConvSpec(
                c1=c1, h=h, w=w, k=c1, f=a["field"], s=a["stride"],
                bias=a.get("bias", True), activation=fn.activation,
                batchnorm=fn.has_batchnorm,
            )
            _, out = depthwise_tensors(spec, fn.name)
            if naive:
                sch = schedule_depthwise_naive(
                    out, auto_unroll_ff=self.board.auto_unroll_small_loops
                )
            else:
                tiling = self._legal_tiling(
                    self.config.tiling_for("dw", spec.f, spec.s), spec
                )
                sch = schedule_depthwise_opt(out, tiling)
        elif fn.op == "pad":
            before, after = a["pad"]
            c, h, w = fn.anchor.inputs[0].out_shape
            _, out = pad_tensors(c, h, w, before, after, fn.name)
            sch = schedule_transform(out)
        elif fn.op in ("maxpool", "avgpool"):
            c, h, w = fn.anchor.inputs[0].out_shape
            spec = PoolSpec(
                c=c, h=h, w=w, field=a["field"], stride=a["stride"],
                kind="max" if fn.op == "maxpool" else "avg",
            )
            _, out = pool_tensors(spec, fn.name)
            sch = schedule_pool_naive(out) if naive else schedule_pool_opt(out)
        elif fn.op == "global_avgpool":
            c, h, w = fn.anchor.inputs[0].out_shape
            _, out = gap_tensors(c, h, w, fn.name)
            sch = schedule_pool_naive(out) if naive else schedule_pool_opt(out)
        elif fn.op == "flatten":
            c, h, w = fn.anchor.inputs[0].out_shape
            _, out = flatten_tensors(c, h, w, fn.name)
            sch = schedule_transform(out)
        elif fn.op == "dense":
            (n,) = fn.anchor.inputs[0].out_shape
            spec = DenseSpec(
                n=n, m=a["units"], bias=a.get("bias", True),
                activation=fn.activation,
            )
            _, out = dense_tensors(spec, fn.name)
            if naive:
                sch = schedule_dense_naive(out)
            else:
                factor = self.config.dense_unroll
                while factor > 1 and n % factor != 0:
                    factor //= 2
                sch = schedule_dense_opt(out, factor)
        elif fn.op == "softmax":
            (n,) = fn.anchor.inputs[0].out_shape
            if naive:
                kern = softmax_kernel_naive(n, fn.name, kname)
            else:
                kern = softmax_kernel_licm(n, fn.name, kname)
        else:  # pragma: no cover
            raise UnsupportedError(f"folded builder: unsupported op {fn.op}")
        self.kernels.append(
            ScheduledKernel(
                name=kname, layer=fn.name,
                schedule=None if kern is not None else sch, prebuilt=kern,
            )
        )
        return kname

    @staticmethod
    def _legal_tiling(tiling: ConvTiling, spec: ConvSpec) -> ConvTiling:
        """Clamp tiling factors to divide this static layer's dims
        (thesis requirement 2 in Section 4.11)."""

        def fit(factor: int, extent: int) -> int:
            while factor > 1 and extent % factor != 0:
                factor -= 1
            return factor

        return ConvTiling(
            w2vec=fit(tiling.w2vec, spec.wo),
            c2vec=fit(tiling.c2vec, spec.k),
            c1vec=fit(tiling.c1vec, spec.c1),
            unroll_ff=tiling.unroll_ff,
        )


def schedule_folded(
    fused: FusedGraph, config: FoldedConfig, board: Board
) -> FoldedSchedule:
    """``schedule`` stage: group layers and pick per-kernel schedules."""
    ir.reset_fresh_names()
    return _FoldedBuilder(fused, config, board).schedule_graph()


def lower_folded(sched: FoldedSchedule) -> ir.Program:
    """``lower`` stage: lower every scheduled kernel to statement IR."""
    return ir.Program([spec.lower() for spec in sched.kernels],
                      sched.program_name)


def plan_folded(fused: FusedGraph, sched: FoldedSchedule) -> FoldedPlan:
    """``plan`` stage: wrap the invocation sequence into a runtime plan."""
    graph = fused.graph
    in_elems = 1
    for d in graph.input.out_shape:
        in_elems *= d
    out_elems = 1
    for d in graph.output.out_shape:
        out_elems *= d
    return FoldedPlan(
        invocations=sched.invocations,
        input_bytes=in_elems * 4,
        output_bytes=out_elems * 4,
    )


def build_folded(
    fused: FusedGraph, config: FoldedConfig, board: Board
) -> Tuple[ir.Program, FoldedPlan]:
    """One-shot schedule + lower + plan (the pre-pipeline API surface)."""
    sched = schedule_folded(fused, config, board)
    return lower_folded(sched), plan_folded(fused, sched)
