"""Folded (time-multiplexed) deployment builder — thesis Sections 4.9/6.3.2.

Larger networks cannot map one kernel per layer: the LSUs alone exhaust
board resources.  Folded execution groups convolutions by (operation,
filter size, stride, fused-epilogue signature) into **parameterized
kernels** whose channel counts and spatial sizes are runtime arguments
(Section 5.3); every layer becomes one invocation of its group's kernel.
The naive mode builds one static kernel per layer with default schedules —
the baseline that fails to fit on the Arria 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import repro.ir as ir
from repro.device.boards import Board
from repro.errors import ScheduleError, UnsupportedError
from repro.flow.artifacts import FoldedSchedule, ScheduledKernel
from repro.relay.passes import FusedGraph, FusedNode
from repro.runtime.plan import FoldedPlan, Invocation
from repro.schedule import ScheduleRecipe, create_schedule
from repro.topi import (
    ConvSpec,
    ConvTiling,
    DenseSpec,
    PoolSpec,
    conv1x1_opt_recipe,
    conv2d_naive_recipe,
    conv2d_opt_recipe,
    conv2d_symbolic,
    conv2d_tensors,
    dense_naive_recipe,
    dense_opt_recipe,
    dense_tensors,
    depthwise_naive_recipe,
    depthwise_opt_recipe,
    depthwise_symbolic,
    depthwise_tensors,
    flatten_tensors,
    gap_tensors,
    pad_symbolic,
    pad_tensors,
    pool_naive_recipe,
    pool_opt_recipe,
    pool_tensors,
    softmax_kernel_licm,
    softmax_kernel_naive,
    symbolic_conv_recipe,
    transform_recipe,
)

GroupKey = Tuple


@dataclass
class FoldedConfig:
    """Tiling configuration for a folded deployment.

    ``conv_tilings`` maps ``('conv'|'dw', field, stride)`` to a
    :class:`ConvTiling`; unlisted groups default to FxF unrolling only.
    ``recipe_deltas`` maps a kernel name to extra transform steps
    appended after that kernel's base recipe (how ``flow.autofix``
    rewrites schedules); ``recipe_overrides`` replaces a kernel's base
    recipe entirely with a deserialized one (the round-trip replay
    path).
    """

    conv_tilings: Dict[Tuple[str, int, int], ConvTiling] = field(default_factory=dict)
    dense_unroll: int = 32
    naive: bool = False
    #: model the Listing 5.11 stride-pinning workaround (True = coalesced)
    pin_unit_stride: bool = True
    recipe_deltas: Dict[str, ScheduleRecipe] = field(default_factory=dict)
    recipe_overrides: Dict[str, ScheduleRecipe] = field(default_factory=dict)

    def tiling_for(self, kind: str, f: int, s: int) -> ConvTiling:
        return self.conv_tilings.get((kind, f, s), ConvTiling())


def op_label(fn: FusedNode) -> str:
    """Operation label used by the per-op profiling tables."""
    a = fn.anchor.attrs
    if fn.op == "conv2d":
        f, s = a["field"], a["stride"]
        return f"{f}x{f} conv S={s}"
    if fn.op == "depthwise_conv2d":
        return f"3x3 DW conv S={a['stride']}"
    if fn.op == "pad":
        return "pad"
    if fn.op == "dense":
        return "dense"
    if fn.op in ("maxpool", "avgpool"):
        return "pool"
    if fn.op == "global_avgpool":
        return "avgpool"
    return fn.op


class _FoldedBuilder:
    def __init__(self, fused: FusedGraph, config: FoldedConfig, board: Board) -> None:
        self.fused = fused
        self.config = config
        self.board = board
        self.kernels: List[ScheduledKernel] = []
        self.invocations: List[Invocation] = []
        #: group key -> (kernel name, symbolic handle or None)
        self.groups: Dict[GroupKey, Tuple[str, object]] = {}

    # ------------------------------------------------------------------
    def schedule_graph(self) -> FoldedSchedule:
        """Group layers into kernels and pick every kernel's schedule."""
        counts: Dict[GroupKey, int] = {}
        for fn in self.fused:
            counts[self._group_key(fn)] = counts.get(self._group_key(fn), 0) + 1
        for fn in self.fused:
            key = self._group_key(fn)
            parameterize = (
                not self.config.naive
                and counts[key] > 1
                and fn.op in ("conv2d", "depthwise_conv2d", "pad")
            )
            if parameterize:
                kname, handle = self._get_group_kernel(fn, key)
                bindings = self._bindings(fn, handle)
                prefix = kname[2:]  # strip the "k_" kernel prefix
            else:
                kname = self._schedule_static_kernel(fn)
                bindings = None
                prefix = fn.name
            self.invocations.append(
                Invocation(
                    kernel_name=kname,
                    layer=fn.name,
                    op_label=op_label(fn),
                    bindings=bindings,
                    flops=fn.flops(),
                    buffer_prefix=prefix,
                    input_node=fn.anchor.inputs[0].name,
                    extra_input_nodes=tuple(n.name for n in fn.extra_inputs),
                )
            )
        suffix = "naive" if self.config.naive else "folded"
        return FoldedSchedule(
            program_name=f"{self.fused.graph.name}_{suffix}",
            kernels=self.kernels,
            invocations=self.invocations,
            groups={k: name for k, (name, _) in self.groups.items()},
        )

    # ------------------------------------------------------------------
    def _group_key(self, fn: FusedNode) -> GroupKey:
        a = fn.anchor.attrs
        if fn.op == "conv2d":
            return (
                "conv", a["field"], a["stride"], a.get("bias", True),
                fn.activation, fn.has_residual, fn.has_batchnorm,
            )
        if fn.op == "depthwise_conv2d":
            return (
                "dw", a["field"], a["stride"], a.get("bias", True),
                fn.activation, fn.has_batchnorm,
            )
        if fn.op == "pad":
            return ("pad",) + tuple(a["pad"])
        return ("static", fn.name)

    # ------------------------------------------------------------------
    def _resolve_recipe(self, kname: str, base: ScheduleRecipe) -> ScheduleRecipe:
        """Final recipe for a kernel: override wins, else base + delta."""
        override = self.config.recipe_overrides.get(kname)
        if override is not None:
            return override
        delta = self.config.recipe_deltas.get(kname)
        return base + delta if delta else base

    def _apply_recipe(
        self, kname: str, out: ir.Tensor, base: ScheduleRecipe
    ) -> Tuple[object, ScheduleRecipe]:
        rec = self._resolve_recipe(kname, base)
        return rec.apply(create_schedule(out)), rec

    # ------------------------------------------------------------------
    def _get_group_kernel(self, fn: FusedNode, key: GroupKey):
        if key in self.groups:
            return self.groups[key]
        a = fn.anchor.attrs
        pin = self.config.pin_unit_stride
        base = "_".join(str(p) for p in key).replace("-", "m")
        kname = f"k_{base}"
        if fn.op == "conv2d":
            fn.check_canonical_epilogue()
            f, s = a["field"], a["stride"]
            handle, _, out = conv2d_symbolic(
                f, s, base, bias=a.get("bias", True), activation=fn.activation,
                residual=fn.has_residual, batchnorm=fn.has_batchnorm,
                pin_unit_stride=pin,
            )
            base_recipe = symbolic_conv_recipe(
                self.config.tiling_for("conv", f, s), is_1x1=(f == 1)
            )
        elif fn.op == "depthwise_conv2d":
            fn.check_canonical_epilogue()
            f, s = a["field"], a["stride"]
            handle, _, out = depthwise_symbolic(
                f, s, base, bias=a.get("bias", True), activation=fn.activation,
                batchnorm=fn.has_batchnorm, pin_unit_stride=pin,
            )
            base_recipe = symbolic_conv_recipe(
                self.config.tiling_for("dw", f, s), is_1x1=False, depthwise=True
            )
        elif fn.op == "pad":
            before, after = a["pad"]
            handle, _, out = pad_symbolic(before, after, base)
            base_recipe = transform_recipe()
        else:  # pragma: no cover
            raise UnsupportedError(f"cannot parameterize {fn.op}")
        sch, rec = self._apply_recipe(kname, out, base_recipe)
        self.kernels.append(
            ScheduledKernel(name=kname, layer=fn.name, schedule=sch, recipe=rec)
        )
        self.groups[key] = (kname, handle)
        return self.groups[key]

    def _bindings(self, fn: FusedNode, handle):
        c_in = fn.anchor.inputs[0].out_shape
        a = fn.anchor.attrs
        if fn.op == "conv2d":
            c1, hi, wi = c_in
            return handle.bindings(c1, hi, wi, a["filters"])
        if fn.op == "depthwise_conv2d":
            c1, hi, wi = c_in
            return handle.bindings(c1, hi, wi)
        if fn.op == "pad":
            c, hi, wi = c_in
            return handle.bindings(c, hi, wi)
        raise UnsupportedError(fn.op)  # pragma: no cover

    # ------------------------------------------------------------------
    def _schedule_static_kernel(self, fn: FusedNode) -> str:
        a = fn.anchor.attrs
        naive = self.config.naive
        kname = f"k_{fn.name}"
        kern = None
        out = base_recipe = None
        if fn.op == "conv2d":
            fn.check_canonical_epilogue()
            c1, h, w = fn.anchor.inputs[0].out_shape
            spec = ConvSpec(
                c1=c1, h=h, w=w, k=a["filters"], f=a["field"], s=a["stride"],
                bias=a.get("bias", True), activation=fn.activation,
                residual=fn.has_residual, batchnorm=fn.has_batchnorm,
            )
            _, out = conv2d_tensors(spec, fn.name)
            if naive:
                base_recipe = conv2d_naive_recipe(
                    auto_unroll_ff=self.board.auto_unroll_small_loops
                )
            else:
                tiling = self.config.tiling_for("conv", spec.f, spec.s)
                tiling = self._legal_tiling(tiling, spec)
                if spec.f == 1:
                    base_recipe = conv1x1_opt_recipe(tiling)
                else:
                    if tiling.c2vec != 1:
                        raise ScheduleError(
                            "c2vec tiling applies to 1x1 convs only (use conv1x1)"
                        )
                    base_recipe = conv2d_opt_recipe(tiling)
        elif fn.op == "depthwise_conv2d":
            fn.check_canonical_epilogue()
            c1, h, w = fn.anchor.inputs[0].out_shape
            spec = ConvSpec(
                c1=c1, h=h, w=w, k=c1, f=a["field"], s=a["stride"],
                bias=a.get("bias", True), activation=fn.activation,
                batchnorm=fn.has_batchnorm,
            )
            _, out = depthwise_tensors(spec, fn.name)
            if naive:
                base_recipe = depthwise_naive_recipe(
                    auto_unroll_ff=self.board.auto_unroll_small_loops
                )
            else:
                tiling = self._legal_tiling(
                    self.config.tiling_for("dw", spec.f, spec.s), spec
                )
                base_recipe = depthwise_opt_recipe(tiling)
        elif fn.op == "pad":
            before, after = a["pad"]
            c, h, w = fn.anchor.inputs[0].out_shape
            _, out = pad_tensors(c, h, w, before, after, fn.name)
            base_recipe = transform_recipe()
        elif fn.op in ("maxpool", "avgpool"):
            c, h, w = fn.anchor.inputs[0].out_shape
            spec = PoolSpec(
                c=c, h=h, w=w, field=a["field"], stride=a["stride"],
                kind="max" if fn.op == "maxpool" else "avg",
            )
            _, out = pool_tensors(spec, fn.name)
            base_recipe = pool_naive_recipe() if naive else pool_opt_recipe(out)
        elif fn.op == "global_avgpool":
            c, h, w = fn.anchor.inputs[0].out_shape
            _, out = gap_tensors(c, h, w, fn.name)
            base_recipe = pool_naive_recipe() if naive else pool_opt_recipe(out)
        elif fn.op == "flatten":
            c, h, w = fn.anchor.inputs[0].out_shape
            _, out = flatten_tensors(c, h, w, fn.name)
            base_recipe = transform_recipe()
        elif fn.op == "dense":
            (n,) = fn.anchor.inputs[0].out_shape
            spec = DenseSpec(
                n=n, m=a["units"], bias=a.get("bias", True),
                activation=fn.activation,
            )
            _, out = dense_tensors(spec, fn.name)
            if naive:
                base_recipe = dense_naive_recipe()
            else:
                factor = self.config.dense_unroll
                while factor > 1 and n % factor != 0:
                    factor //= 2
                base_recipe = dense_opt_recipe(factor)
        elif fn.op == "softmax":
            (n,) = fn.anchor.inputs[0].out_shape
            if naive:
                kern = softmax_kernel_naive(n, fn.name, kname)
            else:
                kern = softmax_kernel_licm(n, fn.name, kname)
        else:  # pragma: no cover
            raise UnsupportedError(f"folded builder: unsupported op {fn.op}")
        if kern is not None:
            self.kernels.append(
                ScheduledKernel(name=kname, layer=fn.name, prebuilt=kern)
            )
        else:
            sch, rec = self._apply_recipe(kname, out, base_recipe)
            self.kernels.append(
                ScheduledKernel(
                    name=kname, layer=fn.name, schedule=sch, recipe=rec
                )
            )
        return kname

    @staticmethod
    def _legal_tiling(tiling: ConvTiling, spec: ConvSpec) -> ConvTiling:
        """Clamp tiling factors to divide this static layer's dims
        (thesis requirement 2 in Section 4.11)."""

        def fit(factor: int, extent: int) -> int:
            while factor > 1 and extent % factor != 0:
                factor -= 1
            return factor

        return ConvTiling(
            w2vec=fit(tiling.w2vec, spec.wo),
            c2vec=fit(tiling.c2vec, spec.k),
            c1vec=fit(tiling.c1vec, spec.c1),
            unroll_ff=tiling.unroll_ff,
        )


def schedule_folded(
    fused: FusedGraph, config: FoldedConfig, board: Board
) -> FoldedSchedule:
    """``schedule`` stage: group layers and pick per-kernel schedules."""
    ir.reset_fresh_names()
    return _FoldedBuilder(fused, config, board).schedule_graph()


def lower_folded(sched: FoldedSchedule) -> ir.Program:
    """``lower`` stage: lower every scheduled kernel to statement IR.

    Lowering is incremental (:mod:`repro.flow.incremental`): a kernel
    whose schedule fingerprint was lowered before — e.g. every untouched
    group when a DSE step changes one tiling — replays its IR from the
    per-kernel cache; this run's hit/miss/uncached deltas land on the
    program for the ``lower`` stage trace counters.
    """
    from repro.flow.incremental import lower_cache_stats, lower_kernels

    before = lower_cache_stats()
    program = ir.Program(lower_kernels(sched.kernels), sched.program_name)
    after = lower_cache_stats()
    program.lower_cache = {k: after[k] - before[k] for k in after}
    return program


def plan_folded(fused: FusedGraph, sched: FoldedSchedule) -> FoldedPlan:
    """``plan`` stage: wrap the invocation sequence into a runtime plan."""
    graph = fused.graph
    in_elems = 1
    for d in graph.input.out_shape:
        in_elems *= d
    out_elems = 1
    for d in graph.output.out_shape:
        out_elems *= d
    plan = FoldedPlan(
        invocations=sched.invocations,
        input_bytes=in_elems * 4,
        output_bytes=out_elems * 4,
    )
    # attach the certified DDR arena: the deep import (not the package)
    # keeps plan construction decoupled from the analyzer suite
    from repro.verify.memory import plan_memory

    plan.memory = plan_memory(fused, plan, subject=f"folded:{graph.name}")
    return plan


def build_folded(
    fused: FusedGraph, config: FoldedConfig, board: Board
) -> Tuple[ir.Program, FoldedPlan]:
    """One-shot schedule + lower + plan (the pre-pipeline API surface)."""
    sched = schedule_folded(fused, config, board)
    return lower_folded(sched), plan_folded(fused, sched)
