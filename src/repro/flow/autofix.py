"""Advice-driven auto-scheduler: rewrite schedules until the advisor is clean.

The thesis's optimization workflow is a human loop: read AOC's static
reports, rewrite the schedule, re-compile, repeat until the bottleneck
moves (Section 6).  :mod:`repro.verify.perf` automates the *reading*
half — every RP finding now carries a machine-readable ``fix`` — and
this module automates the *rewriting* half: it consumes the advisor's
findings, applies the matching recipe delta or tiling adjustment,
re-runs the verifier + advisor, and iterates to an advice-clean fixpoint
or a provably-stuck report.

Termination is by construction: every applicable fix moves the
configuration strictly up a finite lattice (recipe deltas only grow,
tiling factors only shrink, ``pin_unit_stride`` only flips to True), so
the loop either reaches a state with no applicable fixes or revisits a
state — both detected.  A bounded iteration count and a fingerprint-set
cycle check guard the invariant against a fix that fails to move its
finding.  Every intermediate configuration is re-verified (never
synthesized), and the final recipes round-trip through JSON back into a
bit-identical build via ``recipe_overrides``.

A *stuck* result is structured, not a failure: each blocking finding
names why no mechanical rewrite exists (a prebuilt kernel, an
accumulator already cached, a working set that is the whole buffer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.aoc.constants import AOCConstants, DEFAULT_CONSTANTS
from repro.codegen import generate_opencl
from repro.device.boards import Board
from repro.errors import ReproError
from repro.flow.artifacts import FoldedSchedule, ScheduledKernel
from repro.flow.folded import (
    FoldedConfig,
    lower_folded,
    plan_folded,
    schedule_folded,
)
from repro.flow.pipelined import (
    LEVELS,
    lower_pipelined,
    plan_pipelined,
    schedule_pipelined,
)
from repro.relay.passes import FusedGraph
from repro.schedule import ScheduleRecipe
from repro.verify import certify_build, verify_build
from repro.verify.diagnostics import Diagnostic

#: hard bound on rewrite iterations; the lattice argument makes this
#: generous (each iteration must change at least one knob)
MAX_ITERATIONS = 16

GroupId = Tuple[str, int, int]


@dataclass
class FixStep:
    """One fix the engine applied, tied to the finding that caused it."""

    iteration: int
    rule: str
    kernel: str
    location: str
    #: human-readable description of the rewrite
    action: str
    #: the machine-readable ``fix`` payload consumed
    fix: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        return {
            "iteration": self.iteration, "rule": self.rule,
            "kernel": self.kernel, "location": self.location,
            "action": self.action, "fix": self.fix,
        }

    def format(self) -> str:
        where = self.kernel + (f":{self.location}" if self.location else "")
        return f"#{self.iteration} [{self.rule}] {where}: {self.action}"


@dataclass
class BlockedFix:
    """A finding with no applicable mechanical rewrite, and why."""

    rule: str
    kernel: str
    location: str
    reason: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule, "kernel": self.kernel,
            "location": self.location, "reason": self.reason,
        }

    def format(self) -> str:
        where = self.kernel + (f":{self.location}" if self.location else "")
        return f"[{self.rule}] {where}: {self.reason}"


@dataclass
class AutofixResult:
    """Outcome of one auto-scheduling run.

    ``status`` is ``'clean'`` (the advisor has nothing left to say) or
    ``'stuck'`` with a ``stuck_reason`` of ``'blocked'`` (every
    remaining finding has no mechanical rewrite — the provably-stuck
    case), ``'cycle'`` (a fix failed to move its finding and the
    configuration repeated), ``'iteration-limit'`` or
    ``'verify-error'`` (a rewrite introduced an error-severity finding;
    never expected, always fatal).
    """

    subject: str
    mode: str  # 'folded' | 'pipelined'
    status: str = "stuck"
    stuck_reason: Optional[str] = None
    iterations: int = 0
    applied: List[FixStep] = field(default_factory=list)
    blocked: List[BlockedFix] = field(default_factory=list)
    #: advice findings still present in the final build
    remaining: List[Diagnostic] = field(default_factory=list)
    #: kernel name -> final recipe fingerprint
    recipes: Dict[str, str] = field(default_factory=dict)
    #: kernel name -> final recipe serialized to JSON (folded mode)
    recipes_json: Dict[str, str] = field(default_factory=dict)
    #: final folded configuration (None in pipelined mode)
    config: Optional[FoldedConfig] = None
    #: True when the serialized recipes rebuilt a bit-identical source
    roundtrip_ok: Optional[bool] = None
    #: per-iteration narration of the loop
    log: List[str] = field(default_factory=list)
    #: equivalence-certifier accounting of the final build (folded
    #: mode): kernels accepted on a static certificate, statically
    #: undecidable kernels (RE006), kernels outside the fragment, and
    #: interpreter cross-checks actually run — the loop accepts rewrites
    #: on certificates, so this is 0 when every rewrite certified
    certified: int = 0
    cert_unknown: int = 0
    cert_uncertified: int = 0
    cert_dynamic_runs: int = 0

    @property
    def clean(self) -> bool:
        return self.status == "clean"

    def to_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "mode": self.mode,
            "status": self.status,
            "stuck_reason": self.stuck_reason,
            "iterations": self.iterations,
            "applied": [s.to_dict() for s in self.applied],
            "blocked": [b.to_dict() for b in self.blocked],
            "remaining": [
                {"rule": d.rule, "kernel": d.kernel, "location": d.location,
                 "fix": d.fix}
                for d in self.remaining
            ],
            "recipes": dict(sorted(self.recipes.items())),
            "roundtrip_ok": self.roundtrip_ok,
            "certified": self.certified,
            "cert_unknown": self.cert_unknown,
            "cert_uncertified": self.cert_uncertified,
            "cert_dynamic_runs": self.cert_dynamic_runs,
            "log": list(self.log),
        }

    def format(self) -> str:
        lines = [f"autofix: {self.subject} ({self.mode})"]
        tag = self.status + (
            f" ({self.stuck_reason})" if self.stuck_reason else ""
        )
        lines.append(
            f"  {tag} after {self.iterations} iteration(s), "
            f"{len(self.applied)} fix(es) applied"
        )
        for s in self.applied:
            lines.append("  + " + s.format())
        for b in self.blocked:
            lines.append("  ! " + b.format())
        if self.roundtrip_ok is not None:
            lines.append(
                "  recipes round-trip: "
                + ("bit-identical" if self.roundtrip_ok else "MISMATCH")
            )
        if self.mode == "folded":
            lines.append(
                f"  equivalence: {self.certified} certified, "
                f"{self.cert_unknown} unknown, "
                f"{self.cert_uncertified} uncertified, "
                f"{self.cert_dynamic_runs} dynamic run(s)"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# fix planning: one advisor finding -> one lattice move (or a reason why not)


class _Plan:
    """Fixes planned for one iteration: apply thunks + blocked reasons."""

    def __init__(self) -> None:
        self.steps: List[Tuple[FixStep, Callable[[], None]]] = []
        self.blocked: List[BlockedFix] = []
        self._knobs: set = set()

    def add(self, step: FixStep, knob: Tuple, thunk: Callable[[], None]) -> None:
        if knob in self._knobs:  # one move per knob per iteration
            return
        self._knobs.add(knob)
        self.steps.append((step, thunk))

    def block(self, d: Diagnostic, reason: str) -> None:
        self.blocked.append(BlockedFix(d.rule, d.kernel, d.location, reason))


def _copy_config(config: FoldedConfig) -> FoldedConfig:
    return FoldedConfig(
        conv_tilings=dict(config.conv_tilings),
        dense_unroll=config.dense_unroll,
        naive=config.naive,
        pin_unit_stride=config.pin_unit_stride,
        recipe_deltas=dict(config.recipe_deltas),
        recipe_overrides=dict(config.recipe_overrides),
    )


def _config_state(config: FoldedConfig) -> str:
    """Fingerprint of the lattice position, for cycle detection."""
    from repro.pipeline.fingerprint import fingerprint

    return fingerprint([
        sorted(
            (k, (t.w2vec, t.c2vec, t.c1vec, t.unroll_ff))
            for k, t in config.conv_tilings.items()
        ),
        config.dense_unroll,
        config.pin_unit_stride,
        sorted((k, r.fingerprint()) for k, r in config.recipe_deltas.items()),
        sorted(
            (k, r.fingerprint()) for k, r in config.recipe_overrides.items()
        ),
    ])


def _append_delta(
    config: FoldedConfig, kernel: str, delta: ScheduleRecipe
) -> None:
    existing = config.recipe_deltas.get(kernel)
    config.recipe_deltas[kernel] = existing + delta if existing else delta


def _next_factor(current: int, extents: List[int]) -> Optional[int]:
    """Largest factor below ``current`` dividing every group extent."""
    from repro.flow.dse import divides_all

    for v in range(current - 1, 0, -1):
        if divides_all(v, extents):
            return v
    return None


def _plan_folded_fix(
    d: Diagnostic,
    sk: Optional[ScheduledKernel],
    config: FoldedConfig,
    fused: FusedGraph,
    extents: Dict[GroupId, Dict[str, List[int]]],
    iteration: int,
    plan: _Plan,
    allow_shrink: bool = True,
) -> None:
    """Map one finding to a config move; record it (or why it is blocked)."""
    if d.fix is None:
        plan.block(d, "finding carries no machine-readable fix")
        return
    if sk is None:
        plan.block(d, "finding is not attached to a scheduled kernel")
        return
    if sk.prebuilt is not None:
        plan.block(d, "kernel is prebuilt IR — no schedule to rewrite")
        return
    transform = d.fix.get("transform")
    stage = sk.schedule.stages[0]
    step_args = dict(iteration=iteration, rule=d.rule, kernel=d.kernel,
                     location=d.location, fix=dict(d.fix))

    if transform == "cache_write":
        scope = d.fix.get("args", {}).get("scope", "register")
        if stage.scratch_scope != "global":
            plan.block(
                d, f"accumulator is already cached in "
                   f"'{stage.scratch_scope}' scope"
            )
            return
        plan.add(
            FixStep(action=f"cache_write('{scope}') appended to the "
                           f"kernel's recipe", **step_args),
            ("recipe", sk.name),
            lambda: _append_delta(
                config, sk.name, ScheduleRecipe().cache_write(scope)
            ),
        )
    elif transform == "pin_unit_stride":
        if config.pin_unit_stride:
            plan.block(d, "innermost strides are already pinned "
                          "(pin_unit_stride=True)")
            return
        plan.add(
            FixStep(action="pin_unit_stride=True (Listing 5.11 workaround)",
                    **step_args),
            ("pin",),
            lambda: setattr(config, "pin_unit_stride", True),
        )
    elif transform == "cache_read":
        name = d.fix.get("input")
        if name in stage.cached_reads:
            plan.block(
                d, f"'{name}' is already staged through a cached read; its "
                   f"working set is the whole buffer and no schedule "
                   f"transform shrinks it"
            )
            return
        if name not in [t.name for t in stage.op.inputs]:
            plan.block(d, f"'{name}' is not an input of this kernel")
            return
        plan.add(
            FixStep(action=f"cache_read('{name}') appended to the kernel's "
                           f"recipe", **step_args),
            ("recipe", sk.name),
            lambda: _append_delta(
                config, sk.name, ScheduleRecipe().cache_read(tensor=name)
            ),
        )
    elif transform == "shrink":
        if not allow_shrink:
            return  # the single-pass planner leaves tilings alone
        _plan_shrink(d, sk, config, fused, extents, step_args, plan)
    else:
        plan.block(d, f"unknown fix transform {transform!r}")


def _plan_shrink(
    d: Diagnostic,
    sk: ScheduledKernel,
    config: FoldedConfig,
    fused: FusedGraph,
    extents: Dict[GroupId, Dict[str, List[int]]],
    step_args: Dict[str, object],
    plan: _Plan,
) -> None:
    fn = next((f for f in fused if f.name == sk.layer), None)
    if fn is None:
        plan.block(d, f"layer {sk.layer!r} not found in the fused graph")
        return
    if fn.op == "dense":
        if config.dense_unroll <= 1:
            plan.block(d, "dense reduction unroll is already 1")
            return
        new = config.dense_unroll // 2
        plan.add(
            FixStep(action=f"dense_unroll {config.dense_unroll} -> {new}",
                    **step_args),
            ("dense_unroll",),
            lambda: setattr(config, "dense_unroll", new),
        )
        return
    if fn.op == "conv2d":
        gid: GroupId = ("conv", fn.anchor.attrs["field"],
                        fn.anchor.attrs["stride"])
    elif fn.op == "depthwise_conv2d":
        gid = ("dw", fn.anchor.attrs["field"], fn.anchor.attrs["stride"])
    else:
        plan.block(d, f"{fn.op} kernel exposes no shrink knob")
        return
    tiling = config.tiling_for(*gid)
    ext = extents.get(gid, {"w2": [], "c2": [], "c1": []})
    dims = {"w2vec": (tiling.w2vec, ext["w2"]),
            "c2vec": (tiling.c2vec, ext["c2"]),
            "c1vec": (tiling.c1vec, ext["c1"])}
    want = d.fix.get("dim", "widest")
    if want == "widest":
        dim = max(dims, key=lambda k: dims[k][0])
    else:
        dim = want
    current, dim_ext = dims[dim]
    if current <= 1:
        if want == "widest":
            plan.block(d, "no tiling dimension left to shrink "
                          "(all factors are 1)")
        else:
            plan.block(d, f"{dim} is already 1")
        return
    new = _next_factor(current, dim_ext) or 1
    gid_, dim_ = gid, dim

    def apply() -> None:
        t = config.tiling_for(*gid_)
        from repro.topi import ConvTiling

        config.conv_tilings[gid_] = ConvTiling(
            w2vec=new if dim_ == "w2vec" else t.w2vec,
            c2vec=new if dim_ == "c2vec" else t.c2vec,
            c1vec=new if dim_ == "c1vec" else t.c1vec,
            unroll_ff=t.unroll_ff,
        )

    plan.add(
        FixStep(action=f"{'/'.join(str(p) for p in gid)} {dim} "
                       f"{current} -> {new}", **step_args),
        ("tiling", gid, dim),
        apply,
    )


def _group_extents(fused: FusedGraph) -> Dict[GroupId, Dict[str, List[int]]]:
    from repro.flow.autotune import _group_extents as impl

    return impl(fused)


# ---------------------------------------------------------------------------
# the folded fixpoint loop


def autofix_folded(
    fused: FusedGraph,
    board: Board,
    config: Optional[FoldedConfig] = None,
    constants: AOCConstants = DEFAULT_CONSTANTS,
    max_iterations: int = MAX_ITERATIONS,
    subject: str = "",
) -> AutofixResult:
    """Iterate advise -> rewrite -> re-verify on a folded build.

    Every iteration runs the schedule/lower/codegen/verify front of the
    pipeline (no synthesis), maps each advice finding to its lattice
    move, applies at most one move per knob, and stops at an
    advice-clean fixpoint, a provably-stuck state (every remaining
    finding blocked), or a safety bound.  The final recipes are
    serialized and replayed through ``recipe_overrides`` to prove the
    build is reproducible from their JSON form.
    """
    from repro.flow.deploy import default_folded_config

    if config is None:
        config = default_folded_config(fused.graph.name, board)
    config = _copy_config(config)
    result = AutofixResult(
        subject=subject or f"{fused.graph.name}:{board.name}", mode="folded",
        config=config,
    )
    extents = _group_extents(fused)
    seen = {_config_state(config)}
    sched: Optional[FoldedSchedule] = None
    source = ""

    for it in range(1, max_iterations + 1):
        result.iterations = it
        sched = schedule_folded(fused, config, board)
        program = lower_folded(sched)
        source = generate_opencl(program)
        plan = plan_folded(fused, sched)
        report = verify_build(
            program, source=source, plan=plan, subject=result.subject,
            board=board, constants=constants,
        )
        # translation validation: every rewritten recipe must certify
        # equivalent to the naive lowering (repro.verify.equiv) before
        # its configuration is accepted.  Certified kernels cost zero
        # interpreter runs; an RE006-unknown kernel gets exactly one
        # dynamic cross-check, and a rejection aborts like any other
        # error-severity finding.
        equiv_report, _ = certify_build(
            sched, plan=plan, subject=result.subject, dynamic_fallback=True,
        )
        report.merge(equiv_report)
        result.certified = report.counters.get("equiv_certified", 0)
        result.cert_unknown = report.counters.get("equiv_unknown", 0)
        result.cert_uncertified = report.counters.get("equiv_uncertified", 0)
        result.cert_dynamic_runs += report.counters.get(
            "equiv_dynamic_runs", 0
        )
        if report.errors:
            result.status, result.stuck_reason = "stuck", "verify-error"
            result.log.append(
                f"iteration {it}: {len(report.errors)} error finding(s) — "
                f"aborting"
            )
            break
        advice = report.advice
        if not advice:
            result.status = "clean"
            result.log.append(f"iteration {it}: advice-clean")
            break
        plan_ = _Plan()
        kernels = {sk.name: sk for sk in sched.kernels}
        for d in advice:
            _plan_folded_fix(
                d, kernels.get(d.kernel), config, fused, extents, it, plan_
            )
        if not plan_.steps:
            result.status, result.stuck_reason = "stuck", "blocked"
            result.blocked = plan_.blocked
            result.remaining = list(advice)
            result.log.append(
                f"iteration {it}: {len(advice)} finding(s), none applicable "
                f"— provably stuck"
            )
            break
        for step, thunk in plan_.steps:
            thunk()
            result.applied.append(step)
        result.log.append(
            f"iteration {it}: {len(advice)} finding(s), "
            f"{len(plan_.steps)} fix(es) applied"
        )
        state = _config_state(config)
        if state in seen:
            result.status, result.stuck_reason = "stuck", "cycle"
            result.remaining = list(advice)
            result.log.append(
                f"iteration {it}: configuration repeated — cycle detected"
            )
            break
        seen.add(state)
    else:
        result.status, result.stuck_reason = "stuck", "iteration-limit"
        result.log.append(f"no fixpoint within {max_iterations} iterations")

    if result.status == "stuck" and result.stuck_reason == "blocked":
        pass  # remaining already recorded
    elif result.status == "clean" and sched is not None:
        result.remaining = []
    if sched is not None:
        result.recipes = {
            sk.name: sk.recipe.fingerprint()
            for sk in sched.kernels if sk.recipe is not None
        }
        result.recipes_json = {
            sk.name: sk.recipe.to_json()
            for sk in sched.kernels if sk.recipe is not None
        }
        if result.stuck_reason != "verify-error":
            result.roundtrip_ok = _roundtrip_folded(
                fused, board, config, result.recipes_json, source
            )
    return result


def _roundtrip_folded(
    fused: FusedGraph,
    board: Board,
    config: FoldedConfig,
    recipes_json: Dict[str, str],
    source: str,
) -> bool:
    """Replay the serialized recipes and compare generated source."""
    replay = _copy_config(config)
    replay.recipe_deltas = {}
    replay.recipe_overrides = {
        k: ScheduleRecipe.from_json(v) for k, v in recipes_json.items()
    }
    sched = schedule_folded(fused, replay, board)
    return generate_opencl(lower_folded(sched)) == source


def plan_recipe_fixes(
    fused: FusedGraph,
    board: Board,
    config: FoldedConfig,
    constants: AOCConstants = DEFAULT_CONSTANTS,
) -> Tuple[FoldedConfig, bool]:
    """Single-pass recipe-level fixes (the DSE/autotune hook).

    Runs one verify pass and applies only the fixes that do not change
    the tiling identity of the point — recipe deltas and stride pinning,
    never shrinks — so a swept (tiling, recipe) candidate keeps its
    coordinates.  Returns the possibly-rewritten config and whether any
    fix applied.
    """
    config = _copy_config(config)
    sched = schedule_folded(fused, config, board)
    program = lower_folded(sched)
    report = verify_build(
        program, source=generate_opencl(program),
        plan=plan_folded(fused, sched), subject=fused.graph.name,
        board=board, constants=constants,
    )
    plan_ = _Plan()
    kernels = {sk.name: sk for sk in sched.kernels}
    for d in report.advice:
        _plan_folded_fix(
            d, kernels.get(d.kernel), config, fused, {}, 1, plan_,
            allow_shrink=False,
        )
    for _, thunk in plan_.steps:
        thunk()
    return config, bool(plan_.steps)


# ---------------------------------------------------------------------------
# the pipelined fixpoint loop (LeNet-class)


def autofix_pipelined(
    fused: FusedGraph,
    board: Board,
    level: str = LEVELS[-1],
    constants: AOCConstants = DEFAULT_CONSTANTS,
    max_iterations: int = MAX_ITERATIONS,
    subject: str = "",
) -> AutofixResult:
    """Advise -> rewrite loop over a pipelined (chain) build.

    Pipelined builders construct schedules imperatively, so fixes are
    recipe deltas applied *on top of* each freshly built schedule,
    keyed by (kernel, stage) — multi-stage kernels like the channel-fed
    softmax get per-stage deltas.  There is no tiling table to shrink:
    RP005/RP006 findings are blocking by construction (``pipelined
    schedules expose no shrink knob``) and the loop converges to clean
    or provably stuck.
    """
    from repro.pipeline.fingerprint import fingerprint

    deltas: Dict[Tuple[str, int], ScheduleRecipe] = {}
    result = AutofixResult(
        subject=subject or f"{fused.graph.name}:{board.name}:{level}",
        mode="pipelined",
    )
    seen = {fingerprint([])}

    for it in range(1, max_iterations + 1):
        result.iterations = it
        sched = schedule_pipelined(fused, level, board, 1.0)
        kernels = {sk.name: sk for sk in sched.kernels}
        for (kname, idx), delta in deltas.items():
            delta.apply(kernels[kname].schedule, stage_index=idx)
        program = lower_pipelined(sched)
        source = generate_opencl(program)
        plan = plan_pipelined(fused, sched)
        report = verify_build(
            program, source=source, plan=plan, subject=result.subject,
            board=board, constants=constants,
        )
        if report.errors:
            result.status, result.stuck_reason = "stuck", "verify-error"
            break
        advice = report.advice
        if not advice:
            result.status = "clean"
            result.log.append(f"iteration {it}: advice-clean")
            break
        plan_ = _Plan()
        for d in advice:
            _plan_pipelined_fix(d, kernels.get(d.kernel), deltas, it, plan_)
        if not plan_.steps:
            result.status, result.stuck_reason = "stuck", "blocked"
            result.blocked = plan_.blocked
            result.remaining = list(advice)
            result.log.append(
                f"iteration {it}: {len(advice)} finding(s), none applicable "
                f"— provably stuck"
            )
            break
        for step, thunk in plan_.steps:
            thunk()
            result.applied.append(step)
        result.log.append(
            f"iteration {it}: {len(advice)} finding(s), "
            f"{len(plan_.steps)} fix(es) applied"
        )
        state = fingerprint(
            sorted((k, i, r.fingerprint()) for (k, i), r in deltas.items())
        )
        if state in seen:
            result.status, result.stuck_reason = "stuck", "cycle"
            result.remaining = list(advice)
            break
        seen.add(state)
    else:
        result.status, result.stuck_reason = "stuck", "iteration-limit"

    def label(k: str, i: int) -> str:
        return k if i == 0 else f"{k}#{i}"

    result.recipes = {
        label(k, i): r.fingerprint() for (k, i), r in deltas.items()
    }
    result.recipes_json = {
        label(k, i): r.to_json() for (k, i), r in deltas.items()
    }
    return result


def _stage_for_finding(sk: ScheduledKernel, d: Diagnostic) -> int:
    """Schedule stage a finding points at (multi-stage kernels).

    RP001/RP002 locate a loop variable, RP003/RP004 a buffer; the stage
    whose axes or inputs carry that name is the one to rewrite.
    """
    for i, st in enumerate(sk.schedule.stages):
        if any(ax.name == d.location for ax in st.leaf_axes):
            return i
        if any(t.name == d.location for t in st.op.inputs):
            return i
    return 0


def _plan_pipelined_fix(
    d: Diagnostic,
    sk: Optional[ScheduledKernel],
    deltas: Dict[Tuple[str, int], ScheduleRecipe],
    iteration: int,
    plan: _Plan,
) -> None:
    if d.fix is None:
        plan.block(d, "finding carries no machine-readable fix")
        return
    if sk is None:
        plan.block(d, "finding is not attached to a scheduled kernel")
        return
    if sk.prebuilt is not None:
        plan.block(d, "kernel is prebuilt IR — no schedule to rewrite")
        return
    transform = d.fix.get("transform")
    idx = _stage_for_finding(sk, d)
    stage = sk.schedule.stages[idx]
    step_args = dict(iteration=iteration, rule=d.rule, kernel=d.kernel,
                     location=d.location, fix=dict(d.fix))

    def append(delta: ScheduleRecipe) -> None:
        existing = deltas.get((sk.name, idx))
        deltas[(sk.name, idx)] = existing + delta if existing else delta

    if transform == "cache_write":
        scope = d.fix.get("args", {}).get("scope", "register")
        if stage.scratch_scope != "global":
            plan.block(
                d, f"accumulator is already cached in "
                   f"'{stage.scratch_scope}' scope"
            )
            return
        plan.add(
            FixStep(action=f"cache_write('{scope}') appended to the "
                           f"kernel's stage-{idx} recipe", **step_args),
            ("recipe", sk.name, idx),
            lambda: append(ScheduleRecipe().cache_write(scope)),
        )
    elif transform == "cache_read":
        name = d.fix.get("input")
        if name in stage.cached_reads:
            plan.block(
                d, f"'{name}' is already staged through a cached read; its "
                   f"working set is the whole buffer"
            )
            return
        if name not in [t.name for t in stage.op.inputs]:
            plan.block(d, f"'{name}' is not an input of this kernel")
            return
        plan.add(
            FixStep(action=f"cache_read('{name}') appended to the kernel's "
                           f"stage-{idx} recipe", **step_args),
            ("recipe", sk.name, idx),
            lambda: append(ScheduleRecipe().cache_read(tensor=name)),
        )
    elif transform == "pin_unit_stride":
        plan.block(d, "pipelined kernels have static strides; nothing to pin")
    elif transform == "shrink":
        plan.block(d, "pipelined schedules expose no shrink knob")
    else:
        plan.block(d, f"unknown fix transform {transform!r}")


# ---------------------------------------------------------------------------
# network-level entry point


def autofix_network(
    network: str,
    board: Board,
    constants: AOCConstants = DEFAULT_CONSTANTS,
    max_iterations: int = MAX_ITERATIONS,
) -> AutofixResult:
    """Auto-schedule one shipped network build (mode chosen like deploy).

    LeNet-5 runs the pipelined loop at the top optimization level;
    everything else runs the folded loop from the thesis tiling tables.
    """
    from repro.flow.stages import MODELS
    from repro.relay import fuse_operators

    if network not in MODELS:
        raise ReproError(f"unknown network {network!r}")
    fused = fuse_operators(MODELS[network]())
    if network == "lenet5":
        return autofix_pipelined(
            fused, board, constants=constants, max_iterations=max_iterations,
        )
    return autofix_folded(
        fused, board, constants=constants, max_iterations=max_iterations,
    )


# -- pipeline integration ---------------------------------------------------

from repro.pipeline import register_canonicalizer, register_describer  # noqa: E402

register_canonicalizer(
    AutofixResult,
    lambda r: ["autofix-result", r.to_dict()],
)
register_describer(
    AutofixResult,
    lambda r: (
        len(r.applied),
        {"status": r.status, "iterations": r.iterations,
         "applied": len(r.applied), "blocked": len(r.blocked)},
    ),
)
