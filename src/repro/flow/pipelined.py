"""Pipelined (layer-parallel) deployment builder — thesis Section 6.3.1.

Builds the five LeNet bitstreams of Table 6.4, each adding one
optimization over the previous:

``base``
    TVM's default schedules; activations through global memory.  Boards
    whose Quartus auto-unrolls small loops get the free FxF unroll.
``unroll``
    Convolution FxF reductions unrolled explicitly; dense layers
    strip-mined and unrolled by 40/40/4.
``channels``
    Output feature maps stream through buffered CL channels sized to the
    producer's OFM; activations fused into the channel write; register
    write caches.
``autorun``
    Weight-free kernels (pooling, flatten) declared autorun.
``tvm_autorun``
    Same optimizations applied through TVM schedule primitives, which
    also tile a little further (the thesis measures this marginally ahead
    of the hand-written variant).

The builder is generic over *chain* graphs (every kernel feeds exactly
the next one), which is all pipelined execution supports — residual
topologies need folded execution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import repro.ir as ir
from repro.device.boards import Board
from repro.errors import ReproError, UnsupportedError
from repro.flow.artifacts import PipelinedSchedule, ScheduledKernel
from repro.relay.passes import FusedGraph, FusedNode
from repro.runtime.plan import PipelinePlan, PipelineStage
from repro.schedule import Schedule
from repro.topi import (
    ConvSpec,
    ConvTiling,
    DenseSpec,
    PoolSpec,
    conv2d_tensors,
    dense_tensors,
    flatten_tensors,
    gap_tensors,
    pad_tensors,
    pool_tensors,
    schedule_conv2d_naive,
    schedule_conv2d_opt,
    schedule_dense_naive,
    schedule_dense_opt,
    schedule_pool_naive,
    schedule_pool_opt,
    schedule_transform,
    softmax_kernel_licm,
    softmax_kernel_naive,
)

LEVELS = ("base", "unroll", "channels", "autorun", "tvm_autorun")

#: dense strip-mine factors per layer position (thesis Table 6.4: 40/40/4)
DENSE_UNROLL = {"dense1": 40, "dense2": 40, "dense3": 4}

#: extra tiling the TVM-scheduled variant applies (marginal gains)
TVM_EXTRA_TILING = {"conv1": ConvTiling(w2vec=2), "conv2": ConvTiling(c1vec=3)}


def _conv_spec(fn: FusedNode) -> ConvSpec:
    a = fn.anchor.attrs
    c1, h, w = fn.anchor.inputs[0].out_shape
    if a.get("pad", 0) not in (0, (0, 0)):
        raise UnsupportedError("conv kernels expect explicit pad nodes")
    if fn.has_residual:
        raise UnsupportedError("pipelined execution cannot fuse residuals")
    fn.check_canonical_epilogue()
    return ConvSpec(
        c1=c1, h=h, w=w, k=a["filters"], f=a["field"], s=a["stride"],
        bias=a.get("bias", True), activation=fn.activation, residual=False,
        batchnorm=fn.has_batchnorm,
    )


def _dense_spec(fn: FusedNode) -> DenseSpec:
    a = fn.anchor.attrs
    (n,) = fn.anchor.inputs[0].out_shape
    return DenseSpec(n=n, m=a["units"], bias=a.get("bias", True),
                     activation=fn.activation)


class _ChainKernelBuilder:
    """Build one kernel per fused node of a chain graph at a given level."""

    def __init__(self, level: str, board: Board,
                 channel_depth_scale: float = 1.0) -> None:
        if level not in LEVELS:
            raise ReproError(f"unknown optimization level {level!r}")
        self.level = level
        self.board = board
        self.channel_depth_scale = channel_depth_scale
        self.use_channels = level in ("channels", "autorun", "tvm_autorun")
        self.use_autorun = level in ("autorun", "tvm_autorun")
        self.optimized = level != "base"

    # -- per-op schedule selection --------------------------------------
    def conv_schedule(self, out: ir.Tensor, fn: FusedNode) -> Schedule:
        if self.level == "base":
            return schedule_conv2d_naive(
                out, auto_unroll_ff=self.board.auto_unroll_small_loops
            )
        if self.level == "unroll":
            sch = schedule_conv2d_naive(out, auto_unroll_ff=False)
            st = sch.stages[0]
            for ax in st.reduce_axes[-2:]:
                st.unroll(ax)
            return sch
        tiling = ConvTiling()
        if self.level == "tvm_autorun":
            tiling = TVM_EXTRA_TILING.get(fn.name, tiling)
        return schedule_conv2d_opt(out, tiling)

    def dense_schedule(self, out: ir.Tensor, fn: FusedNode) -> Schedule:
        if self.level == "base":
            return schedule_dense_naive(out)
        factor = DENSE_UNROLL.get(fn.name, 1)
        if self.level == "unroll":
            # unrolled but still accumulating through global memory
            sch = schedule_dense_naive(out)
            st = sch.stages[0]
            if factor > 1:
                _, ki = st.split(st.reduce_axes[0], factor)
                st.unroll(ki)
            return sch
        return schedule_dense_opt(out, factor)

    def pool_schedule(self, out: ir.Tensor) -> Schedule:
        if self.level == "base":
            return schedule_pool_naive(out)
        return schedule_pool_opt(out)

    # ------------------------------------------------------------------
    def schedule_graph(self, fused: FusedGraph) -> PipelinedSchedule:
        """Select a schedule (and channel wiring) for every fused node."""
        nodes = list(fused)
        # chain check
        for prev, nxt in zip(nodes, nodes[1:]):
            if nxt.anchor.inputs[0] is not prev.output_node:
                raise UnsupportedError(
                    f"pipelined builder needs a chain graph; {nxt.name} does "
                    f"not consume {prev.name}"
                )

        channels: Dict[str, ir.Channel] = {}
        if self.use_channels:
            for prev, nxt in zip(nodes, nodes[1:]):
                n = 1
                for d in prev.out_shape:
                    n *= d
                # depth sized to hold the producer's whole OFM (§4.11),
                # optionally scaled for the channel-depth ablation
                depth = max(0, int(n * self.channel_depth_scale))
                channels[prev.name] = ir.Channel(f"ch_{prev.name}", depth=depth)

        specs: List[ScheduledKernel] = []
        for i, fn in enumerate(nodes):
            ch_in = channels.get(nodes[i - 1].name) if i > 0 else None
            ch_out = channels.get(fn.name)
            specs.append(self._schedule_kernel(fn, ch_in, ch_out))
        return PipelinedSchedule(
            level=self.level,
            program_name=f"{fused.graph.name}_{self.level}",
            kernels=specs,
            channels=channels,
            uses_channels=self.use_channels,
        )

    # ------------------------------------------------------------------
    def _schedule_kernel(
        self,
        fn: FusedNode,
        ch_in: Optional[ir.Channel],
        ch_out: Optional[ir.Channel],
    ) -> ScheduledKernel:
        op = fn.op
        kname = f"k_{fn.name}"
        autorun = False

        if op == "conv2d":
            spec = _conv_spec(fn)
            ins, out = conv2d_tensors(spec, fn.name)
            sch = self.conv_schedule(out, fn)
        elif op == "dense":
            spec = _dense_spec(fn)
            ins, out = dense_tensors(spec, fn.name)
            sch = self.dense_schedule(out, fn)
        elif op in ("maxpool", "avgpool"):
            a = fn.anchor.attrs
            c, h, w = fn.anchor.inputs[0].out_shape
            pspec = PoolSpec(
                c=c, h=h, w=w, field=a["field"], stride=a["stride"],
                kind="max" if op == "maxpool" else "avg",
            )
            ins, out = pool_tensors(pspec, fn.name)
            sch = self.pool_schedule(out)
            autorun = self.use_autorun and ch_in is not None and ch_out is not None
        elif op == "global_avgpool":
            c, h, w = fn.anchor.inputs[0].out_shape
            ins, out = gap_tensors(c, h, w, fn.name)
            sch = self.pool_schedule(out)
            autorun = self.use_autorun and ch_in is not None and ch_out is not None
        elif op == "flatten":
            c, h, w = fn.anchor.inputs[0].out_shape
            ins, out = flatten_tensors(c, h, w, fn.name)
            sch = schedule_transform(out)
            autorun = self.use_autorun and ch_in is not None and ch_out is not None
        elif op == "pad":
            before, after = fn.anchor.attrs["pad"]
            c, h, w = fn.anchor.inputs[0].out_shape
            ins, out = pad_tensors(c, h, w, before, after, fn.name)
            sch = schedule_transform(out)
            autorun = self.use_autorun and ch_in is not None and ch_out is not None
        elif op == "softmax":
            (n,) = fn.anchor.inputs[0].out_shape
            # softmax is the terminal kernel: channel input supported via
            # rebuild with lowering options below
            if ch_in is not None or ch_out is not None:
                return self._softmax_with_channels(fn, n, kname, ch_in, ch_out)
            if self.optimized and self.level != "unroll":
                kern = softmax_kernel_licm(n, fn.name, kname)
            else:
                kern = softmax_kernel_naive(n, fn.name, kname)
            return ScheduledKernel(name=kname, layer=fn.name, prebuilt=kern)
        else:  # pragma: no cover - vocabulary guard
            raise UnsupportedError(f"pipelined builder: unsupported op {op}")

        input_channels = (
            {f"{fn.name}_in": ch_in} if ch_in is not None else None
        )
        return ScheduledKernel(
            name=kname,
            layer=fn.name,
            schedule=sch,
            lower_options={
                "output_channel": ch_out,
                "input_channels": input_channels,
                "autorun": autorun,
            },
        )

    def _softmax_with_channels(
        self,
        fn: FusedNode,
        n: int,
        kname: str,
        ch_in: Optional[ir.Channel],
        ch_out: Optional[ir.Channel],
    ) -> ScheduledKernel:
        from repro.schedule import create_schedule
        from repro.topi.softmax import softmax_tensors

        _, tensors = softmax_tensors(n, fn.name)
        sch = create_schedule(*tensors)
        if not (self.optimized and self.level != "unroll"):
            maxelem, exps, expsum, norm = tensors
            norm_stage = sch[norm]
            (i1,) = norm_stage.data_axes
            attach = {
                sch[maxelem]: (norm_stage, i1),
                sch[exps]: (norm_stage, i1),
                sch[expsum]: (norm_stage, i1),
            }
        else:
            attach = None
        input_channels = (
            {f"{fn.name}_in": ch_in} if ch_in is not None else None
        )
        return ScheduledKernel(
            name=kname,
            layer=fn.name,
            schedule=sch,
            lower_options={
                "output_channel": ch_out,
                "input_channels": input_channels,
                "compute_at": attach,
            },
        )


def schedule_pipelined(
    fused: FusedGraph, level: str, board: Board,
    channel_depth_scale: float = 1.0,
) -> PipelinedSchedule:
    """``schedule`` stage: pick per-kernel schedules + channel wiring.

    ``channel_depth_scale`` scales every channel FIFO relative to the
    thesis's rule (depth = producer OFM size); values below 1 model the
    under-buffered channels whose stalls Section 4.6 warns about.
    """
    ir.reset_fresh_names()
    builder = _ChainKernelBuilder(level, board, channel_depth_scale)
    return builder.schedule_graph(fused)


def lower_pipelined(sched: PipelinedSchedule) -> ir.Program:
    """``lower`` stage: lower every scheduled kernel to statement IR.

    Runs through the per-kernel lower cache of
    :mod:`repro.flow.incremental`; pipelined kernels carry channel
    wiring in their lowering options, so most lower uncached today and
    are counted as such in the ``lower`` stage trace counters.
    """
    from repro.flow.incremental import lower_cache_stats, lower_kernels

    before = lower_cache_stats()
    program = ir.Program(lower_kernels(sched.kernels), sched.program_name)
    after = lower_cache_stats()
    program.lower_cache = {k: after[k] - before[k] for k in after}
    return program


def plan_pipelined(fused: FusedGraph, sched: PipelinedSchedule) -> PipelinePlan:
    """``plan`` stage: derive the host-runtime execution plan."""
    nodes = list(fused)
    stages: List[PipelineStage] = []
    for i, (fn, spec) in enumerate(zip(nodes, sched.kernels)):
        ch_in = sched.channels.get(nodes[i - 1].name) if i > 0 else None
        ch_out = sched.channels.get(fn.name)
        out_elems = 1
        for d in fn.out_shape:
            out_elems *= d
        stages.append(
            PipelineStage(
                kernel_name=spec.name,
                layer=fn.name,
                channel_in=ch_in is not None,
                channel_out=ch_out is not None,
                autorun=spec.autorun,
                channel_depth=ch_out.depth if ch_out is not None else 0,
                output_elems=out_elems,
            )
        )
    graph = fused.graph
    in_elems = 1
    for d in graph.input.out_shape:
        in_elems *= d
    out_elems = 1
    for d in graph.output.out_shape:
        out_elems *= d
    plan = PipelinePlan(
        stages=stages,
        input_bytes=in_elems * 4,
        output_bytes=out_elems * 4,
        uses_channels=sched.uses_channels,
    )
    # attach the DDR residency plan (all globally-buffered stages are
    # concurrently live, so there is no reuse — but RM003 capacity and
    # the serving layer's replicas-per-board packing still need it)
    from repro.verify.memory import plan_memory

    plan.memory = plan_memory(fused, plan, subject=f"pipelined:{graph.name}")
    return plan


def build_pipelined(
    fused: FusedGraph, level: str, board: Board,
    channel_depth_scale: float = 1.0,
) -> Tuple[ir.Program, PipelinePlan]:
    """One-shot schedule + lower + plan (the pre-pipeline API surface)."""
    sched = schedule_pipelined(fused, level, board, channel_depth_scale)
    return lower_pipelined(sched), plan_pipelined(fused, sched)
