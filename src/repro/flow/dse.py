"""Tiling-factor design-space exploration (thesis §4.11 + future work §8.1).

The thesis selects unroll/tiling factors manually under three
requirements and leaves an automatic explorer to future work; this module
implements that explorer against the reproduction's AOC model:

1. the widened access width must not exceed what external memory can
   feed at the design clock (the bandwidth roof);
2. factors must evenly divide every layer extent they tile;
3. the synthesized design must fit (and route on) the board.

``explore_conv1x1`` sweeps (w2vec, c2vec, c1vec) space for the MobileNet
pointwise kernel the way Table 6.6 does, and ``choose_tiling`` returns
the best configuration by modelled throughput.

Candidate synthesis runs through the staged compile pipeline, so points
sharing generated source (and re-runs of the same sweep) hit the
content-addressed compile cache; :class:`SweepSummary` reports the
hit/miss counts.
"""

from __future__ import annotations

import multiprocessing
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.aoc.constants import AOCConstants, DEFAULT_CONSTANTS
from repro.device.boards import Board
from repro.errors import AOCError, FitError, RoutingError
from repro.flow.folded import FoldedConfig
from repro.flow.stages import CacheOption, folded_flow, resolve_cache
from repro.pipeline.cache import CompileCache, DiskBackend, MemoryBackend, _MISS
from repro.relay.passes import FusedGraph
from repro.runtime.simulate import simulate_folded
from repro.schedule import ScheduleRecipe
from repro.topi import ConvTiling, symbolic_conv_recipe


@dataclass
class DSEPoint:
    """One evaluated (or statically pruned) tiling configuration.

    A point is (tiling, recipe): ``recipe`` is the transform recipe the
    tiling expands to for the swept group's kernel, whose fingerprint
    keys the compile cache.  ``fixed`` marks points the static autofix
    pass rewrote (recipe deltas / stride pinning) before synthesis.
    """

    tiling: ConvTiling
    fits: bool
    routed: bool
    fps: Optional[float] = None
    fmax_mhz: Optional[float] = None
    dsps: Optional[int] = None
    fail_reason: Optional[str] = None
    #: skipped before synthesis by a dominance/infeasibility proof
    pruned: bool = False
    recipe: Optional[ScheduleRecipe] = None
    #: rewritten by the static autofix pass before synthesis
    fixed: bool = False
    #: equivalence-certifier accounting from the build's verify stage
    #: (repro.verify.equiv): kernels statically certified, kernels the
    #: prover could not decide (RE006), kernels outside the fragment,
    #: and interpreter cross-checks actually run — 0 for a certified
    #: point, which is the whole point
    certified: int = 0
    cert_unknown: int = 0
    cert_uncertified: int = 0
    cert_dynamic_runs: int = 0

    @property
    def feasible(self) -> bool:
        return self.fits and self.routed


@dataclass
class SweepSummary:
    """All evaluated points of one sweep plus compile-cache accounting."""

    points: List[DSEPoint] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def best(self) -> DSEPoint:
        return choose_tiling(self.points)

    @property
    def failed_points(self) -> int:
        """Points the compiler rejected (fit, route, or any other AOC
        failure) plus statically pruned ones — not feasible either way."""
        return sum(1 for p in self.points if p.fail_reason is not None)

    @property
    def pruned_static(self) -> int:
        """Points skipped before synthesis by the dominance pruner."""
        return sum(1 for p in self.points if p.pruned)

    @property
    def synthesized(self) -> int:
        """Points that actually went through the compile pipeline."""
        return sum(1 for p in self.points if not p.pruned)

    @property
    def fixed_static(self) -> int:
        """Points the static autofix pass rewrote before synthesis —
        accounted distinctly from pruned ones (they did synthesize)."""
        return sum(1 for p in self.points if p.fixed)

    @property
    def certified_kernels(self) -> int:
        """Kernels across all points the equivalence certifier proved
        bit-exact statically — accepted without any interpreter run."""
        return sum(p.certified for p in self.points)

    @property
    def uncertified_kernels(self) -> int:
        """Kernels outside the certifier's fragment (prebuilt, no
        recipe) plus statically undecidable ones (RE006)."""
        return sum(p.cert_unknown + p.cert_uncertified for p in self.points)

    @property
    def cert_fallbacks(self) -> int:
        """Dynamic (interpreter) equivalence checks the sweep ran —
        zero when every recipe-backed kernel certified statically."""
        return sum(p.cert_dynamic_runs for p in self.points)

    def fail_reasons(self) -> Dict[str, int]:
        """Histogram of failure classes, keys sorted.

        The class is the leading ``SomeError``/``pruned`` tag of each
        ``fail_reason``; sorted keys make sweep logs diff cleanly
        between runs.
        """
        hist: Dict[str, int] = {}
        for p in self.points:
            if p.fail_reason is None:
                continue
            key = p.fail_reason.split(":", 1)[0]
            hist[key] = hist.get(key, 0) + 1
        return dict(sorted(hist.items()))

    def to_dict(self) -> Dict[str, object]:
        """Deterministic (sorted-key) summary for logs and tooling."""
        return {
            "points": len(self.points),
            "feasible": sum(1 for p in self.points if p.feasible),
            "failed": self.failed_points,
            "pruned_static": self.pruned_static,
            "fixed_static": self.fixed_static,
            "synthesized": self.synthesized,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "certified_kernels": self.certified_kernels,
            "uncertified_kernels": self.uncertified_kernels,
            "cert_fallbacks": self.cert_fallbacks,
            "fail_reasons": self.fail_reasons(),
        }

    def format(self) -> str:
        d = self.to_dict()
        reasons = " ".join(f"{k}={v}" for k, v in d["fail_reasons"].items())
        return (
            f"sweep: {d['points']} points, {d['feasible']} feasible, "
            f"{d['synthesized']} synthesized, "
            f"{d['pruned_static']} pruned statically, "
            f"{d['fixed_static']} autofixed, "
            f"{d['certified_kernels']} kernel(s) certified "
            f"({d['cert_fallbacks']} dynamic fallback(s)), "
            f"cache {d['cache_hits']}h/{d['cache_misses']}m"
            + (f" [{reasons}]" if reasons else "")
        )


def bandwidth_roof_elems(board: Board, fmax_mhz: float) -> int:
    """Max unroll width sustainable by external memory (requirement 1).

    E.g. the Arria 10's 34.1 GB/s at 250 MHz supports ~136 bytes/cycle,
    about 32 floats (the thesis's worked example).
    """
    bytes_per_cycle = board.peak_bw_gbs * 1e3 / fmax_mhz
    return max(1, int(bytes_per_cycle // 4))


def divides_all(factor: int, extents: Iterable[int]) -> bool:
    """Requirement 2: the factor must divide every tiled extent."""
    return all(e % factor == 0 for e in extents)


def evaluate_tiling(
    fused: FusedGraph,
    board: Board,
    group: Tuple[str, int, int],
    tiling: ConvTiling,
    base_config: Optional[FoldedConfig] = None,
    constants: AOCConstants = DEFAULT_CONSTANTS,
    cache: CacheOption = None,
) -> DSEPoint:
    """Compile + simulate the network with one tiling for one conv group.

    The build runs through the staged pipeline seeded with the
    already-fused graph, so repeated evaluations of source-identical
    candidates replay the ``synthesize`` stage from the compile cache —
    including deterministic fit/route failures.
    """
    from repro.flow.deploy import default_folded_config

    config = base_config or default_folded_config(fused.graph.name, board)
    config = FoldedConfig(
        conv_tilings=dict(config.conv_tilings),
        dense_unroll=config.dense_unroll,
        pin_unit_stride=config.pin_unit_stride,
        recipe_deltas=dict(config.recipe_deltas),
        recipe_overrides=dict(config.recipe_overrides),
    )
    config.conv_tilings[group] = tiling
    recipe = symbolic_conv_recipe(
        tiling, is_1x1=(group[1] == 1), depthwise=(group[0] == "dw")
    )
    flow = folded_flow(fused.graph.name, board, config, constants, cache=cache)
    try:
        result = flow.run(seed={"graph": fused.graph, "fused": fused})
    except FitError as e:
        return _failed_point(
            DSEPoint(tiling, fits=False, routed=True,
                     fail_reason=f"FitError: {e}", recipe=recipe), e,
        )
    except RoutingError as e:
        return _failed_point(
            DSEPoint(tiling, fits=True, routed=False,
                     fail_reason=f"RoutingError: {e}", recipe=recipe), e,
        )
    except AOCError as e:
        # any other compiler failure (crash, internal error): the point
        # is recorded as infeasible instead of aborting the whole sweep
        return _failed_point(
            DSEPoint(tiling, fits=False, routed=False,
                     fail_reason=f"{type(e).__name__}: {e}", recipe=recipe),
            e,
        )
    bs = result.value("bitstream")
    sim = simulate_folded(bs, result.value("plan"))
    point = DSEPoint(
        tiling,
        fits=True,
        routed=True,
        fps=sim.fps,
        fmax_mhz=bs.fmax_mhz,
        dsps=bs.total.dsps,
        recipe=recipe,
    )
    _attach_certification(point, result.trace)
    return point


def _failed_point(point: DSEPoint, err: AOCError) -> DSEPoint:
    """Certification counters for a point that failed past the verify
    stage (the partial trace on the error's diagnostic still has them —
    a point is certified or not regardless of whether it fits)."""
    diag = getattr(err, "diagnostic", None)
    if diag is not None:
        _attach_certification(point, diag.trace)
    return point


def _attach_certification(point: DSEPoint, trace) -> None:
    """Copy the verify stage's equivalence-certifier counters onto a point.

    The verify stage of every candidate build runs the static
    certifier (:mod:`repro.verify.equiv`); its trace counters say how
    many kernels were accepted on a certificate versus how many needed
    an interpreter fallback — the sweep-level proof that certified
    candidates cost zero interpreter equivalence runs.
    """
    try:
        c = trace.stage("verify").counters
    except KeyError:  # pragma: no cover — verify always runs pre-synthesis
        return
    point.certified = int(c.get("equiv_certified", 0))
    point.cert_unknown = int(c.get("equiv_unknown", 0))
    point.cert_uncertified = int(c.get("equiv_uncertified", 0))
    point.cert_dynamic_runs = int(c.get("equiv_dynamic_runs", 0))


# ---------------------------------------------------------------------------
# process-pool candidate synthesis
#
# Candidate builds are independent, so a sweep can fan them out over a
# fork()ed worker pool.  Workers rendezvous through a *disk* compile
# cache: source-identical candidates synthesize once pool-wide, and a
# sweep sharing the caller's disk cache directory reuses prior runs.
# Result order is deterministic (tasks are indexed and reassembled), so
# a parallel sweep returns exactly the points a serial one does.

#: per-worker context installed by the pool initializer
_WORKER_CTX: Optional[Tuple] = None


def _init_sweep_worker(fused, board, constants, cache_dir) -> None:
    global _WORKER_CTX
    _WORKER_CTX = (fused, board, constants, cache_dir)


def _open_worker_cache(cache_dir: Optional[str]) -> Optional[CompileCache]:
    """A worker-local cache layered over the shared on-disk rendezvous."""
    if cache_dir is None:
        return None
    return CompileCache(
        backends=[MemoryBackend(32), DiskBackend(cache_dir)]
    )


def _sweep_task(task):
    """Evaluate one indexed candidate in a pool worker."""
    idx, group, tiling, base_config, autofix = task
    fused, board, constants, cache_dir = _WORKER_CTX
    cache = _open_worker_cache(cache_dir)
    eff_base, fixed = base_config, False
    if autofix:
        eff_base, fixed = _autofix_candidate(
            fused, board, group, tiling, base_config, constants
        )
    point = evaluate_tiling(
        fused, board, group, tiling, base_config=eff_base,
        constants=constants, cache=cache if cache is not None else False,
    )
    point.fixed = fixed
    stats = cache.stats() if cache is not None else {"hits": 0, "misses": 0}
    return idx, point, stats["hits"], stats["misses"]


def shared_cache_dir(
    resolved: Optional[CompileCache],
) -> Tuple[Optional[str], bool]:
    """Directory pool workers rendezvous in: ``(path, ephemeral)``.

    Reuses the caller's disk backend when it has one; otherwise creates
    a sweep-scoped temporary directory (still a rendezvous *within* the
    sweep) whose entries are merged back into the caller's cache — and
    the directory deleted — when the sweep finishes.
    """
    if resolved is not None:
        for backend in resolved.backends:
            if isinstance(backend, DiskBackend):
                return str(backend.directory), False
    return tempfile.mkdtemp(prefix="repro-sweep-cache-"), True


def merge_disk_entries(
    resolved: Optional[CompileCache], directory: str
) -> None:
    """Promote a temporary rendezvous directory into the caller's cache.

    Probes backends directly (not :meth:`CompileCache.lookup`) so the
    merge stays accounting-neutral for the caller's hit/miss stats.
    """
    if resolved is None:
        return
    disk = DiskBackend(directory)
    for path in sorted(disk.directory.glob("*.pkl")):
        key = path.stem
        value = disk.get(key)
        if value is _MISS:
            continue
        for backend in resolved.backends:
            if backend.get(key) is not _MISS:
                break
        else:
            resolved.store(key, value)


def _run_pool(worker, initargs, tasks, workers: int):
    """Fork a pool, run ``worker`` over ``tasks``, return ordered results."""
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(workers, initializer=_init_sweep_worker,
                  initargs=initargs) as pool:
        return pool.map(worker, tasks)


def sweep_conv1x1(
    fused: FusedGraph,
    board: Board,
    w2vec_options: Sequence[int] = (7,),
    c2vec_options: Sequence[int] = (4, 8, 16, 32),
    c1vec_options: Sequence[int] = (4, 8, 16),
    constants: AOCConstants = DEFAULT_CONSTANTS,
    cache: CacheOption = None,
    prune: bool = False,
    base_config: Optional[FoldedConfig] = None,
    autofix: bool = False,
    workers: int = 1,
) -> SweepSummary:
    """Sweep 1x1-conv tiling space (the Table 6.6 experiment, generalized).

    Candidate factors violating divisibility over the network's 1x1
    layers are skipped before synthesis, per requirement 2.  With
    ``prune`` the dominance prover of :mod:`repro.verify.dominance`
    additionally skips candidates that are statically infeasible or
    dominated by an earlier kept point — those appear in the summary as
    pruned points (``pruned_static``) with the proof in ``fail_reason``,
    and never touch the compile pipeline.  With ``autofix`` each
    surviving candidate first runs the static recipe-level fix pass of
    :mod:`repro.flow.autofix` (one verify pass, no synthesis); rewritten
    points are marked ``fixed`` and counted as ``fixed_static``.
    Returns the evaluated points plus the compile-cache hits/misses this
    sweep incurred.

    With ``workers > 1`` surviving candidates are synthesized across a
    fork()ed process pool rendezvousing through a shared disk compile
    cache (see the module section above); point order and values match
    the serial sweep, and the hit/miss counts aggregate the workers'.
    """
    from repro.flow.deploy import default_folded_config

    resolved = resolve_cache(cache)
    point_cache: CacheOption = resolved if resolved is not None else False
    before = resolved.stats() if resolved is not None else {"hits": 0, "misses": 0}

    w2_extents, c2_extents, c1_extents = _conv1x1_extents(fused)
    tilings = [
        ConvTiling(w2vec=w2, c2vec=c2, c1vec=c1)
        for w2 in w2vec_options if divides_all(w2, w2_extents)
        for c2 in c2vec_options if divides_all(c2, c2_extents)
        for c1 in c1vec_options if divides_all(c1, c1_extents)
    ]
    base = base_config or default_folded_config(fused.graph.name, board)
    decisions = None
    if prune:
        from repro.verify.dominance import plan_conv_sweep

        decisions = plan_conv_sweep(
            fused, ("conv", 1, 1), tilings, board, constants,
            base.pin_unit_stride,
        )

    points: List[Optional[DSEPoint]] = []
    live: List[int] = []
    for i, tiling in enumerate(tilings):
        if decisions is not None and decisions[i].pruned:
            points.append(
                DSEPoint(
                    tiling, fits=False, routed=False, pruned=True,
                    fail_reason=f"pruned: {decisions[i].reason}",
                )
            )
            continue
        points.append(None)
        live.append(i)

    if workers > 1 and live:
        cache_dir, ephemeral = shared_cache_dir(resolved)
        try:
            tasks = [
                (i, ("conv", 1, 1), tilings[i], base, autofix) for i in live
            ]
            results = _run_pool(
                _sweep_task, (fused, board, constants, cache_dir),
                tasks, workers,
            )
            hits = misses = 0
            for idx, point, h, m in results:
                points[idx] = point
                hits += h
                misses += m
        finally:
            if ephemeral:
                merge_disk_entries(resolved, cache_dir)
                shutil.rmtree(cache_dir, ignore_errors=True)
        return SweepSummary(
            points=points, cache_hits=hits, cache_misses=misses
        )

    for i in live:
        tiling = tilings[i]
        eff_base, fixed = base, False
        if autofix:
            eff_base, fixed = _autofix_candidate(
                fused, board, ("conv", 1, 1), tiling, base, constants
            )
        point = evaluate_tiling(
            fused, board, ("conv", 1, 1), tiling,
            base_config=eff_base, constants=constants, cache=point_cache,
        )
        point.fixed = fixed
        points[i] = point

    after = resolved.stats() if resolved is not None else before
    return SweepSummary(
        points=points,
        cache_hits=after["hits"] - before["hits"],
        cache_misses=after["misses"] - before["misses"],
    )


def explore_conv1x1(
    fused: FusedGraph,
    board: Board,
    w2vec_options: Sequence[int] = (7,),
    c2vec_options: Sequence[int] = (4, 8, 16, 32),
    c1vec_options: Sequence[int] = (4, 8, 16),
    constants: AOCConstants = DEFAULT_CONSTANTS,
    prune: bool = False,
) -> List[DSEPoint]:
    """Points-only view of :func:`sweep_conv1x1` (original API)."""
    return sweep_conv1x1(
        fused, board, w2vec_options, c2vec_options, c1vec_options, constants,
        prune=prune,
    ).points


def choose_tiling(points: Sequence[DSEPoint]) -> DSEPoint:
    """Best feasible point by modelled FPS (requirement 3 filters)."""
    feasible = [p for p in points if p.feasible]
    if not feasible:
        raise FitError("no feasible tiling configuration in the swept space")
    return max(feasible, key=lambda p: p.fps or 0.0)


def _autofix_candidate(
    fused: FusedGraph,
    board: Board,
    group: Tuple[str, int, int],
    tiling: ConvTiling,
    base: FoldedConfig,
    constants: AOCConstants,
) -> Tuple[FoldedConfig, bool]:
    """Run the static autofix planner on one candidate configuration.

    Returns the (possibly rewritten) base config for this point plus
    whether any recipe-level fix was applied.  The planner only runs the
    schedule/lower/codegen/verify front of the pipeline — never
    synthesis — so it is safe inside a sweep loop.
    """
    from repro.flow.autofix import plan_recipe_fixes

    config = FoldedConfig(
        conv_tilings=dict(base.conv_tilings),
        dense_unroll=base.dense_unroll,
        pin_unit_stride=base.pin_unit_stride,
        recipe_deltas=dict(base.recipe_deltas),
        recipe_overrides=dict(base.recipe_overrides),
    )
    config.conv_tilings[group] = tiling
    fixed_config, changed = plan_recipe_fixes(fused, board, config, constants)
    return (fixed_config if changed else base), changed


def _conv1x1_extents(fused: FusedGraph) -> Tuple[List[int], List[int], List[int]]:
    w2, c2, c1 = [], [], []
    for fn in fused:
        if fn.op == "conv2d" and fn.anchor.attrs["field"] == 1:
            c1_, _, w_ = fn.anchor.inputs[0].out_shape
            k, _, wo = fn.anchor.out_shape
            w2.append(wo)
            c2.append(k)
            c1.append(c1_)
    return w2, c2, c1
