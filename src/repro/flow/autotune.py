"""Whole-network tiling auto-tuner (the DSE the thesis leaves to §8.1).

``autotune_folded`` performs greedy coordinate ascent over the tiling
configuration of *every* convolution group in a folded deployment: one
group at a time, it tries enlarging (or shrinking) each tiling dimension
by the divisibility-preserving candidates, keeps any change that improves
modelled FPS while still fitting and routing, and stops at a fixed point.

This is the "design space explorer [that] would benefit the performance
of [the] work by maximizing overall network performance ... rather than
the performance of individual layers" (thesis Section 4.11).
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aoc.constants import AOCConstants, DEFAULT_CONSTANTS
from repro.device.boards import Board
from repro.errors import AOCError, FitError
from repro.flow.dse import (
    _open_worker_cache,
    _run_pool,
    divides_all,
    merge_disk_entries,
    shared_cache_dir,
)
from repro.flow.folded import FoldedConfig
from repro.flow.stages import CacheOption, folded_flow, resolve_cache
from repro.pipeline.cache import CompileCache
from repro.relay.passes import FusedGraph
from repro.runtime.simulate import simulate_folded
from repro.topi import ConvTiling

GroupId = Tuple[str, int, int]


@dataclass
class TuneResult:
    """Outcome of one auto-tuning run."""

    config: FoldedConfig
    fps: float
    evaluations: int
    history: List[Tuple[GroupId, ConvTiling, float]] = field(default_factory=list)
    #: compile-cache accounting over the whole run
    cache_hits: int = 0
    cache_misses: int = 0
    #: candidate configurations the compiler rejected (any AOCError)
    failed_points: int = 0
    #: (group, tiling, reason) per rejected candidate
    failures: List[Tuple[GroupId, ConvTiling, str]] = field(default_factory=list)
    #: candidates skipped before synthesis by a dominance/infeasibility proof
    pruned_static: int = 0
    #: (group, tiling, reason) per statically pruned candidate
    pruned: List[Tuple[GroupId, ConvTiling, str]] = field(default_factory=list)
    #: kernel name -> recipe fingerprint under the winning configuration,
    #: i.e. the (tiling, recipe) identity each tuned point resolves to
    recipes: Dict[str, str] = field(default_factory=dict)
    #: equivalence-certifier accounting of the winning configuration
    #: (repro.verify.equiv): the tuned schedules are accepted on static
    #: certificates, so ``cert_dynamic_runs`` is 0 when every
    #: recipe-backed kernel certified
    certified: int = 0
    cert_unknown: int = 0
    cert_uncertified: int = 0
    cert_dynamic_runs: int = 0


def _group_extents(fused: FusedGraph) -> Dict[GroupId, Dict[str, List[int]]]:
    """Per conv group, the extents each tiling dimension must divide."""
    out: Dict[GroupId, Dict[str, List[int]]] = {}
    for fn in fused:
        if fn.op == "conv2d":
            a = fn.anchor.attrs
            gid: GroupId = ("conv", a["field"], a["stride"])
            c1 = fn.anchor.inputs[0].out_shape[0]
            k, _, wo = fn.anchor.out_shape
        elif fn.op == "depthwise_conv2d":
            a = fn.anchor.attrs
            gid = ("dw", a["field"], a["stride"])
            c1 = fn.anchor.inputs[0].out_shape[0]
            k, _, wo = fn.anchor.out_shape
        else:
            continue
        entry = out.setdefault(gid, {"w2": [], "c2": [], "c1": []})
        entry["w2"].append(wo)
        entry["c2"].append(k)
        entry["c1"].append(c1)
    return out


def _candidates(extents: Sequence[int], cap: int = 32) -> List[int]:
    """Divisibility-preserving factors for one tiling dimension."""
    return [f for f in (1, 2, 4, 7, 8, 14, 16, 32) if f <= cap and divides_all(f, extents)]


def _evaluate(
    fused: FusedGraph,
    board: Board,
    config: FoldedConfig,
    constants: AOCConstants,
    cache: CacheOption = None,
) -> Tuple[Optional[float], Optional[str]]:
    """``(fps, None)`` on success, ``(None, reason)`` on any AOC failure."""
    flow = folded_flow(fused.graph.name, board, config, constants, cache=cache)
    try:
        result = flow.run(seed={"graph": fused.graph, "fused": fused})
    except AOCError as e:
        return None, f"{type(e).__name__}: {e}"
    fps = simulate_folded(result.value("bitstream"), result.value("plan")).fps
    return fps, None


def _dims_for(gid: GroupId, ext: Dict[str, List[int]]) -> Dict[str, List[int]]:
    """Tiling dimensions the ascent explores for one conv group."""
    kind, f, _ = gid
    dims = {
        "w2vec": _candidates(ext["w2"], cap=16),
        "c1vec": _candidates(ext["c1"]),
    }
    if kind == "conv" and f == 1:
        dims["c2vec"] = _candidates(ext["c2"])
    return dims


def _with_dim(current: ConvTiling, dim: str, value: int) -> ConvTiling:
    """``current`` with one tiling dimension replaced."""
    return ConvTiling(
        w2vec=value if dim == "w2vec" else current.w2vec,
        c2vec=value if dim == "c2vec" else current.c2vec,
        c1vec=value if dim == "c1vec" else current.c1vec,
        unroll_ff=current.unroll_ff,
    )


def _warm_task(config: FoldedConfig) -> bool:
    """Pool worker: build one trial config into the shared disk cache."""
    from repro.flow import dse

    fused, board, constants, cache_dir = dse._WORKER_CTX
    cache = _open_worker_cache(cache_dir)
    fps, _ = _evaluate(
        fused, board, config, constants,
        cache if cache is not None else False,
    )
    return fps is not None


def _prewarm_round(
    fused: FusedGraph,
    board: Board,
    constants: AOCConstants,
    resolved: Optional[CompileCache],
    trial_configs: List[FoldedConfig],
    workers: int,
) -> None:
    """Synthesize a round's trial configurations across a process pool.

    Results land in a disk cache shared with (or merged into) the
    caller's resolved cache, so the serial ascent that follows replays
    each trial's ``synthesize`` stage as a cache hit.  Purely a warming
    pass: the ascent's decisions never depend on it.
    """
    if not trial_configs or resolved is None:
        return
    cache_dir, ephemeral = shared_cache_dir(resolved)
    try:
        _run_pool(
            _warm_task, (fused, board, constants, cache_dir),
            trial_configs, workers,
        )
    finally:
        if ephemeral:
            merge_disk_entries(resolved, cache_dir)
            shutil.rmtree(cache_dir, ignore_errors=True)


def autotune_folded(
    fused: FusedGraph,
    board: Board,
    start: Optional[FoldedConfig] = None,
    constants: AOCConstants = DEFAULT_CONSTANTS,
    max_rounds: int = 4,
    cache: CacheOption = None,
    prune: bool = False,
    workers: int = 1,
) -> TuneResult:
    """Greedy coordinate-ascent tiling search over all conv groups.

    Every candidate build goes through the staged compile pipeline;
    revisited configurations (coordinate ascent retries them often)
    replay ``synthesize`` from the compile cache, and the returned
    :class:`TuneResult` reports the hit/miss counts.  With ``prune``,
    a trial tiling that the dominance prover shows statically infeasible
    or dominated by the group's *current* tiling (so it cannot beat the
    incumbent FPS) is skipped without building — counted and listed
    under ``pruned_static``/``pruned``.

    ``workers > 1`` parallelizes candidate *synthesis*, not the search:
    before each round, the trials that round will consider (enumerated
    against the round-entry configuration) are built across a process
    pool into a cache shared with this run, so the serial ascent mostly
    replays them as hits.  The ascent itself — and therefore the chosen
    configuration — is identical to ``workers=1``.  Pre-warming needs a
    real cache to rendezvous in, so it is skipped under ``cache=False``.
    """
    resolved = resolve_cache(cache)
    eval_cache: CacheOption = resolved if resolved is not None else False
    stats0 = resolved.stats() if resolved is not None else {"hits": 0, "misses": 0}
    config = start or FoldedConfig()
    config = FoldedConfig(
        conv_tilings=dict(config.conv_tilings),
        dense_unroll=config.dense_unroll,
        pin_unit_stride=config.pin_unit_stride,
        recipe_deltas=dict(config.recipe_deltas),
        recipe_overrides=dict(config.recipe_overrides),
    )
    extents = _group_extents(fused)
    evaluations = 0
    history: List[Tuple[GroupId, ConvTiling, float]] = []
    failures: List[Tuple[GroupId, ConvTiling, str]] = []
    pruned: List[Tuple[GroupId, ConvTiling, str]] = []
    profiles: Dict[Tuple[GroupId, ConvTiling], object] = {}

    def _profile(gid: GroupId, tiling: ConvTiling):
        """Static profile of one group tiling (memoized; None if the
        dominance model cannot build one — then nothing is pruned)."""
        from repro.errors import AOCError as _AOCError
        from repro.verify.dominance import profile_conv_tiling

        key = (gid, tiling)
        if key not in profiles:
            try:
                profiles[key] = profile_conv_tiling(
                    fused, gid, tiling, constants, config.pin_unit_stride
                )
            except _AOCError:
                profiles[key] = None
        return profiles[key]

    best, reason = _evaluate(fused, board, config, constants, eval_cache)
    evaluations += 1
    if best is None:
        raise FitError(
            f"starting configuration does not fit/route: {reason}"
        )

    def _round_trial_configs() -> List[FoldedConfig]:
        """Whole-network configs the coming round will try, enumerated
        against the round-entry tilings (exact for trials up to each
        group's first accepted move; best-effort after)."""
        trials: List[FoldedConfig] = []
        for gid, ext in extents.items():
            current = config.conv_tilings.get(gid, ConvTiling())
            for dim, options in _dims_for(gid, ext).items():
                for value in options:
                    if value == getattr(current, dim):
                        continue
                    trial = _with_dim(current, dim, value)
                    if prune and _prune_trial(
                        _profile, gid, current, trial, board
                    ) is not None:
                        continue
                    trials.append(
                        FoldedConfig(
                            conv_tilings={**config.conv_tilings, gid: trial},
                            dense_unroll=config.dense_unroll,
                            pin_unit_stride=config.pin_unit_stride,
                            recipe_deltas=dict(config.recipe_deltas),
                            recipe_overrides=dict(config.recipe_overrides),
                        )
                    )
        return trials

    for _ in range(max_rounds):
        if workers > 1:
            _prewarm_round(
                fused, board, constants, resolved,
                _round_trial_configs(), workers,
            )
        improved = False
        for gid, ext in extents.items():
            current = config.conv_tilings.get(gid, ConvTiling())
            for dim, options in _dims_for(gid, ext).items():
                for value in options:
                    if value == getattr(current, dim):
                        continue
                    trial = _with_dim(current, dim, value)
                    if prune:
                        skip = _prune_trial(
                            _profile, gid, current, trial, board
                        )
                        if skip is not None:
                            pruned.append((gid, trial, skip))
                            continue
                    config.conv_tilings[gid] = trial
                    fps, reason = _evaluate(
                        fused, board, config, constants, eval_cache
                    )
                    evaluations += 1
                    if reason is not None:
                        failures.append((gid, trial, reason))
                    if fps is not None and fps > best * 1.001:
                        best = fps
                        current = trial
                        history.append((gid, trial, fps))
                        improved = True
                    else:
                        config.conv_tilings[gid] = current
        if not improved:
            break

    stats1 = resolved.stats() if resolved is not None else stats0
    result = TuneResult(
        config=config, fps=best, evaluations=evaluations, history=history,
        cache_hits=stats1["hits"] - stats0["hits"],
        cache_misses=stats1["misses"] - stats0["misses"],
        failed_points=len(failures), failures=failures,
        pruned_static=len(pruned), pruned=pruned,
        recipes=_final_recipes(fused, config, board),
    )
    _certify_winner(result, fused, config, board)
    return result


def _final_recipes(
    fused: FusedGraph, config: FoldedConfig, board: Board
) -> Dict[str, str]:
    """Recipe fingerprint per kernel under the winning configuration."""
    from repro.flow.folded import schedule_folded

    folded = schedule_folded(fused, config, board)
    return {
        sk.name: sk.recipe.fingerprint()
        for sk in folded.kernels if sk.recipe is not None
    }


def _certify_winner(
    result: TuneResult, fused: FusedGraph, config: FoldedConfig, board: Board
) -> None:
    """Equivalence-certify the winning configuration's schedules.

    The ascent accepts its final (tiling, recipe) identities on static
    certificates — one purely static pass over the winning schedule,
    with an RE006-unknown kernel allowed exactly one dynamic
    cross-check.  Every candidate build's verify stage already ran the
    same certifier (cached by content fingerprint), so this records the
    winner's counts without re-proving anything.
    """
    from repro.flow.folded import plan_folded, schedule_folded
    from repro.verify import certify_build

    folded = schedule_folded(fused, config, board)
    report, _ = certify_build(
        folded, plan=plan_folded(fused, folded),
        subject=f"autotune:{fused.graph.name}:{board.name}",
        dynamic_fallback=True,
    )
    result.certified = report.counters.get("equiv_certified", 0)
    result.cert_unknown = report.counters.get("equiv_unknown", 0)
    result.cert_uncertified = report.counters.get("equiv_uncertified", 0)
    result.cert_dynamic_runs = report.counters.get("equiv_dynamic_runs", 0)


def _prune_trial(
    profile, gid: GroupId, current: ConvTiling, trial: ConvTiling,
    board: Board,
) -> Optional[str]:
    """Why a trial tiling needs no build (None when it must be built).

    A trial dominated by the group's current tiling cannot raise the
    design's FPS — everything outside the group is identical between
    the two configurations — and a statically infeasible trial cannot
    synthesize at all.
    """
    from repro.verify.dominance import dominates, infeasible_reason

    prof_trial = profile(gid, trial)
    if prof_trial is None:
        return None
    reason = infeasible_reason(prof_trial, board)
    if reason is not None:
        return f"infeasible: {reason}"
    prof_cur = profile(gid, current)
    if prof_cur is not None and dominates(prof_cur, prof_trial):
        return (
            f"dominated by current w2vec={current.w2vec} "
            f"c2vec={current.c2vec} c1vec={current.c1vec}"
        )
    return None
