"""End-to-end deployment flow: model -> kernels -> bitstream -> simulation.

The user-facing drivers ``deploy_pipelined`` / ``deploy_folded`` /
``deploy_resilient``, the thesis tiling tables, the tiling DSE and the
whole-network autotuner, and the degradation ladder.  Contract: a
deploy returns a :class:`Deployment` that can be timed (``run``,
``run_batch``), inspected (``area``, ``opencl_source``, ``trace``) and
executed functionally (``forward``, ``classify``).
"""

from repro.flow.deploy import (
    DegradationLadder,
    Deployment,
    ResilientDeployment,
    RungAttempt,
    build_rung,
    default_folded_config,
    deploy_folded,
    deploy_pipelined,
    deploy_resilient,
    MOBILENET_1X1_TILINGS,
)
from repro.flow.artifacts import FoldedSchedule, PipelinedSchedule, ScheduledKernel
from repro.flow.folded import (
    FoldedConfig,
    build_folded,
    lower_folded,
    op_label,
    plan_folded,
    schedule_folded,
)
from repro.flow.pipelined import (
    LEVELS,
    build_pipelined,
    lower_pipelined,
    plan_pipelined,
    schedule_pipelined,
)
from repro.flow.stages import MODELS, folded_flow, pipelined_flow, synthesize_key
from repro.flow.autofix import (
    AutofixResult,
    BlockedFix,
    FixStep,
    autofix_folded,
    autofix_network,
    autofix_pipelined,
    plan_recipe_fixes,
)
from repro.flow.autotune import TuneResult, autotune_folded
from repro.flow.dse import (
    DSEPoint,
    SweepSummary,
    bandwidth_roof_elems,
    choose_tiling,
    divides_all,
    evaluate_tiling,
    explore_conv1x1,
    sweep_conv1x1,
)

__all__ = [
    "AutofixResult", "BlockedFix", "DSEPoint", "DegradationLadder",
    "FixStep", "TuneResult", "autofix_folded", "autofix_network",
    "autofix_pipelined", "autotune_folded", "plan_recipe_fixes",
    "Deployment", "ResilientDeployment", "RungAttempt", "deploy_resilient",
    "FoldedConfig",
    "FoldedSchedule", "LEVELS", "MOBILENET_1X1_TILINGS", "MODELS",
    "PipelinedSchedule", "ScheduledKernel", "SweepSummary",
    "bandwidth_roof_elems", "build_folded", "build_pipelined", "build_rung",
    "choose_tiling",
    "default_folded_config", "deploy_folded", "deploy_pipelined", "divides_all",
    "evaluate_tiling", "explore_conv1x1", "folded_flow", "lower_folded",
    "lower_pipelined", "op_label", "pipelined_flow", "plan_folded",
    "plan_pipelined", "schedule_folded", "schedule_pipelined", "sweep_conv1x1",
    "synthesize_key",
]
