"""End-to-end deployment flow: model -> kernels -> bitstream -> simulation."""

from repro.flow.deploy import (
    Deployment,
    default_folded_config,
    deploy_folded,
    deploy_pipelined,
    MOBILENET_1X1_TILINGS,
)
from repro.flow.folded import FoldedConfig, build_folded, op_label
from repro.flow.pipelined import LEVELS, build_pipelined
from repro.flow.autotune import TuneResult, autotune_folded
from repro.flow.dse import (
    DSEPoint,
    bandwidth_roof_elems,
    choose_tiling,
    divides_all,
    evaluate_tiling,
    explore_conv1x1,
)

__all__ = [
    "DSEPoint", "TuneResult", "autotune_folded", "Deployment", "FoldedConfig", "LEVELS",
    "MOBILENET_1X1_TILINGS", "bandwidth_roof_elems", "build_folded",
    "build_pipelined", "choose_tiling", "default_folded_config",
    "deploy_folded", "deploy_pipelined", "divides_all", "evaluate_tiling",
    "explore_conv1x1", "op_label",
]
