"""High-level deployment API: model -> bitstream -> simulated inference.

This is the user-facing entry point of the reproduction, tying together
the whole flow of thesis Figure 3.1: graph import + fusion (relay),
schedule + lowering (topi/schedule), OpenCL emission (codegen), offline
compilation (aoc) and host-runtime simulation (runtime).  Deploys run
through the staged :mod:`repro.pipeline` flow, so every
:class:`Deployment` carries a per-stage :class:`~repro.pipeline.Trace`
and repeated synthesis hits the content-addressed compile cache.
Functional correctness is provided by the NumPy executor: a
:class:`Deployment` can actually classify images, and its numbers are
what the benchmark suite reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.aoc.compiler import Bitstream
from repro.aoc.constants import AOCConstants, DEFAULT_CONSTANTS
from repro.codegen import generate_opencl
from repro.device.boards import Board
from repro.errors import ReproError
from repro.flow.folded import FoldedConfig
from repro.flow.stages import CacheOption, MODELS, folded_flow, pipelined_flow
from repro.pipeline import Trace
from repro.relay import FusedGraph, init_params, run_fused_graph
from repro.relay.graph import Graph
from repro.runtime.simulate import (
    RunResult,
    per_op_profile,
    simulate_folded,
    simulate_pipelined,
)
from repro.topi import ConvTiling

#: backwards-compatible alias; the registry lives in :mod:`repro.flow.stages`
_MODELS = MODELS

#: thesis Table 6.7 — per-board 1x1-conv tiling for MobileNetV1
MOBILENET_1X1_TILINGS: Dict[str, ConvTiling] = {
    "S10MX": ConvTiling(w2vec=7, c2vec=32, c1vec=4),
    "S10SX": ConvTiling(w2vec=7, c2vec=16, c1vec=4),
    "A10": ConvTiling(w2vec=7, c2vec=8, c1vec=8),
}


def default_folded_config(network: str, board: Board, naive: bool = False) -> FoldedConfig:
    """Thesis Tables 6.7/6.13 tiling configurations."""
    network = network.removesuffix("_bn")
    if naive:
        return FoldedConfig(naive=True)
    if network == "mobilenet_v1":
        return FoldedConfig(
            conv_tilings={
                ("conv", 1, 1): MOBILENET_1X1_TILINGS[board.name],
                ("conv", 3, 2): ConvTiling(c1vec=3),
                ("dw", 3, 1): ConvTiling(w2vec=7),
                ("dw", 3, 2): ConvTiling(w2vec=7),
            },
            dense_unroll=32,
        )
    if network in ("resnet18", "resnet34"):
        return FoldedConfig(
            conv_tilings={
                ("conv", 7, 2): ConvTiling(),
                ("conv", 3, 1): ConvTiling(w2vec=7, c1vec=8),
                ("conv", 3, 2): ConvTiling(w2vec=7, c1vec=8),
                ("conv", 1, 1): ConvTiling(c1vec=8),
                ("conv", 1, 2): ConvTiling(c1vec=8),
            },
            dense_unroll=32,
        )
    if network == "alexnet":
        # extension: the Section 6.6 comparison network deployed directly
        return FoldedConfig(
            conv_tilings={
                ("conv", 11, 4): ConvTiling(),
                ("conv", 5, 1): ConvTiling(c1vec=8),
                ("conv", 3, 1): ConvTiling(w2vec=13, c1vec=4),
            },
            dense_unroll=32,
        )
    if network == "resnet50":
        # extension: bottleneck blocks are pointwise-dominated, so the
        # 1x1 kernels get MobileNet-style multi-dimensional tiling
        return FoldedConfig(
            conv_tilings={
                ("conv", 7, 2): ConvTiling(),
                ("conv", 3, 1): ConvTiling(w2vec=7, c1vec=8),
                ("conv", 3, 2): ConvTiling(w2vec=7, c1vec=8),
                ("conv", 1, 1): ConvTiling(w2vec=7, c2vec=8, c1vec=4),
                ("conv", 1, 2): ConvTiling(c1vec=8),
            },
            dense_unroll=32,
        )
    raise ReproError(f"no default folded config for {network!r}")


@dataclass
class Deployment:
    """A compiled, deployable network on one board."""

    network: str
    board: Board
    graph: Graph
    fused: FusedGraph
    bitstream: Bitstream
    plan: object  # PipelinePlan or FoldedPlan
    mode: str  # 'pipelined' or 'folded'
    level: Optional[str] = None
    _params: Optional[Dict[str, np.ndarray]] = None
    #: per-stage execution trace of the compile pipeline that built this
    trace: Optional[Trace] = None

    # -- timing -----------------------------------------------------------
    def run(self, concurrent: bool = True) -> RunResult:
        """Simulated steady-state inference timing."""
        if self.mode == "pipelined":
            return simulate_pipelined(self.bitstream, self.plan, concurrent)
        return simulate_folded(self.bitstream, self.plan)

    def fps(self, concurrent: bool = True) -> float:
        return self.run(concurrent).fps

    def gflops(self, concurrent: bool = True) -> float:
        """End-to-end achieved GFLOPS (network FLOPs / frame time)."""
        return self.run(concurrent).gflops(self.graph.total_flops())

    def per_op(self) -> Dict[str, Dict[str, float]]:
        """Per-operation GFLOPS/time shares (folded deployments only)."""
        if self.mode != "folded":
            raise ReproError("per-op profiling applies to folded deployments")
        return per_op_profile(self.bitstream, self.plan)

    # -- functional -------------------------------------------------------
    @property
    def params(self) -> Dict[str, np.ndarray]:
        if self._params is None:
            self._params = init_params(self.graph, seed=0)
        return self._params

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Functional inference (NumPy executor over the fused graph)."""
        return run_fused_graph(self.fused, x, self.params)

    def classify(self, x: np.ndarray) -> int:
        """Class index for one input image."""
        return int(np.argmax(self.forward(x)))

    # -- artifacts ---------------------------------------------------------
    def opencl_source(self) -> str:
        """The generated .cl file for this deployment."""
        return generate_opencl(self.bitstream.program)

    def area(self) -> Dict[str, float]:
        return self.bitstream.utilization()

    def __repr__(self) -> str:
        tag = self.level or self.mode
        return f"Deployment({self.network}/{tag} on {self.board.name})"


def deploy_pipelined(
    network: str,
    board: Board,
    level: str = "tvm_autorun",
    constants: AOCConstants = DEFAULT_CONSTANTS,
    cache: CacheOption = None,
) -> Deployment:
    """Build + synthesize a pipelined deployment (LeNet-class networks).

    ``cache`` selects the compile cache for the ``synthesize`` stage:
    ``None`` (default) uses the process-wide cache, ``False`` disables
    caching, or pass an explicit :class:`~repro.pipeline.CompileCache`.
    """
    flow = pipelined_flow(network, board, level, constants, cache=cache)
    result = flow.run()
    return Deployment(
        network=network, board=board,
        graph=result.value("graph"), fused=result.value("fused"),
        bitstream=result.value("bitstream"), plan=result.value("plan"),
        mode="pipelined", level=level, trace=result.trace,
    )


def deploy_folded(
    network: str,
    board: Board,
    naive: bool = False,
    config: Optional[FoldedConfig] = None,
    constants: AOCConstants = DEFAULT_CONSTANTS,
    cache: CacheOption = None,
) -> Deployment:
    """Build + synthesize a folded deployment (MobileNet/ResNet-class).

    Raises :class:`~repro.errors.FitError` when the design does not fit
    the board — e.g. every naive MobileNet/ResNet build on the Arria 10.
    The error carries ``.stage``/``.diagnostic`` locating the failure in
    the compile pipeline.
    """
    if config is None:
        config = default_folded_config(network, board, naive=naive)
    flow = folded_flow(network, board, config, constants, cache=cache)
    result = flow.run()
    return Deployment(
        network=network, board=board,
        graph=result.value("graph"), fused=result.value("fused"),
        bitstream=result.value("bitstream"), plan=result.value("plan"),
        mode="folded", level="naive" if config.naive else "folded",
        trace=result.trace,
    )
