"""High-level deployment API: model -> bitstream -> simulated inference.

This is the user-facing entry point of the reproduction, tying together
the whole flow of thesis Figure 3.1: graph import + fusion (relay),
schedule + lowering (topi/schedule), OpenCL emission (codegen), offline
compilation (aoc) and host-runtime simulation (runtime).  Deploys run
through the staged :mod:`repro.pipeline` flow, so every
:class:`Deployment` carries a per-stage :class:`~repro.pipeline.Trace`
and repeated synthesis hits the content-addressed compile cache.
Functional correctness is provided by the NumPy executor: a
:class:`Deployment` can actually classify images, and its numbers are
what the benchmark suite reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.aoc.compiler import Bitstream
from repro.aoc.constants import AOCConstants, DEFAULT_CONSTANTS
from repro.codegen import generate_opencl
from repro.device.boards import Board
from repro.errors import ReproError, RuntimeSimError
from repro.flow.folded import FoldedConfig
from repro.flow.stages import CacheOption, MODELS, folded_flow, pipelined_flow
from repro.pipeline import Trace
from repro.relay import FusedGraph, fuse_operators, init_params, run_fused_graph
from repro.relay.graph import Graph
from repro.resilience.config import ResilienceConfig, current_config
from repro.resilience.events import log as _resilience_log
from repro.resilience.events import record as _record
from repro.resilience.faults import active_plan as _active_plan
from repro.resilience.faults import probe as _probe
from repro.resilience.retry import VirtualClock, retry
from repro.resilience.watchdog import Watchdog
from repro.runtime.opencl import run_pipelined_event
from repro.runtime.simulate import (
    RunResult,
    per_op_profile,
    simulate_batched,
    simulate_folded,
    simulate_pipelined,
)
from repro.topi import ConvTiling

#: backwards-compatible alias; the registry lives in :mod:`repro.flow.stages`
_MODELS = MODELS

#: thesis Table 6.7 — per-board 1x1-conv tiling for MobileNetV1
MOBILENET_1X1_TILINGS: Dict[str, ConvTiling] = {
    "S10MX": ConvTiling(w2vec=7, c2vec=32, c1vec=4),
    "S10SX": ConvTiling(w2vec=7, c2vec=16, c1vec=4),
    "A10": ConvTiling(w2vec=7, c2vec=8, c1vec=8),
}


def default_folded_config(network: str, board: Board, naive: bool = False) -> FoldedConfig:
    """Thesis Tables 6.7/6.13 tiling configurations."""
    network = network.removesuffix("_bn")
    if naive:
        return FoldedConfig(naive=True)
    if network == "mobilenet_v1":
        return FoldedConfig(
            conv_tilings={
                ("conv", 1, 1): MOBILENET_1X1_TILINGS[board.name],
                ("conv", 3, 2): ConvTiling(c1vec=3),
                ("dw", 3, 1): ConvTiling(w2vec=7),
                ("dw", 3, 2): ConvTiling(w2vec=7),
            },
            dense_unroll=32,
        )
    if network in ("resnet18", "resnet34"):
        return FoldedConfig(
            conv_tilings={
                ("conv", 7, 2): ConvTiling(),
                ("conv", 3, 1): ConvTiling(w2vec=7, c1vec=8),
                ("conv", 3, 2): ConvTiling(w2vec=7, c1vec=8),
                ("conv", 1, 1): ConvTiling(c1vec=8),
                ("conv", 1, 2): ConvTiling(c1vec=8),
            },
            dense_unroll=32,
        )
    if network == "alexnet":
        # extension: the Section 6.6 comparison network deployed directly
        return FoldedConfig(
            conv_tilings={
                ("conv", 11, 4): ConvTiling(),
                ("conv", 5, 1): ConvTiling(c1vec=8),
                ("conv", 3, 1): ConvTiling(w2vec=13, c1vec=4),
            },
            dense_unroll=32,
        )
    if network == "resnet50":
        # extension: bottleneck blocks are pointwise-dominated, so the
        # 1x1 kernels get MobileNet-style multi-dimensional tiling
        return FoldedConfig(
            conv_tilings={
                ("conv", 7, 2): ConvTiling(),
                ("conv", 3, 1): ConvTiling(w2vec=7, c1vec=8),
                ("conv", 3, 2): ConvTiling(w2vec=7, c1vec=8),
                ("conv", 1, 1): ConvTiling(w2vec=7, c2vec=8, c1vec=4),
                ("conv", 1, 2): ConvTiling(c1vec=8),
            },
            dense_unroll=32,
        )
    raise ReproError(f"no default folded config for {network!r}")


@dataclass
class Deployment:
    """A compiled, deployable network on one board."""

    network: str
    board: Board
    graph: Graph
    fused: FusedGraph
    bitstream: Bitstream
    plan: object  # PipelinePlan or FoldedPlan
    mode: str  # 'pipelined' or 'folded'
    level: Optional[str] = None
    _params: Optional[Dict[str, np.ndarray]] = None
    #: per-stage execution trace of the compile pipeline that built this
    trace: Optional[Trace] = None

    # -- timing -----------------------------------------------------------
    def run(self, concurrent: bool = True) -> RunResult:
        """Simulated steady-state inference timing."""
        if self.mode == "pipelined":
            return simulate_pipelined(self.bitstream, self.plan, concurrent)
        return simulate_folded(self.bitstream, self.plan)

    def run_batch(self, batch: int, concurrent: bool = True) -> RunResult:
        """Simulated timing of ``batch`` images dispatched as one unit.

        Transfers coalesce and host dispatch amortizes across the batch
        (see :func:`repro.runtime.simulate.simulate_batched`); this is
        the service-time model :mod:`repro.serve` replicas charge per
        dispatched batch.
        """
        return simulate_batched(self.bitstream, self.plan, batch, concurrent)

    def fps(self, concurrent: bool = True) -> float:
        return self.run(concurrent).fps

    def gflops(self, concurrent: bool = True) -> float:
        """End-to-end achieved GFLOPS (network FLOPs / frame time)."""
        return self.run(concurrent).gflops(self.graph.total_flops())

    def per_op(self) -> Dict[str, Dict[str, float]]:
        """Per-operation GFLOPS/time shares (folded deployments only)."""
        if self.mode != "folded":
            raise ReproError("per-op profiling applies to folded deployments")
        return per_op_profile(self.bitstream, self.plan)

    # -- functional -------------------------------------------------------
    @property
    def params(self) -> Dict[str, np.ndarray]:
        if self._params is None:
            self._params = init_params(self.graph, seed=0)
        return self._params

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Functional inference (NumPy executor over the fused graph).

        Probes the ``buffer`` fault site: an active ``bitflip`` fault
        corrupts one element of the output buffer, modelling a device-
        memory upset that only a logits cross-check can catch.
        """
        y = run_fused_graph(self.fused, x, self.params)
        return _corrupt_buffer(y, self.network)

    def forward_functional(
        self, x: np.ndarray, events: Optional[list] = None
    ) -> np.ndarray:
        """Functional inference through the *generated kernels* themselves.

        Runs the compiled program under the vectorized IR interpreter
        (:mod:`repro.ir.vinterp`) — channel FIFOs, symbolic bindings and
        all — instead of the fused-graph NumPy executor.  Probes the same
        ``buffer`` fault site as :meth:`forward` so the serving layer's
        logits cross-checks behave identically on either path.  When
        ``events`` is a list, it receives the interpreter's
        ``(kernel_name, BandEvent)`` pairs so callers can audit which
        loop bands vectorized and which fell back to the scalar path
        (``repro.report --trace`` tallies them on its execute row).
        """
        from repro.runtime.executor import (
            run_folded_functional,
            run_pipelined_functional,
        )

        if self.mode == "pipelined":
            y = run_pipelined_functional(
                self.bitstream.program, self.plan, self.fused, x,
                self.params, events=events,
            )
        else:
            y = run_folded_functional(
                self.bitstream.program, self.plan, self.fused, x,
                self.params, events=events,
            )
        out_shape = self.fused.graph.output.out_shape
        return _corrupt_buffer(y.reshape(out_shape), self.network)

    def classify(self, x: np.ndarray) -> int:
        """Class index for one input image."""
        return int(np.argmax(self.forward(x)))

    # -- artifacts ---------------------------------------------------------
    def opencl_source(self) -> str:
        """The generated .cl file for this deployment."""
        return generate_opencl(self.bitstream.program)

    def area(self) -> Dict[str, float]:
        return self.bitstream.utilization()

    def __repr__(self) -> str:
        tag = self.level or self.mode
        return f"Deployment({self.network}/{tag} on {self.board.name})"


def deploy_pipelined(
    network: str,
    board: Board,
    level: str = "tvm_autorun",
    constants: AOCConstants = DEFAULT_CONSTANTS,
    cache: CacheOption = None,
) -> Deployment:
    """Build + synthesize a pipelined deployment (LeNet-class networks).

    ``cache`` selects the compile cache for the ``synthesize`` stage:
    ``None`` (default) uses the process-wide cache, ``False`` disables
    caching, or pass an explicit :class:`~repro.pipeline.CompileCache`.
    """
    flow = pipelined_flow(network, board, level, constants, cache=cache)
    result = flow.run()
    return Deployment(
        network=network, board=board,
        graph=result.value("graph"), fused=result.value("fused"),
        bitstream=result.value("bitstream"), plan=result.value("plan"),
        mode="pipelined", level=level, trace=result.trace,
    )


def deploy_folded(
    network: str,
    board: Board,
    naive: bool = False,
    config: Optional[FoldedConfig] = None,
    constants: AOCConstants = DEFAULT_CONSTANTS,
    cache: CacheOption = None,
) -> Deployment:
    """Build + synthesize a folded deployment (MobileNet/ResNet-class).

    Raises :class:`~repro.errors.FitError` when the design does not fit
    the board — e.g. every naive MobileNet/ResNet build on the Arria 10.
    The error carries ``.stage``/``.diagnostic`` locating the failure in
    the compile pipeline.
    """
    if config is None:
        config = default_folded_config(network, board, naive=naive)
    flow = folded_flow(network, board, config, constants, cache=cache)
    result = flow.run()
    return Deployment(
        network=network, board=board,
        graph=result.value("graph"), fused=result.value("fused"),
        bitstream=result.value("bitstream"), plan=result.value("plan"),
        mode="folded", level="naive" if config.naive else "folded",
        trace=result.trace,
    )


def build_rung(
    network: str,
    board: Board,
    mode: str,
    constants: AOCConstants = DEFAULT_CONSTANTS,
    cache: CacheOption = None,
    level: str = "tvm_autorun",
) -> Deployment:
    """Build one deployment on the named device rung.

    The single-rung builder behind replica provisioning *and* replica
    refill (:mod:`repro.serve.replica`): ``mode`` is ``'pipelined'`` or
    ``'folded'``, and both routes share the compile cache passed in, so
    a refilled replica reuses the pool's synthesized bitstream when its
    build is unchanged.
    """
    if mode == "pipelined":
        return deploy_pipelined(
            network, board, level=level, constants=constants, cache=cache
        )
    if mode == "folded":
        try:
            config = default_folded_config(network, board)
        except ReproError:
            # no thesis tiling table (LeNet-class networks): the generic
            # folded config still builds them
            config = FoldedConfig()
        return deploy_folded(
            network, board, config=config, constants=constants, cache=cache
        )
    raise ReproError(
        f"unknown device rung {mode!r}; choose 'pipelined' or 'folded'"
    )


# ---------------------------------------------------------------------------
# graceful degradation: the resilient deployment ladder


def _corrupt_buffer(y: np.ndarray, label: str) -> np.ndarray:
    """Apply an active ``bitflip`` buffer fault to an output array."""
    fault = _probe("buffer", label)
    if fault is None or fault.kind != "bitflip":
        return y
    plan = _active_plan()
    flat = np.ascontiguousarray(y, dtype=np.float32).reshape(-1).copy()
    idx = plan.rng("bitflip", fault.fired).randrange(flat.size) if plan else 0
    bit = int(fault.param or 30)
    bits = flat.view(np.uint32)
    bits[idx] ^= np.uint32(1 << bit)
    _record(
        "corruption", "buffer",
        f"{label}: bit {bit} of output element {idx} flipped "
        f"(device-memory upset)",
        element=idx, bit=bit,
    )
    return flat.reshape(y.shape)


@dataclass
class RungAttempt:
    """Outcome of one ladder rung."""

    rung: str
    ok: bool
    reason: str = ""


@dataclass
class ResilientDeployment:
    """What the degradation ladder actually delivered."""

    network: str
    board: Board
    #: the rung that served: 'pipelined-concurrent' | 'pipelined-serial'
    #: | 'folded' | 'cpu'
    rung: str
    #: classification output, verified against the functional reference
    logits: np.ndarray
    #: the served deployment (None when the CPU rung served)
    deployment: Optional[Deployment] = None
    #: timing of the serving rung ({'fps', 'time_per_image_us', ...});
    #: empty for the CPU rung, which makes no throughput claim
    timing: Dict[str, float] = field(default_factory=dict)
    #: every rung tried, in order, with failure reasons
    attempts: List[RungAttempt] = field(default_factory=list)
    #: resilience events covering the whole ladder run, as plain dicts
    events: List[Dict[str, object]] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return any(not a.ok for a in self.attempts)

    @property
    def fps(self) -> float:
        return float(self.timing.get("fps", 0.0))

    def classify(self) -> int:
        return int(np.argmax(self.logits))

    def __repr__(self) -> str:
        tag = " degraded" if self.degraded else ""
        return (
            f"ResilientDeployment({self.network} on {self.board.name} "
            f"via {self.rung}{tag})"
        )


class DegradationLadder:
    """Concurrent pipelined -> serial pipelined -> folded -> CPU.

    Each rung builds (memoized) and runs a deployment under the current
    :class:`~repro.resilience.ResilienceConfig`: runs are retried with
    backoff on transient runtime failures, bounded by a watchdog, and
    the rung's logits are cross-checked against the CPU functional
    reference before it is allowed to serve.  A rung that cannot build
    (e.g. a folded-only network has no pipelined schedule), keeps
    failing, or produces wrong logits falls through to the next; the CPU
    reference executor is the final rung and always serves.
    """

    RUNGS = ("pipelined-concurrent", "pipelined-serial", "folded", "cpu")

    def __init__(
        self,
        network: str,
        board: Board,
        constants: AOCConstants = DEFAULT_CONSTANTS,
        cache: CacheOption = None,
        config: Optional[ResilienceConfig] = None,
        level: str = "tvm_autorun",
    ) -> None:
        self.network = network
        self.board = board
        self.constants = constants
        self.cache = cache
        self.config = config
        self.level = level
        self._built: Dict[str, Deployment] = {}
        self._build_errors: Dict[str, ReproError] = {}

    # -- builds (memoized, including failures) --------------------------
    def _build(self, mode: str) -> Deployment:
        if mode in self._built:
            return self._built[mode]
        if mode in self._build_errors:
            raise self._build_errors[mode]
        try:
            dep = build_rung(
                self.network, self.board, mode, constants=self.constants,
                cache=self.cache, level=self.level,
            )
        except ReproError as err:
            self._build_errors[mode] = err
            raise
        self._built[mode] = dep
        return dep

    # -- one rung --------------------------------------------------------
    def _try_rung(
        self,
        rung: str,
        x: np.ndarray,
        reference: np.ndarray,
        cfg: ResilienceConfig,
    ) -> "ResilientDeployment":
        plan = _active_plan()
        seed = plan.seed if plan else 0
        clock = VirtualClock()
        watchdog = Watchdog(cfg.watchdog_budget_us)
        if rung == "pipelined-concurrent":
            dep = self._build("pipelined")
            timing = retry(
                lambda: run_pipelined_event(
                    dep.bitstream, dep.plan, retry_policy=cfg.retry,
                    watchdog=watchdog,
                ),
                cfg.retry, retry_on=(RuntimeSimError,), clock=clock,
                seed=seed, site="ladder", label=rung,
            )
            timing = {
                "fps": timing["fps"],
                "time_per_image_us": timing["time_per_image_us"],
            }
        elif rung == "pipelined-serial":
            dep = self._build("pipelined")
            result = retry(
                lambda: simulate_pipelined(dep.bitstream, dep.plan, False),
                cfg.retry, retry_on=(RuntimeSimError,), clock=clock,
                seed=seed, site="ladder", label=rung,
            )
            timing = {
                "fps": result.fps,
                "time_per_image_us": result.time_per_image_us,
            }
        else:  # folded
            dep = self._build("folded")
            result = retry(
                lambda: simulate_folded(dep.bitstream, dep.plan),
                cfg.retry, retry_on=(RuntimeSimError,), clock=clock,
                seed=seed, site="ladder", label=rung,
            )
            timing = {
                "fps": result.fps,
                "time_per_image_us": result.time_per_image_us,
            }
        logits = dep.forward(x)
        if not np.allclose(logits, reference, atol=cfg.crosscheck_atol):
            worst = float(np.max(np.abs(logits - reference)))
            _record(
                "crosscheck", "ladder",
                f"{rung}: logits diverge from the functional reference "
                f"(max abs error {worst:.3g} > atol {cfg.crosscheck_atol:g})",
                max_abs_error=worst,
            )
            raise RuntimeSimError(
                f"{rung} deployment of {self.network} produced logits "
                f"diverging from the functional reference "
                f"(max abs error {worst:.3g})"
            )
        return ResilientDeployment(
            network=self.network, board=self.board, rung=rung,
            logits=logits, deployment=dep, timing=timing,
        )

    # -- the ladder ------------------------------------------------------
    def run(self, x: Optional[np.ndarray] = None) -> ResilientDeployment:
        """Deploy and serve one inference, degrading as needed."""
        cfg = self.config or current_config()
        cursor = _resilience_log().cursor()
        graph = MODELS[self.network]()
        fused = fuse_operators(graph)
        params = init_params(graph, seed=0)
        if x is None:
            rng = np.random.default_rng(0)
            x = rng.standard_normal(graph.input.out_shape).astype(np.float32)
        # ground truth, computed outside any fault probe
        reference = run_fused_graph(fused, x, params)

        attempts: List[RungAttempt] = []
        for rung in self.RUNGS:
            if rung == "cpu":
                _record(
                    "served", "ladder",
                    f"{self.network}: CPU functional executor serving "
                    f"(all device rungs exhausted)",
                )
                attempts.append(RungAttempt(rung, ok=True))
                served = ResilientDeployment(
                    network=self.network, board=self.board, rung=rung,
                    logits=reference,
                )
                break
            try:
                served = self._try_rung(rung, x, reference, cfg)
            except ReproError as err:
                reason = f"{type(err).__name__}: {err}"
                attempts.append(RungAttempt(rung, ok=False, reason=reason))
                _record(
                    "fallback", "ladder",
                    f"{self.network}: rung {rung} failed ({reason}); "
                    f"degrading to the next rung",
                )
                continue
            attempts.append(RungAttempt(rung, ok=True))
            _record(
                "served", "ladder",
                f"{self.network}: rung {rung} serving at "
                f"{served.timing.get('fps', 0.0):.1f} fps",
            )
            break
        served.attempts = attempts
        served.events = [e.to_dict() for e in _resilience_log().since(cursor)]
        return served


def deploy_resilient(
    network: str,
    board: Board,
    x: Optional[np.ndarray] = None,
    constants: AOCConstants = DEFAULT_CONSTANTS,
    cache: CacheOption = None,
    config: Optional[ResilienceConfig] = None,
) -> ResilientDeployment:
    """Deploy ``network`` with the full degradation ladder.

    Tries concurrent pipelined execution first, then a single command
    queue, then a folded deployment, and finally the CPU functional
    executor — cross-checking logits at every device rung — so a
    deployment is always returned, with the recovery story in
    ``.attempts`` and ``.events``.
    """
    ladder = DegradationLadder(
        network, board, constants=constants, cache=cache, config=config
    )
    return ladder.run(x)
