"""Stage definitions wiring the deployment flow into :mod:`repro.pipeline`.

The thesis' Figure 3.1 flow becomes seven named stages —
``import -> fuse -> schedule -> lower -> codegen -> synthesize -> plan``
— each producing one typed artifact:

========== ============ ==========================================
stage      artifact     type
========== ============ ==========================================
import     graph        :class:`repro.relay.graph.Graph`
fuse       fused        :class:`repro.relay.passes.FusedGraph`
schedule   schedule     ``PipelinedSchedule`` / ``FoldedSchedule``
lower      program      :class:`repro.ir.Program`
codegen    source       ``str`` (the generated ``.cl`` file)
synthesize bitstream    :class:`repro.aoc.compiler.Bitstream`
plan       plan         ``PipelinePlan`` / ``FoldedPlan``
========== ============ ==========================================

The ``synthesize`` stage — by far the most expensive in a real flow —
is content-addressed: its cache key hashes the generated OpenCL source,
the program's channel depths, the board and the AOC cost-model
constants, so any change to graph, schedule, tiling, board or constants
misses while a repeated deploy hits.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from repro.aoc.constants import AOCConstants, DEFAULT_CONSTANTS
from repro.codegen import generate_opencl
from repro.device.boards import Board
from repro.flow.folded import (
    FoldedConfig,
    lower_folded,
    plan_folded,
    schedule_folded,
)
from repro.flow.pipelined import lower_pipelined, plan_pipelined, schedule_pipelined
from repro.models import (
    alexnet,
    lenet5,
    mobilenet_v1,
    resnet,
    resnet18,
    resnet34,
    resnet50,
)
from repro.pipeline import CompileCache, Context, Pipeline, Stage, default_cache
from repro.pipeline.fingerprint import fingerprint
from repro.relay import fuse_operators
from repro.resilience.synth import synthesize_resilient

#: name -> graph constructor, the networks the flow knows how to import
MODELS: Dict[str, Callable] = {
    "lenet5": lenet5,
    "mobilenet_v1": mobilenet_v1,
    "resnet18": resnet18,
    "resnet34": resnet34,
    # published conv-BN-activation variants (bias-free convolutions)
    "mobilenet_v1_bn": lambda: mobilenet_v1(batchnorm=True),
    "resnet18_bn": lambda: resnet(18, batchnorm=True),
    "resnet34_bn": lambda: resnet(34, batchnorm=True),
    # extensions beyond the thesis: the §6.6 comparison networks
    "resnet50": resnet50,
    "alexnet": alexnet,
}

#: pass ``cache=DISABLED`` to run a flow without any compile cache
DISABLED = False

CacheOption = Union[CompileCache, None, bool]


def resolve_cache(cache: CacheOption) -> Optional[CompileCache]:
    """``None`` -> the process-wide default cache, ``DISABLED`` -> no cache."""
    if cache is None:
        return default_cache()
    if cache is False:
        return None
    return cache


def synthesize_key(board: Board, constants: AOCConstants) -> Callable[[Context], str]:
    """Content-addressed key for the ``synthesize`` stage.

    Hashes the emitted OpenCL source (which embeds every schedule and
    tiling decision, including ``__attribute__((depth(N)))`` channel
    depths), the channel list, the target board and the cost-model
    constants.  Source text is reproducible because builders reset the
    IR name uniquifier (:func:`repro.ir.reset_fresh_names`) per build.
    """

    def key(ctx: Context) -> str:
        program = ctx.value("program")
        channels = sorted((c.name, c.depth) for c in program.all_channels())
        return fingerprint(
            [
                "synthesize",
                ctx.value("source"),
                channels,
                board.name,
                constants,
            ]
        )

    return key


def _import_stage(network: str) -> Stage:
    return Stage("import", "graph", lambda ctx: MODELS[network]())


def pipelined_flow(
    network: str,
    board: Board,
    level: str = "tvm_autorun",
    constants: AOCConstants = DEFAULT_CONSTANTS,
    cache: CacheOption = None,
    channel_depth_scale: float = 1.0,
) -> Pipeline:
    """The seven-stage pipelined (LeNet-class) deployment flow."""
    return Pipeline(
        f"pipelined:{network}:{level}:{board.name}",
        [
            _import_stage(network),
            Stage("fuse", "fused", lambda ctx: fuse_operators(ctx.value("graph"))),
            Stage(
                "schedule",
                "schedule",
                lambda ctx: schedule_pipelined(
                    ctx.value("fused"), level, board, channel_depth_scale
                ),
            ),
            Stage("lower", "program",
                  lambda ctx: lower_pipelined(ctx.value("schedule"))),
            Stage("codegen", "source",
                  lambda ctx: generate_opencl(ctx.value("program"))),
            Stage(
                "synthesize",
                "bitstream",
                lambda ctx: synthesize_resilient(
                    ctx.value("program"), board, constants
                ),
                cache_key=synthesize_key(board, constants),
            ),
            Stage(
                "plan",
                "plan",
                lambda ctx: plan_pipelined(ctx.value("fused"), ctx.value("schedule")),
            ),
        ],
        cache=resolve_cache(cache),
    )


def folded_flow(
    network: str,
    board: Board,
    config: FoldedConfig,
    constants: AOCConstants = DEFAULT_CONSTANTS,
    cache: CacheOption = None,
) -> Pipeline:
    """The seven-stage folded (MobileNet/ResNet-class) deployment flow."""
    return Pipeline(
        f"folded:{network}:{board.name}",
        [
            _import_stage(network),
            Stage("fuse", "fused", lambda ctx: fuse_operators(ctx.value("graph"))),
            Stage(
                "schedule",
                "schedule",
                lambda ctx: schedule_folded(ctx.value("fused"), config, board),
            ),
            Stage("lower", "program",
                  lambda ctx: lower_folded(ctx.value("schedule"))),
            Stage("codegen", "source",
                  lambda ctx: generate_opencl(ctx.value("program"))),
            Stage(
                "synthesize",
                "bitstream",
                lambda ctx: synthesize_resilient(
                    ctx.value("program"), board, constants
                ),
                cache_key=synthesize_key(board, constants),
            ),
            Stage(
                "plan",
                "plan",
                lambda ctx: plan_folded(ctx.value("fused"), ctx.value("schedule")),
            ),
        ],
        cache=resolve_cache(cache),
    )
