"""Stage definitions wiring the deployment flow into :mod:`repro.pipeline`.

The thesis' Figure 3.1 flow becomes eight named stages —
``import -> fuse -> schedule -> lower -> codegen -> verify -> synthesize
-> plan`` — each producing one typed artifact:

========== ============ ==========================================
stage      artifact     type
========== ============ ==========================================
import     graph        :class:`repro.relay.graph.Graph`
fuse       fused        :class:`repro.relay.passes.FusedGraph`
schedule   schedule     ``PipelinedSchedule`` / ``FoldedSchedule``
lower      program      :class:`repro.ir.Program`
codegen    source       ``str`` (the generated ``.cl`` file)
verify     verify       :class:`repro.verify.VerifyReport`
synthesize bitstream    :class:`repro.aoc.compiler.Bitstream`
plan       plan         ``PipelinePlan`` / ``FoldedPlan``
========== ============ ==========================================

The ``verify`` stage runs the static analyzers of :mod:`repro.verify`
(bounds, unroll races, channel protocol, OpenCL lint) over the lowered
program, the emitted source and the execution plan, and fails the
deploy with :class:`~repro.errors.VerificationError` on any
error-severity finding — *before* any synthesis time is spent.

The ``synthesize`` stage — by far the most expensive in a real flow —
is content-addressed: its cache key hashes the generated OpenCL source,
the program's channel depths, the board and the AOC cost-model
constants, so any change to graph, schedule, tiling, board or constants
misses while a repeated deploy hits.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from repro.aoc.constants import AOCConstants, DEFAULT_CONSTANTS
from repro.codegen import generate_opencl
from repro.device.boards import Board
from repro.flow.folded import (
    FoldedConfig,
    lower_folded,
    plan_folded,
    schedule_folded,
)
from repro.flow.pipelined import lower_pipelined, plan_pipelined, schedule_pipelined
from repro.models import (
    alexnet,
    lenet5,
    mobilenet_v1,
    resnet,
    resnet18,
    resnet34,
    resnet50,
)
from repro.pipeline import CompileCache, Context, Pipeline, Stage, default_cache
from repro.pipeline.fingerprint import fingerprint
from repro.relay import fuse_operators
from repro.resilience.synth import synthesize_resilient
from repro.verify import assert_clean, verify_build

#: name -> graph constructor, the networks the flow knows how to import
MODELS: Dict[str, Callable] = {
    "lenet5": lenet5,
    "mobilenet_v1": mobilenet_v1,
    "resnet18": resnet18,
    "resnet34": resnet34,
    # published conv-BN-activation variants (bias-free convolutions)
    "mobilenet_v1_bn": lambda: mobilenet_v1(batchnorm=True),
    "resnet18_bn": lambda: resnet(18, batchnorm=True),
    "resnet34_bn": lambda: resnet(34, batchnorm=True),
    # extensions beyond the thesis: the §6.6 comparison networks
    "resnet50": resnet50,
    "alexnet": alexnet,
}

#: pass ``cache=DISABLED`` to run a flow without any compile cache
DISABLED = False

CacheOption = Union[CompileCache, None, bool]


def resolve_cache(cache: CacheOption) -> Optional[CompileCache]:
    """``None`` -> the process-wide default cache, ``DISABLED`` -> no cache."""
    if cache is None:
        return default_cache()
    if cache is False:
        return None
    return cache


def synthesize_key(board: Board, constants: AOCConstants) -> Callable[[Context], str]:
    """Content-addressed key for the ``synthesize`` stage.

    Hashes the emitted OpenCL source (which embeds every schedule and
    tiling decision, including ``__attribute__((depth(N)))`` channel
    depths), the schedule artifact (whose kernels canonicalize to their
    recipe fingerprints, so a DSE/autotune point is cached as its
    (tiling, recipe) identity), the channel list, the target board and
    the cost-model constants.  Source text is reproducible because
    builders reset the IR name uniquifier
    (:func:`repro.ir.reset_fresh_names`) per build.
    """

    def key(ctx: Context) -> str:
        program = ctx.value("program")
        channels = sorted((c.name, c.depth) for c in program.all_channels())
        return fingerprint(
            [
                "synthesize",
                ctx.value("source"),
                ctx.value("schedule"),
                channels,
                board.name,
                constants,
            ]
        )

    return key


def _import_stage(network: str) -> Stage:
    return Stage("import", "graph", lambda ctx: MODELS[network]())


def _verify_stage(
    planner: Callable[[Context], object],
    board: Optional[Board] = None,
    constants: AOCConstants = DEFAULT_CONSTANTS,
) -> Stage:
    """The static-verification gate between ``codegen`` and ``synthesize``.

    ``planner`` builds the execution plan from the fused graph and the
    schedule (the same pure computation the later ``plan`` stage runs):
    the verifier needs it for channel/plan cross-checks and for the
    binding sets of folded kernels.  A report with any error-severity
    diagnostic raises :class:`~repro.errors.VerificationError`, so no
    synthesis time is ever spent on a provably broken build.  With a
    ``board`` the performance advisor (RP rules) runs too; its
    advice-severity findings never fail the stage but land in the stage
    trace as notes.

    The schedule-equivalence certifier (RE rules,
    :mod:`repro.verify.equiv`) runs as part of this stage: every
    recipe-backed kernel's scheduled lowering is statically proven
    equivalent to its naive lowering, an ``RE`` error fails the build
    exactly like an RB/RR/RC finding, and the per-status certificate
    counts (``equiv_certified``/``equiv_unknown``/...) land on the
    stage's trace counters.  The stage itself never runs the
    interpreter: an unprovable kernel surfaces as an ``RE006`` warning
    and is left for the accept paths (autofix/DSE) to dynamically
    cross-check.

    The memory certifier (RM rules, :mod:`repro.verify.memory`) runs
    here too: activation liveness over the plan, arena-slot soundness
    (RM001/RM004), symbolic-size bounds (RM002) and board DDR capacity
    (RM003) all gate synthesis; the footprint counters
    (``memory_arena_bytes``/``memory_saved_bytes``/...) land on the
    stage trace.
    """

    def fn(ctx: Context):
        from repro.verify.equiv import certify_build
        from repro.verify.memory import check_memory

        plan = planner(ctx)
        report = verify_build(
            ctx.value("program"),
            source=ctx.value("source"),
            plan=plan,
            subject=ctx.pipeline,
            board=board,
            constants=constants,
        )
        if "schedule" in ctx:
            equiv_report, _ = certify_build(
                ctx.value("schedule"), plan=plan, subject=ctx.pipeline,
                dynamic_fallback=False,
            )
            report.merge(equiv_report)
        # memory certifier (RM rules): liveness, arena soundness, board
        # DDR capacity — an RM error fails the build pre-synthesis.
        # Plan-less runs (bare-program verification) have no invocation
        # sequence to analyze, so the RM gate has nothing to certify.
        if plan is not None and "fused" in ctx:
            mem_report, _, _ = check_memory(
                ctx.value("fused"), plan,
                program=ctx.value("program"), board=board,
                subject=ctx.pipeline,
            )
            report.merge(mem_report)
        return assert_clean(report)

    return Stage("verify", "verify", fn)


def pipelined_flow(
    network: str,
    board: Board,
    level: str = "tvm_autorun",
    constants: AOCConstants = DEFAULT_CONSTANTS,
    cache: CacheOption = None,
    channel_depth_scale: float = 1.0,
) -> Pipeline:
    """The eight-stage pipelined (LeNet-class) deployment flow."""
    return Pipeline(
        f"pipelined:{network}:{level}:{board.name}",
        [
            _import_stage(network),
            Stage("fuse", "fused", lambda ctx: fuse_operators(ctx.value("graph"))),
            Stage(
                "schedule",
                "schedule",
                lambda ctx: schedule_pipelined(
                    ctx.value("fused"), level, board, channel_depth_scale
                ),
            ),
            Stage("lower", "program",
                  lambda ctx: lower_pipelined(ctx.value("schedule"))),
            Stage("codegen", "source",
                  lambda ctx: generate_opencl(ctx.value("program"))),
            _verify_stage(
                lambda ctx: plan_pipelined(ctx.value("fused"), ctx.value("schedule")),
                board, constants,
            ),
            Stage(
                "synthesize",
                "bitstream",
                lambda ctx: synthesize_resilient(
                    ctx.value("program"), board, constants
                ),
                cache_key=synthesize_key(board, constants),
            ),
            Stage(
                "plan",
                "plan",
                lambda ctx: plan_pipelined(ctx.value("fused"), ctx.value("schedule")),
            ),
        ],
        cache=resolve_cache(cache),
    )


def folded_flow(
    network: str,
    board: Board,
    config: FoldedConfig,
    constants: AOCConstants = DEFAULT_CONSTANTS,
    cache: CacheOption = None,
    autofix: bool = False,
) -> Pipeline:
    """The eight-stage folded (MobileNet/ResNet-class) deployment flow.

    With ``autofix`` an extra ``autofix`` stage runs between ``fuse``
    and ``schedule``: the advise->rewrite loop of
    :mod:`repro.flow.autofix` iterates the given config to an
    advice-clean fixpoint (or a structured stuck report) *before* any
    synthesis, and the downstream stages build its fixed configuration.
    The :class:`~repro.flow.autofix.AutofixResult` lands in the stage
    trace as the ``autofix`` artifact.
    """
    stages = [
        _import_stage(network),
        Stage("fuse", "fused", lambda ctx: fuse_operators(ctx.value("graph"))),
    ]
    if autofix:
        from repro.flow.autofix import autofix_folded

        stages.append(
            Stage(
                "autofix",
                "autofix",
                lambda ctx: autofix_folded(
                    ctx.value("fused"), board, config=config,
                    constants=constants,
                ),
            )
        )

        def config_of(ctx: Context) -> FoldedConfig:
            return ctx.value("autofix").config
    else:
        def config_of(ctx: Context) -> FoldedConfig:
            return config

    stages += [
        Stage(
            "schedule",
            "schedule",
            lambda ctx: schedule_folded(ctx.value("fused"), config_of(ctx), board),
        ),
        Stage("lower", "program",
              lambda ctx: lower_folded(ctx.value("schedule"))),
        Stage("codegen", "source",
              lambda ctx: generate_opencl(ctx.value("program"))),
        _verify_stage(
            lambda ctx: plan_folded(ctx.value("fused"), ctx.value("schedule")),
            board, constants,
        ),
        Stage(
            "synthesize",
            "bitstream",
            lambda ctx: synthesize_resilient(
                ctx.value("program"), board, constants
            ),
            cache_key=synthesize_key(board, constants),
        ),
        Stage(
            "plan",
            "plan",
            lambda ctx: plan_folded(ctx.value("fused"), ctx.value("schedule")),
        ),
    ]
    return Pipeline(
        f"folded:{network}:{board.name}" + (":autofix" if autofix else ""),
        stages,
        cache=resolve_cache(cache),
    )
