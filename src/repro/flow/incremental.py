"""Sub-stage incremental recompilation: the per-kernel lower cache.

The ``lower`` stage rebuilds every scheduled kernel on each pipeline
run, even though a DSE/autotune iteration touches exactly one group's
tiling — every *other* kernel re-lowers to a byte-identical
:class:`~repro.ir.Kernel`.  This module memoizes lowering per kernel,
keyed on a content fingerprint of the scheduled kernel: its resolved
transform recipe plus the tensor-expression graph the schedule was
built from (shapes, axis extents, compute bodies, fused epilogues,
buffer scopes).  Touching one layer's schedule then re-lowers only that
kernel's IR; the rest replay from the cache.  The per-run hit/miss
counts surface as ``lower_hits``/``lower_misses`` counters on the
``lower`` stage of the compile trace.

Soundness rests on two facts.  First, a kernel's lowered form is a
deterministic function of (tensor graph, recipe, lower options):
builders reset the IR name uniquifier per schedule build
(:func:`repro.ir.reset_fresh_names`), so identical inputs produce
identical names.  Second, the fingerprint only stands in for schedule
*transform* state when that state is fully recorded as a
:class:`~repro.schedule.ScheduleRecipe` — kernels without a recipe
(the pipelined levels mutate schedules directly) and prebuilt kernels
are lowered unconditionally and counted as ``lower_uncached``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

import repro.ir as ir
from repro.ir import expr as _e
from repro.ir.printer import expr_str
from repro.ir.tensor import IterVar, Tensor
from repro.pipeline.fingerprint import fingerprint

__all__ = [
    "kernel_lower_key",
    "lower_kernels",
    "lower_cache_stats",
    "clear_lower_cache",
]

#: lowering options that do not invalidate the fingerprint scheme
#: (anything else — channels, compute_at attachments — bypasses caching)
_CACHEABLE_OPTIONS = {"autorun"}

#: process-wide memo: fingerprint -> lowered kernel (LRU, bounded)
_CACHE: "OrderedDict[str, ir.Kernel]" = OrderedDict()
_MAX_ENTRIES = 512

_STATS: Dict[str, int] = {"hits": 0, "misses": 0, "uncached": 0}


def _axis_canonical(ax: IterVar) -> List[object]:
    return [ax.name, expr_str(ax.extent_expr()), ax.kind]


def _tensor_canonical(t: Tensor) -> List[object]:
    shape = [d.name if isinstance(d, _e.Var) else int(d) for d in t.shape]
    # strides enter the lowered index expressions, and the
    # pin_unit_stride transform rewrites them in place — two schedules
    # differing only in a pin must not collide on one cache entry
    strides = (
        None
        if t.buffer.strides is None
        else [
            d.name if isinstance(d, _e.Var) else int(d)
            for d in t.buffer.strides
        ]
    )
    base: List[object] = [
        "tensor", t.name, shape, strides, t.dtype, t.buffer.scope,
    ]
    op = t.op
    if op is None:
        return base + ["placeholder"]
    body = op.body
    if isinstance(body, _e.Reduce):
        rendered = (
            f"{body.kind}({expr_str(body.value)}, "
            f"axis=[{', '.join(ax.name for ax in body.axes)}])"
        )
    else:
        rendered = expr_str(body)
    # epilogues are closures; probing them with the output index vars
    # materializes their expression so content (not identity) is hashed
    if op.epilogue is not None:
        probe = op.epilogue(
            _e.Var("__epilogue_acc"), *[ax.var for ax in op.axes]
        )
        epilogue = expr_str(probe)
    else:
        epilogue = None
    return base + [
        [_axis_canonical(ax) for ax in op.axes],
        [_axis_canonical(ax) for ax in op.reduce_axes],
        rendered,
        epilogue,
        [_tensor_canonical(i) for i in op.inputs],
    ]


def kernel_lower_key(sk) -> Optional[str]:
    """Content fingerprint of one scheduled kernel, or ``None``.

    ``None`` means the kernel must be lowered directly: prebuilt IR, a
    schedule whose transforms are not recorded as a recipe, or lowering
    options (channel wiring, stage attachment) outside the fingerprint's
    vocabulary.
    """
    if sk.prebuilt is not None or sk.recipe is None or sk.schedule is None:
        return None
    if not set(sk.lower_options) <= _CACHEABLE_OPTIONS:
        return None
    sch = sk.schedule
    try:
        tensors = [_tensor_canonical(t) for t in sch.tensors]
    except Exception:
        # a compute body or epilogue the canonicalizer cannot render is
        # never worth a wrong hit — lower it directly
        return None
    return fingerprint(
        [
            "lower-kernel",
            sk.name,
            sk.recipe.fingerprint(),
            sorted((k, bool(v)) for k, v in sk.lower_options.items()),
            tensors,
            sch.output.name,
        ]
    )


def _lower_one(sk) -> ir.Kernel:
    key = kernel_lower_key(sk)
    if key is None:
        _STATS["uncached"] += 1
        return sk.lower()
    cached = _CACHE.get(key)
    if cached is not None:
        _CACHE.move_to_end(key)
        _STATS["hits"] += 1
        return cached
    _STATS["misses"] += 1
    kernel = sk.lower()
    _CACHE[key] = kernel
    while len(_CACHE) > _MAX_ENTRIES:
        _CACHE.popitem(last=False)
    return kernel


def lower_kernels(scheduled) -> List[ir.Kernel]:
    """Lower a list of scheduled kernels through the per-kernel cache."""
    return [_lower_one(sk) for sk in scheduled]


def lower_cache_stats() -> Dict[str, int]:
    """Cumulative process-wide ``{hits, misses, uncached}`` counts."""
    return dict(_STATS)


def clear_lower_cache() -> None:
    """Drop all memoized kernels and reset the counters (test isolation)."""
    _CACHE.clear()
    for k in _STATS:
        _STATS[k] = 0
