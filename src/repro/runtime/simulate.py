"""Discrete-time execution model of the OpenCL host runtime.

Costs one inference (or the steady-state throughput over many) for a
deployment plan against a compiled bitstream:

* **serial execution** (one in-order command queue): kernel times, host
  enqueue overheads and transfers add up per image (thesis §6.3.1's
  non-[CE] bars);
* **concurrent execution** (one queue per kernel + channels): the layer
  pipeline overlaps across stages and images, so steady-state throughput
  is set by the slowest of (bottleneck stage, host enqueue serialization,
  input/output transfers) — the [CE] bars;
* autorun kernels cost no host interaction at all (§4.7).

Event profiling (Fig 6.2) is modelled by per-image kernel/write/read time
totals, with the thesis's observation that enabling the profiler forces
serial execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.aoc.compiler import Bitstream
from repro.device.transfer import d2h_time_us, h2d_time_us
from repro.runtime.opencl import _check_device_lost, _probe_fault
from repro.runtime.plan import FoldedPlan, PipelinePlan

__all__ = [
    "RunResult",
    "simulate_pipelined",
    "simulate_folded",
    "simulate_batched",
    "event_profile",
]


@dataclass
class RunResult:
    """Timing outcome of a simulated deployment."""

    time_per_image_us: float
    fps: float
    #: per-stage / per-invocation device times, microseconds
    stage_times_us: Dict[str, float] = field(default_factory=dict)
    #: host-side overhead per image, microseconds
    host_overhead_us: float = 0.0
    #: transfer times per image, microseconds
    write_us: float = 0.0
    read_us: float = 0.0

    def gflops(self, flops_per_image: int) -> float:
        """Achieved GFLOPS given the network's per-image FLOP count."""
        return flops_per_image / (self.time_per_image_us * 1e3)


def _stage_device_time(bs: Bitstream, stage) -> float:
    return bs.kernel_time_us(stage.kernel_name)


def simulate_pipelined(
    bs: Bitstream,
    plan: PipelinePlan,
    concurrent: bool,
) -> RunResult:
    """Cost a pipelined deployment (LeNet-style).

    ``concurrent=False`` models a single in-order command queue;
    ``concurrent=True`` models one queue per kernel with channel/event
    synchronization.
    """
    _check_device_lost(bs.program.name)
    c = bs.constants
    board = bs.board
    write_us = h2d_time_us(board, plan.input_bytes)
    read_us = d2h_time_us(board, plan.output_bytes)

    stage_times = {s.layer: _stage_device_time(bs, s) for s in plan.stages}
    _apply_channel_stalls(plan, stage_times)
    n_enqueued = sum(1 for s in plan.stages if not s.autorun)
    enqueue_us = n_enqueued * board.enqueue_overhead_us
    launch_us = n_enqueued * c.launch_latency_us

    if not concurrent:
        total = (
            write_us
            + read_us
            + sum(stage_times.values())
            + enqueue_us
            + launch_us
        )
        return RunResult(
            time_per_image_us=total,
            fps=1e6 / total,
            stage_times_us=stage_times,
            host_overhead_us=enqueue_us + launch_us,
            write_us=write_us,
            read_us=read_us,
        )

    # concurrent: throughput set by the slowest resource in steady state.
    # Without channels the layer chain of ONE image is still serial
    # (global-memory dependencies), but successive images overlap — the
    # bottleneck is the whole chain divided by the overlap the queues
    # provide... in practice dependent kernels cannot overlap within an
    # image, so only transfers/launches hide; with channels every stage is
    # a true pipeline stage.
    if plan.uses_channels:
        stage_eff = _coupled_stage_times(bs, plan, stage_times)
        bottleneck = max(
            max(stage_eff.values()),
            enqueue_us,  # host serializes one image's enqueues
            write_us,
            read_us,
        )
    else:
        device_chain = sum(stage_times.values()) + launch_us
        bottleneck = max(device_chain, enqueue_us, write_us, read_us)
    return RunResult(
        time_per_image_us=bottleneck,
        fps=1e6 / bottleneck,
        stage_times_us=stage_times,
        host_overhead_us=enqueue_us,
        write_us=write_us,
        read_us=read_us,
    )


def _apply_channel_stalls(
    plan: PipelinePlan, stage_times: Dict[str, float]
) -> None:
    """Fold injected channel stalls into per-stage device times.

    A ``stall`` fault adds its duration to the stalled consumer's stage
    time (the closed-form analogue of the event engine's delayed start);
    a ``hang`` fault is a permanent starvation, diagnosed as a deadlock.
    """
    for i, stage in enumerate(plan.stages):
        if not stage.channel_in:
            continue
        fault = _probe_fault("channel", stage.layer)
        if fault is None:
            continue
        producer = plan.stages[i - 1] if i else None
        channel = f"ch_{producer.layer}" if producer else f"ch_{stage.layer}"
        if fault.kind == "hang":
            from repro.resilience.watchdog import Watchdog

            Watchdog().channel_stalled(
                stage=stage.layer, channel=channel, occupancy=0,
                depth=producer.channel_depth if producer else 0,
            )
        stall_us = fault.param or 500.0
        from repro.resilience.events import record

        record(
            "stall", "channel",
            f"{stage.layer}: channel {channel} back-pressure stalled the "
            f"consumer for {stall_us:.0f}us",
            stall_us=stall_us,
        )
        stage_times[stage.layer] += stall_us


def simulate_folded(bs: Bitstream, plan: FoldedPlan) -> RunResult:
    """Cost a folded deployment (MobileNet/ResNet-style, serial queue)."""
    _check_device_lost(bs.program.name)
    c = bs.constants
    board = bs.board
    write_us = h2d_time_us(board, plan.input_bytes)
    read_us = d2h_time_us(board, plan.output_bytes)
    stage_times: Dict[str, float] = {}
    device_us = 0.0
    for inv in plan.invocations:
        t = bs.kernel_time_us(inv.kernel_name, inv.bindings)
        stage_times[inv.layer] = t
        device_us += t
    host = len(plan.invocations) * (board.enqueue_overhead_us + c.launch_latency_us)
    total = write_us + read_us + device_us + host
    return RunResult(
        time_per_image_us=total,
        fps=1e6 / total,
        stage_times_us=stage_times,
        host_overhead_us=host,
        write_us=write_us,
        read_us=read_us,
    )


def simulate_batched(
    bs: Bitstream,
    plan,
    batch: int,
    concurrent: bool = True,
) -> RunResult:
    """Cost ``batch`` images dispatched to the device as one unit.

    Batching changes the host side, not the kernels: inputs/outputs move
    in one coalesced DMA each (riding the transfer-rate ramp of
    Appendix A), and per-layer host dispatch happens once per batch
    instead of once per image — folded invocations take a batch
    dimension exactly like the thesis's parameterized kernels take
    shape arguments, and a pipelined kernel system refills its layer
    pipeline once per batch.  Device compute still scales linearly with
    the batch.

    Returns a :class:`RunResult` whose ``time_per_image_us``/``fps`` are
    the per-image amortized numbers; the batch's total service time is
    ``time_per_image_us * batch``.
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    _check_device_lost(bs.program.name)
    c = bs.constants
    board = bs.board
    write_us = h2d_time_us(board, plan.input_bytes * batch)
    read_us = d2h_time_us(board, plan.output_bytes * batch)

    if isinstance(plan, FoldedPlan):
        stage_times: Dict[str, float] = {}
        device_us = 0.0
        for inv in plan.invocations:
            t = bs.kernel_time_us(inv.kernel_name, inv.bindings)
            stage_times[inv.layer] = t
            device_us += t
        host = len(plan.invocations) * (
            board.enqueue_overhead_us + c.launch_latency_us
        )
        total = write_us + read_us + batch * device_us + host
        return RunResult(
            time_per_image_us=total / batch,
            fps=1e6 * batch / total,
            stage_times_us=stage_times,
            host_overhead_us=host,
            write_us=write_us,
            read_us=read_us,
        )

    # pipelined: fill the layer pipeline once (the first image's full
    # chain), then stream the remaining images at the steady-state
    # bottleneck the single-image model already derives
    single = simulate_pipelined(bs, plan, concurrent)
    if not concurrent:
        # a serial queue has no overlap: the per-image chain repeats,
        # only the transfers coalesce
        chain_us = single.time_per_image_us - single.write_us - single.read_us
        total = write_us + read_us + batch * chain_us
    else:
        fill_us = sum(single.stage_times_us.values()) + single.host_overhead_us
        total = write_us + read_us + fill_us + (batch - 1) * single.time_per_image_us
    return RunResult(
        time_per_image_us=total / batch,
        fps=1e6 * batch / total,
        stage_times_us=single.stage_times_us,
        host_overhead_us=single.host_overhead_us,
        write_us=write_us,
        read_us=read_us,
    )


def _coupled_stage_times(
    bs: Bitstream, plan: PipelinePlan, stage_times: Dict[str, float]
) -> Dict[str, float]:
    """Channel back-pressure (§4.6): a FIFO shallower than the producer's
    output couples neighbouring stages — the producer stalls on a full
    channel for the fraction of its output the FIFO cannot absorb, so
    that fraction of the *slower* neighbour's time bleeds into both.
    Depth >= OFM (the §4.11 sizing rule) decouples them completely."""
    eff = dict(stage_times)
    stages = plan.stages
    for producer, consumer in zip(stages, stages[1:]):
        if not producer.channel_out or producer.output_elems <= 0:
            continue
        uncovered = 1.0 - min(1.0, producer.channel_depth / producer.output_elems)
        if uncovered <= 0.0:
            continue
        tp = stage_times[producer.layer]
        tc = stage_times[consumer.layer]
        slower_layer = producer.layer if tp >= tc else consumer.layer
        # the slower stage absorbs stall time proportional to the faster
        # neighbour's work it can no longer overlap with
        penalty = 0.5 * uncovered * min(tp, tc)
        eff[slower_layer] = eff[slower_layer] + penalty
    return eff


def event_profile(result: RunResult) -> Dict[str, float]:
    """Fig 6.2-style breakdown: kernel / write / read / overhead (us)."""
    kernel_us = sum(result.stage_times_us.values())
    return {
        "kernel_us": kernel_us,
        "write_us": result.write_us,
        "read_us": result.read_us,
        "overhead_us": result.host_overhead_us,
    }


def per_op_profile(
    bs: Bitstream, plan: FoldedPlan
) -> Dict[str, Dict[str, float]]:
    """Aggregate folded-invocation times and GFLOPS by operation label.

    Reproduces the thesis's Tables 6.8/6.16 (per-op average GFLOPS and
    share of runtime).
    """
    agg: Dict[str, Dict[str, float]] = {}
    for inv in plan.invocations:
        t = bs.kernel_time_us(inv.kernel_name, inv.bindings)
        row = agg.setdefault(inv.op_label, {"time_us": 0.0, "flops": 0.0})
        row["time_us"] += t
        row["flops"] += inv.flops
    total_time = sum(r["time_us"] for r in agg.values())
    for row in agg.values():
        row["gflops"] = (
            row["flops"] / (row["time_us"] * 1e3) if row["time_us"] > 0 else 0.0
        )
        row["time_share"] = row["time_us"] / total_time if total_time else 0.0
    return agg
