"""Deployment plans: how a network maps onto a bitstream's kernels.

Two execution modes, as in thesis Chapter 3:

* **Pipelined** (:class:`PipelinePlan`): one kernel per layer, activations
  stream through channels, all kernels concurrently resident.  Used for
  LeNet.
* **Folded** (:class:`FoldedPlan`): a time-multiplexed sequence of kernel
  invocations (possibly re-using one parameterized kernel for many
  layers), activations through global memory.  Used for MobileNet/ResNet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ir import expr as _e

Bindings = Dict[_e.Var, int]


@dataclass
class PipelineStage:
    """One kernel in a pipelined deployment."""

    kernel_name: str
    #: human label ("conv1", "pool2", ...)
    layer: str
    #: kernel is fed by a channel (no global input traffic)
    channel_in: bool = False
    #: kernel streams its output to a channel
    channel_out: bool = False
    autorun: bool = False
    #: output-channel FIFO depth in elements (0 = register channel)
    channel_depth: int = 0
    #: elements the stage streams out per image (its OFM size)
    output_elems: int = 0


@dataclass
class PipelinePlan:
    """Pipelined (layer-parallel) deployment description."""

    stages: List[PipelineStage]
    #: host->device bytes per image (the input feature map)
    input_bytes: int = 0
    #: device->host bytes per image (the classification output)
    output_bytes: int = 0
    #: whether stages communicate via channels at all (base/unroll levels
    #: move activations through global memory instead)
    uses_channels: bool = False
    #: certified DDR residency (:class:`repro.verify.memory.MemoryPlan`);
    #: ``None`` when the footprint could not be bounded statically
    memory: Optional[object] = None


@dataclass
class Invocation:
    """One kernel launch in a folded deployment."""

    kernel_name: str
    layer: str
    #: operation label for per-op profiling ("1x1 conv", "3x3 DW conv"...)
    op_label: str
    bindings: Optional[Bindings] = None
    #: FLOPs this invocation performs (for GFLOPS accounting)
    flops: int = 0
    #: tensor-name prefix of the kernel's buffers (group base name)
    buffer_prefix: str = ""
    #: graph node whose value feeds the kernel's primary input
    input_node: str = ""
    #: graph nodes feeding extra inputs (residual shortcuts), in order
    extra_input_nodes: tuple = ()


@dataclass
class FoldedPlan:
    """Folded (time-multiplexed) deployment description."""

    invocations: List[Invocation]
    input_bytes: int = 0
    output_bytes: int = 0
    #: certified DDR arena (:class:`repro.verify.memory.MemoryPlan`):
    #: non-interfering activations share global-memory slots, and the
    #: functional executor allocates the arena instead of one buffer per
    #: activation.  ``None`` when liveness could not be bounded.
    memory: Optional[object] = None
