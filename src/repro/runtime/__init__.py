"""OpenCL host-runtime simulation: plans, timing, event profiling.

Execution plans, serial/concurrent pipelined timing, folded timing,
batched dispatch timing (``simulate_batched``), the event-level OpenCL
host API and the functional executors.  Contract: timing is a
deterministic closed-form or event-driven model over virtual
microseconds — no wall clock anywhere.
"""

from repro.runtime.plan import (
    FoldedPlan,
    Invocation,
    PipelinePlan,
    PipelineStage,
)
from repro.runtime.simulate import (
    RunResult,
    event_profile,
    per_op_profile,
    simulate_batched,
    simulate_folded,
    simulate_pipelined,
)
from repro.runtime.opencl import (
    CLBuffer,
    CLEvent,
    CommandQueue,
    SimContext,
    run_folded_event,
    run_pipelined_event,
)
from repro.runtime.executor import run_folded_functional, run_pipelined_functional

__all__ = [
    "CLBuffer", "CLEvent", "CommandQueue", "FoldedPlan", "Invocation",
    "PipelinePlan", "PipelineStage", "RunResult", "SimContext",
    "event_profile", "per_op_profile", "run_folded_event", "run_pipelined_event",
    "run_folded_functional", "run_pipelined_functional", "simulate_batched",
    "simulate_folded", "simulate_pipelined",
]
