"""OpenCL host-runtime simulation: plans, timing, event profiling."""

from repro.runtime.plan import (
    FoldedPlan,
    Invocation,
    PipelinePlan,
    PipelineStage,
)
from repro.runtime.simulate import (
    RunResult,
    event_profile,
    per_op_profile,
    simulate_folded,
    simulate_pipelined,
)
from repro.runtime.opencl import (
    CLBuffer,
    CLEvent,
    CommandQueue,
    SimContext,
    run_folded_event,
    run_pipelined_event,
)
from repro.runtime.executor import run_folded_functional, run_pipelined_functional

__all__ = [
    "CLBuffer", "CLEvent", "CommandQueue", "FoldedPlan", "Invocation",
    "PipelinePlan", "PipelineStage", "RunResult", "SimContext",
    "event_profile", "per_op_profile", "run_folded_event", "run_pipelined_event",
    "run_folded_functional", "run_pipelined_functional", "simulate_folded",
    "simulate_pipelined",
]
