"""An OpenCL-host-API-shaped discrete-event simulator (thesis Section 5.2).

The thesis implements a custom OpenCL C/C++ host program with: buffer
loading, toggleable event profiling, kernel re-execution with different
buffers/parameters, per-kernel command queues for concurrent execution,
and asynchronous (non-blocking) enqueues.  This module reproduces that
programming model over the simulated device:

* :class:`SimContext` plays ``clCreateContext`` + program load;
* :class:`CommandQueue` is an in-order queue; create several for
  concurrent execution;
* ``enqueue_write`` / ``enqueue_kernel`` / ``enqueue_read`` return
  :class:`CLEvent` objects carrying profiling timestamps and usable as
  dependencies (``wait_for``), like ``cl_event`` chains;
* the host thread itself is modelled: each enqueue call costs host time,
  serializing dispatch exactly the way the thesis's autorun optimization
  removes.

The closed-form engine in :mod:`repro.runtime.simulate` answers the same
questions analytically; tests check the two agree on serial flows, and
the event engine additionally exposes multi-image overlap behaviour.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.aoc.compiler import Bitstream
from repro.device.transfer import d2h_time_us, h2d_time_us
from repro.errors import DeviceLostError, RuntimeSimError, TransferError
from repro.runtime.plan import Bindings, FoldedPlan, PipelinePlan

_event_ids = itertools.count()

#: duration assigned to an injected hang when the fault gives no param;
#: far beyond any watchdog budget, so hangs are always caught
_HANG_US = 1e12


def _probe_fault(site: str, label: str = ""):
    """Probe the active fault plan (no-op without one).

    Imported lazily so the runtime has no import-time dependency on the
    resilience package.
    """
    from repro.resilience.faults import probe

    return probe(site, label)


def _check_device_lost(label: str) -> None:
    """Raise an injected device-lost event if the fault plan says so."""
    fault = _probe_fault("device", label)
    if fault is not None and fault.kind == "device_lost":
        err = DeviceLostError(
            f"injected: device lost while running {label!r} (fault plan)"
        )
        err.injected = True
        err.transient = fault.transient
        raise err


@dataclass
class CLBuffer:
    """A device-memory object (``clCreateBuffer``)."""

    name: str
    size_bytes: int


@dataclass
class CLEvent:
    """A completed command with OpenCL-profiling-style timestamps (us)."""

    kind: str  #: 'write' | 'read' | 'kernel'
    label: str
    queued_us: float
    start_us: float
    end_us: float
    event_id: int = field(default_factory=lambda: next(_event_ids))

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


class CommandQueue:
    """An in-order command queue: each command starts after the previous
    one on this queue *and* after all its explicit dependencies."""

    def __init__(self, ctx: "SimContext", index: int) -> None:
        self.ctx = ctx
        self.index = index
        self.ready_us = 0.0  #: time the queue can start its next command

    def __repr__(self) -> str:
        return f"CommandQueue(#{self.index}, ready={self.ready_us:.1f}us)"


class SimContext:
    """The simulated host: context + device + program + host thread."""

    def __init__(
        self,
        bitstream: Bitstream,
        profiling: bool = False,
        retry_policy: Optional[object] = None,
        watchdog: Optional[object] = None,
    ) -> None:
        self.bitstream = bitstream
        self.board = bitstream.board
        self.queues: List[CommandQueue] = []
        self.events: List[CLEvent] = []
        #: host-thread clock: enqueue calls serialize on it
        self.host_us = 0.0
        #: enabling the profiler forces blocking enqueues (thesis §5.2)
        self.profiling = profiling
        #: :class:`repro.resilience.RetryPolicy` governing re-enqueue of
        #: failed DMA transfers (None = fail fast on the first error)
        self.retry_policy = retry_policy
        #: :class:`repro.resilience.Watchdog` bounding virtual time
        self.watchdog = watchdog

    # -- setup -----------------------------------------------------------
    def create_queue(self) -> CommandQueue:
        q = CommandQueue(self, len(self.queues))
        self.queues.append(q)
        return q

    def create_buffer(self, name: str, size_bytes: int) -> CLBuffer:
        if size_bytes is None:
            # a symbolic Buffer.size_bytes() propagated here unresolved
            # (the RM002 condition); fail with the cause, not a TypeError
            raise RuntimeSimError(
                f"buffer {name!r}: size is unresolved (symbolic shape, "
                "RM002) — resolve bindings before allocating"
            )
        if size_bytes <= 0:
            raise RuntimeSimError("buffer size must be positive")
        return CLBuffer(name, size_bytes)

    # -- enqueue ---------------------------------------------------------
    def _host_dispatch(self) -> float:
        """Advance the host thread by one enqueue call; returns the time
        at which the command reaches the device."""
        self.host_us += self.board.enqueue_overhead_us
        return self.host_us

    def _fault_gate(self, kind: str, label: str, duration_us: float) -> float:
        """Probe (and recover from) injected faults on one enqueue.

        A ``dma`` fault fails the enqueue: without a retry policy it
        raises :class:`TransferError` immediately; with one, each retry
        charges its backoff delay to the host clock (virtual time, no
        wall sleeping) and re-probes until the fault exhausts or the
        policy gives up.  A ``hang`` fault stretches the command so the
        watchdog's virtual-time budget catches it.
        """
        fault = _probe_fault(f"enqueue.{kind}", label)
        if fault is None:
            return duration_us
        if fault.kind == "hang":
            return fault.param or _HANG_US
        if fault.kind != "dma":
            return duration_us
        from repro.resilience.events import record
        from repro.resilience.faults import active_plan
        from repro.resilience.retry import backoff_schedule

        plan = active_plan()
        attempt = 1
        while fault is not None and fault.kind == "dma":
            err = TransferError(
                f"injected: DMA transfer failure on {kind} of {label!r} "
                f"(attempt {attempt})"
            )
            err.injected = True
            err.transient = fault.transient
            policy = self.retry_policy
            if policy is None or attempt >= policy.attempts:
                record(
                    "giveup", f"enqueue.{kind}",
                    f"{label}: transfer failed with no retry budget left",
                    attempt=attempt, t_us=self.host_us,
                )
                raise err
            delay = backoff_schedule(
                policy, seed=plan.seed if plan else 0
            )[attempt - 1]
            self.host_us += delay  # backoff on the virtual host clock
            record(
                "retry", f"enqueue.{kind}",
                f"{label}: transfer failed, re-enqueueing after "
                f"{delay:.0f}us backoff",
                attempt=attempt, t_us=self.host_us, delay_us=delay,
            )
            attempt += 1
            fault = _probe_fault(f"enqueue.{kind}", label)
        record(
            "recovered", f"enqueue.{kind}",
            f"{label}: transfer succeeded on attempt {attempt}",
            attempt=attempt, t_us=self.host_us,
        )
        return duration_us

    def _schedule(
        self,
        queue: CommandQueue,
        kind: str,
        label: str,
        duration_us: float,
        wait_for: Sequence[CLEvent],
        device_launch_us: float = 0.0,
    ) -> CLEvent:
        duration_us = self._fault_gate(kind, label, duration_us)
        queued = self._host_dispatch()
        deps = max((e.end_us for e in wait_for), default=0.0)
        start = max(queue.ready_us, deps, queued) + device_launch_us
        end = start + duration_us
        queue.ready_us = end
        event = CLEvent(kind, label, queued, start, end)
        self.events.append(event)
        if self.watchdog is not None:
            self.watchdog.observe(label, end)
        if self.profiling:
            # blocking enqueue: the host waits for completion before the
            # next call (what makes profiled runs serial)
            self.host_us = max(self.host_us, end)
        return event

    def enqueue_write(
        self,
        queue: CommandQueue,
        buffer: CLBuffer,
        wait_for: Sequence[CLEvent] = (),
    ) -> CLEvent:
        """Host -> device buffer write."""
        t = h2d_time_us(self.board, buffer.size_bytes)
        return self._schedule(queue, "write", buffer.name, t, wait_for)

    def enqueue_read(
        self,
        queue: CommandQueue,
        buffer: CLBuffer,
        wait_for: Sequence[CLEvent] = (),
    ) -> CLEvent:
        """Device -> host buffer read."""
        t = d2h_time_us(self.board, buffer.size_bytes)
        return self._schedule(queue, "read", buffer.name, t, wait_for)

    def enqueue_kernel(
        self,
        queue: CommandQueue,
        kernel_name: str,
        bindings: Optional[Bindings] = None,
        wait_for: Sequence[CLEvent] = (),
        label: Optional[str] = None,
    ) -> CLEvent:
        """Launch one kernel invocation (``clEnqueueTask``).

        The kernel name is validated against the bitstream: enqueueing a
        kernel the design does not contain raises
        :class:`~repro.errors.RuntimeSimError` naming the available
        kernels (the OpenCL host error a stale host program hits).
        """
        if kernel_name not in self.bitstream.hw:
            raise RuntimeSimError(
                f"enqueue of unknown kernel {kernel_name!r}; bitstream "
                f"{self.bitstream.program.name!r} provides: "
                f"{', '.join(sorted(self.bitstream.hw)) or '(none)'}"
            )
        duration = self.bitstream.kernel_time_us(kernel_name, bindings)
        return self._schedule(
            queue,
            "kernel",
            label or kernel_name,
            duration,
            wait_for,
            device_launch_us=self.bitstream.constants.launch_latency_us,
        )

    def finish(self) -> float:
        """``clFinish`` across all queues: returns the completion time."""
        return max((e.end_us for e in self.events), default=0.0)

    # -- profiling --------------------------------------------------------
    def profile_totals(self) -> Dict[str, float]:
        """Total busy time per command kind (the Fig 6.2 breakdown)."""
        out = {"kernel": 0.0, "write": 0.0, "read": 0.0}
        for e in self.events:
            out[e.kind] += e.duration_us
        return out


def _channel_fault(
    plan: PipelinePlan,
    stage_index: int,
    ctx: SimContext,
    watchdog: Optional[object],
) -> float:
    """Channel-site fault for one channel-connected stage.

    A ``stall`` fault delays the consumer (back-pressure that eventually
    drains) and returns the stall duration; a ``hang`` fault models a
    producer that never refills the channel — diagnosed immediately as a
    :class:`~repro.errors.DeadlockError` naming the blocked stage and
    the starved channel.
    """
    stage = plan.stages[stage_index]
    fault = _probe_fault("channel", stage.layer)
    if fault is None:
        return 0.0
    producer = plan.stages[stage_index - 1] if stage_index else None
    channel = f"ch_{producer.layer}" if producer else f"ch_{stage.layer}"
    depth = producer.channel_depth if producer else 0
    if fault.kind == "hang":
        from repro.resilience.watchdog import Watchdog

        wd = watchdog if isinstance(watchdog, Watchdog) else Watchdog()
        wd.channel_stalled(
            stage=stage.layer, channel=channel, occupancy=0, depth=depth,
            t_us=ctx.host_us,
        )
        return 0.0  # unreachable: channel_stalled always raises
    stall_us = fault.param or 500.0
    from repro.resilience.events import record

    record(
        "stall", "channel",
        f"{stage.layer}: channel {channel} back-pressure stalled the "
        f"consumer for {stall_us:.0f}us",
        t_us=ctx.host_us, stall_us=stall_us,
    )
    return stall_us


def run_pipelined_event(
    bitstream: Bitstream,
    plan: PipelinePlan,
    n_images: int = 4,
    profiling: bool = False,
    retry_policy: Optional[object] = None,
    watchdog: Optional[object] = None,
) -> Dict[str, float]:
    """Execute a pipelined plan through the event engine.

    One command queue per kernel (the thesis's concurrent execution) with
    cl_event dependencies expressing the per-image layer chain; channel-
    connected stages of *different* images overlap freely, so the engine
    reproduces the layer-pipeline steady state.  Autorun kernels cost no
    host dispatch: their work rides on the producing stage's event.

    ``retry_policy`` re-enqueues failed DMA transfers (injected faults);
    ``watchdog`` bounds the virtual time of every command and diagnoses
    channel stalls that never drain.

    Returns {'makespan_us', 'fps', 'time_per_image_us', ...}.
    """
    _check_device_lost(bitstream.program.name)
    ctx = SimContext(
        bitstream, profiling=profiling, retry_policy=retry_policy,
        watchdog=watchdog,
    )
    queues = {s.kernel_name: ctx.create_queue() for s in plan.stages}
    in_buf = ctx.create_buffer("input", max(4, plan.input_bytes))
    out_buf = ctx.create_buffer("output", max(4, plan.output_bytes))
    # separate write/read queues: an in-order queue shared by both would
    # serialize image k's readback against image k+1's upload
    write_queue = ctx.create_queue()
    read_queue = ctx.create_queue()
    stream_fill_us = bitstream.constants.launch_latency_us

    for _ in range(n_images):
        last = ctx.enqueue_write(write_queue, in_buf)
        for i, stage in enumerate(plan.stages):
            t = bitstream.kernel_time_us(stage.kernel_name)
            q = queues[stage.kernel_name]
            if stage.channel_in:
                # streaming consumer: starts once the producer's first
                # elements arrive, finishes no earlier than the producer's
                # last element plus its own pipeline tail
                stall_us = _channel_fault(plan, i, ctx, watchdog)
                dispatch = 0.0 if stage.autorun else ctx._host_dispatch()
                start = (
                    max(q.ready_us, last.start_us + stream_fill_us, dispatch)
                    + stall_us
                )
                end = max(start + t, last.end_us + stream_fill_us + stall_us)
                q.ready_us = end
                event = CLEvent("kernel", stage.layer, dispatch, start, end)
                ctx.events.append(event)
                if watchdog is not None:
                    watchdog.observe(stage.layer, end)
                if profiling:
                    ctx.host_us = max(ctx.host_us, end)
                last = event
            else:
                last = ctx.enqueue_kernel(
                    q, stage.kernel_name, wait_for=[last], label=stage.layer
                )
        ctx.enqueue_read(read_queue, out_buf, wait_for=[last])

    makespan = ctx.finish()
    return {
        "makespan_us": makespan,
        "fps": n_images * 1e6 / makespan,
        "time_per_image_us": makespan / n_images,
        "events": len(ctx.events),
        "profile": ctx.profile_totals(),
    }


def run_folded_event(
    bitstream: Bitstream,
    plan: FoldedPlan,
    n_images: int = 1,
    n_queues: int = 1,
    profiling: bool = False,
    retry_policy: Optional[object] = None,
    watchdog: Optional[object] = None,
) -> Dict[str, float]:
    """Execute a folded plan through the event engine.

    Each image performs: input write -> all layer invocations (in-order,
    chained by events across queues) -> output read.  With ``n_queues>1``
    successive images round-robin across queues and overlap where the
    host thread allows.

    Returns {'makespan_us', 'fps', 'time_per_image_us'}.
    """
    _check_device_lost(bitstream.program.name)
    ctx = SimContext(
        bitstream, profiling=profiling, retry_policy=retry_policy,
        watchdog=watchdog,
    )
    queues = [ctx.create_queue() for _ in range(max(1, n_queues))]
    in_buf = ctx.create_buffer("input", max(4, plan.input_bytes))
    out_buf = ctx.create_buffer("output", max(4, plan.output_bytes))

    for img in range(n_images):
        q = queues[img % len(queues)]
        last = ctx.enqueue_write(q, in_buf)
        for inv in plan.invocations:
            last = ctx.enqueue_kernel(
                q, inv.kernel_name, inv.bindings, wait_for=[last],
                label=inv.layer,
            )
        ctx.enqueue_read(q, out_buf, wait_for=[last])

    makespan = ctx.finish()
    return {
        "makespan_us": makespan,
        "fps": n_images * 1e6 / makespan,
        "time_per_image_us": makespan / n_images,
        "events": len(ctx.events),
        "profile": ctx.profile_totals(),
    }
