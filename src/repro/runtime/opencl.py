"""An OpenCL-host-API-shaped discrete-event simulator (thesis Section 5.2).

The thesis implements a custom OpenCL C/C++ host program with: buffer
loading, toggleable event profiling, kernel re-execution with different
buffers/parameters, per-kernel command queues for concurrent execution,
and asynchronous (non-blocking) enqueues.  This module reproduces that
programming model over the simulated device:

* :class:`SimContext` plays ``clCreateContext`` + program load;
* :class:`CommandQueue` is an in-order queue; create several for
  concurrent execution;
* ``enqueue_write`` / ``enqueue_kernel`` / ``enqueue_read`` return
  :class:`CLEvent` objects carrying profiling timestamps and usable as
  dependencies (``wait_for``), like ``cl_event`` chains;
* the host thread itself is modelled: each enqueue call costs host time,
  serializing dispatch exactly the way the thesis's autorun optimization
  removes.

The closed-form engine in :mod:`repro.runtime.simulate` answers the same
questions analytically; tests check the two agree on serial flows, and
the event engine additionally exposes multi-image overlap behaviour.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.aoc.compiler import Bitstream
from repro.device.transfer import d2h_time_us, h2d_time_us
from repro.errors import RuntimeSimError
from repro.runtime.plan import Bindings, FoldedPlan, PipelinePlan

_event_ids = itertools.count()


@dataclass
class CLBuffer:
    """A device-memory object (``clCreateBuffer``)."""

    name: str
    size_bytes: int


@dataclass
class CLEvent:
    """A completed command with OpenCL-profiling-style timestamps (us)."""

    kind: str  #: 'write' | 'read' | 'kernel'
    label: str
    queued_us: float
    start_us: float
    end_us: float
    event_id: int = field(default_factory=lambda: next(_event_ids))

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


class CommandQueue:
    """An in-order command queue: each command starts after the previous
    one on this queue *and* after all its explicit dependencies."""

    def __init__(self, ctx: "SimContext", index: int) -> None:
        self.ctx = ctx
        self.index = index
        self.ready_us = 0.0  #: time the queue can start its next command

    def __repr__(self) -> str:
        return f"CommandQueue(#{self.index}, ready={self.ready_us:.1f}us)"


class SimContext:
    """The simulated host: context + device + program + host thread."""

    def __init__(self, bitstream: Bitstream, profiling: bool = False) -> None:
        self.bitstream = bitstream
        self.board = bitstream.board
        self.queues: List[CommandQueue] = []
        self.events: List[CLEvent] = []
        #: host-thread clock: enqueue calls serialize on it
        self.host_us = 0.0
        #: enabling the profiler forces blocking enqueues (thesis §5.2)
        self.profiling = profiling

    # -- setup -----------------------------------------------------------
    def create_queue(self) -> CommandQueue:
        q = CommandQueue(self, len(self.queues))
        self.queues.append(q)
        return q

    def create_buffer(self, name: str, size_bytes: int) -> CLBuffer:
        if size_bytes <= 0:
            raise RuntimeSimError("buffer size must be positive")
        return CLBuffer(name, size_bytes)

    # -- enqueue ---------------------------------------------------------
    def _host_dispatch(self) -> float:
        """Advance the host thread by one enqueue call; returns the time
        at which the command reaches the device."""
        self.host_us += self.board.enqueue_overhead_us
        return self.host_us

    def _schedule(
        self,
        queue: CommandQueue,
        kind: str,
        label: str,
        duration_us: float,
        wait_for: Sequence[CLEvent],
        device_launch_us: float = 0.0,
    ) -> CLEvent:
        queued = self._host_dispatch()
        deps = max((e.end_us for e in wait_for), default=0.0)
        start = max(queue.ready_us, deps, queued) + device_launch_us
        end = start + duration_us
        queue.ready_us = end
        event = CLEvent(kind, label, queued, start, end)
        self.events.append(event)
        if self.profiling:
            # blocking enqueue: the host waits for completion before the
            # next call (what makes profiled runs serial)
            self.host_us = max(self.host_us, end)
        return event

    def enqueue_write(
        self,
        queue: CommandQueue,
        buffer: CLBuffer,
        wait_for: Sequence[CLEvent] = (),
    ) -> CLEvent:
        """Host -> device buffer write."""
        t = h2d_time_us(self.board, buffer.size_bytes)
        return self._schedule(queue, "write", buffer.name, t, wait_for)

    def enqueue_read(
        self,
        queue: CommandQueue,
        buffer: CLBuffer,
        wait_for: Sequence[CLEvent] = (),
    ) -> CLEvent:
        """Device -> host buffer read."""
        t = d2h_time_us(self.board, buffer.size_bytes)
        return self._schedule(queue, "read", buffer.name, t, wait_for)

    def enqueue_kernel(
        self,
        queue: CommandQueue,
        kernel_name: str,
        bindings: Optional[Bindings] = None,
        wait_for: Sequence[CLEvent] = (),
        label: Optional[str] = None,
    ) -> CLEvent:
        """Launch one kernel invocation (``clEnqueueTask``)."""
        duration = self.bitstream.kernel_time_us(kernel_name, bindings)
        return self._schedule(
            queue,
            "kernel",
            label or kernel_name,
            duration,
            wait_for,
            device_launch_us=self.bitstream.constants.launch_latency_us,
        )

    def finish(self) -> float:
        """``clFinish`` across all queues: returns the completion time."""
        return max((e.end_us for e in self.events), default=0.0)

    # -- profiling --------------------------------------------------------
    def profile_totals(self) -> Dict[str, float]:
        """Total busy time per command kind (the Fig 6.2 breakdown)."""
        out = {"kernel": 0.0, "write": 0.0, "read": 0.0}
        for e in self.events:
            out[e.kind] += e.duration_us
        return out


def run_pipelined_event(
    bitstream: Bitstream,
    plan: PipelinePlan,
    n_images: int = 4,
    profiling: bool = False,
) -> Dict[str, float]:
    """Execute a pipelined plan through the event engine.

    One command queue per kernel (the thesis's concurrent execution) with
    cl_event dependencies expressing the per-image layer chain; channel-
    connected stages of *different* images overlap freely, so the engine
    reproduces the layer-pipeline steady state.  Autorun kernels cost no
    host dispatch: their work rides on the producing stage's event.

    Returns {'makespan_us', 'fps', 'time_per_image_us', ...}.
    """
    ctx = SimContext(bitstream, profiling=profiling)
    queues = {s.kernel_name: ctx.create_queue() for s in plan.stages}
    in_buf = ctx.create_buffer("input", max(4, plan.input_bytes))
    out_buf = ctx.create_buffer("output", max(4, plan.output_bytes))
    # separate write/read queues: an in-order queue shared by both would
    # serialize image k's readback against image k+1's upload
    write_queue = ctx.create_queue()
    read_queue = ctx.create_queue()
    stream_fill_us = bitstream.constants.launch_latency_us

    for _ in range(n_images):
        last = ctx.enqueue_write(write_queue, in_buf)
        for stage in plan.stages:
            t = bitstream.kernel_time_us(stage.kernel_name)
            q = queues[stage.kernel_name]
            if stage.channel_in:
                # streaming consumer: starts once the producer's first
                # elements arrive, finishes no earlier than the producer's
                # last element plus its own pipeline tail
                dispatch = 0.0 if stage.autorun else ctx._host_dispatch()
                start = max(q.ready_us, last.start_us + stream_fill_us, dispatch)
                end = max(start + t, last.end_us + stream_fill_us)
                q.ready_us = end
                event = CLEvent("kernel", stage.layer, dispatch, start, end)
                ctx.events.append(event)
                if profiling:
                    ctx.host_us = max(ctx.host_us, end)
                last = event
            else:
                last = ctx.enqueue_kernel(
                    q, stage.kernel_name, wait_for=[last], label=stage.layer
                )
        ctx.enqueue_read(read_queue, out_buf, wait_for=[last])

    makespan = ctx.finish()
    return {
        "makespan_us": makespan,
        "fps": n_images * 1e6 / makespan,
        "time_per_image_us": makespan / n_images,
        "events": len(ctx.events),
        "profile": ctx.profile_totals(),
    }


def run_folded_event(
    bitstream: Bitstream,
    plan: FoldedPlan,
    n_images: int = 1,
    n_queues: int = 1,
    profiling: bool = False,
) -> Dict[str, float]:
    """Execute a folded plan through the event engine.

    Each image performs: input write -> all layer invocations (in-order,
    chained by events across queues) -> output read.  With ``n_queues>1``
    successive images round-robin across queues and overlap where the
    host thread allows.

    Returns {'makespan_us', 'fps', 'time_per_image_us'}.
    """
    ctx = SimContext(bitstream, profiling=profiling)
    queues = [ctx.create_queue() for _ in range(max(1, n_queues))]
    in_buf = ctx.create_buffer("input", max(4, plan.input_bytes))
    out_buf = ctx.create_buffer("output", max(4, plan.output_bytes))

    for img in range(n_images):
        q = queues[img % len(queues)]
        last = ctx.enqueue_write(q, in_buf)
        for inv in plan.invocations:
            last = ctx.enqueue_kernel(
                q, inv.kernel_name, inv.bindings, wait_for=[last],
                label=inv.layer,
            )
        ctx.enqueue_read(q, out_buf, wait_for=[last])

    makespan = ctx.finish()
    return {
        "makespan_us": makespan,
        "fps": n_images * 1e6 / makespan,
        "time_per_image_us": makespan / n_images,
        "events": len(ctx.events),
        "profile": ctx.profile_totals(),
    }
