"""Functional execution of compiled deployments through the IR interpreter.

This is the reproduction's equivalent of the thesis's output-verification
step ("A real image is used to validate the implementation once"): the
*generated kernels themselves* are executed — channel FIFOs, symbolic
bindings and all — and their outputs compared against the NumPy reference.

The interpreter is Python-slow, so full-size MobileNet/ResNet runs are
impractical; tests exercise LeNet and reduced networks end-to-end, which
covers every kernel species the large networks use.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple, Type

import numpy as np

from repro.errors import RuntimeSimError
from repro.ir.interp import ChannelState, Interpreter
from repro.ir.vinterp import VectorizedInterpreter
from repro.relay.execute import Params
from repro.relay.passes import FusedGraph
from repro.runtime.plan import FoldedPlan, PipelinePlan

#: Environment opt-out: set REPRO_INTERP=scalar to force the element-wise
#: interpreter everywhere (the vectorized path is bit-identical, so this
#: is a debugging aid, not a numerics switch).
_INTERP_ENV = "REPRO_INTERP"


def _interpreter_class(interp: str) -> Type[Interpreter]:
    """Resolve an ``interp`` choice ('vector' | 'scalar' | 'auto')."""
    if interp == "auto":
        interp = os.environ.get(_INTERP_ENV, "vector").strip() or "vector"
    if interp in ("vector", "vectorized"):
        return VectorizedInterpreter
    if interp == "scalar":
        return Interpreter
    raise RuntimeSimError(
        f"unknown interpreter {interp!r}: choose 'vector' or 'scalar'"
    )


def _drain_events(it, kernel_name: str, events) -> None:
    """Append a vectorized interpreter's band events, tagged by kernel."""
    if events is not None and isinstance(it, VectorizedInterpreter):
        events.extend((kernel_name, ev) for ev in it.events)


def _weights_for(prefix: str, fn, params: Params, bufs: Dict[str, np.ndarray]) -> None:
    """Bind a fused node's parameters onto a kernel's buffer names."""
    layer = fn.anchor.name
    w = params.get(f"{layer}.weight")
    if w is not None:
        bufs[f"{prefix}_w"] = np.ascontiguousarray(w, np.float32).ravel()
    b = params.get(f"{layer}.bias")
    if b is not None:
        bufs[f"{prefix}_b"] = np.ascontiguousarray(b, np.float32).ravel()
    bn = getattr(fn, "batchnorm_node", None)
    if bn is not None:
        eps = np.float32(1e-5)
        gamma = params[f"{bn.name}.gamma"]
        beta = params[f"{bn.name}.beta"]
        mean = params[f"{bn.name}.mean"]
        var = params[f"{bn.name}.var"]
        scale = (gamma / np.sqrt(var + eps)).astype(np.float32)
        shift = (beta - mean * scale).astype(np.float32)
        bufs[f"{prefix}_scale"] = scale
        bufs[f"{prefix}_shift"] = shift


def run_pipelined_functional(
    program,
    plan: PipelinePlan,
    fused: FusedGraph,
    x: np.ndarray,
    params: Params,
    interp: str = "auto",
    events: Optional[List[Tuple[str, object]]] = None,
) -> np.ndarray:
    """Interpret a pipelined program on one input image.

    Kernels run producer-first with shared channel state (functionally
    equivalent to the concurrent execution the hardware performs, since
    channels are FIFOs).  ``interp`` selects the vectorized (default) or
    scalar interpreter; both produce bit-identical float32 results.
    When ``events`` is a list and the vectorized interpreter runs, it
    receives ``(kernel_name, BandEvent)`` pairs for fallback auditing.
    """
    cls = _interpreter_class(interp)
    nodes = list(fused)
    if len(nodes) != len(plan.stages):
        raise RuntimeSimError("plan/graph stage mismatch")
    buffers: Dict[str, np.ndarray] = {}
    channels: Dict[str, ChannelState] = {}

    # network input feeds the first kernel's input tensor
    first = nodes[0]
    buffers[f"{first.name}_in"] = np.ascontiguousarray(x, np.float32).ravel()

    for fn, stage in zip(nodes, plan.stages):
        kernel = program.kernel(stage.kernel_name)
        _weights_for(fn.name, fn, params, buffers)
        if not stage.channel_in and fn is not first:
            # global-memory handoff: previous output becomes this input
            prev_out = nodes[nodes.index(fn) - 1]
            src = _output_name(prev_out)
            buffers[f"{fn.name}_in"] = buffers[src]
        if kernel.output_buffer is not None and kernel.output_buffer not in buffers:
            n = _numel(fn.out_shape)
            buffers[kernel.output_buffer] = np.zeros(n, np.float32)
        it = cls(buffers, channels=channels)
        it.run(kernel)
        _drain_events(it, kernel.name, events)

    out_kernel = program.kernel(plan.stages[-1].kernel_name)
    assert out_kernel.output_buffer is not None
    n = _numel(nodes[-1].out_shape)
    return buffers[out_kernel.output_buffer][:n].copy()


def run_folded_functional(
    program,
    plan: FoldedPlan,
    fused: FusedGraph,
    x: np.ndarray,
    params: Params,
    interp: str = "auto",
    events: Optional[List[Tuple[str, object]]] = None,
) -> np.ndarray:
    """Interpret a folded program layer-invocation by layer-invocation.

    When the plan carries a certified ``memory`` arena
    (:class:`repro.verify.memory.MemoryPlan`), activations live in
    views of one shared float32 array at their assigned offsets — the
    deployment allocates the arena, not one buffer per activation.
    Zero-filling a slot before its defining invocation is bit-identical
    to allocating a fresh zeroed buffer: the RM001 proof is exactly the
    statement that no still-needed value shares those bytes.
    """
    cls = _interpreter_class(interp)
    memory = getattr(plan, "memory", None)
    arena = (
        np.zeros(memory.arena_bytes // 4, np.float32)
        if memory is not None else None
    )

    def _slot(name: str, n: int) -> np.ndarray:
        """Fresh zeroed storage for a value: its arena view, or a
        private buffer when the plan carries no (or a partial) arena."""
        if arena is not None and name in memory.offsets:
            view = arena[memory.offsets[name] // 4:][:n]
            if view.size == n:
                view[:] = 0.0
                return view
        return np.zeros(n, np.float32)

    x_flat = np.ascontiguousarray(x, np.float32).ravel()
    in_name = fused.graph.input.name
    x_slot = _slot(in_name, x_flat.size)
    x_slot[:] = x_flat
    values: Dict[str, np.ndarray] = {in_name: x_slot}
    node_of = {fn.name: fn for fn in fused}
    last = None
    for inv in plan.invocations:
        fn = node_of[inv.layer]
        kernel = program.kernel(inv.kernel_name)
        prefix = inv.buffer_prefix
        bufs: Dict[str, np.ndarray] = {}
        bufs[f"{prefix}_in"] = values[inv.input_node]
        _weights_for(prefix, fn, params, bufs)
        for extra in inv.extra_input_nodes:
            bufs[f"{prefix}_res"] = values[extra]
        out_name = kernel.output_buffer
        assert out_name is not None
        n = _numel(fn.out_shape)
        bufs[out_name] = _slot(fn.output_node.name, n)
        it = cls(bufs, bindings=inv.bindings)
        it.run(kernel)
        _drain_events(it, kernel.name, events)
        values[fn.output_node.name] = bufs[out_name]
        # intermediate epilogue nodes share the kernel's output value
        values[fn.anchor.name] = bufs[out_name]
        last = bufs[out_name]
    assert last is not None
    return last.copy()


def _output_name(fn) -> str:
    """Kernel output-buffer name for a fused node (softmax stores to
    its _norm stage tensor)."""
    if fn.op == "softmax":
        return f"{fn.name}_norm"
    return fn.name


def _numel(shape) -> int:
    n = 1
    for d in shape:
        n *= d
    return n
