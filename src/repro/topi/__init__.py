"""TVM-Operator-Inventory equivalent: compute definitions + schedules.

Compute definitions and schedule recipes for conv / depthwise / dense /
pool / pad / softmax, the ``ConvTiling`` knobs, and the symbolic
(parameterized-shape) kernel variants of §5.3.  Contract: given an op
spec and a tiling, return a schedulable kernel whose numerics match
``repro.nn``.
"""

from repro.topi.common import ConvSpec, ConvTiling, DenseSpec, PoolSpec, make_activation
from repro.topi.conv2d import (
    conv2d_tensors,
    schedule_conv1x1_opt,
    schedule_conv2d_naive,
    schedule_conv2d_opt,
)
from repro.topi.depthwise import (
    depthwise_tensors,
    schedule_depthwise_naive,
    schedule_depthwise_opt,
)
from repro.topi.dense import dense_tensors, schedule_dense_naive, schedule_dense_opt
from repro.topi.pooling import (
    gap_tensors,
    pool_tensors,
    schedule_pool_naive,
    schedule_pool_opt,
)
from repro.topi.softmax import softmax_kernel_licm, softmax_kernel_naive, softmax_tensors
from repro.topi.pad import flatten_tensors, pad_tensors, schedule_transform
from repro.topi.recipes import (
    conv1x1_opt_recipe,
    conv2d_naive_recipe,
    conv2d_opt_recipe,
    dense_naive_recipe,
    dense_opt_recipe,
    depthwise_naive_recipe,
    depthwise_opt_recipe,
    pool_naive_recipe,
    pool_opt_recipe,
    recipe_for_kernel,
    symbolic_conv_recipe,
    transform_recipe,
)
from repro.topi.symbolic import (
    SymbolicConv,
    SymbolicPad,
    conv2d_symbolic,
    depthwise_symbolic,
    pad_symbolic,
    schedule_symbolic_conv,
)

__all__ = [
    "ConvSpec", "ConvTiling", "DenseSpec", "PoolSpec", "SymbolicConv",
    "SymbolicPad", "conv1x1_opt_recipe", "conv2d_naive_recipe",
    "conv2d_opt_recipe", "conv2d_symbolic", "conv2d_tensors",
    "dense_naive_recipe", "dense_opt_recipe", "dense_tensors",
    "depthwise_naive_recipe", "depthwise_opt_recipe", "depthwise_symbolic",
    "depthwise_tensors", "flatten_tensors", "gap_tensors",
    "make_activation", "pad_symbolic", "pad_tensors", "pool_naive_recipe",
    "pool_opt_recipe", "pool_tensors", "recipe_for_kernel",
    "schedule_conv1x1_opt", "schedule_conv2d_naive", "schedule_conv2d_opt",
    "schedule_dense_naive", "schedule_dense_opt",
    "schedule_depthwise_naive", "schedule_depthwise_opt",
    "schedule_pool_naive", "schedule_pool_opt", "schedule_symbolic_conv",
    "schedule_transform", "softmax_kernel_licm", "softmax_kernel_naive",
    "softmax_tensors", "symbolic_conv_recipe", "transform_recipe",
]
