"""Parameterized (symbolic-shape) kernels for folded execution (§5.3, §4.9).

Folded deployments group convolutions with the same filter size and
stride into one kernel whose channel counts and spatial sizes are runtime
arguments (TVM ``te.var``).  Buffers carry symbolic shape and *stride*
arguments exactly like Listing 5.10; by default the innermost stride is
pinned to the literal 1 (Listing 5.11's workaround) so AOC can coalesce
the innermost unrolled accesses — pass ``pin_unit_stride=False`` to
reproduce the uncoalesced behaviour the workaround fixes.

Each builder returns ``(SymbolicConv, inputs, out)`` where the
``SymbolicConv.bindings(...)`` method produces the scalar-argument values
for a concrete layer invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import repro.ir as ir
from repro.errors import ScheduleError
from repro.ir import expr as _e
from repro.schedule import Schedule, create_schedule
from repro.topi.common import ConvTiling, make_activation
from repro.topi.recipes import symbolic_conv_recipe


@dataclass
class SymbolicShapes:
    """The symbolic scalar arguments of a parameterized kernel."""

    vars: Dict[str, _e.Var] = field(default_factory=dict)

    def var(self, name: str) -> _e.Var:
        if name not in self.vars:
            self.vars[name] = _e.Var(name)
        return self.vars[name]

    def bind(self, **values: int) -> Dict[_e.Var, int]:
        """Map var-name keyword values to a Var->int binding dict."""
        out: Dict[_e.Var, int] = {}
        for name, value in values.items():
            if name not in self.vars:
                raise ScheduleError(f"unknown symbolic var {name!r}")
            out[self.vars[name]] = int(value)
        return out


class SymbolicConv:
    """Handle for a parameterized convolution kernel's symbols."""

    def __init__(self, shapes: SymbolicShapes, f: int, s: int, depthwise: bool) -> None:
        self.shapes = shapes
        self.f = f
        self.s = s
        self.depthwise = depthwise

    def bindings(self, c1: int, hi: int, wi: int, k: Optional[int] = None) -> Dict[_e.Var, int]:
        """Scalar-argument values for one layer invocation.

        ``hi``/``wi`` are the (pre-padded) input spatial sizes; ``k`` the
        output channels (ignored for depthwise).
        """
        ho = (hi - self.f) // self.s + 1
        wo = (wi - self.f) // self.s + 1
        values = dict(
            n_c1=c1, n_hi=hi, n_wi=wi, n_ho=ho, n_wo=wo,
            s_i0=hi * wi, s_i1=wi,
            # unpinned innermost strides are always 1 at runtime — the
            # point of Listing 5.11 is that AOC cannot *prove* that
            s_i2=1, s_o2=1, s_r2=1,
        )
        if self.depthwise:
            values.update(s_o0=ho * wo, s_o1=wo)
        else:
            assert k is not None, "standard conv needs output channels k"
            values.update(
                n_c2=k,
                s_w0=c1 * self.f * self.f,
                s_o0=ho * wo, s_o1=wo,
            )
        present = {v.name for v in self.shapes.vars.values()}
        return {
            var: values[name]
            for name, var in self.shapes.vars.items()
            if name in values and name in present
        }


def conv2d_symbolic(
    f: int,
    s: int,
    name: str,
    bias: bool = True,
    activation: Optional[str] = None,
    residual: bool = False,
    batchnorm: bool = False,
    pin_unit_stride: bool = True,
) -> Tuple[SymbolicConv, Dict[str, ir.Tensor], ir.Tensor]:
    """Parameterized standard convolution with fixed filter size/stride."""
    sh = SymbolicShapes()
    c1, c2 = sh.var("n_c1"), sh.var("n_c2")
    hi, wi = sh.var("n_hi"), sh.var("n_wi")
    ho, wo = sh.var("n_ho"), sh.var("n_wo")
    inner = 1 if pin_unit_stride else sh.var("s_i2")
    I = ir.Tensor(f"{name}_in", (c1, hi, wi))
    I.buffer.strides = (sh.var("s_i0"), sh.var("s_i1"), inner)
    W = ir.Tensor(f"{name}_w", (c2, c1, f, f))
    # only the outermost weight stride depends on a runtime dim (C1);
    # the rest are compile-time constants of the fixed filter size
    W.buffer.strides = (sh.var("s_w0"), f * f, f, 1)
    inputs = {"I": I, "W": W}
    tensors = [I, W]
    B = R = S = Z = None
    if bias:
        B = ir.placeholder((c2,), f"{name}_b")
        inputs["B"] = B
        tensors.append(B)
    if batchnorm:
        S = ir.placeholder((c2,), f"{name}_scale")
        Z = ir.placeholder((c2,), f"{name}_shift")
        inputs["S"], inputs["Z"] = S, Z
        tensors.extend([S, Z])
    if residual:
        R = ir.Tensor(f"{name}_res", (c2, ho, wo))
        R.buffer.strides = (sh.var("s_o0"), sh.var("s_o1"), 1 if pin_unit_stride else sh.var("s_r2"))
        inputs["R"] = R
        tensors.append(R)
    act = make_activation(activation)

    def epilogue(v, ff, yy, xx):
        if B is not None:
            v = v + B[ff]
        if S is not None:
            v = v * S[ff] + Z[ff]
        if R is not None:
            v = v + R[ff, yy, xx]
        return act(v)

    rc = ir.reduce_axis(c1, "rc")
    ry = ir.reduce_axis(f, "ry")
    rx = ir.reduce_axis(f, "rx")
    out = ir.compute(
        (c2, ho, wo),
        lambda ff, yy, xx: ir.sum(
            I[rc, yy * s + ry, xx * s + rx] * W[ff, rc, ry, rx], [rc, ry, rx]
        ),
        name,
        inputs=tensors,
        axis_names=["ff", "yy", "xx"],
        epilogue=epilogue,
    )
    out.buffer.strides = (sh.var("s_o0"), sh.var("s_o1"), 1 if pin_unit_stride else sh.var("s_o2"))
    return SymbolicConv(sh, f, s, depthwise=False), inputs, out


def depthwise_symbolic(
    f: int,
    s: int,
    name: str,
    bias: bool = True,
    activation: Optional[str] = None,
    batchnorm: bool = False,
    pin_unit_stride: bool = True,
) -> Tuple[SymbolicConv, Dict[str, ir.Tensor], ir.Tensor]:
    """Parameterized depthwise convolution with fixed filter size/stride."""
    sh = SymbolicShapes()
    c1 = sh.var("n_c1")
    hi, wi = sh.var("n_hi"), sh.var("n_wi")
    ho, wo = sh.var("n_ho"), sh.var("n_wo")
    inner = 1 if pin_unit_stride else sh.var("s_i2")
    I = ir.Tensor(f"{name}_in", (c1, hi, wi))
    I.buffer.strides = (sh.var("s_i0"), sh.var("s_i1"), inner)
    W = ir.Tensor(f"{name}_w", (c1, f, f))
    W.buffer.strides = (f * f, f, 1)  # fully static: filter size is fixed
    inputs = {"I": I, "W": W}
    tensors = [I, W]
    B = S = Z = None
    if bias:
        B = ir.placeholder((c1,), f"{name}_b")
        inputs["B"] = B
        tensors.append(B)
    if batchnorm:
        S = ir.placeholder((c1,), f"{name}_scale")
        Z = ir.placeholder((c1,), f"{name}_shift")
        inputs["S"], inputs["Z"] = S, Z
        tensors.extend([S, Z])
    act = make_activation(activation)

    def epilogue(v, cc, yy, xx):
        if B is not None:
            v = v + B[cc]
        if S is not None:
            v = v * S[cc] + Z[cc]
        return act(v)

    ry = ir.reduce_axis(f, "ry")
    rx = ir.reduce_axis(f, "rx")
    out = ir.compute(
        (c1, ho, wo),
        lambda cc, yy, xx: ir.sum(
            I[cc, yy * s + ry, xx * s + rx] * W[cc, ry, rx], [ry, rx]
        ),
        name,
        inputs=tensors,
        axis_names=["cc", "yy", "xx"],
        epilogue=epilogue,
    )
    out.buffer.strides = (sh.var("s_o0"), sh.var("s_o1"), 1 if pin_unit_stride else sh.var("s_o2"))
    return SymbolicConv(sh, f, s, depthwise=True), inputs, out


class SymbolicPad:
    """Handle for the parameterized padding kernel's symbols."""

    def __init__(self, shapes: SymbolicShapes, before: int, after: int) -> None:
        self.shapes = shapes
        self.before = before
        self.after = after

    def bindings(self, c: int, hi: int, wi: int) -> Dict[_e.Var, int]:
        total = self.before + self.after
        ho, wo = hi + total, wi + total
        return self.shapes.bind(
            n_c=c, n_hi=hi, n_wi=wi, n_ho=ho, n_wo=wo,
            s_i0=hi * wi, s_i1=wi, s_o0=ho * wo, s_o1=wo,
        )


def pad_symbolic(
    before: int, after: int, name: str
) -> Tuple[SymbolicPad, Dict[str, ir.Tensor], ir.Tensor]:
    """Parameterized zero-padding kernel with fixed pad amounts."""
    sh = SymbolicShapes()
    c = sh.var("n_c")
    hi, wi = sh.var("n_hi"), sh.var("n_wi")
    ho, wo = sh.var("n_ho"), sh.var("n_wo")
    I = ir.Tensor(f"{name}_in", (c, hi, wi))
    I.buffer.strides = (sh.var("s_i0"), sh.var("s_i1"), 1)

    def fcompute(cc, yy, xx):
        in_bounds = ir.And(
            ir.And(yy >= before, yy < hi + before),
            ir.And(xx >= before, xx < wi + before),
        )
        yy_c = ir.Max(ir.Min(yy - before, hi - 1), ir.IntImm(0))
        xx_c = ir.Max(ir.Min(xx - before, wi - 1), ir.IntImm(0))
        return ir.Select(in_bounds, I[cc, yy_c, xx_c], ir.FloatImm(0.0))

    out = ir.compute(
        (c, ho, wo), fcompute, name, inputs=[I], axis_names=["cc", "yy", "xx"]
    )
    out.buffer.strides = (sh.var("s_o0"), sh.var("s_o1"), 1)
    return SymbolicPad(sh, before, after), {"I": I}, out


def schedule_symbolic_conv(
    out: ir.Tensor, tiling: ConvTiling, is_1x1: bool
) -> Schedule:
    """Tile/unroll a parameterized conv: inner tiles are static, so they
    unroll; outer loops keep symbolic trip counts (§5.3)."""
    depthwise = len(out.op.reduce_axes) != 3
    return symbolic_conv_recipe(tiling, is_1x1, depthwise=depthwise).apply(
        create_schedule(out)
    )
