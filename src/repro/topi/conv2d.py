"""2-D convolution: compute definition and naive/optimized schedules.

Reproduces thesis Section 5.1.1:

* the **naive** schedule is TVM's generic NCHW HLS schedule (Listing 5.1):
  six nested loops, accumulation into a global scratchpad sized
  ``ho x wo`` with writeback (and activation) in a separate loop nest at
  the output-channel level — giving II=5 accumulation and serial outers;
* the **optimized** schedule (Listings 5.2/5.3) fuses the epilogue into
  the main nest, caches the accumulation in registers, fully unrolls the
  ``FxF`` reduction and optionally tiles/unrolls output columns
  (``w2vec``) and input channels (``c1vec``);
* **1x1 convolutions** (Listing 5.4) additionally tile/unroll output
  channels (``c2vec``) since the FxF axes are degenerate.

The symbolic-shape (parameterized) variants live in
:mod:`repro.topi.symbolic`.
"""

from __future__ import annotations

from typing import Dict, Tuple

import repro.ir as ir
from repro.errors import ScheduleError
from repro.schedule import Schedule, create_schedule
from repro.topi.common import ConvSpec, ConvTiling, make_activation
from repro.topi.recipes import (
    conv1x1_opt_recipe,
    conv2d_naive_recipe,
    conv2d_opt_recipe,
)


def conv2d_tensors(spec: ConvSpec, name: str) -> Tuple[Dict[str, ir.Tensor], ir.Tensor]:
    """Build conv tensors: input FM, weights, optional bias/residual, output.

    Returns ``(inputs dict, output tensor)``.  The epilogue applies
    bias -> residual add -> activation, matching the fusion order of the
    graph pass.
    """
    I = ir.placeholder((spec.c1, spec.h, spec.w), f"{name}_in")
    W = ir.placeholder((spec.k, spec.c1, spec.f, spec.f), f"{name}_w")
    inputs = {"I": I, "W": W}
    tensors = [I, W]
    B = R = S = Z = None
    if spec.bias:
        B = ir.placeholder((spec.k,), f"{name}_b")
        inputs["B"] = B
        tensors.append(B)
    if spec.batchnorm:
        S = ir.placeholder((spec.k,), f"{name}_scale")
        Z = ir.placeholder((spec.k,), f"{name}_shift")
        inputs["S"], inputs["Z"] = S, Z
        tensors.extend([S, Z])
    if spec.residual:
        R = ir.placeholder((spec.k, spec.ho, spec.wo), f"{name}_res")
        inputs["R"] = R
        tensors.append(R)
    act = make_activation(spec.activation)

    def epilogue(v: ir.Expr, ff: ir.Expr, yy: ir.Expr, xx: ir.Expr) -> ir.Expr:
        if B is not None:
            v = v + B[ff]
        if S is not None:
            v = v * S[ff] + Z[ff]
        if R is not None:
            v = v + R[ff, yy, xx]
        return act(v)

    rc = ir.reduce_axis(spec.c1, "rc")
    ry = ir.reduce_axis(spec.f, "ry")
    rx = ir.reduce_axis(spec.f, "rx")
    s = spec.s
    out = ir.compute(
        (spec.k, spec.ho, spec.wo),
        lambda ff, yy, xx: ir.sum(
            I[rc, yy * s + ry, xx * s + rx] * W[ff, rc, ry, rx], [rc, ry, rx]
        ),
        name,
        inputs=tensors,
        axis_names=["ff", "yy", "xx"],
        epilogue=epilogue,
    )
    return inputs, out


def schedule_conv2d_naive(out: ir.Tensor, auto_unroll_ff: bool = False) -> Schedule:
    """TVM default HLS schedule (Listing 5.1).

    Global scratchpad covering the spatial dims, writeback at the
    output-channel axis.  ``auto_unroll_ff`` models Quartus < 19.1
    automatically unrolling small-trip-count loops (the FxF reduction),
    which the thesis observes on the A10 and S10SX baselines.
    """
    return conv2d_naive_recipe(auto_unroll_ff).apply(create_schedule(out))


def schedule_conv2d_opt(out: ir.Tensor, tiling: ConvTiling) -> Schedule:
    """Optimized direct-conv schedule (Listings 5.2/5.3).

    Register write cache, epilogue fused at the tile boundary, FxF fully
    unrolled, output columns tiled by ``w2vec`` and input channels by
    ``c1vec`` with the inner tiles unrolled.  ``c2vec`` must be 1 here
    (use :func:`schedule_conv1x1_opt` for pointwise convs).
    """
    if tiling.c2vec != 1:
        raise ScheduleError("c2vec tiling applies to 1x1 convs only (use conv1x1)")
    return conv2d_opt_recipe(tiling).apply(create_schedule(out))


def schedule_conv1x1_opt(out: ir.Tensor, tiling: ConvTiling) -> Schedule:
    """Optimized pointwise-conv schedule (Listing 5.4).

    Tiles and unrolls output channels (``c2vec``), output columns
    (``w2vec``) and input channels (``c1vec``); the accumulator is a
    ``c2vec x w2vec`` register tile.
    """
    sch = create_schedule(out)
    if sch.stages[0].op.inputs[1].shape[-1] != 1:
        raise ScheduleError("schedule_conv1x1_opt requires F=1")
    return conv1x1_opt_recipe(tiling).apply(sch)
