"""Fully-connected (dense) layer: compute and schedules (thesis §5.1.2).

The unbatched dense layer is a matrix-vector product.  The naive schedule
(Listing 5.5) keeps the scalar dot product in a global scratchpad; the
optimized schedule (Listing 5.6) strip-mines the reduction by a factor
that maximizes global-memory utilization, unrolls the strip, caches the
accumulation in a register and caches the input vector on-chip (weights
have no reuse and set the kernel's memory demand).
"""

from __future__ import annotations

from typing import Dict, Tuple

import repro.ir as ir
from repro.schedule import Schedule, create_schedule
from repro.topi.common import DenseSpec, make_activation
from repro.topi.recipes import dense_naive_recipe, dense_opt_recipe


def dense_tensors(spec: DenseSpec, name: str) -> Tuple[Dict[str, ir.Tensor], ir.Tensor]:
    """Build dense tensors: input vector, (M, N) weights, optional bias."""
    I = ir.placeholder((spec.n,), f"{name}_in")
    W = ir.placeholder((spec.m, spec.n), f"{name}_w")
    inputs = {"I": I, "W": W}
    tensors = [I, W]
    B = None
    if spec.bias:
        B = ir.placeholder((spec.m,), f"{name}_b")
        inputs["B"] = B
        tensors.append(B)
    act = make_activation(spec.activation)

    def epilogue(v: ir.Expr, j: ir.Expr) -> ir.Expr:
        if B is not None:
            v = v + B[j]
        return act(v)

    k = ir.reduce_axis(spec.n, "k")
    out = ir.compute(
        (spec.m,),
        lambda j: ir.sum(I[k] * W[j, k], [k]),
        name,
        inputs=tensors,
        axis_names=["j"],
        epilogue=epilogue,
    )
    return inputs, out


def schedule_dense_naive(out: ir.Tensor) -> Schedule:
    """Listing 5.5: scalar dot product accumulated in global memory."""
    return dense_naive_recipe().apply(create_schedule(out))


def schedule_dense_opt(out: ir.Tensor, unroll_factor: int) -> Schedule:
    """Listing 5.6: strip-mine the reduction, unroll, register-cache."""
    return dense_opt_recipe(unroll_factor).apply(create_schedule(out))
