"""Recipe builders: each topi schedule flavor as a declarative recipe.

Every ``schedule_*`` function in this package is a thin wrapper that
builds a :class:`~repro.schedule.transforms.ScheduleRecipe` here and
applies it to a fresh schedule.  The recipe is the source of truth: the
folded builder attaches it to each :class:`ScheduledKernel`, the compile
cache keys on its fingerprint, and ``flow.autofix`` appends deltas to
it.  Builders take the same tiling knobs as the imperative schedules
they replaced and must reproduce them step for step — the tier-1 suite
and the committed advice baseline pin that equivalence.
"""

from __future__ import annotations

from typing import List, Optional

import repro.ir as ir
from repro.schedule.transforms import ScheduleRecipe, recipe
from repro.topi.common import ConvTiling


def conv2d_naive_recipe(auto_unroll_ff: bool = False) -> ScheduleRecipe:
    """Listing 5.1: writeback at the output-channel axis, no caching."""
    r = recipe().writeback_at("ff")
    if auto_unroll_ff:
        r = r.unroll("ry").unroll("rx")
    return r


def conv2d_opt_recipe(tiling: ConvTiling) -> ScheduleRecipe:
    """Listings 5.2/5.3: register cache, W2/C1 tiling, FxF unroll."""
    r = recipe().cache_write("register")
    if tiling.w2vec > 1:
        r = r.split("xx", tiling.w2vec).unroll("xxi")
        wb = "xxo"
    else:
        wb = "xx"
    if tiling.c1vec > 1:
        r = r.split("rc", tiling.c1vec).unroll("rci")
    if tiling.unroll_ff:
        r = r.unroll("ry").unroll("rx")
    r = r.writeback_at(wb)
    if tiling.w2vec > 1:
        # move the unrolled xxi inside the reduction: leaf order becomes
        # ff, yy, xxo, rco, rci, xxi, ry, rx (Listing 5.3)
        if tiling.c1vec > 1:
            order = ["ff", "yy", "xxo", "rco", "rci", "xxi", "ry", "rx"]
        else:
            order = ["ff", "yy", "xxo", "rc", "xxi", "ry", "rx"]
        r = r.reorder(*order)
    return r.cache_read(input=0).cache_read(input=1)


def conv1x1_opt_recipe(tiling: ConvTiling) -> ScheduleRecipe:
    """Listing 5.4: C2/W2/C1 tiling with a c2vec x w2vec register tile."""
    r = recipe().cache_write("register")
    if tiling.c2vec > 1:
        r = r.split("ff", tiling.c2vec).unroll("ffi")
    if tiling.w2vec > 1:
        r = r.split("xx", tiling.w2vec).unroll("xxi")
    if tiling.c1vec > 1:
        r = r.split("rc", tiling.c1vec).unroll("rci")
    data_outer = [
        "ffo" if tiling.c2vec > 1 else "ff",
        "yy",
        "xxo" if tiling.w2vec > 1 else "xx",
    ]
    first_reduce = "rco" if tiling.c1vec > 1 else "rc"
    inner: List[str] = []
    if tiling.w2vec > 1:
        inner.append("xxi")
    if tiling.c2vec > 1:
        inner.append("ffi")
    if tiling.c1vec > 1:
        inner.append("rci")
    order = data_outer + [first_reduce] + inner + ["ry", "rx"]
    r = r.reorder(*order).writeback_at(data_outer[-1])
    return r.cache_read(input=0).cache_read(input=1)


def symbolic_conv_recipe(
    tiling: ConvTiling, is_1x1: bool, depthwise: bool = False
) -> ScheduleRecipe:
    """Parameterized conv (§5.3): static inner tiles unroll, outers stay
    symbolic.  Mirrors :func:`repro.topi.schedule_symbolic_conv`."""
    ch = "cc" if depthwise else "ff"
    r = recipe().cache_write("register")
    split_ff = is_1x1 and not depthwise and tiling.c2vec > 1
    if split_ff:
        r = r.split(ch, tiling.c2vec).unroll(ch + "i")
    if tiling.w2vec > 1:
        r = r.split("xx", tiling.w2vec).unroll("xxi")
    split_rc = not depthwise and tiling.c1vec > 1
    if split_rc:
        r = r.split("rc", tiling.c1vec).unroll("rci")
    if tiling.unroll_ff:
        r = r.unroll("ry").unroll("rx")
    data_order = [
        ch + "o" if split_ff else ch,
        "yy",
        "xxo" if tiling.w2vec > 1 else "xx",
    ]
    reduce_outer = [] if depthwise else ["rco" if split_rc else "rc"]
    inner: List[str] = []
    if tiling.w2vec > 1:
        inner.append("xxi")
    if split_ff:
        inner.append(ch + "i")
    if split_rc:
        inner.append("rci")
    order = data_order + reduce_outer + inner + ["ry", "rx"]
    r = r.reorder(*order).writeback_at(data_order[-1])
    return r.cache_read(input=0).cache_read(input=1)


def depthwise_naive_recipe(auto_unroll_ff: bool = False) -> ScheduleRecipe:
    """Default depthwise schedule: writeback at the channel axis."""
    r = recipe().writeback_at("cc")
    if auto_unroll_ff:
        r = r.unroll("ry").unroll("rx")
    return r


def depthwise_opt_recipe(tiling: ConvTiling) -> ScheduleRecipe:
    """Optimized depthwise: W2 tiling, FxF unroll, register cache."""
    r = recipe().cache_write("register")
    if tiling.w2vec > 1:
        r = r.split("xx", tiling.w2vec).unroll("xxi")
        wb = "xxo"
    else:
        wb = "xx"
    if tiling.unroll_ff:
        r = r.unroll("ry").unroll("rx")
    r = r.writeback_at(wb)
    return r.cache_read(input=0).cache_read(input=1)


def dense_naive_recipe() -> ScheduleRecipe:
    """Listing 5.5: scalar dot product, global scratchpad."""
    return recipe()


def dense_opt_recipe(unroll_factor: int) -> ScheduleRecipe:
    """Listing 5.6: strip-mine + unroll the reduction, register cache."""
    r = recipe().cache_write("register")
    if unroll_factor > 1:
        r = r.split("k", unroll_factor).unroll("ki")
    return r.cache_read(input=0)


def pool_naive_recipe() -> ScheduleRecipe:
    """Default pooling schedule: per-element reduction, no caching."""
    return recipe()


def pool_opt_recipe(out: ir.Tensor) -> ScheduleRecipe:
    """Unroll the (static, small) pooling window, register-cache."""
    r = recipe().cache_write("register")
    for ax in out.op.reduce_axes:
        if ax.static_extent is not None and ax.static_extent <= 16:
            r = r.unroll(ax.name)
    return r


def transform_recipe() -> ScheduleRecipe:
    """Pad/flatten kernels are never unrolled (thesis Table 4.1)."""
    return recipe()


def recipe_for_kernel(
    op: str,
    tiling: Optional[ConvTiling] = None,
    **kwargs: object,
) -> ScheduleRecipe:
    """Dispatch helper: recipe for a named op flavor (used by flows)."""
    if op == "conv2d_naive":
        return conv2d_naive_recipe(bool(kwargs.get("auto_unroll_ff", False)))
    if op == "conv2d_opt":
        assert tiling is not None
        return conv2d_opt_recipe(tiling)
    if op == "conv1x1_opt":
        assert tiling is not None
        return conv1x1_opt_recipe(tiling)
    if op == "symbolic_conv":
        assert tiling is not None
        return symbolic_conv_recipe(
            tiling,
            is_1x1=bool(kwargs.get("is_1x1", False)),
            depthwise=bool(kwargs.get("depthwise", False)),
        )
    if op == "depthwise_naive":
        return depthwise_naive_recipe(bool(kwargs.get("auto_unroll_ff", False)))
    if op == "depthwise_opt":
        assert tiling is not None
        return depthwise_opt_recipe(tiling)
    if op == "dense_naive":
        return dense_naive_recipe()
    if op == "dense_opt":
        return dense_opt_recipe(int(kwargs["unroll_factor"]))  # type: ignore[arg-type]
    if op == "pool_naive":
        return pool_naive_recipe()
    if op == "transform":
        return transform_recipe()
    raise ValueError(f"no recipe builder for op flavor {op!r}")
