"""Depthwise 3x3 convolution: compute and schedules (thesis Table 6.7).

MobileNetV1's depthwise layers apply one FxF filter per channel.  The
optimized schedule tiles output columns by ``w2vec`` (7 in the thesis)
and fully unrolls the FxF window; there is no input-channel reduction to
tile.  The windowed input reads cannot be coalesced, which is why the
thesis measures depthwise layers at ~1/30th of the pointwise GFLOPS.
"""

from __future__ import annotations

from typing import Dict, Tuple

import repro.ir as ir
from repro.schedule import Schedule, create_schedule
from repro.topi.common import ConvSpec, ConvTiling, make_activation
from repro.topi.recipes import depthwise_naive_recipe, depthwise_opt_recipe


def depthwise_tensors(spec: ConvSpec, name: str) -> Tuple[Dict[str, ir.Tensor], ir.Tensor]:
    """Build depthwise-conv tensors; ``spec.k`` must equal ``spec.c1``."""
    I = ir.placeholder((spec.c1, spec.h, spec.w), f"{name}_in")
    W = ir.placeholder((spec.c1, spec.f, spec.f), f"{name}_w")
    inputs = {"I": I, "W": W}
    tensors = [I, W]
    B = S = Z = None
    if spec.bias:
        B = ir.placeholder((spec.c1,), f"{name}_b")
        inputs["B"] = B
        tensors.append(B)
    if spec.batchnorm:
        S = ir.placeholder((spec.c1,), f"{name}_scale")
        Z = ir.placeholder((spec.c1,), f"{name}_shift")
        inputs["S"], inputs["Z"] = S, Z
        tensors.extend([S, Z])
    act = make_activation(spec.activation)

    def epilogue(v: ir.Expr, cc: ir.Expr, yy: ir.Expr, xx: ir.Expr) -> ir.Expr:
        if B is not None:
            v = v + B[cc]
        if S is not None:
            v = v * S[cc] + Z[cc]
        return act(v)

    ry = ir.reduce_axis(spec.f, "ry")
    rx = ir.reduce_axis(spec.f, "rx")
    s = spec.s
    out = ir.compute(
        (spec.c1, spec.ho, spec.wo),
        lambda cc, yy, xx: ir.sum(
            I[cc, yy * s + ry, xx * s + rx] * W[cc, ry, rx], [ry, rx]
        ),
        name,
        inputs=tensors,
        axis_names=["cc", "yy", "xx"],
        epilogue=epilogue,
    )
    return inputs, out


def schedule_depthwise_naive(out: ir.Tensor, auto_unroll_ff: bool = False) -> Schedule:
    """Default schedule: global scratch over (yy, xx), writeback at cc."""
    return depthwise_naive_recipe(auto_unroll_ff).apply(create_schedule(out))


def schedule_depthwise_opt(out: ir.Tensor, tiling: ConvTiling) -> Schedule:
    """Optimized schedule: tile W2 by ``w2vec``, unroll FxF, register cache."""
    return depthwise_opt_recipe(tiling).apply(create_schedule(out))
