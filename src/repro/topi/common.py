"""Shared TOPI helpers: specs, activations and epilogue construction.

A TOPI entry builds (a) the tensor-expression compute for an operator and
(b) naive or optimized schedules for it.  The *naive* schedule reproduces
TVM's default HLS-backend behaviour the thesis starts from (global
scratchpad accumulation, separate writeback, no unrolling); *optimized*
schedules apply the Chapter 4/5 transformations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ScheduleError
from repro.ir import expr as _e


def make_activation(kind: Optional[str]) -> Callable[[_e.Expr], _e.Expr]:
    """Elementwise activation expression builder ('relu', 'relu6' or None)."""
    if kind is None:
        return lambda v: v
    if kind == "relu":
        return lambda v: _e.Max(v, _e.FloatImm(0.0))
    if kind == "relu6":
        return lambda v: _e.Min(_e.Max(v, _e.FloatImm(0.0)), _e.FloatImm(6.0))
    raise ScheduleError(f"unknown activation {kind!r}")


@dataclass(frozen=True)
class ConvSpec:
    """Static geometry + fused epilogue description of one conv kernel.

    ``h``/``w`` are the *pre-padded* input spatial sizes (padding is a
    separate kernel in this flow); geometry must satisfy
    ``ho = (h - f) // s + 1``.
    """

    c1: int  #: input channels
    h: int  #: input height (already padded)
    w: int  #: input width (already padded)
    k: int  #: filters / output channels
    f: int  #: filter size
    s: int = 1  #: stride
    bias: bool = True
    activation: Optional[str] = None
    residual: bool = False  #: fused residual add (extra input tensor)
    batchnorm: bool = False  #: fused inference batch norm (scale/shift)

    @property
    def ho(self) -> int:
        return (self.h - self.f) // self.s + 1

    @property
    def wo(self) -> int:
        return (self.w - self.f) // self.s + 1

    @property
    def macs(self) -> int:
        return self.k * self.ho * self.wo * self.c1 * self.f * self.f


@dataclass(frozen=True)
class ConvTiling:
    """Tiling/unrolling factors for optimized conv schedules (§5.1.1).

    ``w2vec`` tiles output columns, ``c2vec`` output channels (1x1 convs),
    ``c1vec`` input channels; ``unroll_ff`` fully unrolls the FxF reduction.
    Factors of 1 mean "no tiling in that dimension".
    """

    w2vec: int = 1
    c2vec: int = 1
    c1vec: int = 1
    unroll_ff: bool = True

    def dsp_per_cycle(self, f: int) -> int:
        """MACs issued per cycle = replicated DSP count."""
        ff = f * f if self.unroll_ff else 1
        return self.w2vec * self.c2vec * self.c1vec * ff


@dataclass(frozen=True)
class DenseSpec:
    """Fully-connected layer geometry."""

    n: int  #: input features
    m: int  #: output units
    bias: bool = True
    activation: Optional[str] = None

    @property
    def macs(self) -> int:
        return self.m * self.n


@dataclass(frozen=True)
class PoolSpec:
    """Pooling geometry (max or average)."""

    c: int
    h: int
    w: int
    field: int
    stride: int
    kind: str = "max"  #: 'max' or 'avg'

    @property
    def ho(self) -> int:
        return (self.h - self.field) // self.stride + 1

    @property
    def wo(self) -> int:
        return (self.w - self.field) // self.stride + 1
