"""Zero-padding and flatten kernels (the "transform" kernels).

TVM generates padding as a separate kernel using conditional writes; the
thesis notes these kernels do no computation yet consume 8-22% of the
optimized runtime, and that their select/modulo addressing style "does
not generate efficient hardware".  We reproduce both faithfully:
padding uses a Select over bounds tests; flatten copies through
div/mod address arithmetic.  Neither is unrolled (Table 4.1: loop
unrolling is applied to all kernels *except* transpose/padding).
"""

from __future__ import annotations

from typing import Dict, Tuple

import repro.ir as ir
from repro.schedule import Schedule, create_schedule
from repro.topi.recipes import transform_recipe


def pad_tensors(
    c: int, h: int, w: int, before: int, after: int, name: str
) -> Tuple[Dict[str, ir.Tensor], ir.Tensor]:
    """Zero-pad a CHW tensor by (before, after) on both spatial dims."""
    I = ir.placeholder((c, h, w), f"{name}_in")
    ho = h + before + after
    wo = w + before + after

    def fcompute(cc, yy, xx):
        in_bounds = ir.And(
            ir.And(yy >= before, yy < before + h),
            ir.And(xx >= before, xx < before + w),
        )
        # both arms are materialized, exactly like the generated OpenCL;
        # the out-of-bounds load is clamped to 0 via min/max index math
        yy_c = ir.Max(ir.Min(yy - before, ir.IntImm(h - 1)), ir.IntImm(0))
        xx_c = ir.Max(ir.Min(xx - before, ir.IntImm(w - 1)), ir.IntImm(0))
        return ir.Select(in_bounds, I[cc, yy_c, xx_c], ir.FloatImm(0.0))

    out = ir.compute(
        (c, ho, wo),
        fcompute,
        name,
        inputs=[I],
        axis_names=["cc", "yy", "xx"],
    )
    return {"I": I}, out


def flatten_tensors(c: int, h: int, w: int, name: str) -> Tuple[Dict[str, ir.Tensor], ir.Tensor]:
    """Flatten CHW -> vector with div/mod addressing (TVM's transform)."""
    I = ir.placeholder((c, h, w), f"{name}_in")
    n = c * h * w

    def fcompute(i):
        return I[i // (h * w), (i // w) % h, i % w]

    out = ir.compute((n,), fcompute, name, inputs=[I], axis_names=["i"])
    return {"I": I}, out


def schedule_transform(out: ir.Tensor) -> Schedule:
    """Transforms are never unrolled (thesis Table 4.1)."""
    return transform_recipe().apply(create_schedule(out))
