"""Softmax: four chained stages and the LICM optimization (thesis §5.1.3).

TVM computes softmax as max-element, exponentials, exponential sum and
normalization.  The **naive** schedule (Listing 5.7) attaches the first
three stages *inside* the normalization loop, recomputing them for every
output element; the **optimized** schedule (Listing 5.8) hoists them out
— classic loop-invariant code motion, worth a factor of ~N in work.
"""

from __future__ import annotations

from typing import Dict, Tuple

import repro.ir as ir
from repro.schedule import create_schedule
from repro.schedule.lower import lower as _lower
from repro.ir.kernel import Kernel


def softmax_tensors(n: int, name: str) -> Tuple[Dict[str, ir.Tensor], Tuple[ir.Tensor, ...]]:
    """Build the four softmax stages over an ``n``-class input.

    Returns ``(inputs, (maxelem, exps, expsum, norm))``; the last tensor
    is the kernel output.
    """
    I = ir.placeholder((n,), f"{name}_in")
    k = ir.reduce_axis(n, "k")
    maxelem = ir.compute(
        (1,),
        lambda z: ir.max_reduce(I[k], [k]),
        f"{name}_maxelem",
        inputs=[I],
        axis_names=["z"],
    )
    exps = ir.compute(
        (n,),
        lambda i: ir.exp(I[i] - maxelem[0]),
        f"{name}_exp",
        inputs=[I, maxelem],
        axis_names=["i"],
    )
    k1 = ir.reduce_axis(n, "k1")
    expsum = ir.compute(
        (1,),
        lambda z: ir.sum(exps[k1], [k1]),
        f"{name}_expsum",
        inputs=[exps],
        axis_names=["z"],
    )
    norm = ir.compute(
        (n,),
        lambda i: exps[i] / expsum[0],
        f"{name}_norm",
        inputs=[exps, expsum],
        axis_names=["i"],
    )
    return {"I": I}, (maxelem, exps, expsum, norm)


def softmax_kernel_naive(n: int, name: str, kernel_name: str) -> Kernel:
    """Listing 5.7: max/exp/sum recomputed inside the normalization loop."""
    _, tensors = softmax_tensors(n, name)
    maxelem, exps, expsum, norm = tensors
    sch = create_schedule(*tensors)
    norm_stage = sch[norm]
    (i1,) = norm_stage.data_axes
    attach = {
        sch[maxelem]: (norm_stage, i1),
        sch[exps]: (norm_stage, i1),
        sch[expsum]: (norm_stage, i1),
    }
    return _lower(sch, kernel_name, compute_at=attach)


def softmax_kernel_licm(n: int, name: str, kernel_name: str) -> Kernel:
    """Listing 5.8: loop-invariant stages hoisted out (computed once)."""
    _, tensors = softmax_tensors(n, name)
    sch = create_schedule(*tensors)
    return _lower(sch, kernel_name)
