"""Pooling layers: max, average and global-average pooling.

Pooling kernels have no weights; in pipelined deployments they read and
write only channels, which is what lets the thesis declare them autorun
(Section 4.7).  The optimized schedules unroll the FxF window and cache
the reduction in a register.
"""

from __future__ import annotations

from typing import Dict, Tuple

import repro.ir as ir
from repro.errors import ScheduleError
from repro.schedule import Schedule, create_schedule
from repro.topi.common import PoolSpec
from repro.topi.recipes import pool_naive_recipe, pool_opt_recipe


def pool_tensors(spec: PoolSpec, name: str) -> Tuple[Dict[str, ir.Tensor], ir.Tensor]:
    """Build pooling tensors (max or avg per ``spec.kind``)."""
    I = ir.placeholder((spec.c, spec.h, spec.w), f"{name}_in")
    ry = ir.reduce_axis(spec.field, "ry")
    rx = ir.reduce_axis(spec.field, "rx")
    s = spec.stride
    if spec.kind == "max":
        fcompute = lambda cc, yy, xx: ir.max_reduce(
            I[cc, yy * s + ry, xx * s + rx], [ry, rx]
        )
        epilogue = None
    elif spec.kind == "avg":
        inv = 1.0 / float(spec.field * spec.field)
        fcompute = lambda cc, yy, xx: ir.sum(
            I[cc, yy * s + ry, xx * s + rx], [ry, rx]
        )
        epilogue = lambda v, cc, yy, xx: v * ir.FloatImm(inv)
    else:
        raise ScheduleError(f"unknown pooling kind {spec.kind!r}")
    out = ir.compute(
        (spec.c, spec.ho, spec.wo),
        fcompute,
        name,
        inputs=[I],
        axis_names=["cc", "yy", "xx"],
        epilogue=epilogue,
    )
    return {"I": I}, out


def gap_tensors(c: int, h: int, w: int, name: str) -> Tuple[Dict[str, ir.Tensor], ir.Tensor]:
    """Global average pooling: CHW feature map -> C vector."""
    I = ir.placeholder((c, h, w), f"{name}_in")
    ry = ir.reduce_axis(h, "ry")
    rx = ir.reduce_axis(w, "rx")
    inv = 1.0 / float(h * w)
    out = ir.compute(
        (c,),
        lambda cc: ir.sum(I[cc, ry, rx], [ry, rx]),
        name,
        inputs=[I],
        axis_names=["cc"],
        epilogue=lambda v, cc: v * ir.FloatImm(inv),
    )
    return {"I": I}, out


def schedule_pool_naive(out: ir.Tensor) -> Schedule:
    """Default schedule: per-element reduction in a global scratchpad."""
    return pool_naive_recipe().apply(create_schedule(out))


def schedule_pool_opt(out: ir.Tensor) -> Schedule:
    """Unroll the pooling window, register-cache the reduction."""
    return pool_opt_recipe(out).apply(create_schedule(out))
