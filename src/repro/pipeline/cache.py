"""Content-addressed compile cache for the ``synthesize`` stage.

Offline compilation dominates the real toolflow (AOC runs take hours),
and both the benchmark suite and the DSE sweeps re-synthesize identical
kernel systems dozens of times.  The cache is keyed on the content that
determines a bitstream — generated OpenCL source, channel topology,
board, AOC constants — so a hit returns a bitstream equal to what a
fresh synthesis would produce.

Two backends compose: an in-process LRU :class:`MemoryBackend` (always
on by default) and an optional pickle-per-entry :class:`DiskBackend`
that survives process restarts.  Deterministic synthesis *failures*
(fit/routing) are cached too, as :class:`CachedFailure` entries, so a
DSE sweep does not re-synthesize known-infeasible points.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: environment variable enabling the on-disk backend of the default cache
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_MISS = object()


@dataclass
class CachedFailure:
    """A deterministic synthesis failure, replayable from the cache."""

    kind: str  # exception class name within repro.errors
    message: str
    #: placement seeds the resilient synthesize stage attempted before
    #: giving up (empty when no seed sweep ran)
    seeds_tried: Tuple[int, ...] = ()


class MemoryBackend:
    """In-process LRU store."""

    def __init__(self, max_entries: int = 128) -> None:
        self.max_entries = max_entries
        self._store: "OrderedDict[str, object]" = OrderedDict()

    def get(self, key: str) -> object:
        if key not in self._store:
            return _MISS
        self._store.move_to_end(key)
        return self._store[key]

    def put(self, key: str, value: object) -> None:
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)

    def __len__(self) -> int:
        return len(self._store)


class DiskBackend:
    """One pickle file per entry under a cache directory."""

    def __init__(self, directory: os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> object:
        path = self._path(key)
        if not path.exists():
            return _MISS
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except Exception:
            # corrupt/partial entry: drop it and treat as a miss
            try:
                path.unlink()
            except OSError:
                pass
            return _MISS

    def put(self, key: str, value: object) -> None:
        # atomic publish: write to a temp file, verify it round-trips,
        # then rename into place — a torn or unpicklable entry must never
        # become visible under the final name
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            try:
                with open(tmp, "rb") as fh:
                    pickle.load(fh)
            except Exception as err:
                raise ReproError(
                    f"compile-cache entry {key!r} failed round-trip "
                    f"verification after write: {err}"
                ) from err
            os.replace(tmp, self._path(key))
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))


class CompileCache:
    """Content-addressed cache with layered backends + hit/miss stats."""

    def __init__(
        self,
        backends: Optional[Sequence[object]] = None,
        max_entries: int = 128,
        disk_dir: Optional[os.PathLike] = None,
    ) -> None:
        if backends is None:
            backends = [MemoryBackend(max_entries)]
            if disk_dir:
                backends.append(DiskBackend(disk_dir))
        self.backends: List[object] = list(backends)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Tuple[bool, object]:
        """``(found, value)``; a hit is promoted into earlier backends."""
        for i, backend in enumerate(self.backends):
            value = backend.get(key)
            if value is not _MISS:
                for earlier in self.backends[:i]:
                    earlier.put(key, value)
                self.hits += 1
                return True, value
        self.misses += 1
        return False, None

    def store(self, key: str, value: object) -> None:
        for backend in self.backends:
            backend.put(key, value)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    def __repr__(self) -> str:
        kinds = "+".join(type(b).__name__ for b in self.backends)
        return f"CompileCache({kinds}, {self.hits} hits / {self.misses} misses)"


_default: Optional[CompileCache] = None


def default_cache() -> CompileCache:
    """The process-wide cache used when no explicit cache is passed.

    Honors ``REPRO_CACHE_DIR`` for an on-disk backend; otherwise memory
    only.
    """
    global _default
    if _default is None:
        _default = CompileCache(disk_dir=os.environ.get(CACHE_DIR_ENV) or None)
    return _default


def set_default_cache(cache: Optional[CompileCache]) -> None:
    """Replace (or, with ``None``, reset) the process-wide default cache."""
    global _default
    _default = cache
