"""Stage-based compilation pipeline (thesis Figure 3.1, made explicit).

The deployment flow — graph import/fusion, scheduling, lowering, OpenCL
emission, AOC synthesis, host planning — runs through a small stage/pass
manager.  Each stage consumes and produces typed, content-fingerprinted
artifacts; every run yields a :class:`Trace` of per-stage wall-times,
artifact sizes and counters, and the ``synthesize`` stage is backed by a
content-addressed :class:`CompileCache` so identical designs are never
synthesized twice (offline compilation dominates the real toolflow, so
real systems in this space cache aggressively).
"""

from repro.pipeline.cache import (
    CachedFailure,
    CompileCache,
    DiskBackend,
    MemoryBackend,
    default_cache,
    set_default_cache,
)
from repro.pipeline.fingerprint import canonical, fingerprint, register_canonicalizer
from repro.pipeline.pipeline import (
    Artifact,
    Context,
    Pipeline,
    PipelineResult,
    Stage,
    StageDiagnostic,
    describe_artifact,
    register_annotator,
    register_describer,
)
from repro.pipeline.trace import StageRecord, Trace

__all__ = [
    "Artifact", "CachedFailure", "CompileCache", "Context", "DiskBackend",
    "MemoryBackend", "Pipeline", "PipelineResult", "Stage", "StageDiagnostic",
    "StageRecord", "Trace", "canonical", "default_cache", "describe_artifact",
    "fingerprint", "register_annotator", "register_canonicalizer", "register_describer",
    "set_default_cache",
]
