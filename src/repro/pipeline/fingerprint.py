"""Stable content fingerprints for pipeline artifacts and cache keys.

``fingerprint`` reduces any domain object to a canonical JSON-able
structure and hashes it; two objects with the same semantic content get
the same digest across processes (no ``id()``-derived state enters the
canonical form).  Domain types outside this module's vocabulary can
register a canonicalizer (see :func:`register_canonicalizer`) — the flow
layer does this for its schedule artifacts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from typing import Callable, List, Tuple

from repro.relay.graph import Graph, OpNode
from repro.relay.passes import FusedGraph, FusedNode

#: (type, canonicalizer) pairs; later registrations win
_CANONICALIZERS: List[Tuple[type, Callable[[object], object]]] = []


def register_canonicalizer(cls: type, fn: Callable[[object], object]) -> None:
    """Register a canonical-form function for a domain type."""
    _CANONICALIZERS.append((cls, fn))


def canonical(obj: object) -> object:
    """Reduce ``obj`` to a JSON-able structure stable across processes."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, bytes):
        return obj.hex()
    for cls, fn in reversed(_CANONICALIZERS):
        if isinstance(obj, cls):
            return canonical(fn(obj))
    if isinstance(obj, (tuple, list)):
        return [canonical(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted((canonical(x) for x in obj), key=_sort_key)
    if isinstance(obj, dict):
        entries = [[canonical(k), canonical(v)] for k, v in obj.items()]
        return sorted(entries, key=lambda e: _sort_key(e[0]))
    if isinstance(obj, OpNode):
        return [
            "op", obj.name, obj.op, canonical(obj.attrs),
            [i.name for i in obj.inputs], list(obj.out_shape),
        ]
    if isinstance(obj, Graph):
        return ["graph", obj.name, [canonical(n) for n in obj.nodes]]
    if isinstance(obj, FusedNode):
        return [
            "fused-node", obj.anchor.name, obj.epilogue_kinds(),
            [n.name for n in obj.extra_inputs],
        ]
    if isinstance(obj, FusedGraph):
        return [
            "fused-graph", canonical(obj.graph),
            [canonical(fn) for fn in obj.nodes],
        ]
    if is_dataclass(obj) and not isinstance(obj, type):
        return [
            "dataclass", type(obj).__name__,
            {f.name: canonical(getattr(obj, f.name)) for f in fields(obj)},
        ]
    # last resort: reprs of small value-like objects (IR vars, specs).
    # Anything whose default repr leaks an address should register a
    # canonicalizer instead of relying on this.
    return ["repr", type(obj).__name__, repr(obj)]


def _sort_key(entry: object) -> str:
    return json.dumps(entry, sort_keys=True, default=str)


def fingerprint(obj: object) -> str:
    """Full sha256 hex digest of the canonical form of ``obj``."""
    blob = json.dumps(canonical(obj), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def short_fingerprint(obj: object, length: int = 12) -> str:
    return fingerprint(obj)[:length]
