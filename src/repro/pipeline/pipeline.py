"""The stage/pass manager: named stages over typed, fingerprinted artifacts.

A :class:`Pipeline` is an ordered list of :class:`Stage` objects, each
consuming artifacts already in the :class:`Context` and producing exactly
one new artifact.  Running a pipeline yields a :class:`PipelineResult`
holding every artifact plus a :class:`~repro.pipeline.trace.Trace` with
per-stage wall-times, sizes and counters.

Stages constructed with a ``cache_key`` function are backed by a
:class:`~repro.pipeline.cache.CompileCache`: on a hit the stage body is
skipped entirely and the cached artifact (or a replayed deterministic
failure) is returned.

Failures raise the original :class:`~repro.errors.ReproError` subclass —
``FitError`` stays catchable as ``FitError`` — augmented with a
``.stage`` name and a ``.diagnostic`` :class:`StageDiagnostic` carrying
the artifact fingerprint and the partial trace, so a failure deep in a
DSE sweep is attributable to a concrete stage and input.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro.errors as _errors
from repro.aoc.compiler import Bitstream
from repro.errors import PipelineError, ReproError
from repro.ir.buffer import Channel
from repro.ir.kernel import Kernel, Program
from repro.pipeline.cache import CachedFailure, CompileCache
from repro.pipeline.fingerprint import fingerprint, register_canonicalizer
from repro.pipeline.trace import StageRecord, Trace
from repro.resilience.events import log as _resilience_log
from repro.relay.graph import Graph
from repro.relay.passes import FusedGraph
from repro.runtime.plan import FoldedPlan, PipelinePlan
from repro.verify.diagnostics import VerifyReport


@dataclass
class Artifact:
    """One named, fingerprinted stage product."""

    name: str
    value: object
    fingerprint: str
    size: int = 0
    counters: Dict[str, float] = field(default_factory=dict)


class Stage:
    """One named pipeline stage producing one artifact."""

    def __init__(
        self,
        name: str,
        output: str,
        fn: Callable[["Context"], object],
        cache_key: Optional[Callable[["Context"], str]] = None,
    ) -> None:
        self.name = name
        self.output = output
        self.fn = fn
        self.cache_key = cache_key


class Context:
    """Artifacts accumulated across one pipeline run."""

    def __init__(self, pipeline: str) -> None:
        self.pipeline = pipeline
        self.artifacts: Dict[str, Artifact] = {}

    def put(self, artifact: Artifact) -> None:
        self.artifacts[artifact.name] = artifact

    def artifact(self, name: str) -> Artifact:
        try:
            return self.artifacts[name]
        except KeyError:
            raise PipelineError(
                f"pipeline {self.pipeline}: no artifact {name!r} "
                f"(have {sorted(self.artifacts)})"
            ) from None

    def value(self, name: str) -> object:
        return self.artifact(name).value

    def __contains__(self, name: str) -> bool:
        return name in self.artifacts


@dataclass
class StageDiagnostic:
    """Where and on what a stage failed."""

    pipeline: str
    stage: str
    #: fingerprint of the last successfully produced artifact
    fingerprint: str
    #: partial trace up to and including the failing stage
    trace: Trace

    def __str__(self) -> str:
        return (
            f"stage {self.stage!r} of pipeline {self.pipeline!r} "
            f"(input fingerprint {self.fingerprint[:12] or 'n/a'})"
        )


@dataclass
class PipelineResult:
    """All artifacts plus the execution trace of one run."""

    context: Context
    trace: Trace

    def value(self, name: str) -> object:
        return self.context.value(name)

    def artifact(self, name: str) -> Artifact:
        return self.context.artifact(name)


class Pipeline:
    """An ordered sequence of stages with tracing and optional caching."""

    def __init__(
        self,
        name: str,
        stages: Sequence[Stage],
        cache: Optional[CompileCache] = None,
    ) -> None:
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise PipelineError(f"pipeline {name}: duplicate stage names")
        self.name = name
        self.stages = list(stages)
        self.cache = cache

    # ------------------------------------------------------------------
    def run(self, seed: Optional[Dict[str, object]] = None) -> PipelineResult:
        """Execute all stages.  ``seed`` pre-supplies artifacts by name;
        stages whose output is seeded are skipped (recorded as such)."""
        ctx = Context(self.name)
        records: List[StageRecord] = []
        t0 = time.perf_counter()
        for name, value in (seed or {}).items():
            ctx.put(_make_artifact(name, value))

        last_fp = ""
        for stage in self.stages:
            t_start = time.perf_counter() - t0
            if stage.output in ctx:
                art = ctx.artifact(stage.output)
                records.append(
                    StageRecord(
                        stage=stage.name, status="seeded", t_start=t_start,
                        t_end=t_start, artifact=art.name,
                        fingerprint=art.fingerprint, size=art.size,
                        counters=art.counters, notes=annotate_artifact(art.value),
                    )
                )
                last_fp = art.fingerprint
                continue

            cache_status: Optional[str] = None
            events_cursor = _resilience_log().cursor()
            try:
                value, cache_status = self._execute(stage, ctx)
            except ReproError as err:
                t_end = time.perf_counter() - t0
                records.append(
                    StageRecord(
                        stage=stage.name, status="error", t_start=t_start,
                        t_end=t_end, artifact=stage.output, cache=cache_status,
                        error=f"{type(err).__name__}: {err}",
                        events=_stage_events(events_cursor),
                    )
                )
                diag = StageDiagnostic(
                    pipeline=self.name, stage=stage.name, fingerprint=last_fp,
                    trace=Trace(self.name, records),
                )
                err.stage = stage.name
                err.diagnostic = diag
                raise
            t_end = time.perf_counter() - t0
            art = _make_artifact(stage.output, value)
            ctx.put(art)
            last_fp = art.fingerprint
            records.append(
                StageRecord(
                    stage=stage.name,
                    status="cached" if cache_status == "hit" else "ok",
                    t_start=t_start, t_end=t_end, artifact=art.name,
                    fingerprint=art.fingerprint, size=art.size,
                    counters=art.counters, cache=cache_status,
                    events=_stage_events(events_cursor),
                    notes=annotate_artifact(value),
                )
            )
        return PipelineResult(ctx, Trace(self.name, records))

    # ------------------------------------------------------------------
    def _execute(self, stage: Stage, ctx: Context) -> Tuple[object, Optional[str]]:
        if stage.cache_key is None or self.cache is None:
            return stage.fn(ctx), None
        key = stage.cache_key(ctx)
        found, value = self.cache.lookup(key)
        if found:
            if isinstance(value, CachedFailure):
                raise _replay_failure(value)
            return value, "hit"
        try:
            value = stage.fn(ctx)
        except ReproError as err:
            if _is_deterministic(err):
                self.cache.store(
                    key,
                    CachedFailure(
                        type(err).__name__, str(err),
                        seeds_tried=tuple(getattr(err, "seeds_tried", ())),
                    ),
                )
            raise
        self.cache.store(key, value)
        return value, "miss"


def _stage_events(cursor: int) -> List[Dict[str, object]]:
    """Resilience events recorded since ``cursor``, as plain dicts."""
    return [e.to_dict() for e in _resilience_log().since(cursor)]


def _is_deterministic(err: ReproError) -> bool:
    """Only model-level synthesis outcomes are safe to replay.

    Transient failures clear on retry and injected failures exist only
    under the active fault plan — caching either would poison later
    fault-free runs.
    """
    return (
        isinstance(err, _errors.AOCError)
        and not getattr(err, "transient", False)
        and not getattr(err, "injected", False)
    )


def _replay_failure(failure: CachedFailure) -> ReproError:
    cls = getattr(_errors, failure.kind, None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = ReproError
    err = cls(failure.message)
    err.seeds_tried = tuple(getattr(failure, "seeds_tried", ()))
    return err


# ---------------------------------------------------------------------------
# artifact description: per-type sizes and counters for the trace

_DESCRIBERS: List[Tuple[type, Callable[[object], Tuple[int, Dict[str, float]]]]] = []


def register_describer(
    cls: type, fn: Callable[[object], Tuple[int, Dict[str, float]]]
) -> None:
    """Register a ``value -> (size, counters)`` describer for a type."""
    _DESCRIBERS.append((cls, fn))


def describe_artifact(value: object) -> Tuple[int, Dict[str, float]]:
    for cls, fn in reversed(_DESCRIBERS):
        if isinstance(value, cls):
            return fn(value)
    try:
        return len(value), {}  # type: ignore[arg-type]
    except TypeError:
        return 0, {}


# annotators contribute human-readable trace notes per artifact type —
# e.g. the verify report's performance-advisor findings, so
# ``repro.report --trace`` surfaces them on the verify stage line

_ANNOTATORS: List[Tuple[type, Callable[[object], List[str]]]] = []


def register_annotator(cls: type, fn: Callable[[object], List[str]]) -> None:
    """Register a ``value -> [note, ...]`` annotator for an artifact type."""
    _ANNOTATORS.append((cls, fn))


def annotate_artifact(value: object) -> List[str]:
    for cls, fn in reversed(_ANNOTATORS):
        if isinstance(value, cls):
            return fn(value)
    return []


def _make_artifact(name: str, value: object) -> Artifact:
    size, counters = describe_artifact(value)
    return Artifact(
        name=name, value=value, fingerprint=fingerprint(value), size=size,
        counters=counters,
    )


# -- built-in describers ----------------------------------------------------

def _describe_graph(g: Graph) -> Tuple[int, Dict[str, float]]:
    return len(g.nodes), {
        "nodes": len(g.nodes),
        "params": g.total_params(),
        "flops": g.total_flops(),
    }


def _describe_fused(fg: FusedGraph) -> Tuple[int, Dict[str, float]]:
    return len(fg), {"kernels": len(fg), "flops": fg.total_flops()}


def _describe_program(p: Program) -> Tuple[int, Dict[str, float]]:
    counters = {
        "kernels": len(p.kernels),
        "channels": len(p.all_channels()),
        "autorun": sum(1 for k in p.kernels if k.autorun),
        "parameterized": sum(1 for k in p.kernels if k.is_parameterized),
    }
    # per-kernel lower-cache deltas attached by the incremental lowerers
    # (repro.flow.incremental) — surfaced as lower_* trace counters
    for key, value in getattr(p, "lower_cache", {}).items():
        counters[f"lower_{key}"] = value
    return len(p.kernels), counters


def _describe_source(src: str) -> Tuple[int, Dict[str, float]]:
    return len(src), {
        "bytes": len(src),
        "lines": src.count("\n"),
        "kernels": src.count("kernel void"),
    }


def _describe_bitstream(bs: Bitstream) -> Tuple[int, Dict[str, float]]:
    u = bs.utilization()
    max_ii = 0
    loops = 0
    for hwk in bs.hw.values():
        loops += len(hwk.analysis.loops)
        for node in hwk.analysis.loops.values():
            max_ii = max(max_ii, node.ii)
    return len(bs.hw), {
        "kernels": len(bs.hw),
        "dsps": bs.total.dsps,
        "rams": bs.total.rams,
        "fmax_mhz": round(bs.fmax_mhz),
        "logic_pct": round(100 * u["logic"]),
        "ram_pct": round(100 * u["ram"]),
        "dsp_pct": round(100 * u["dsp"]),
        "loops": loops,
        "max_ii": max_ii,
    }


def _describe_verify_report(r: VerifyReport) -> Tuple[int, Dict[str, float]]:
    c = r.summary_counters()
    counters = {
        "errors": c["error"],
        "warnings": c["warn"],
        "advice": c["advice"],
        "info": c["info"],
        "accesses_proven": c.get("accesses_proven", 0),
        "channels_matched": c.get("channels_matched", 0),
    }
    # equivalence-certifier accounting (repro.verify.equiv): pre-bumped
    # to zero by certify_build, so presence means the certifier ran
    counters.update(
        {k: v for k, v in c.items() if k.startswith("equiv_")}
    )
    # memory-certifier footprint accounting (repro.verify.memory)
    counters.update(
        {k: v for k, v in c.items() if k.startswith("memory_")}
    )
    return len(r.diagnostics), counters


def _describe_pipeline_plan(p: PipelinePlan) -> Tuple[int, Dict[str, float]]:
    return len(p.stages), {
        "stages": len(p.stages),
        "autorun": sum(1 for s in p.stages if s.autorun),
        "channel_stages": sum(1 for s in p.stages if s.channel_out),
    }


def _describe_folded_plan(p: FoldedPlan) -> Tuple[int, Dict[str, float]]:
    return len(p.invocations), {
        "invocations": len(p.invocations),
        "kernels": len({i.kernel_name for i in p.invocations}),
    }


register_describer(Graph, _describe_graph)
register_describer(FusedGraph, _describe_fused)
register_describer(Program, _describe_program)
register_describer(str, _describe_source)
register_describer(Bitstream, _describe_bitstream)
register_describer(VerifyReport, _describe_verify_report)
register_annotator(VerifyReport, lambda r: [d.format() for d in r.advice])
register_describer(PipelinePlan, _describe_pipeline_plan)
register_describer(FoldedPlan, _describe_folded_plan)


# -- built-in canonicalizers for IR/AOC types (stable fingerprints) ---------

register_canonicalizer(Channel, lambda c: ["channel", c.name, c.depth])
register_canonicalizer(
    Kernel,
    lambda k: [
        "kernel", k.name, [b.name for b in k.args],
        [v.name for v in k.scalar_args], k.autorun,
    ],
)
register_canonicalizer(
    Program,
    lambda p: [
        "program", p.name, [k for k in p.kernels],
        sorted(p.all_channels(), key=lambda c: c.name),
    ],
)
register_canonicalizer(
    Bitstream,
    lambda bs: [
        "bitstream", bs.program, bs.board.name, bs.fmax_mhz,
        bs.total, bs.constants,
    ],
)
