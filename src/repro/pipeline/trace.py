"""Per-stage execution traces: timings, artifact sizes, counters.

A :class:`Trace` is produced by every :class:`~repro.pipeline.Pipeline`
run.  It is exportable as JSON (for tooling) and as an aligned ASCII
table (``python -m repro.report --trace lenet5`` renders one).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class StageRecord:
    """Execution record of one pipeline stage."""

    stage: str
    #: 'ok' | 'cached' | 'seeded' | 'error'
    status: str
    #: start/end offsets from pipeline start, seconds (monotonic clock)
    t_start: float
    t_end: float
    #: artifact name this stage produced
    artifact: str = ""
    #: content fingerprint of the produced artifact (sha256 hex)
    fingerprint: str = ""
    #: natural size of the artifact (nodes, kernels, bytes ...)
    size: int = 0
    #: stage-specific counters (kernels emitted, DSPs, max II ...)
    counters: Dict[str, float] = field(default_factory=dict)
    #: 'hit' | 'miss' for cache-backed stages, None otherwise
    cache: Optional[str] = None
    error: Optional[str] = None
    #: structured resilience events (faults, retries, watchdog verdicts)
    #: fired while this stage executed, as plain dicts
    events: List[Dict[str, object]] = field(default_factory=list)
    #: human-readable annotations contributed by the artifact (e.g. the
    #: verify stage's performance-advisor findings)
    notes: List[str] = field(default_factory=list)

    @property
    def wall_ms(self) -> float:
        return (self.t_end - self.t_start) * 1e3


@dataclass
class Trace:
    """Ordered per-stage records of one pipeline run."""

    pipeline: str
    records: List[StageRecord] = field(default_factory=list)

    def stage(self, name: str) -> StageRecord:
        for r in self.records:
            if r.stage == name:
                return r
        raise KeyError(f"no stage {name!r} in trace of {self.pipeline}")

    def stage_names(self) -> List[str]:
        return [r.stage for r in self.records]

    @property
    def total_ms(self) -> float:
        return sum(r.wall_ms for r in self.records)

    # -- export ----------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "pipeline": self.pipeline,
            "total_ms": self.total_ms,
            "stages": [
                {
                    "stage": r.stage,
                    "status": r.status,
                    "t_start": r.t_start,
                    "t_end": r.t_end,
                    "wall_ms": r.wall_ms,
                    "artifact": r.artifact,
                    "fingerprint": r.fingerprint,
                    "size": r.size,
                    "counters": dict(r.counters),
                    "cache": r.cache,
                    "error": r.error,
                    "events": [dict(e) for e in r.events],
                    "notes": list(r.notes),
                }
                for r in self.records
            ],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def format_table(self) -> str:
        """Aligned ASCII table of the per-stage records."""
        header = (
            f"{'stage':<11} {'status':<7} {'ms':>8} {'artifact':<10} "
            f"{'fingerprint':<13} {'size':>7}  counters"
        )
        lines = [f"pipeline {self.pipeline} — {self.total_ms:.1f} ms total",
                 header, "-" * len(header)]
        for r in self.records:
            counters = " ".join(
                f"{k}={_fmt(v)}" for k, v in sorted(r.counters.items())
            )
            cache = f" [{r.cache}]" if r.cache else ""
            lines.append(
                f"{r.stage:<11} {r.status + cache:<7} {r.wall_ms:>8.2f} "
                f"{r.artifact:<10} {r.fingerprint[:12]:<13} {r.size:>7}  "
                f"{counters}"
            )
            if r.error:
                lines.append(f"{'':11} !! {r.error}")
            for e in r.events:
                lines.append(f"{'':11} ~~ [{e.get('kind')}] {e.get('detail')}")
            for note in r.notes:
                lines.append(f"{'':11} >> {note}")
        return "\n".join(lines)

    def resilience_events(self) -> List[Dict[str, object]]:
        """All resilience events across all stages, in stage order."""
        return [e for r in self.records for e in r.events]


def _fmt(v: float) -> str:
    if isinstance(v, float) and not v.is_integer():
        return f"{v:.2f}"
    return str(int(v))
