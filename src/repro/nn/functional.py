"""Pure-NumPy reference operators (NCHW, batch size 1).

These define the ground-truth numerics for every CNN layer the thesis
deploys (Section 2.1.2).  Tensors are CHW ``float32`` arrays (the leading
N=1 batch dimension is implicit throughout, matching the thesis's
single-image inference assumption).

Implementations are vectorized with NumPy (no Python-level loops over
pixels) per the HPC guide: convolutions use stride-tricks windowing +
``einsum``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ReproError

_F32 = np.float32


def _check_chw(x: np.ndarray, name: str = "input") -> None:
    if x.ndim != 3:
        raise ReproError(f"{name} must be CHW (3-D), got shape {x.shape}")


def conv2d_out_size(size: int, field: int, stride: int, pad: int) -> int:
    """Output spatial size: floor((H - F + 2P)/S) + 1 (thesis Section 2.1.2).

    Floor semantics: a stride that does not divide exactly simply drops the
    trailing positions (standard convolution behaviour, e.g. ResNet's 1x1
    stride-2 projections on 56x56 maps).
    """
    span = size - field + 2 * pad
    if span < 0:
        raise ReproError(
            f"filter larger than input: size={size} field={field} pad={pad}"
        )
    return span // stride + 1


def pad2d(x: np.ndarray, pad) -> np.ndarray:
    """Zero-pad spatial dims of a CHW tensor.

    ``pad`` is either an int (symmetric) or a ``(before, after)`` pair —
    TF-style stride-2 'same' convolutions pad asymmetrically, which is why
    TVM emits explicit padding kernels for MobileNet/ResNet.
    """
    _check_chw(x)
    before, after = (pad, pad) if isinstance(pad, int) else tuple(pad)
    if before == 0 and after == 0:
        return x
    return np.pad(x, ((0, 0), (before, after), (before, after))).astype(
        _F32, copy=False
    )


def _windows(x: np.ndarray, field: int, stride: int) -> np.ndarray:
    """View of sliding FxF windows: (C, Ho, Wo, F, F)."""
    c, h, w = x.shape
    ho = (h - field) // stride + 1
    wo = (w - field) // stride + 1
    sc, sh, sw = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(c, ho, wo, field, field),
        strides=(sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Direct 2-D convolution (cross-correlation), NCHW with N=1.

    ``x`` is (C1, H, W); ``weight`` is (K, C1, F, F); output (K, Ho, Wo).
    """
    _check_chw(x)
    if weight.ndim != 4:
        raise ReproError(f"weight must be KCFF, got {weight.shape}")
    k, c1, f, _ = weight.shape
    if c1 != x.shape[0]:
        raise ReproError(
            f"channel mismatch: input C={x.shape[0]}, weight C={c1}"
        )
    xp = pad2d(x, pad)
    win = _windows(xp, f, stride)  # (C1, Ho, Wo, F, F)
    out = np.einsum("chwij,kcij->khw", win, weight, dtype=np.float32)
    if bias is not None:
        out = out + bias[:, None, None]
    return out.astype(_F32, copy=False)


def depthwise_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Depthwise convolution: one FxF filter per channel.

    ``weight`` is (C, 1, F, F) or (C, F, F); output (C, Ho, Wo).
    """
    _check_chw(x)
    if weight.ndim == 4:
        if weight.shape[1] != 1:
            raise ReproError("depthwise weight must be (C,1,F,F)")
        weight = weight[:, 0]
    c, f, _ = weight.shape
    if c != x.shape[0]:
        raise ReproError("depthwise channel mismatch")
    xp = pad2d(x, pad)
    win = _windows(xp, f, stride)  # (C, Ho, Wo, F, F)
    out = np.einsum("chwij,cij->chw", win, weight, dtype=np.float32)
    if bias is not None:
        out = out + bias[:, None, None]
    return out.astype(_F32, copy=False)


def maxpool2d(x: np.ndarray, field: int, stride: int) -> np.ndarray:
    """Max pooling over FxF regions."""
    _check_chw(x)
    win = _windows(x, field, stride)
    return win.max(axis=(3, 4)).astype(_F32, copy=False)


def avgpool2d(x: np.ndarray, field: int, stride: int) -> np.ndarray:
    """Average pooling over FxF regions."""
    _check_chw(x)
    win = _windows(x, field, stride)
    return win.mean(axis=(3, 4), dtype=np.float32).astype(_F32, copy=False)


def global_avgpool(x: np.ndarray) -> np.ndarray:
    """Whole-feature-map average pooling -> (C,) vector."""
    _check_chw(x)
    return x.mean(axis=(1, 2), dtype=np.float32).astype(_F32, copy=False)


def relu(x: np.ndarray) -> np.ndarray:
    """ReLU(x) = max(0, x)."""
    return np.maximum(x, 0).astype(_F32, copy=False)


def relu6(x: np.ndarray) -> np.ndarray:
    """ReLU6(x) = min(max(0, x), 6) (MobileNet activation)."""
    return np.clip(x, 0, 6).astype(_F32, copy=False)


def flatten(x: np.ndarray) -> np.ndarray:
    """Flatten a CHW tensor to a vector (row-major, matching the IR)."""
    return np.ascontiguousarray(x).reshape(-1)


def dense(
    x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None
) -> np.ndarray:
    """Fully-connected layer: (C2, C1) weight times (C1,) input."""
    if x.ndim != 1:
        raise ReproError("dense input must be flattened to 1-D")
    if weight.ndim != 2 or weight.shape[1] != x.shape[0]:
        raise ReproError(
            f"dense shape mismatch: weight {weight.shape}, input {x.shape}"
        )
    out = weight.astype(np.float32) @ x.astype(np.float32)
    if bias is not None:
        out = out + bias
    return out.astype(_F32, copy=False)


def softmax(x: np.ndarray) -> np.ndarray:
    """Numerically-stable softmax (subtract-max trick, thesis Eq. 2.4)."""
    if x.ndim != 1:
        raise ReproError("softmax input must be 1-D")
    z = x - x.max()
    e = np.exp(z, dtype=np.float32)
    return (e / e.sum(dtype=np.float32)).astype(_F32, copy=False)


def batchnorm_inference(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Inference-time batch norm over channels of a CHW tensor."""
    _check_chw(x)
    scale = (gamma / np.sqrt(var + eps)).astype(_F32)
    shift = (beta - mean * scale).astype(_F32)
    return (x * scale[:, None, None] + shift[:, None, None]).astype(_F32, copy=False)


def residual_add(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Shortcut addition for ResNet residual blocks."""
    if x.shape != y.shape:
        raise ReproError(f"residual shapes differ: {x.shape} vs {y.shape}")
    return (x + y).astype(_F32, copy=False)


def fold_batchnorm(
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    eps: float = 1e-5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold an inference batch norm into the preceding conv's weights.

    Returns (folded_weight, folded_bias).  This mirrors the graph-level
    simplification ML frameworks apply before deployment.
    """
    scale = (gamma / np.sqrt(var + eps)).astype(_F32)
    w = weight * scale.reshape((-1,) + (1,) * (weight.ndim - 1))
    b = np.zeros(weight.shape[0], _F32) if bias is None else bias
    b = (b - mean) * scale + beta
    return w.astype(_F32), b.astype(_F32)
