"""Winograd F(2x2, 3x3) convolution (thesis Section 6.6 context).

DiCecco et al.'s Caffeinated FPGAs — the thesis's first comparison
target — accelerates single-stride 3x3 convolutions with the Winograd
transform, which "reduces the number of multiplications in 3x3
convolutions by a factor of 2.25x" at the price of a larger storage
footprint and inapplicability to other filter shapes.  The thesis
discusses but deliberately does not implement it.

This module provides the real algorithm (NumPy, verified against direct
convolution) so the reproduction can quantify that trade-off:
:func:`winograd_conv2d` computes F(2x2, 3x3) exactly, and
:func:`winograd_savings` reports the multiplication/storage accounting
used by the what-if projection in :mod:`repro.perf.winograd`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ReproError

_F32 = np.float32

# F(2x2, 3x3) transform matrices (Lavin & Gray, 2016)
_B_T = np.array(
    [[1, 0, -1, 0], [0, 1, 1, 0], [0, -1, 1, 0], [0, 1, 0, -1]], dtype=_F32
)
_G = np.array(
    [[1, 0, 0], [0.5, 0.5, 0.5], [0.5, -0.5, 0.5], [0, 0, 1]], dtype=_F32
)
_A_T = np.array([[1, 1, 1, 0], [0, 1, -1, -1]], dtype=_F32)


def winograd_weight_transform(weight: np.ndarray) -> np.ndarray:
    """Transform (K, C, 3, 3) filters to the (K, C, 4, 4) Winograd domain."""
    if weight.ndim != 4 or weight.shape[2:] != (3, 3):
        raise ReproError("Winograd F(2x2,3x3) needs (K, C, 3, 3) filters")
    return np.einsum(
        "ij,kcjl,ml->kcim", _G, weight.astype(_F32), _G, dtype=np.float32
    ).astype(_F32)


def winograd_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    pad: int = 0,
) -> np.ndarray:
    """Single-stride 3x3 convolution via Winograd F(2x2, 3x3).

    Bit-for-bit it differs from direct convolution only by floating-point
    reassociation (the same tolerance the thesis's ``-fp-relaxed`` flag
    accepts).  Output spatial dims must be even; inputs are padded with
    zeros on the bottom/right if needed and the result cropped.
    """
    if x.ndim != 3:
        raise ReproError("input must be CHW")
    c, h, w = x.shape
    k, cw, f, _ = weight.shape
    if f != 3:
        raise ReproError("Winograd F(2x2,3x3) applies to 3x3 filters only")
    if cw != c:
        raise ReproError("channel mismatch")
    xp = np.pad(x, ((0, 0), (pad, pad), (pad, pad))).astype(_F32)
    ho, wo = xp.shape[1] - 2, xp.shape[2] - 2
    if ho <= 0 or wo <= 0:
        raise ReproError("input too small for a 3x3 filter")
    # round output dims up to multiples of 2 (pad input bottom/right)
    ho2, wo2 = (ho + 1) // 2 * 2, (wo + 1) // 2 * 2
    xp = np.pad(xp, ((0, 0), (0, ho2 - ho), (0, wo2 - wo)))
    th, tw = ho2 // 2, wo2 // 2  # tile grid

    # gather 4x4 input tiles: (C, th, tw, 4, 4)
    sc, sh, sw = xp.strides
    tiles = np.lib.stride_tricks.as_strided(
        xp,
        shape=(c, th, tw, 4, 4),
        strides=(sc, sh * 2, sw * 2, sh, sw),
        writeable=False,
    )
    # input transform: V = B^T d B
    v = np.einsum("ij,cthjl,ml->cthim", _B_T, tiles, _B_T, dtype=np.float32)
    u = winograd_weight_transform(weight)  # (K, C, 4, 4)
    # elementwise products summed over channels: M = sum_c U . V
    m = np.einsum("kcim,cthim->kthim", u, v, dtype=np.float32)
    # output transform: Y = A^T m A -> (K, th, tw, 2, 2)
    y = np.einsum("ij,kthjl,ml->kthim", _A_T, m, _A_T, dtype=np.float32)
    out = y.transpose(0, 1, 3, 2, 4).reshape(k, ho2, wo2)[:, :ho, :wo]
    if bias is not None:
        out = out + bias[:, None, None]
    return np.ascontiguousarray(out, dtype=_F32)


def winograd_savings(c1: int, k: int, ho: int, wo: int) -> Dict[str, float]:
    """Multiplication/storage accounting for one 3x3 conv layer.

    Direct: ``K*C*Ho*Wo*9`` multiplications.  Winograd F(2x2,3x3):
    ``K*C*(Ho/2)*(Wo/2)*16`` — a 2.25x reduction — with a 16/9 larger
    transformed-filter footprint (the "increased storage footprint" the
    thesis cites as its reason not to adopt it).
    """
    tiles = ((ho + 1) // 2) * ((wo + 1) // 2)
    direct = k * c1 * ho * wo * 9
    wino = k * c1 * tiles * 16
    return {
        "direct_muls": float(direct),
        "winograd_muls": float(wino),
        "mul_reduction": direct / wino,
        "weight_bytes_direct": float(k * c1 * 9 * 4),
        "weight_bytes_winograd": float(k * c1 * 16 * 4),
        "storage_overhead": 16.0 / 9.0,
    }
