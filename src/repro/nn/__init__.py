"""Pure-NumPy reference neural-network operators (ground-truth numerics).

Conv, depthwise, dense, pooling, batchnorm, softmax and the Winograd
transform, written as plain NumPy with no scheduling or device
concepts.  Contract: this package is the numerical ground truth every
generated kernel and every execution rung is cross-checked against.
"""

from repro.nn.winograd import winograd_conv2d, winograd_savings, winograd_weight_transform
from repro.nn.functional import (
    avgpool2d,
    batchnorm_inference,
    conv2d,
    conv2d_out_size,
    dense,
    depthwise_conv2d,
    flatten,
    fold_batchnorm,
    global_avgpool,
    maxpool2d,
    pad2d,
    relu,
    relu6,
    residual_add,
    softmax,
)

__all__ = [
    "avgpool2d", "batchnorm_inference", "conv2d", "conv2d_out_size", "dense",
    "depthwise_conv2d", "flatten", "fold_batchnorm", "global_avgpool",
    "maxpool2d", "pad2d", "relu", "relu6", "residual_add", "softmax",
    "winograd_conv2d", "winograd_savings", "winograd_weight_transform",
]
