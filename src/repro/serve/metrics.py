"""Serving metrics: latency percentiles, throughput, batch/replica stats.

Every number here is derived from **virtual** time (the discrete-event
clock the server runs on), so metrics are exactly reproducible for a
given (trace, config, seed).  :class:`ServeMetrics` is the schema the
``python -m repro.report --serve`` renderer and the serving benchmarks
consume; ``to_dict()`` is the stable export format documented in
docs/serving.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["percentile", "summarize", "ServeMetrics"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    ``q`` in [0, 100].  Returns 0.0 for an empty sequence.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if q <= 0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil(len * q / 100)
    return ordered[min(len(ordered), int(rank)) - 1]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """mean/p50/p95/p99/max of a latency-like series, microseconds."""
    if not values:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "mean": sum(values) / len(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "max": max(values),
    }


@dataclass
class ReplicaStats:
    """Per-replica serving counters."""

    replica: int
    board: str
    rung: str
    #: 'hit' | 'miss' | None — synthesize-stage cache outcome when the
    #: replica was provisioned (bitstream-aware placement observability)
    bitstream_cache: object
    batches: int = 0
    images: int = 0
    busy_us: float = 0.0
    #: busy_us / makespan once the run completes
    utilization: float = 0.0
    #: lifecycle state at end of run (repro.serve.lifecycle)
    state: str = "healthy"
    #: dispatch/run failures charged to this replica
    failures: int = 0
    #: refills (re-provisionings) the replica consumed
    refills: int = 0
    #: state transition timeline: [{'t_us', 'state', 'reason'}, ...]
    timeline: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "replica": self.replica,
            "board": self.board,
            "rung": self.rung,
            "bitstream_cache": self.bitstream_cache,
            "batches": self.batches,
            "images": self.images,
            "busy_us": self.busy_us,
            "utilization": self.utilization,
            "state": self.state,
            "failures": self.failures,
            "refills": self.refills,
            "timeline": [dict(t) for t in self.timeline],
        }


@dataclass
class ServeMetrics:
    """Aggregate outcome of one server run over one request trace."""

    requests: int = 0
    completed: int = 0
    shed: int = 0
    rejected: int = 0
    #: virtual makespan: last completion minus first arrival, us
    makespan_us: float = 0.0
    #: completed requests (ok + shed) per virtual second
    throughput_rps: float = 0.0
    #: end-to-end latency stats over ok+shed requests, us
    latency_us: Dict[str, float] = field(default_factory=dict)
    #: queue-wait stats over ok requests, us
    queue_us: Dict[str, float] = field(default_factory=dict)
    #: device-service stats over ok requests, us
    service_us: Dict[str, float] = field(default_factory=dict)
    #: dispatched batch sizes
    batches: int = 0
    mean_batch: float = 0.0
    batch_histogram: Dict[int, int] = field(default_factory=dict)
    #: requests served per rung ('pipelined', 'folded', 'cpu', ...)
    rung_counts: Dict[str, int] = field(default_factory=dict)
    #: deepest admission queue observed (backpressure indicator)
    peak_queue_depth: int = 0
    #: request requeues after failed batches (lifecycle recovery)
    requeues: int = 0
    #: circuit-breaker trips (replica -> DRAINING)
    breaker_trips: int = 0
    #: replica deaths (drained breakers + injected kills + failed refills)
    deaths: int = 0
    #: successful refills (replica re-provisioned back to HEALTHY)
    refills: int = 0
    #: serving-watchdog expiries (hung batches declared dead)
    watchdog_trips: int = 0
    #: fraction of replica-time spent in the dispatch rotation
    availability: float = 1.0
    #: certified resident DDR per device replica (arena + weights), bytes;
    #: 0 when the pool is CPU-only
    ddr_per_replica_bytes: int = 0
    #: how many such replicas one board's DDR capacity can host
    #: (``serve.replica.replicas_per_board``); 0 when unknown
    replicas_per_board: int = 0
    per_replica: List[ReplicaStats] = field(default_factory=list)

    # -- export ----------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "rejected": self.rejected,
            "makespan_us": self.makespan_us,
            "throughput_rps": self.throughput_rps,
            "latency_us": dict(self.latency_us),
            "queue_us": dict(self.queue_us),
            "service_us": dict(self.service_us),
            "batches": self.batches,
            "mean_batch": self.mean_batch,
            "batch_histogram": {str(k): v for k, v in
                                sorted(self.batch_histogram.items())},
            "rung_counts": dict(sorted(self.rung_counts.items())),
            "peak_queue_depth": self.peak_queue_depth,
            "requeues": self.requeues,
            "breaker_trips": self.breaker_trips,
            "deaths": self.deaths,
            "refills": self.refills,
            "watchdog_trips": self.watchdog_trips,
            "availability": self.availability,
            "ddr_per_replica_bytes": self.ddr_per_replica_bytes,
            "replicas_per_board": self.replicas_per_board,
            "replicas": [r.to_dict() for r in self.per_replica],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def format_table(self) -> str:
        """Aligned ASCII rendering (``repro.report --serve``)."""
        lat, q = self.latency_us, self.queue_us
        lines = [
            f"requests {self.requests}  completed {self.completed}  "
            f"shed {self.shed}  rejected {self.rejected}",
            f"makespan {self.makespan_us / 1e3:.1f} ms  "
            f"throughput {self.throughput_rps:.1f} req/s (virtual)",
            f"latency  p50 {lat.get('p50', 0.0) / 1e3:8.2f} ms   "
            f"p95 {lat.get('p95', 0.0) / 1e3:8.2f} ms   "
            f"p99 {lat.get('p99', 0.0) / 1e3:8.2f} ms",
            f"queueing p50 {q.get('p50', 0.0) / 1e3:8.2f} ms   "
            f"mean batch {self.mean_batch:.2f} over {self.batches} batches   "
            f"peak queue {self.peak_queue_depth}",
            "rungs    "
            + "  ".join(f"{k}:{v}" for k, v in sorted(self.rung_counts.items())),
            f"health   availability {self.availability:.1%}  "
            f"requeues {self.requeues}  breaker trips {self.breaker_trips}  "
            f"deaths {self.deaths}  refills {self.refills}  "
            f"watchdog {self.watchdog_trips}",
        ]
        if self.ddr_per_replica_bytes:
            lines.append(
                f"memory   ddr/replica "
                f"{self.ddr_per_replica_bytes / (1 << 20):.1f} MiB  "
                f"replicas/board {self.replicas_per_board}"
            )
        if self.per_replica:
            header = (
                f"{'replica':>7} {'board':<6} {'rung':<10} {'bitstream':<9} "
                f"{'state':<14} {'batches':>7} {'images':>6} {'fails':>5} "
                f"{'busy_ms':>9} {'util':>6}"
            )
            lines += ["", header, "-" * len(header)]
            for r in self.per_replica:
                cache = r.bitstream_cache or "-"
                lines.append(
                    f"{r.replica:>7} {r.board:<6} {r.rung:<10} {cache:<9} "
                    f"{r.state:<14} {r.batches:>7} {r.images:>6} "
                    f"{r.failures:>5} {r.busy_us / 1e3:>9.1f} "
                    f"{r.utilization:>6.1%}"
                )
        return "\n".join(lines)
