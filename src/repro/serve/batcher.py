"""Dynamic batching: coalesce compatible requests inside a virtual window.

The batcher groups pending requests by :attr:`InferenceRequest.batch_key`
(same network, same input shape — only those can ride one parameterized
kernel dispatch).  A group is flushed into a :class:`Batch` when either

* it reaches ``max_batch`` requests (flushed immediately), or
* ``window_us`` of virtual time has passed since the group's *oldest*
  waiting request arrived (flushed by the server's window timer).

The batcher holds no clock of its own: the server's discrete-event loop
drives it with explicit ``now`` arguments, which keeps every decision a
pure function of the trace — the determinism the serving tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.serve.request import InferenceRequest

__all__ = ["Batch", "DynamicBatcher"]

BatchKey = Tuple[str, Tuple[int, ...]]


@dataclass
class Batch:
    """An ordered group of compatible requests dispatched as one unit."""

    batch_id: int
    network: str
    requests: List[InferenceRequest] = field(default_factory=list)
    #: virtual time the batch was closed (left the batching window)
    closed_us: float = 0.0
    #: dispatch attempt, starting at 1; bumped each time a failed batch's
    #: surviving requests are requeued (see repro.serve.lifecycle)
    attempt: int = 1

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def rids(self) -> List[int]:
        return [r.rid for r in self.requests]

    def __repr__(self) -> str:
        return (
            f"Batch(#{self.batch_id} {self.network} x{len(self.requests)} "
            f"closed@{self.closed_us:.0f}us)"
        )


class DynamicBatcher:
    """Window-based request coalescing with a per-group size cap."""

    def __init__(self, window_us: float = 2000.0, max_batch: int = 8) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.window_us = float(window_us)
        self.max_batch = int(max_batch)
        self._groups: Dict[BatchKey, List[InferenceRequest]] = {}
        self._next_batch_id = 0

    # -- state -----------------------------------------------------------
    def __len__(self) -> int:
        """Requests currently waiting in open groups."""
        return sum(len(g) for g in self._groups.values())

    def pending_keys(self) -> List[BatchKey]:
        return sorted(self._groups.keys())

    def deadline(self, key: BatchKey) -> Optional[float]:
        """When the open group for ``key`` must flush (None if empty)."""
        group = self._groups.get(key)
        if not group:
            return None
        return group[0].arrival_us + self.window_us

    # -- driving ---------------------------------------------------------
    def add(self, request: InferenceRequest, now: float) -> Optional[Batch]:
        """Admit one request; returns a full batch when the cap is hit.

        With ``max_batch == 1`` every request becomes its own batch
        immediately — the serial, batching-free baseline.
        """
        key = request.batch_key
        group = self._groups.setdefault(key, [])
        group.append(request)
        if len(group) >= self.max_batch:
            return self._close(key, now)
        return None

    def flush(self, key: BatchKey, now: float) -> Optional[Batch]:
        """Window expiry for ``key``: close whatever is waiting."""
        if not self._groups.get(key):
            return None
        return self._close(key, now)

    def flush_all(self, now: float) -> List[Batch]:
        """Drain every open group (end-of-trace)."""
        return [
            batch
            for key in self.pending_keys()
            if (batch := self.flush(key, now)) is not None
        ]

    def _close(self, key: BatchKey, now: float) -> Batch:
        requests = self._groups.pop(key)
        batch = Batch(
            batch_id=self._next_batch_id,
            network=key[0],
            requests=requests,
            closed_us=now,
        )
        self._next_batch_id += 1
        return batch
