"""Inference requests, responses and deterministic request traces.

A :class:`RequestTrace` is the serving layer's workload description: an
ordered list of :class:`InferenceRequest` with virtual arrival times.
Traces are generated from an explicit seed (Poisson or uniform
arrivals), so a (seed, trace) pair replays bit-for-bit — the property
the serving determinism tests rely on.  The server answers every
request with an :class:`InferenceResponse` carrying the serving rung,
the batch it rode in, and its queueing/service/latency breakdown in
virtual microseconds.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "InferenceRequest",
    "InferenceResponse",
    "RequestTrace",
    "input_fingerprint",
]


def input_fingerprint(x: np.ndarray) -> str:
    """Content hash of one input tensor (shared-logits cache key)."""
    h = hashlib.sha256()
    h.update(str(x.shape).encode())
    h.update(np.ascontiguousarray(x, dtype=np.float32).tobytes())
    return h.hexdigest()[:16]


@dataclass
class InferenceRequest:
    """One inference to serve: a network name, an input, an arrival time."""

    #: dense request id; also the deterministic tie-break everywhere
    rid: int
    network: str
    #: virtual arrival time, microseconds since trace start
    arrival_us: float
    #: input tensor (C, H, W); requests sharing an input share its logits
    x: np.ndarray

    @property
    def batch_key(self) -> Tuple[str, Tuple[int, ...]]:
        """Requests coalesce only within the same (network, shape) group."""
        return (self.network, tuple(self.x.shape))


@dataclass
class InferenceResponse:
    """The served outcome of one request."""

    rid: int
    network: str
    #: 'ok' (served by a device replica), 'shed' (served by the CPU
    #: sideline — under overload, after the retry budget ran out, or
    #: because every replica of the network died) or 'rejected'
    #: (admission control)
    status: str
    #: rung that served: a replica rung ('pipelined'/'folded') or 'cpu'
    rung: str = ""
    #: replica id, -1 for shed/rejected requests
    replica: int = -1
    #: batch id, -1 for shed/rejected requests
    batch_id: int = -1
    #: size of the batch the request rode in (1 for the CPU sideline)
    batch_size: int = 0
    #: classification output; ``None`` when logits were not requested
    logits: Optional[np.ndarray] = None
    arrival_us: float = 0.0
    #: when the request left the queue for a replica (== arrival for shed)
    dispatch_us: float = 0.0
    completed_us: float = 0.0
    #: times the request rode a batch that failed and was requeued
    requeues: int = 0

    @property
    def queue_us(self) -> float:
        """Time spent waiting for dispatch (batching window + queueing)."""
        return self.dispatch_us - self.arrival_us

    @property
    def service_us(self) -> float:
        return self.completed_us - self.dispatch_us

    @property
    def latency_us(self) -> float:
        return self.completed_us - self.arrival_us

    def classify(self) -> int:
        if self.logits is None:
            raise ValueError(f"request {self.rid} served without logits")
        return int(np.argmax(self.logits))


@dataclass
class RequestTrace:
    """A deterministic, replayable arrival sequence."""

    requests: List[InferenceRequest] = field(default_factory=list)
    seed: int = 0

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def duration_us(self) -> float:
        return self.requests[-1].arrival_us if self.requests else 0.0

    # -- constructors ----------------------------------------------------
    @staticmethod
    def _inputs(
        n: int, shape: Tuple[int, ...], seed: int, distinct_inputs: int
    ) -> List[np.ndarray]:
        """``distinct_inputs`` seeded tensors cycled over ``n`` requests.

        Sharing inputs keeps functional verification cheap (the logits
        cache computes each distinct input once) without changing any
        timing behaviour.
        """
        distinct = max(1, min(distinct_inputs, n))
        rng = np.random.default_rng(seed)
        pool = [
            rng.standard_normal(shape).astype(np.float32) for _ in range(distinct)
        ]
        return [pool[i % distinct] for i in range(n)]

    @classmethod
    def poisson(
        cls,
        network: str,
        n: int,
        rate_rps: float,
        shape: Tuple[int, ...],
        seed: int = 0,
        distinct_inputs: int = 4,
    ) -> "RequestTrace":
        """``n`` requests with exponential inter-arrivals at ``rate_rps``
        requests per virtual second."""
        rng = random.Random(f"trace:poisson:{seed}")
        xs = cls._inputs(n, shape, seed, distinct_inputs)
        t = 0.0
        requests = []
        for i in range(n):
            t += rng.expovariate(rate_rps) * 1e6
            requests.append(
                InferenceRequest(rid=i, network=network, arrival_us=t, x=xs[i])
            )
        return cls(requests=requests, seed=seed)

    @classmethod
    def uniform(
        cls,
        network: str,
        n: int,
        interval_us: float,
        shape: Tuple[int, ...],
        seed: int = 0,
        distinct_inputs: int = 4,
    ) -> "RequestTrace":
        """``n`` requests arriving every ``interval_us`` exactly."""
        xs = cls._inputs(n, shape, seed, distinct_inputs)
        requests = [
            InferenceRequest(
                rid=i, network=network, arrival_us=i * interval_us, x=xs[i]
            )
            for i in range(n)
        ]
        return cls(requests=requests, seed=seed)

    @classmethod
    def burst(
        cls,
        network: str,
        n: int,
        at_us: float,
        shape: Tuple[int, ...],
        seed: int = 0,
        distinct_inputs: int = 4,
    ) -> "RequestTrace":
        """``n`` requests arriving simultaneously (an overload spike)."""
        xs = cls._inputs(n, shape, seed, distinct_inputs)
        requests = [
            InferenceRequest(rid=i, network=network, arrival_us=at_us, x=xs[i])
            for i in range(n)
        ]
        return cls(requests=requests, seed=seed)

    def merged(self, other: "RequestTrace") -> "RequestTrace":
        """Merge two traces by arrival time; request ids are renumbered."""
        merged = sorted(
            list(self.requests) + list(other.requests),
            key=lambda r: (r.arrival_us, r.network, r.rid),
        )
        out: List[InferenceRequest] = []
        for i, r in enumerate(merged):
            out.append(
                InferenceRequest(
                    rid=i, network=r.network, arrival_us=r.arrival_us, x=r.x
                )
            )
        return RequestTrace(requests=out, seed=self.seed)

    # -- replay fidelity -------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the whole trace (arrival schedule + inputs)."""
        h = hashlib.sha256()
        for r in self.requests:
            h.update(
                f"{r.rid}:{r.network}:{r.arrival_us:.6f}:".encode()
            )
            h.update(input_fingerprint(r.x).encode())
        return h.hexdigest()[:16]

    def describe(self) -> Dict[str, object]:
        nets = sorted({r.network for r in self.requests})
        return {
            "requests": len(self.requests),
            "networks": nets,
            "duration_us": self.duration_us,
            "fingerprint": self.fingerprint(),
        }
