"""Replica workers: deployments provisioned for the serving pool.

A :class:`Replica` wraps one :class:`~repro.flow.deploy.Deployment` on
its own simulated board and charges virtual service time per dispatched
batch through the batched runtime model
(:meth:`~repro.flow.deploy.Deployment.run_batch`).  Provisioning is
**bitstream-aware**: every replica of a network builds through the same
:class:`~repro.pipeline.CompileCache`, so replica 0 pays the synthesis
and replicas 1..N-1 hit the content-addressed cache — each replica
records its synthesize-stage cache outcome (``hit``/``miss``) from its
compile trace.  A replica that cannot build its preferred mode degrades
down the same ladder the resilience layer uses (pipelined → folded →
CPU), recording ``fallback`` events on the resilience log; a pool whose
builds *all* fail degrades to CPU-only instead of raising.  Dead
replicas re-enter the pool through :func:`reprovision_replica`, the
refill path of the health lifecycle (:mod:`repro.serve.lifecycle`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.aoc.constants import AOCConstants, DEFAULT_CONSTANTS
from repro.device.boards import Board
from repro.errors import ReproError
from repro.flow.deploy import Deployment, build_rung
from repro.flow.stages import CacheOption, MODELS, resolve_cache
from repro.perf import tf_cpu_fps
from repro.relay import fuse_operators, init_params, run_fused_graph
from repro.resilience.config import configured
from repro.resilience.events import record as _record
from repro.serve.request import input_fingerprint

__all__ = [
    "Replica",
    "LogitsCache",
    "cpu_service_us",
    "provision_replicas",
    "reprovision_replica",
]

#: CPU sideline throughput assumed when no calibrated baseline exists
_FALLBACK_CPU_FPS = 10.0


def cpu_service_us(network: str) -> float:
    """Per-image service time of the CPU sideline, virtual microseconds.

    Uses the calibrated Keras/TF CPU baseline where the thesis published
    one; other networks get a conservative flat rate.
    """
    try:
        fps = tf_cpu_fps(network.removesuffix("_bn"))
    except ReproError:
        fps = _FALLBACK_CPU_FPS
    return 1e6 / fps


class LogitsCache:
    """Pool-wide functional-inference memo, keyed by input content.

    Replicas of one network share parameters (``init_params(seed=0)``),
    so their logits are identical — computing each distinct input once
    keeps functional verification affordable at serving scale.
    """

    def __init__(self) -> None:
        self._store: Dict[str, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def get(self, network: str, x: np.ndarray, compute) -> np.ndarray:
        key = f"{network}:{input_fingerprint(x)}"
        if key in self._store:
            self.hits += 1
            return self._store[key]
        self.misses += 1
        y = compute(x)
        self._store[key] = y
        return y


@dataclass
class Replica:
    """One serving worker: a deployment (or the CPU executor) on a board."""

    replica_id: int
    network: str
    board: Board
    #: 'pipelined' | 'folded' | 'cpu'
    rung: str
    deployment: Optional[Deployment] = None
    #: synthesize-stage cache outcome at provision time ('hit'/'miss'),
    #: None for the CPU rung
    bitstream_cache: Optional[str] = None
    #: certified resident DDR bytes of this replica's deployment
    #: (activation arena + weights, from the RM-certified
    #: :class:`~repro.verify.memory.MemoryPlan`); None for the CPU rung
    ddr_bytes: Optional[int] = None
    #: virtual time until which the replica is busy
    busy_until_us: float = 0.0
    busy_us: float = 0.0
    batches: int = 0
    images: int = 0
    _cpu_fused: object = field(default=None, repr=False)
    _cpu_params: Optional[Dict[str, np.ndarray]] = field(default=None, repr=False)

    # -- timing ----------------------------------------------------------
    def service_us(self, batch: int) -> float:
        """Virtual service time for one dispatched batch."""
        if self.rung == "cpu":
            return batch * cpu_service_us(self.network)
        result = self.deployment.run_batch(batch)
        return result.time_per_image_us * batch

    # -- numerics --------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Functional inference on this replica's rung.

        Device rungs execute the *generated kernels* through the
        vectorized interpreter (:meth:`Deployment.forward_functional`),
        so serving numerics exercise the same compiled program the
        timing model charges for; the CPU rung runs the NumPy executor.
        """
        if self.rung == "cpu":
            if self._cpu_fused is None:
                graph = MODELS[self.network]()
                self._cpu_fused = fuse_operators(graph)
                self._cpu_params = init_params(graph, seed=0)
            return run_fused_graph(self._cpu_fused, x, self._cpu_params)
        return self.deployment.forward_functional(x)

    def __repr__(self) -> str:
        return (
            f"Replica(#{self.replica_id} {self.network}/{self.rung} "
            f"on {self.board.name})"
        )


def _preferred_modes(network: str) -> List[str]:
    """Device rungs to try, best first (the degradation-ladder order)."""
    return ["pipelined", "folded"] if network == "lenet5" else ["folded"]


def deployment_ddr_bytes(dep) -> Optional[int]:
    """Certified resident DDR bytes of one deployment (arena + weights).

    Comes from the RM-certified :class:`~repro.verify.memory.MemoryPlan`
    the plan stage attached; ``None`` when the footprint could not be
    bounded statically.
    """
    from repro.verify.memory import weights_bytes

    mem = getattr(dep.plan, "memory", None)
    if mem is None:
        return None
    return mem.arena_bytes + weights_bytes(dep.fused)


def replicas_per_board(board: Board, ddr_bytes: Optional[int]) -> int:
    """How many replicas of a deployment one board's DDR can host.

    The serving-fleet packing bound the ROADMAP's replicas-per-board
    item asks for: capacity // certified-footprint.  0 when the
    footprint is unknown (CPU rung or unbounded plan).
    """
    if not ddr_bytes or ddr_bytes <= 0 or not board.ddr_bytes:
        return 0
    return board.ddr_bytes // ddr_bytes


def _build_replica(
    rid: int,
    network: str,
    board: Board,
    shared,
    constants: AOCConstants,
    context: str,
) -> Replica:
    """Build one replica down the rung ladder; the CPU rung never fails.

    Any build exception — not just :class:`ReproError` — degrades to the
    next rung: a hard provisioning failure must shrink capacity, never
    kill the pool.
    """
    for mode in _preferred_modes(network):
        try:
            dep = build_rung(
                network, board, mode, constants=constants,
                cache=shared if shared is not None else False,
            )
        except Exception as err:
            _record(
                "fallback", "serve",
                f"replica {rid}: {mode} {context} of {network} on "
                f"{board.name} failed ({type(err).__name__}: {err}); "
                f"degrading",
            )
            continue
        cache_status = None
        if dep.trace is not None:
            cache_status = dep.trace.stage("synthesize").cache
        return Replica(
            replica_id=rid, network=network, board=board, rung=mode,
            deployment=dep, bitstream_cache=cache_status,
            ddr_bytes=deployment_ddr_bytes(dep),
        )
    _record(
        "fallback", "serve",
        f"replica {rid}: no device rung builds {network} on "
        f"{board.name}; provisioning the CPU executor rung",
    )
    return Replica(replica_id=rid, network=network, board=board, rung="cpu")


def provision_replicas(
    network: str,
    board: Board,
    n: int,
    cache: CacheOption = None,
    constants: AOCConstants = DEFAULT_CONSTANTS,
    start_id: int = 0,
) -> List[Replica]:
    """Build ``n`` replicas of ``network`` on ``board``.

    All builds share one compile cache, so one synthesis serves the
    whole pool (the cache outcome lands in each replica's
    ``bitstream_cache``).  Preferred mode is pipelined for LeNet-class
    networks and folded otherwise; a mode that cannot build falls
    through — ultimately to a CPU replica, which always provisions, so
    provisioning never raises on build failure.  When *every* device
    build fails the pool degrades to CPU-only and says so with a
    ``degrade`` resilience event.
    """
    if network not in MODELS:
        raise ReproError(
            f"unknown network {network!r}; choose from: "
            f"{', '.join(sorted(MODELS))}"
        )
    shared = resolve_cache(cache)
    replicas = [
        _build_replica(
            start_id + i, network, board, shared, constants, "build"
        )
        for i in range(n)
    ]
    if replicas and all(r.rung == "cpu" for r in replicas):
        _record(
            "degrade", "serve",
            f"pool of {n} {network} replica(s) on {board.name} is CPU-only: "
            f"every device build failed; serving continues at CPU latency",
        )
    # replicas-per-board packing from the certified memory footprint:
    # more replicas than one board's DDR can hold means the pool spans
    # multiple physical boards — say so, don't silently over-pack
    footprints = [r.ddr_bytes for r in replicas if r.ddr_bytes]
    if footprints:
        capacity = replicas_per_board(board, max(footprints))
        if 0 < capacity < len(footprints):
            _record(
                "capacity", "serve",
                f"{len(footprints)} device replica(s) of {network} need "
                f"{max(footprints)} DDR bytes each; one {board.name} holds "
                f"{capacity} — pool spans multiple boards",
            )
    return replicas


def reprovision_replica(
    replica: Replica,
    cache: CacheOption = None,
    constants: AOCConstants = DEFAULT_CONSTANTS,
) -> Replica:
    """Rebuild a dead replica's deployment in place (the refill path).

    Re-provisions through the shared compile cache with a placement-seed
    sweep (``routing_seeds=4``) — a refill models moving the bitstream
    to a spare board, where seed-sensitive routing failures deserve a
    sweep rather than an instant give-up.  Falls down the same rung
    ladder as provisioning; the CPU rung always succeeds.
    """
    shared = resolve_cache(cache)
    with configured(routing_seeds=4):
        rebuilt = _build_replica(
            replica.replica_id, replica.network, replica.board, shared,
            constants, "refill build",
        )
    replica.deployment = rebuilt.deployment
    replica.rung = rebuilt.rung
    replica.bitstream_cache = rebuilt.bitstream_cache
    replica._cpu_fused = None
    replica._cpu_params = None
    return replica
