"""The serving loop: admission control, batching, dispatch, shedding.

:class:`Server` is a discrete-event simulation on a **virtual clock** —
the serving analogue of the discrete-time runtime model.  It replays a
:class:`~repro.serve.request.RequestTrace` through:

1. **admission control** — a bounded queue; past ``max_queue`` waiting
   requests the server stops queueing and either *sheds* the request to
   the CPU sideline rung (the degradation-ladder response to overload)
   or *rejects* it outright, per ``overload_policy``;
2. **dynamic batching** — compatible requests coalesce inside a
   ``window_us`` virtual window up to ``max_batch``
   (:class:`~repro.serve.batcher.DynamicBatcher`);
3. **dispatch** — closed batches go FIFO to the lowest-numbered free
   :class:`~repro.serve.replica.Replica` serving that network, which
   charges the batched runtime model's service time.

Everything is a pure function of (trace, config, replica pool): event
ties break on fixed priorities and sequence numbers, no wall clock or
unseeded randomness is consulted, and shed/overload decisions are
recorded on the process-wide resilience event log (site ``serve``) so
``python -m repro.report --serve`` can show the overload story next to
the metrics.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.resilience.events import log as _resilience_log
from repro.resilience.events import record as _record
from repro.serve.batcher import Batch, DynamicBatcher
from repro.serve.metrics import ReplicaStats, ServeMetrics, summarize
from repro.serve.replica import LogitsCache, Replica, cpu_service_us
from repro.serve.request import InferenceResponse, RequestTrace

__all__ = ["ServeConfig", "ServeResult", "Server"]

#: same-instant event ordering: completions free replicas before window
#: flushes close batches before new arrivals join groups
_COMPLETE, _WINDOW, _ARRIVE = 0, 1, 2


@dataclass(frozen=True)
class ServeConfig:
    """Serving policy knobs (see docs/serving.md for semantics)."""

    #: batching window: a group flushes this long after its oldest
    #: waiting request arrived
    window_us: float = 2000.0
    #: per-batch request cap; 1 disables batching entirely
    max_batch: int = 8
    #: admission bound on requests waiting (batcher + dispatch queue)
    max_queue: int = 64
    #: 'shed' serves overflow on the CPU sideline; 'reject' refuses it
    overload_policy: str = "shed"
    #: compute per-request logits (memoized per distinct input); turn
    #: off for pure throughput studies
    compute_logits: bool = True
    #: concurrent (one-queue-per-kernel) execution on pipelined replicas
    concurrent: bool = True

    def __post_init__(self) -> None:
        if self.overload_policy not in ("shed", "reject"):
            raise ReproError(
                f"unknown overload_policy {self.overload_policy!r}; "
                "choose 'shed' or 'reject'"
            )
        if self.max_batch < 1 or self.max_queue < 1:
            raise ReproError("max_batch and max_queue must be >= 1")


@dataclass
class ServeResult:
    """Everything one server run produced, in deterministic order."""

    #: responses ordered by request id
    responses: List[InferenceResponse] = field(default_factory=list)
    metrics: ServeMetrics = field(default_factory=ServeMetrics)
    #: dispatch log: one dict per batch, in dispatch order
    batches: List[Dict[str, object]] = field(default_factory=list)
    #: resilience events (site 'serve') fired during the run
    events: List[Dict[str, object]] = field(default_factory=list)

    def fingerprint(self) -> str:
        """Content hash of batch assignments + metrics + logits.

        Two runs of the same (trace, config, pool) must agree on this —
        the serving determinism contract.  Provisioning metadata
        (``bitstream_cache``) is excluded: whether a replica's bitstream
        came from a warm or cold compile cache must not change serving.
        """
        h = hashlib.sha256()
        for b in self.batches:
            h.update(
                f"{b['batch_id']}:{b['network']}:{b['replica']}:"
                f"{b['rids']}:{b['dispatch_us']:.3f}:{b['service_us']:.3f};"
                .encode()
            )
        payload = self.metrics.to_dict()
        for row in payload["replicas"]:
            row.pop("bitstream_cache", None)
        h.update(json.dumps(payload).encode())
        for r in self.responses:
            if r.logits is not None:
                h.update(r.logits.tobytes())
        return h.hexdigest()[:16]


class Server:
    """Batched, multi-replica inference serving over a virtual clock."""

    def __init__(
        self,
        replicas: List[Replica],
        config: Optional[ServeConfig] = None,
    ) -> None:
        if not replicas:
            raise ReproError("a server needs at least one replica")
        self.replicas = sorted(replicas, key=lambda r: r.replica_id)
        self.config = config or ServeConfig()
        self.logits_cache = LogitsCache()
        #: lazily-built CPU sideline workers, one per network
        self._sideline: Dict[str, Replica] = {}
        self.networks = sorted({r.network for r in self.replicas})

    # -- helpers ---------------------------------------------------------
    def _sideline_for(self, network: str) -> Replica:
        if network not in self._sideline:
            board = self.replicas[0].board
            self._sideline[network] = Replica(
                replica_id=-1, network=network, board=board, rung="cpu"
            )
        return self._sideline[network]

    def _free_replica(self, network: str, now: float) -> Optional[Replica]:
        for r in self.replicas:  # replica_id order = deterministic pick
            if r.network == network and r.busy_until_us <= now:
                return r
        return None

    def _logits(self, replica: Replica, x) -> Optional[object]:
        if not self.config.compute_logits:
            return None
        return self.logits_cache.get(replica.network, x, replica.forward)

    # -- the event loop --------------------------------------------------
    def run(self, trace: RequestTrace) -> ServeResult:
        """Replay ``trace`` to completion and summarize the run."""
        cfg = self.config
        unknown = sorted(
            {r.network for r in trace} - set(self.networks)
        )
        if unknown:
            raise ReproError(
                f"trace requests networks with no replica: {unknown} "
                f"(pool serves {self.networks})"
            )
        for r in self.replicas:
            r.busy_until_us = 0.0
            r.busy_us = 0.0
            r.batches = 0
            r.images = 0

        cursor = _resilience_log().cursor()
        batcher = DynamicBatcher(cfg.window_us, cfg.max_batch)
        heap: List[Tuple[float, int, int, str, object]] = []
        seq = 0

        def push(t: float, priority: int, kind: str, payload: object) -> None:
            nonlocal seq
            heapq.heappush(heap, (t, priority, seq, kind, payload))
            seq += 1

        for req in trace:
            push(req.arrival_us, _ARRIVE, "arrive", req)

        dispatch_queue: Deque[Batch] = deque()
        responses: Dict[int, InferenceResponse] = {}
        batch_log: List[Dict[str, object]] = []
        group_gen: Dict[object, int] = {}
        peak_queue = 0
        shed = rejected = 0
        first_arrival = trace.requests[0].arrival_us if len(trace) else 0.0
        last_completion = first_arrival

        def queue_depth() -> int:
            return len(batcher) + sum(len(b) for b in dispatch_queue)

        def dispatch(now: float) -> None:
            while dispatch_queue:
                batch = dispatch_queue[0]
                replica = self._free_replica(batch.network, now)
                if replica is None:
                    return
                dispatch_queue.popleft()
                service = replica.service_us(len(batch))
                replica.busy_until_us = now + service
                replica.busy_us += service
                replica.batches += 1
                replica.images += len(batch)
                batch_log.append({
                    "batch_id": batch.batch_id,
                    "network": batch.network,
                    "replica": replica.replica_id,
                    "rids": list(batch.rids),
                    "dispatch_us": now,
                    "service_us": service,
                })
                push(now + service, _COMPLETE, "complete", (batch, replica, now))

        def close(batch: Optional[Batch], now: float) -> None:
            if batch is None:
                return
            key = (batch.network, tuple(batch.requests[0].x.shape))
            group_gen[key] = group_gen.get(key, 0) + 1
            dispatch_queue.append(batch)
            dispatch(now)

        while heap:
            now, _prio, _seq, kind, payload = heapq.heappop(heap)
            last_completion = max(last_completion, now)

            if kind == "arrive":
                req = payload
                depth = queue_depth()
                if depth >= cfg.max_queue:
                    if cfg.overload_policy == "reject":
                        rejected += 1
                        _record(
                            "reject", "serve",
                            f"request {req.rid} ({req.network}): admission "
                            f"queue full ({depth}/{cfg.max_queue}); rejected",
                            t_us=now,
                        )
                        responses[req.rid] = InferenceResponse(
                            rid=req.rid, network=req.network,
                            status="rejected", arrival_us=now,
                            dispatch_us=now, completed_us=now,
                        )
                        continue
                    shed += 1
                    sideline = self._sideline_for(req.network)
                    service = cpu_service_us(req.network)
                    _record(
                        "shed", "serve",
                        f"request {req.rid} ({req.network}): admission "
                        f"queue full ({depth}/{cfg.max_queue}); shedding "
                        f"to the CPU rung ({service:.0f}us/image)",
                        t_us=now, queue_depth=depth,
                    )
                    push(now + service, _COMPLETE, "shed-complete",
                         (req, sideline, now))
                    continue
                key = req.batch_key
                peak_queue = max(peak_queue, depth + 1)
                was_empty = batcher.deadline(key) is None
                full = batcher.add(req, now)
                if full is not None:
                    close(full, now)
                elif was_empty:
                    gen = group_gen.get(key, 0)
                    push(batcher.deadline(key), _WINDOW, "window", (key, gen))

            elif kind == "window":
                key, gen = payload
                if group_gen.get(key, 0) != gen:
                    continue  # the group already closed on max_batch
                close(batcher.flush(key, now), now)

            elif kind == "complete":
                batch, replica, dispatched = payload
                for req in batch.requests:
                    responses[req.rid] = InferenceResponse(
                        rid=req.rid, network=req.network, status="ok",
                        rung=replica.rung, replica=replica.replica_id,
                        batch_id=batch.batch_id, batch_size=len(batch),
                        logits=self._logits(replica, req.x),
                        arrival_us=req.arrival_us, dispatch_us=dispatched,
                        completed_us=now,
                    )
                dispatch(now)

            else:  # shed-complete
                req, sideline, arrived = payload
                responses[req.rid] = InferenceResponse(
                    rid=req.rid, network=req.network, status="shed",
                    rung="cpu", batch_size=1,
                    logits=self._logits(sideline, req.x),
                    arrival_us=arrived, dispatch_us=arrived,
                    completed_us=now,
                )

        ordered = [responses[r.rid] for r in trace]
        metrics = self._metrics(
            ordered, batch_log, first_arrival, last_completion,
            peak_queue, shed, rejected,
        )
        events = [
            e.to_dict()
            for e in _resilience_log().since(cursor)
            if e.site == "serve"
        ]
        return ServeResult(
            responses=ordered, metrics=metrics, batches=batch_log,
            events=events,
        )

    # -- summarization ---------------------------------------------------
    def _metrics(
        self,
        responses: List[InferenceResponse],
        batch_log: List[Dict[str, object]],
        t0: float,
        t1: float,
        peak_queue: int,
        shed: int,
        rejected: int,
    ) -> ServeMetrics:
        served = [r for r in responses if r.status in ("ok", "shed")]
        ok = [r for r in responses if r.status == "ok"]
        makespan = max(0.0, t1 - t0)
        histogram: Dict[int, int] = {}
        for b in batch_log:
            size = len(b["rids"])
            histogram[size] = histogram.get(size, 0) + 1
        rungs: Dict[str, int] = {}
        for r in served:
            rungs[r.rung] = rungs.get(r.rung, 0) + 1
        n_batched = sum(len(b["rids"]) for b in batch_log)
        stats = []
        for rep in self.replicas:
            stats.append(ReplicaStats(
                replica=rep.replica_id, board=rep.board.name, rung=rep.rung,
                bitstream_cache=rep.bitstream_cache, batches=rep.batches,
                images=rep.images, busy_us=rep.busy_us,
                utilization=rep.busy_us / makespan if makespan else 0.0,
            ))
        return ServeMetrics(
            requests=len(responses),
            completed=len(served),
            shed=shed,
            rejected=rejected,
            makespan_us=makespan,
            throughput_rps=len(served) / (makespan / 1e6) if makespan else 0.0,
            latency_us=summarize([r.latency_us for r in served]),
            queue_us=summarize([r.queue_us for r in ok]),
            service_us=summarize([r.service_us for r in ok]),
            batches=len(batch_log),
            mean_batch=n_batched / len(batch_log) if batch_log else 0.0,
            batch_histogram=histogram,
            rung_counts=rungs,
            peak_queue_depth=peak_queue,
            per_replica=stats,
        )
