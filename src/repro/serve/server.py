"""The serving loop: admission, batching, dispatch, fault recovery.

:class:`Server` is a discrete-event simulation on a **virtual clock** —
the serving analogue of the discrete-time runtime model.  It replays a
:class:`~repro.serve.request.RequestTrace` through:

1. **admission control** — a bounded queue; past ``max_queue`` waiting
   requests the server stops queueing and either *sheds* the request to
   the CPU sideline rung (the degradation-ladder response to overload)
   or *rejects* it outright, per ``overload_policy``;
2. **dynamic batching** — compatible requests coalesce inside a
   ``window_us`` virtual window up to ``max_batch``
   (:class:`~repro.serve.batcher.DynamicBatcher`);
3. **dispatch** — closed batches go FIFO to the lowest-numbered free
   *in-rotation* :class:`~repro.serve.replica.Replica` serving that
   network, which charges the batched runtime model's service time;
4. **fault recovery** — every dispatch runs under the replica health
   lifecycle (:mod:`repro.serve.lifecycle`): submission rejects, batch
   crashes, hangs caught by the serving watchdog and outright replica
   deaths (the ``dispatch`` / ``run_batch`` / ``replica`` fault sites)
   mark replicas SUSPECT, trip the circuit breaker into DRAINING/DEAD,
   requeue the failed batch's requests under a per-request retry budget
   (exhausted requests are shed to the CPU sideline — never stuck), and
   re-provision dead replicas through the shared compile cache.  A
   network whose replicas are all dead for good serves on the CPU rung.

Everything is a pure function of (trace, config, replica pool, fault
plan): event ties break on fixed priorities and sequence numbers, no
wall clock or unseeded randomness is consulted, responses are written
exactly once per request, and every shed/overload/lifecycle decision is
recorded on the process-wide resilience event log (site ``serve``) so
``python -m repro.report --serve`` can show the fault story next to the
metrics.  Logits are computed through the pool-wide
:class:`~repro.serve.replica.LogitsCache`, so they are bit-identical no
matter which replica — or the CPU sideline — ends up serving a request:
the chaos soak benchmark's core guarantee.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import DeadlockError, ReproError
from repro.flow.stages import CacheOption
from repro.resilience.config import LifecycleConfig, current_config
from repro.resilience.events import log as _resilience_log
from repro.resilience.events import record as _record
from repro.resilience.faults import probe
from repro.resilience.watchdog import Watchdog
from repro.serve.batcher import Batch, DynamicBatcher
from repro.serve.lifecycle import DEAD, LifecycleManager
from repro.serve.metrics import ReplicaStats, ServeMetrics, summarize
from repro.serve.replica import (
    LogitsCache,
    Replica,
    cpu_service_us,
    replicas_per_board,
    reprovision_replica,
)
from repro.serve.request import InferenceResponse, RequestTrace

__all__ = ["ServeConfig", "ServeResult", "Server"]

#: same-instant event ordering: completions free replicas before window
#: flushes close batches before new arrivals join groups
_COMPLETE, _WINDOW, _ARRIVE = 0, 1, 2


@dataclass(frozen=True)
class ServeConfig:
    """Serving policy knobs (see docs/serving.md for semantics)."""

    #: batching window: a group flushes this long after its oldest
    #: waiting request arrived
    window_us: float = 2000.0
    #: per-batch request cap; 1 disables batching entirely
    max_batch: int = 8
    #: admission bound on requests waiting (batcher + dispatch queue)
    max_queue: int = 64
    #: 'shed' serves overflow on the CPU sideline; 'reject' refuses it
    overload_policy: str = "shed"
    #: compute per-request logits (memoized per distinct input); turn
    #: off for pure throughput studies
    compute_logits: bool = True
    #: concurrent (one-queue-per-kernel) execution on pipelined replicas
    concurrent: bool = True
    #: replica health policy (breaker/retry/refill/watchdog knobs);
    #: None uses the process-wide ``current_config().lifecycle``
    lifecycle: Optional[LifecycleConfig] = None

    def __post_init__(self) -> None:
        if self.overload_policy not in ("shed", "reject"):
            raise ReproError(
                f"unknown overload_policy {self.overload_policy!r}; "
                "choose 'shed' or 'reject'"
            )
        if self.max_batch < 1 or self.max_queue < 1:
            raise ReproError("max_batch and max_queue must be >= 1")


@dataclass
class ServeResult:
    """Everything one server run produced, in deterministic order."""

    #: responses ordered by request id
    responses: List[InferenceResponse] = field(default_factory=list)
    metrics: ServeMetrics = field(default_factory=ServeMetrics)
    #: dispatch log: one dict per dispatched batch, in dispatch order
    batches: List[Dict[str, object]] = field(default_factory=list)
    #: resilience events (site 'serve') fired during the run
    events: List[Dict[str, object]] = field(default_factory=list)

    def fingerprint(self) -> str:
        """Content hash of batch assignments + metrics + logits.

        Two runs of the same (trace, config, pool, fault plan) must
        agree on this — the serving determinism contract.  Provisioning
        metadata (``bitstream_cache``) is excluded: whether a replica's
        bitstream came from a warm or cold compile cache must not
        change serving.
        """
        h = hashlib.sha256()
        for b in self.batches:
            h.update(
                f"{b['batch_id']}:{b['network']}:{b['replica']}:"
                f"{b['rids']}:{b.get('attempt', 1)}:{b.get('outcome', 'ok')}:"
                f"{b['dispatch_us']:.3f}:{b['service_us']:.3f};"
                .encode()
            )
        payload = self.metrics.to_dict()
        for row in payload["replicas"]:
            row.pop("bitstream_cache", None)
        h.update(json.dumps(payload).encode())
        for r in self.responses:
            if r.logits is not None:
                h.update(r.logits.tobytes())
        return h.hexdigest()[:16]


class Server:
    """Batched, multi-replica inference serving over a virtual clock."""

    def __init__(
        self,
        replicas: List[Replica],
        config: Optional[ServeConfig] = None,
        cache: CacheOption = None,
    ) -> None:
        if not replicas:
            raise ReproError("a server needs at least one replica")
        self.replicas = sorted(replicas, key=lambda r: r.replica_id)
        self.config = config or ServeConfig()
        #: compile cache used to re-provision dead replicas (refills);
        #: pass the pool's provisioning cache so refills hit warm
        self.cache = cache
        self.logits_cache = LogitsCache()
        #: lazily-built CPU sideline workers, one per network
        self._sideline: Dict[str, Replica] = {}
        self.networks = sorted({r.network for r in self.replicas})

    # -- helpers ---------------------------------------------------------
    def _sideline_for(self, network: str) -> Replica:
        if network not in self._sideline:
            board = self.replicas[0].board
            self._sideline[network] = Replica(
                replica_id=-1, network=network, board=board, rung="cpu"
            )
        return self._sideline[network]

    def _free_replica(self, network: str, now: float) -> Optional[Replica]:
        for r in self.replicas:  # replica_id order = deterministic pick
            if r.network == network and r.busy_until_us <= now:
                return r
        return None

    def _logits(self, replica: Replica, x) -> Optional[object]:
        if not self.config.compute_logits:
            return None
        return self.logits_cache.get(replica.network, x, replica.forward)

    # -- the event loop --------------------------------------------------
    def run(self, trace: RequestTrace) -> ServeResult:
        """Replay ``trace`` to completion and summarize the run."""
        cfg = self.config
        lcfg = cfg.lifecycle or current_config().lifecycle
        unknown = sorted(
            {r.network for r in trace} - set(self.networks)
        )
        if unknown:
            raise ReproError(
                f"trace requests networks with no replica: {unknown} "
                f"(pool serves {self.networks})"
            )
        for r in self.replicas:
            r.busy_until_us = 0.0
            r.busy_us = 0.0
            r.batches = 0
            r.images = 0

        cursor = _resilience_log().cursor()
        batcher = DynamicBatcher(cfg.window_us, cfg.max_batch)
        lc = LifecycleManager(self.replicas, lcfg)
        watchdog = Watchdog(budget_us=lcfg.batch_budget_us)
        heap: List[Tuple[float, int, int, str, object]] = []
        seq = 0

        def push(t: float, priority: int, kind: str, payload: object) -> None:
            nonlocal seq
            heapq.heappush(heap, (t, priority, seq, kind, payload))
            seq += 1

        for req in trace:
            push(req.arrival_us, _ARRIVE, "arrive", req)

        dispatch_queue: Deque[Batch] = deque()
        responses: Dict[int, InferenceResponse] = {}
        batch_log: List[Dict[str, object]] = []
        group_gen: Dict[object, int] = {}
        #: failed attempts per request (the retry-budget counter)
        attempts: Dict[int, int] = {}
        peak_queue = 0
        shed = rejected = requeues = watchdog_trips = 0
        first_arrival = trace.requests[0].arrival_us if len(trace) else 0.0
        last_completion = first_arrival

        def queue_depth() -> int:
            return len(batcher) + sum(len(b) for b in dispatch_queue)

        def answer(req, response) -> None:
            # exactly-once: a request is answered at one terminal event
            # (success, shed-complete or reject) and never again
            if req.rid in responses:
                raise ReproError(
                    f"internal: duplicate response for request {req.rid}"
                )
            responses[req.rid] = response

        def serve_on_cpu(reqs, now: float) -> None:
            """Terminal CPU-sideline service (the never-stuck guarantee)."""
            nonlocal shed
            for req in reqs:
                shed += 1
                sideline = self._sideline_for(req.network)
                service = cpu_service_us(req.network)
                push(now + service, _COMPLETE, "shed-complete",
                     (req, sideline, now))

        def maybe_refill(replica: Replica, now: float) -> None:
            ready = lc.want_refill(replica, now)
            if ready is not None:
                push(ready, _COMPLETE, "refill", replica)

        def after_failure(replica: Replica, now: float) -> None:
            if lc.of(replica).state == DEAD:
                maybe_refill(replica, now)

        def requeue_batch(batch: Batch, now: float, reason: str) -> None:
            """Recover a failed batch: retry its requests or shed them."""
            nonlocal requeues
            retry, exhausted = [], []
            for req in batch.requests:
                attempts[req.rid] = attempts.get(req.rid, 0) + 1
                if attempts[req.rid] <= lcfg.retry_budget:
                    retry.append(req)
                else:
                    exhausted.append(req)
            if retry:
                requeues += len(retry)
                dispatch_queue.appendleft(Batch(
                    batch_id=batch.batch_id, network=batch.network,
                    requests=retry, closed_us=batch.closed_us,
                    attempt=batch.attempt + 1,
                ))
                _record(
                    "requeue", "serve",
                    f"batch {batch.batch_id} ({batch.network} x{len(batch)}) "
                    f"failed on attempt {batch.attempt}: {reason}; "
                    f"requeueing {len(retry)} request(s) at the queue front",
                    t_us=now, batch=batch.batch_id,
                    retried=len(retry), exhausted=len(exhausted),
                )
            for req in exhausted:
                _record(
                    "shed", "serve",
                    f"request {req.rid} ({req.network}): retry budget "
                    f"exhausted after {reason} "
                    f"({attempts[req.rid] - 1}/{lcfg.retry_budget} retries "
                    f"used); shedding to the CPU rung",
                    t_us=now, rid=req.rid,
                )
            serve_on_cpu(exhausted, now)

        def dispatch(now: float) -> None:
            nonlocal watchdog_trips
            while dispatch_queue:
                batch = dispatch_queue[0]
                network = batch.network
                replica = lc.pick(network, now)
                if replica is None:
                    if lc.pool_alive(network):
                        return  # a completion or refill event re-drives us
                    # every replica of the network is DEAD with no refill
                    # left: serve the batch on the CPU sideline rung
                    dispatch_queue.popleft()
                    _record(
                        "fallback", "serve",
                        f"batch {batch.batch_id} ({network} x{len(batch)}): "
                        f"every {network} replica is dead with no refill "
                        f"left; serving on the CPU sideline rung",
                        t_us=now, batch=batch.batch_id,
                    )
                    serve_on_cpu(batch.requests, now)
                    continue
                rid = replica.replica_id
                # a replica can die at the instant of batch submission
                fault = probe("replica", f"dispatch:{network}:replica{rid}")
                if fault is not None:
                    lc.kill(
                        replica, now,
                        f"injected {fault.kind} fault at batch submission",
                    )
                    maybe_refill(replica, now)
                    continue  # batch stays queued; try the next replica
                # the submission itself can be rejected
                fault = probe("dispatch", f"{network}:replica{rid}")
                if fault is not None:
                    lc.on_failure(
                        replica, now,
                        f"batch {batch.batch_id} submission rejected "
                        f"(injected {fault.kind} fault)",
                    )
                    after_failure(replica, now)
                    continue
                # how the batch will run: crash/hang faults fire here so
                # the outcome is pinned at dispatch (determinism), but
                # they resolve at the completion event
                service = replica.service_us(len(batch))
                outcome = "ok"
                fault = probe("run_batch", f"{network}:replica{rid}")
                if fault is not None:
                    if fault.kind == "hang":
                        # the batch would never finish; model it as a
                        # service time past the watchdog budget
                        service = max(service, lcfg.batch_budget_us) * 2
                        outcome = "hang"
                    else:  # 'crash': dies part-way through service
                        frac = (
                            fault.param if 0.0 < fault.param < 1.0 else 0.5
                        )
                        service *= frac
                        outcome = "crash"
                try:
                    watchdog.observe(
                        f"batch{batch.batch_id}:{network}:replica{rid}",
                        service,
                    )
                except DeadlockError as err:
                    # the serving watchdog catches the hang: the batch is
                    # declared dead, the replica suspect, the trace lives
                    watchdog_trips += 1
                    _record(
                        "watchdog", "serve",
                        f"batch {batch.batch_id} on replica {rid}: {err}",
                        t_us=now, batch=batch.batch_id, replica=rid,
                    )
                    dispatch_queue.popleft()
                    lc.on_failure(
                        replica, now, "serving watchdog expiry (hung batch)"
                    )
                    after_failure(replica, now)
                    requeue_batch(batch, now, "a serving-watchdog expiry")
                    continue
                dispatch_queue.popleft()
                lc.of(replica).inflight += 1
                replica.busy_until_us = now + service
                replica.busy_us += service
                replica.batches += 1
                replica.images += len(batch)
                entry = {
                    "batch_id": batch.batch_id,
                    "network": network,
                    "replica": rid,
                    "rids": list(batch.rids),
                    "attempt": batch.attempt,
                    "dispatch_us": now,
                    "service_us": service,
                    "outcome": "ok",
                }
                batch_log.append(entry)
                push(now + service, _COMPLETE, "complete",
                     (batch, replica, now, outcome, entry))

        def close(batch: Optional[Batch], now: float) -> None:
            if batch is None:
                return
            key = (batch.network, tuple(batch.requests[0].x.shape))
            group_gen[key] = group_gen.get(key, 0) + 1
            dispatch_queue.append(batch)
            dispatch(now)

        while heap:
            now, _prio, _seq, kind, payload = heapq.heappop(heap)
            if kind != "refill":
                # refills may land after the last response; they must not
                # stretch the makespan
                last_completion = max(last_completion, now)

            if kind == "arrive":
                req = payload
                depth = queue_depth()
                if depth >= cfg.max_queue:
                    if cfg.overload_policy == "reject":
                        rejected += 1
                        _record(
                            "reject", "serve",
                            f"request {req.rid} ({req.network}): admission "
                            f"queue full ({depth}/{cfg.max_queue}); rejected",
                            t_us=now,
                        )
                        answer(req, InferenceResponse(
                            rid=req.rid, network=req.network,
                            status="rejected", arrival_us=now,
                            dispatch_us=now, completed_us=now,
                        ))
                        continue
                    sideline_service = cpu_service_us(req.network)
                    _record(
                        "shed", "serve",
                        f"request {req.rid} ({req.network}): admission "
                        f"queue full ({depth}/{cfg.max_queue}); shedding "
                        f"to the CPU rung ({sideline_service:.0f}us/image)",
                        t_us=now, queue_depth=depth,
                    )
                    serve_on_cpu([req], now)
                    continue
                key = req.batch_key
                peak_queue = max(peak_queue, depth + 1)
                was_empty = batcher.deadline(key) is None
                full = batcher.add(req, now)
                if full is not None:
                    close(full, now)
                elif was_empty:
                    gen = group_gen.get(key, 0)
                    push(batcher.deadline(key), _WINDOW, "window", (key, gen))

            elif kind == "window":
                key, gen = payload
                if group_gen.get(key, 0) != gen:
                    continue  # the group already closed on max_batch
                close(batcher.flush(key, now), now)

            elif kind == "complete":
                batch, replica, dispatched, outcome, entry = payload
                lc.of(replica).inflight -= 1
                rid = replica.replica_id
                died = probe(
                    "replica", f"complete:{batch.network}:replica{rid}"
                )
                if died is not None:
                    entry["outcome"] = "died"
                    lc.kill(
                        replica, now,
                        f"injected {died.kind} fault with batch "
                        f"{batch.batch_id} in flight; the batch is lost",
                    )
                    maybe_refill(replica, now)
                    requeue_batch(
                        batch, now, f"replica {rid} dying mid-batch"
                    )
                elif outcome == "crash":
                    entry["outcome"] = "crash"
                    lc.on_failure(
                        replica, now,
                        f"batch {batch.batch_id} crashed mid-service "
                        f"(injected run_batch fault)",
                    )
                    after_failure(replica, now)
                    requeue_batch(batch, now, "a mid-service crash")
                else:
                    for req in batch.requests:
                        answer(req, InferenceResponse(
                            rid=req.rid, network=req.network, status="ok",
                            rung=replica.rung, replica=rid,
                            batch_id=batch.batch_id, batch_size=len(batch),
                            logits=self._logits(replica, req.x),
                            arrival_us=req.arrival_us,
                            dispatch_us=dispatched, completed_us=now,
                            requeues=attempts.get(req.rid, 0),
                        ))
                    lc.on_success(replica, now)
                dispatch(now)

            elif kind == "refill":
                replica = payload
                try:
                    reprovision_replica(replica, cache=self.cache)
                except Exception as err:
                    lc.on_refill_failed(
                        replica, now, f"{type(err).__name__}: {err}"
                    )
                else:
                    replica.busy_until_us = now
                    lc.on_refill_ready(replica, now)
                dispatch(now)

            else:  # shed-complete
                req, sideline, dispatched = payload
                answer(req, InferenceResponse(
                    rid=req.rid, network=req.network, status="shed",
                    rung="cpu", batch_size=1,
                    logits=self._logits(sideline, req.x),
                    arrival_us=req.arrival_us, dispatch_us=dispatched,
                    completed_us=now,
                    requeues=attempts.get(req.rid, 0),
                ))

        lc.finalize(last_completion)
        ordered = [responses[r.rid] for r in trace]
        metrics = self._metrics(
            ordered, batch_log, first_arrival, last_completion,
            peak_queue, shed, rejected, lc, requeues, watchdog_trips,
        )
        events = [
            e.to_dict()
            for e in _resilience_log().since(cursor)
            if e.site == "serve"
        ]
        return ServeResult(
            responses=ordered, metrics=metrics, batches=batch_log,
            events=events,
        )

    # -- summarization ---------------------------------------------------
    def _metrics(
        self,
        responses: List[InferenceResponse],
        batch_log: List[Dict[str, object]],
        t0: float,
        t1: float,
        peak_queue: int,
        shed: int,
        rejected: int,
        lc: LifecycleManager,
        requeues: int,
        watchdog_trips: int,
    ) -> ServeMetrics:
        served = [r for r in responses if r.status in ("ok", "shed")]
        ok = [r for r in responses if r.status == "ok"]
        makespan = max(0.0, t1 - t0)
        histogram: Dict[int, int] = {}
        for b in batch_log:
            size = len(b["rids"])
            histogram[size] = histogram.get(size, 0) + 1
        rungs: Dict[str, int] = {}
        for r in served:
            rungs[r.rung] = rungs.get(r.rung, 0) + 1
        n_batched = sum(len(b["rids"]) for b in batch_log)
        stats = []
        for rep in self.replicas:
            health = lc.of(rep)
            stats.append(ReplicaStats(
                replica=rep.replica_id, board=rep.board.name, rung=rep.rung,
                bitstream_cache=rep.bitstream_cache, batches=rep.batches,
                images=rep.images, busy_us=rep.busy_us,
                utilization=rep.busy_us / makespan if makespan else 0.0,
                state=health.state, failures=health.failures,
                refills=health.refills,
                timeline=[dict(t) for t in health.timeline],
            ))
        # packing bound from the certified memory footprint: the worst
        # (largest) device replica decides how many fit one board
        footprints = [r.ddr_bytes for r in self.replicas if r.ddr_bytes]
        ddr_per_replica = max(footprints, default=0)
        per_board = 0
        if footprints:
            rep = next(r for r in self.replicas if r.ddr_bytes)
            per_board = replicas_per_board(rep.board, ddr_per_replica)
        return ServeMetrics(
            requests=len(responses),
            completed=len(served),
            shed=shed,
            rejected=rejected,
            makespan_us=makespan,
            throughput_rps=len(served) / (makespan / 1e6) if makespan else 0.0,
            latency_us=summarize([r.latency_us for r in served]),
            queue_us=summarize([r.queue_us for r in ok]),
            service_us=summarize([r.service_us for r in ok]),
            batches=len(batch_log),
            mean_batch=n_batched / len(batch_log) if batch_log else 0.0,
            batch_histogram=histogram,
            rung_counts=rungs,
            peak_queue_depth=peak_queue,
            requeues=requeues,
            breaker_trips=lc.breaker_trips,
            deaths=lc.deaths,
            refills=lc.refills,
            watchdog_trips=watchdog_trips,
            availability=lc.availability(max(0.0, t1 - t0)),
            ddr_per_replica_bytes=ddr_per_replica,
            replicas_per_board=per_board,
            per_replica=stats,
        )
