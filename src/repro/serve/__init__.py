"""Multi-device batched inference serving on top of the deployment flow.

Package contract: given a pool of replicas (deployments on simulated
boards, provisioned through the shared compile cache so same-network
replicas reuse one synthesized bitstream) and a deterministic request
trace, :class:`Server` replays the trace on a virtual clock through
admission control, dynamic batching (:class:`DynamicBatcher`) and
FIFO dispatch, degrading to the CPU sideline rung under overload
instead of queueing unboundedly.  The result is reproducible
bit-for-bit for a given (trace, config, pool): responses with logits,
a dispatch log, resilience events (site ``serve``) and a
:class:`ServeMetrics` summary (p50/p95/p99 latency, throughput, batch
histogram, per-replica utilization) rendered by
``python -m repro.report --serve``.  See docs/serving.md for the
policy-knob and metrics-schema reference.
"""

from repro.serve.batcher import Batch, DynamicBatcher
from repro.serve.metrics import ServeMetrics, percentile, summarize
from repro.serve.replica import (
    LogitsCache,
    Replica,
    cpu_service_us,
    provision_replicas,
)
from repro.serve.request import (
    InferenceRequest,
    InferenceResponse,
    RequestTrace,
    input_fingerprint,
)
from repro.serve.server import ServeConfig, ServeResult, Server

__all__ = [
    "Batch",
    "DynamicBatcher",
    "InferenceRequest",
    "InferenceResponse",
    "LogitsCache",
    "Replica",
    "RequestTrace",
    "ServeConfig",
    "ServeMetrics",
    "ServeResult",
    "Server",
    "cpu_service_us",
    "input_fingerprint",
    "percentile",
    "provision_replicas",
    "summarize",
]
