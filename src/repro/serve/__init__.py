"""Multi-device batched inference serving on top of the deployment flow.

Package contract: given a pool of replicas (deployments on simulated
boards, provisioned through the shared compile cache so same-network
replicas reuse one synthesized bitstream) and a deterministic request
trace, :class:`Server` replays the trace on a virtual clock through
admission control, dynamic batching (:class:`DynamicBatcher`) and FIFO
dispatch, degrading to the CPU sideline rung under overload instead of
queueing unboundedly.  Serving is **fault tolerant**: every replica
runs under the health lifecycle of :mod:`repro.serve.lifecycle`
(HEALTHY -> SUSPECT -> DRAINING -> DEAD -> REPROVISIONING -> HEALTHY),
a consecutive-failure circuit breaker trips failing replicas out of the
dispatch rotation, failed batches requeue under a per-request retry
budget (exhausted requests shed to the CPU sideline — no request is
ever stuck), and dead replicas re-provision through the shared compile
cache.  The result is reproducible bit-for-bit for a given (trace,
config, pool, fault plan): responses with logits, a dispatch log,
resilience events (site ``serve``) and a :class:`ServeMetrics` summary
(p50/p95/p99 latency, throughput, batch histogram, per-replica
utilization and health timeline, availability) rendered by
``python -m repro.report --serve`` (add ``--chaos SEED`` for a seeded
fault-plan soak).  See docs/serving.md for the policy-knob, lifecycle
and metrics-schema reference.
"""

from repro.serve.batcher import Batch, DynamicBatcher
from repro.serve.lifecycle import (
    DEAD,
    DRAINING,
    HEALTHY,
    REPROVISIONING,
    SUSPECT,
    LifecycleManager,
    ReplicaHealth,
    chaos_plan,
)
from repro.serve.metrics import ServeMetrics, percentile, summarize
from repro.serve.replica import (
    LogitsCache,
    Replica,
    cpu_service_us,
    deployment_ddr_bytes,
    provision_replicas,
    replicas_per_board,
    reprovision_replica,
)
from repro.serve.request import (
    InferenceRequest,
    InferenceResponse,
    RequestTrace,
    input_fingerprint,
)
from repro.serve.server import ServeConfig, ServeResult, Server

__all__ = [
    "Batch",
    "DEAD",
    "DRAINING",
    "DynamicBatcher",
    "HEALTHY",
    "InferenceRequest",
    "InferenceResponse",
    "LifecycleManager",
    "LogitsCache",
    "REPROVISIONING",
    "Replica",
    "ReplicaHealth",
    "RequestTrace",
    "SUSPECT",
    "ServeConfig",
    "ServeMetrics",
    "ServeResult",
    "Server",
    "chaos_plan",
    "cpu_service_us",
    "input_fingerprint",
    "deployment_ddr_bytes",
    "percentile",
    "provision_replicas",
    "replicas_per_board",
    "reprovision_replica",
    "summarize",
]
