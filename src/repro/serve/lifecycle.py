"""Replica health lifecycle: suspect, drain, die, refill.

The serving loop assumed boards stay up for a whole trace; this module
gives :class:`~repro.serve.server.Server` a per-replica state machine so
a replica can fail — and come back — *mid-trace* without losing a single
request::

    HEALTHY --failure--> SUSPECT --breaker--> DRAINING --> DEAD
       ^        (any state) --die fault--------------------^  |
       |                                                      v
       +-------------- refill built ok <-------- REPROVISIONING

* **HEALTHY / SUSPECT** are *in rotation*: the dispatcher may pick the
  replica.  A failure (``dispatch`` fault, ``run_batch`` crash/hang,
  serving-watchdog expiry) moves HEALTHY to SUSPECT; a success moves
  SUSPECT back to HEALTHY (a ``recovered`` event).
* The **circuit breaker** trips after
  :attr:`~repro.resilience.LifecycleConfig.breaker_failures` consecutive
  failures: SUSPECT -> DRAINING, out of the rotation.  A draining
  replica finishes (or loses) its in-flight batch and goes DEAD.
* A ``replica``-site ``die`` fault kills a replica outright (any state
  -> DEAD); a death during an in-flight batch loses the batch, whose
  requests the server requeues under the per-request retry budget.
* A DEAD replica with refill budget left enters **REPROVISIONING**: the
  server re-provisions it through the pool's shared
  :class:`~repro.pipeline.CompileCache` (with a placement-seed sweep)
  after :attr:`~repro.resilience.LifecycleConfig.reprovision_us` of
  virtual time.  With the budget exhausted it stays DEAD, and once every
  replica of a network is DEAD the server serves that network on the
  CPU sideline rung — latency degrades, no request is ever stuck.

Every transition is recorded as a :class:`~repro.resilience.ResilienceEvent`
(site ``serve``) and lands in the per-replica timeline that
:class:`~repro.serve.metrics.ServeMetrics` exports.  All of it is
deterministic: transitions are pure functions of the (trace, config,
fault plan) tuple, which is what the chaos soak benchmark
(``benchmarks/test_serving_chaos.py``) relies on to prove bit-identical
logits under replica churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.resilience.config import LifecycleConfig
from repro.resilience.events import record as _record
from repro.resilience.faults import Fault, FaultPlan
from repro.serve.replica import Replica

__all__ = [
    "HEALTHY",
    "SUSPECT",
    "DRAINING",
    "DEAD",
    "REPROVISIONING",
    "ReplicaHealth",
    "LifecycleManager",
    "chaos_plan",
]

#: lifecycle states (strings, like rungs and response statuses)
HEALTHY = "healthy"
SUSPECT = "suspect"
DRAINING = "draining"
DEAD = "dead"
REPROVISIONING = "reprovisioning"

#: states in the dispatch rotation
_IN_ROTATION = (HEALTHY, SUSPECT)
#: states that may still contribute capacity (now or after refill)
_ALIVE = (HEALTHY, SUSPECT, DRAINING, REPROVISIONING)

#: transition -> event kind recorded on the resilience log
_EVENT_KINDS = {
    SUSPECT: "suspect",
    DRAINING: "breaker",
    DEAD: "dead",
    REPROVISIONING: "reprovision",
    HEALTHY: "refill",
}


@dataclass
class ReplicaHealth:
    """Live health record of one replica during a server run."""

    replica_id: int
    state: str = HEALTHY
    #: consecutive failures since the last success (breaker input)
    consecutive_failures: int = 0
    failures: int = 0
    successes: int = 0
    #: refills consumed this run
    refills: int = 0
    #: batches currently dispatched to the replica (0 or 1)
    inflight: int = 0
    #: every transition: {'t_us', 'state', 'reason'}
    timeline: List[Dict[str, object]] = field(default_factory=list)
    #: when the current state was entered
    state_since_us: float = 0.0
    #: accumulated in-rotation (HEALTHY/SUSPECT) time
    in_rotation_us: float = 0.0

    @property
    def in_rotation(self) -> bool:
        return self.state in _IN_ROTATION

    @property
    def alive(self) -> bool:
        return self.state in _ALIVE

    def _move(self, state: str, now: float, reason: str) -> None:
        if self.state in _IN_ROTATION:
            self.in_rotation_us += max(0.0, now - self.state_since_us)
        self.state = state
        self.state_since_us = now
        self.timeline.append({"t_us": now, "state": state, "reason": reason})

    def finalize(self, now: float) -> None:
        """Close the availability accounting at end of run."""
        if self.state in _IN_ROTATION:
            self.in_rotation_us += max(0.0, now - self.state_since_us)
            self.state_since_us = now


class LifecycleManager:
    """Drives every replica's health state machine for one server run.

    The :class:`~repro.serve.server.Server` owns one manager per
    ``run()`` (state never leaks across runs, keeping runs restartable)
    and calls back on every dispatch outcome; the manager answers
    rotation/placement queries and records each transition as a
    ``serve``-site resilience event.
    """

    def __init__(
        self, replicas: List[Replica], config: Optional[LifecycleConfig] = None
    ) -> None:
        self.config = config or LifecycleConfig()
        self.health: Dict[int, ReplicaHealth] = {
            r.replica_id: ReplicaHealth(replica_id=r.replica_id)
            for r in replicas
        }
        self._replicas = list(replicas)
        self.breaker_trips = 0
        self.deaths = 0
        self.refills = 0

    # -- queries ---------------------------------------------------------
    def of(self, replica: Replica) -> ReplicaHealth:
        return self.health[replica.replica_id]

    def pick(self, network: str, now: float) -> Optional[Replica]:
        """Lowest-id free, in-rotation replica serving ``network``."""
        for r in self._replicas:
            if (
                r.network == network
                and r.busy_until_us <= now
                and self.of(r).in_rotation
            ):
                return r
        return None

    def pool_alive(self, network: str) -> bool:
        """Whether any replica of ``network`` can still serve (now or
        after a pending refill)."""
        return any(
            self.of(r).alive for r in self._replicas if r.network == network
        )

    def availability(self, makespan_us: float) -> float:
        """Fraction of replica-time spent in the dispatch rotation."""
        if not self._replicas or makespan_us <= 0:
            return 1.0
        total = sum(h.in_rotation_us for h in self.health.values())
        return min(1.0, total / (makespan_us * len(self._replicas)))

    def finalize(self, now: float) -> None:
        for h in self.health.values():
            h.finalize(now)

    # -- transitions -----------------------------------------------------
    def _transition(
        self, replica: Replica, state: str, now: float, reason: str
    ) -> None:
        h = self.of(replica)
        h._move(state, now, reason)
        _record(
            _EVENT_KINDS[state], "serve",
            f"replica {replica.replica_id} ({replica.network}/"
            f"{replica.rung}) -> {state.upper()}: {reason}",
            t_us=now, replica=replica.replica_id, state=state,
        )

    def on_success(self, replica: Replica, now: float) -> None:
        """A batch completed cleanly: clear the failure streak."""
        h = self.of(replica)
        h.successes += 1
        h.consecutive_failures = 0
        if h.state == SUSPECT:
            self._transition(
                replica, HEALTHY, now, "served a batch cleanly; recovered"
            )

    def on_failure(self, replica: Replica, now: float, reason: str) -> None:
        """A dispatch/run failure: SUSPECT, then the breaker may trip.

        A replica whose breaker trips leaves the rotation (DRAINING) and,
        once nothing is in flight, goes DEAD — the caller should then ask
        :meth:`want_refill`.
        """
        h = self.of(replica)
        h.failures += 1
        h.consecutive_failures += 1
        if h.state == HEALTHY:
            self._transition(replica, SUSPECT, now, reason)
        if (
            h.state == SUSPECT
            and h.consecutive_failures >= self.config.breaker_failures
        ):
            self.breaker_trips += 1
            self._transition(
                replica, DRAINING, now,
                f"circuit breaker: {h.consecutive_failures} consecutive "
                f"failures (last: {reason})",
            )
            if h.inflight == 0:
                self.on_drained(replica, now)

    def on_drained(self, replica: Replica, now: float) -> None:
        """A draining replica has no in-flight work left: declare DEAD."""
        self.deaths += 1
        self._transition(replica, DEAD, now, "drained; out of service")

    def kill(self, replica: Replica, now: float, reason: str) -> None:
        """A ``die`` fault: straight to DEAD from any live state."""
        self.deaths += 1
        self._transition(replica, DEAD, now, reason)

    def want_refill(self, replica: Replica, now: float) -> Optional[float]:
        """Start re-provisioning a DEAD replica if budget remains.

        Returns the virtual time the refill completes (the server
        schedules a ``refill`` event there), or None when the budget is
        exhausted — the replica stays DEAD and the pool shrinks for good.
        """
        h = self.of(replica)
        if h.state != DEAD:
            return None
        if h.refills >= self.config.max_refills:
            _record(
                "giveup", "serve",
                f"replica {replica.replica_id} ({replica.network}): refill "
                f"budget exhausted ({h.refills}/{self.config.max_refills}); "
                f"staying DEAD",
                t_us=now, replica=replica.replica_id,
            )
            return None
        h.refills += 1
        ready = now + self.config.reprovision_us
        self._transition(
            replica, REPROVISIONING, now,
            f"refill {h.refills}/{self.config.max_refills}: re-provisioning "
            f"through the shared compile cache, ready at {ready:.0f}us",
        )
        return ready

    def on_refill_ready(self, replica: Replica, now: float) -> None:
        """The rebuilt deployment is live: back to HEALTHY."""
        h = self.of(replica)
        h.consecutive_failures = 0
        self.refills += 1
        self._transition(
            replica, HEALTHY, now,
            f"re-provisioned on {replica.board.name} as {replica.rung}; "
            f"back in rotation",
        )

    def on_refill_failed(self, replica: Replica, now: float, reason: str) -> None:
        """The rebuild itself failed: back to DEAD (budget consumed)."""
        self.deaths += 1
        self._transition(
            replica, DEAD, now, f"re-provisioning failed ({reason})"
        )


def chaos_plan(
    network: str, n_replicas: int, seed: Optional[int] = None
) -> FaultPlan:
    """The canonical serving chaos plan: kill replicas mid-trace.

    Used by the chaos soak benchmark, ``repro.report --serve --chaos``
    and the CI chaos job.  With ``n_replicas >= 2`` it kills two
    replicas — one outright at dispatch, one **during an in-flight
    batch** — trips the circuit breaker with repeated dispatch rejects,
    and injects a mid-run batch crash plus a hang that the serving
    watchdog must catch.  All randomness derives from ``seed``
    (default: ``REPRO_FAULT_SEED``).
    """
    victim = 1 % n_replicas  # dies at dispatch, after breaker trips
    inflight_victim = n_replicas - 1  # dies mid-batch
    return FaultPlan(
        # two consecutive submission failures: SUSPECT then breaker trip
        Fault("dispatch", "reject", times=2, match=f"replica{victim}"),
        # one batch crashes halfway through its service time
        Fault("run_batch", "crash", times=1, param=0.5, match="replica0"),
        # one batch hangs; the serving watchdog declares it dead
        Fault("run_batch", "hang", times=1, match="replica0"),
        # a replica dies while a batch is in flight on it
        Fault(
            "replica", "die", times=1,
            match=f"complete:{network}:replica{inflight_victim}",
        ),
        # and (after its refill) the breaker victim dies for good
        Fault(
            "replica", "die", times=1,
            match=f"dispatch:{network}:replica{victim}",
        ),
        seed=seed,
    )
