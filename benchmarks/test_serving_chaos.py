"""Chaos-mode serving soak — replica churn with a zero-loss contract.

Extension beyond the thesis: the serving layer replays one deterministic
request trace twice — once fault-free, once under the canonical serving
chaos plan (``repro.serve.lifecycle.chaos_plan``), which kills two
replicas mid-trace (one of them with a batch in flight), trips the
circuit breaker with repeated submission rejects, crashes one batch
mid-service and hangs another for the serving watchdog to catch.  The
ISSUE-7 acceptance criteria asserted here: the chaos run completes the
full trace with logits **bit-identical** to the fault-free run, its p99
latency stays within 3x the fault-free p99, no request is ever stuck,
and every lifecycle transition (SUSPECT, breaker DRAINING, DEAD,
REPROVISIONING, requeues) is visible in both the resilience event log
and the :class:`~repro.serve.metrics.ServeMetrics` health timeline.

The fault plan seed comes from ``REPRO_FAULT_SEED`` when set (the CI
chaos-soak job matrixes over seeds), proving recovery — and the served
numerics — are seed-independent.
"""

import os

import numpy as np
from conftest import fmt_table, save_table

from repro.device import STRATIX10_SX
from repro.pipeline import CompileCache
from repro.resilience import FAULT_SEED_ENV, LifecycleConfig
from repro.serve import (
    DEAD,
    DRAINING,
    REPROVISIONING,
    SUSPECT,
    RequestTrace,
    ServeConfig,
    Server,
    chaos_plan,
    provision_replicas,
)

NETWORK = "lenet5"
SHAPE = (1, 28, 28)
N_REPLICAS = 3
N_REQUESTS = 240
RATE_RPS = 2500.0

LIFECYCLE = LifecycleConfig(
    breaker_failures=2, retry_budget=3, reprovision_us=2000.0, max_refills=1
)


def _trace():
    return RequestTrace.poisson(
        NETWORK, N_REQUESTS, rate_rps=RATE_RPS, shape=SHAPE, seed=3
    )


def _server(cache):
    pool = provision_replicas(NETWORK, STRATIX10_SX, N_REPLICAS, cache=cache)
    cfg = ServeConfig(
        window_us=300.0, max_batch=8, max_queue=10**6, lifecycle=LIFECYCLE
    )
    return Server(pool, cfg, cache=cache)


def _run_soak():
    seed = int(os.environ.get(FAULT_SEED_ENV, "0") or "0")
    cache = CompileCache()
    trace = _trace()
    baseline = _server(cache).run(trace)
    with chaos_plan(NETWORK, N_REPLICAS, seed=seed) as plan:
        chaos = _server(cache).run(trace)
    return trace, baseline, chaos, plan, seed


def test_chaos_soak_zero_loss_and_bounded_latency(benchmark):
    trace, baseline, chaos, plan, seed = benchmark.pedantic(
        _run_soak, rounds=1, iterations=1
    )
    base_m, m = baseline.metrics, chaos.metrics

    # the plan actually did its worst: every fault fired
    assert plan.remaining() == 0, f"unfired faults remain: {plan}"
    died_at_dispatch = {
        e["data"].get("replica") for e in chaos.events
        if e["kind"] == "dead" and "submission" in e["detail"]
    }
    died_in_flight = {
        e["data"].get("replica") for e in chaos.events
        if e["kind"] == "dead" and "in flight" in e["detail"]
    }
    assert died_in_flight, "no replica was killed with a batch in flight"
    assert len(died_at_dispatch | died_in_flight) >= 2, (
        "fewer than 2 replicas were killed mid-trace"
    )

    # zero loss: the full trace completes, nothing is stuck or rejected
    assert m.completed == len(trace) == base_m.completed
    assert m.rejected == 0
    answered = {r.rid for r in chaos.responses}
    assert answered == {r.rid for r in trace}, "stuck requests detected"

    # bit-identical logits, response by response
    for got, want in zip(chaos.responses, baseline.responses):
        assert got.rid == want.rid
        assert np.array_equal(got.logits, want.logits), (
            f"request {got.rid}: logits diverged under chaos"
        )

    # bounded degradation: p99 within 3x of the fault-free p99
    p99_ratio = m.latency_us["p99"] / base_m.latency_us["p99"]
    assert p99_ratio <= 3.0, f"chaos p99 is {p99_ratio:.2f}x fault-free"

    # every lifecycle transition is observable in events AND metrics
    event_kinds = {e["kind"] for e in chaos.events}
    assert {"suspect", "breaker", "dead", "reprovision", "refill",
            "requeue"} <= event_kinds
    timeline_states = {
        t["state"] for r in m.per_replica for t in r.timeline
    }
    assert {SUSPECT, DRAINING, DEAD, REPROVISIONING} <= timeline_states
    assert m.breaker_trips >= 1
    assert m.deaths >= 2
    assert m.refills >= 1
    assert m.requeues >= 1
    assert m.watchdog_trips >= 1
    assert 0.0 < m.availability < 1.0
    assert base_m.availability == 1.0

    # determinism: replaying the same chaos yields the same fingerprint
    cache = CompileCache()
    with chaos_plan(NETWORK, N_REPLICAS, seed=seed):
        replay = _server(cache).run(_trace())
    assert replay.fingerprint() == chaos.fingerprint()

    rows = [
        ["fault-free", f"{base_m.throughput_rps:.0f}",
         f"{base_m.latency_us['p99'] / 1e3:.2f}",
         base_m.deaths, base_m.refills, base_m.requeues,
         f"{base_m.availability:.1%}"],
        [f"chaos (seed {seed})", f"{m.throughput_rps:.0f}",
         f"{m.latency_us['p99'] / 1e3:.2f}",
         m.deaths, m.refills, m.requeues, f"{m.availability:.1%}"],
    ]
    text = fmt_table(
        f"Chaos soak - {NETWORK} on {N_REPLICAS}x S10SX "
        f"({N_REQUESTS} requests, {len(plan.fired)} faults, "
        f"p99 ratio {p99_ratio:.2f}x, logits bit-identical)",
        ["run", "req/s", "p99 ms", "deaths", "refills", "requeues",
         "availability"],
        rows,
    )
    save_table("serving_chaos", text)
