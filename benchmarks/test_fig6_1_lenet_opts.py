"""Figure 6.1 / Table 6.4 — impact of each optimization on LeNet FPS.

Five cumulative bitstreams (Base, Unrolling, Channels, Autorun,
TVM-Autorun) on three boards, serial and concurrent execution.
Paper anchors: base 568/524/402 FPS (S10MX/S10SX/A10); best (TVM-Autorun
with CE) 1706/4917/2653 FPS, i.e. 3.0x/9.4x/6.6x over base.
"""

from conftest import fmt_table, save_table

from repro.aoc import compile_program
from repro.device import ALL_BOARDS, STRATIX10_SX
from repro.flow import LEVELS, build_pipelined
from repro.runtime import simulate_pipelined

PAPER_BASE = {"S10MX": 568, "S10SX": 524, "A10": 402}
PAPER_BEST = {"S10MX": 1706, "S10SX": 4917, "A10": 2653}


def _measure_all():
    table = {}
    for level in LEVELS:
        for board in ALL_BOARDS:
            prog, plan = build_pipelined(_fused(), level, board)
            bs = compile_program(prog, board)
            table[(level, board.name, "serial")] = simulate_pipelined(
                bs, plan, concurrent=False
            ).fps
            table[(level, board.name, "CE")] = simulate_pipelined(
                bs, plan, concurrent=True
            ).fps
    return table


_cache = {}


def _fused():
    if "fused" not in _cache:
        from repro.models import lenet5
        from repro.relay import fuse_operators

        _cache["fused"] = fuse_operators(lenet5())
    return _cache["fused"]


def test_fig6_1_lenet_optimization_impact(benchmark):
    table = benchmark.pedantic(_measure_all, rounds=1, iterations=1)

    rows = []
    for level in LEVELS:
        for mode in ("serial", "CE"):
            rows.append(
                [f"{level}[{mode}]"]
                + [f"{table[(level, b.name, mode)]:.0f}" for b in ALL_BOARDS]
            )
    text = fmt_table(
        "Figure 6.1 / Table 6.4 - LeNet FPS per bitstream "
        "(paper base: MX 568 / SX 524 / A10 402; "
        "paper best CE: MX 1706 / SX 4917 / A10 2653)",
        ["bitstream", "S10MX", "S10SX", "A10"],
        rows,
    )
    from repro.viz import grouped_bar_chart

    chart = grouped_bar_chart(
        "Figure 6.1 (rendered) - CE FPS per level",
        list(LEVELS),
        {b.name: [table[(lv, b.name, "CE")] for lv in LEVELS] for b in ALL_BOARDS},
    )
    save_table("fig6_1_lenet_opts", text + "\n\n" + chart)

    # shape assertions ---------------------------------------------------
    for board in ALL_BOARDS:
        base = table[("base", board.name, "serial")]
        best = table[("tvm_autorun", board.name, "CE")]
        # each optimization level improves serial throughput
        fps = [table[(lv, board.name, "serial")] for lv in LEVELS]
        assert all(b >= 0.95 * a for a, b in zip(fps, fps[1:])), board.name
        # total speedup in the paper's 3x-10x band (we allow 2x-25x)
        assert 2.0 < best / base < 25.0, board.name
    # S10SX is the fastest optimized platform, as in the paper
    best_fps = {b.name: table[("tvm_autorun", b.name, "CE")] for b in ALL_BOARDS}
    assert best_fps["S10SX"] > best_fps["A10"] > best_fps["S10MX"]
    # concurrent execution helps channel-enabled bitstreams the most
    assert (
        table[("tvm_autorun", "S10SX", "CE")]
        > 2 * table[("tvm_autorun", "S10SX", "serial")]
    )
