"""Committed performance trajectory: compile time and simulated throughput.

Unlike the figure/table benchmarks (which reproduce thesis numbers), this
bench pins the *reproduction's own* performance so regressions are caught
in CI:

* cold compile seconds for each shipped network on a board it fits;
* simulated inferences/sec through the functional executor — LeNet-5 at
  full size (vectorized AND scalar, asserting the >= 5x vectorization
  floor), MobileNetV1/ResNet-18 through their reduced twins;
* pruned 72-point conv1x1 DSE sweep wall-clock, serial vs 4 workers;
* static equivalence certification of the whole folded LeNet-5 build vs
  one interpreter cross-check of a single kernel — the certificate path
  must stay strictly faster, or removing interpreter runs from the
  DSE/autofix accept paths stops paying;
* static memory footprint of the folded MobileNetV1/ResNet-18 builds —
  arena (interference-colored reuse) vs naive per-buffer activation
  bytes, and the replicas-per-board packing both imply on the S10SX.
  These are exact byte counts, not timings: the arena must stay
  strictly smaller than naive and must never regress vs the baseline.

Results are compared against the committed baseline
``benchmarks/results/perf_trajectory.json``.  Raw seconds are not
portable across machines (or even across minutes on a shared host), so
every metric is paired with a calibration probe measured *immediately
adjacent* to it — a pure-Python probe for compile/DSE (interpreter
bound) and a small-array NumPy probe for executor throughput (matching
the vectorized interpreter's working set).  The probe ratio normalizes
the measurement before the tolerance bands apply: compile time may
regress at most 20%, throughput at most 10%.  A band violation triggers
up to two re-measurements (metric and probe together) before failing,
so transient scheduler noise does not fail CI while a real regression —
which reproduces on every retry — still does.

Regenerate the baseline after an intentional performance change with::

    REPRO_PERF_UPDATE=1 PYTHONPATH=src python -m pytest -q \
        benchmarks/test_perf_trajectory.py

The parallel-sweep arm asserts strict wall-clock improvement over serial
only when at least two CPUs are usable (the CI ``perf`` job runs on
multi-core runners); on a single core it asserts the bounded-overhead
contract instead, since four forked workers time-slicing one core cannot
beat the serial loop.
"""

import json
import os
import time

import numpy as np
import pytest
from conftest import RESULTS_DIR, fmt_table, save_table

from repro.device import ARRIA10, board_by_name
from repro.flow import build_folded
from repro.flow.deploy import default_folded_config, deploy_pipelined
from repro.flow.dse import sweep_conv1x1
from repro.flow.folded import FoldedConfig, plan_folded, schedule_folded
from repro.flow.incremental import clear_lower_cache
from repro.flow.stages import MODELS, folded_flow, pipelined_flow
from repro.models.twins import TWINS
from repro.pipeline.cache import CompileCache
from repro.relay import fuse_operators, init_params
from repro.runtime.executor import run_folded_functional
from repro.serve.replica import replicas_per_board
from repro.verify import certify_build, clear_equiv_cache, dynamic_equiv_check
from repro.verify.memory import weights_bytes
from repro.verify.verifier import binding_sets_of

BASELINE_PATH = os.path.join(RESULTS_DIR, "perf_trajectory.json")
UPDATE = os.environ.get("REPRO_PERF_UPDATE") == "1"

#: tolerance bands: fail on >20% compile-time or >10% throughput
#: regression (after per-metric probe calibration)
COMPILE_BAND = 1.20
THROUGHPUT_BAND = 0.90
#: re-measurements allowed before a band violation becomes a failure
RETRIES = 2
#: the vectorized interpreter must beat scalar by at least this factor
#: on LeNet-5 (a pure ratio — no calibration needed)
LENET_SPEEDUP_FLOOR = 5.0

#: network -> board it compiles on (ResNet-18 does not fit the A10)
COMPILE_TARGETS = (
    ("lenet5", "A10"),
    ("mobilenet_v1", "A10"),
    ("resnet18", "S10MX"),
)

#: expanded conv1x1 sweep grid (72 points; pruning keeps ~57 live)
SWEEP_GRID = dict(
    w2vec_options=(1, 7),
    c2vec_options=(1, 2, 4, 8, 16, 32),
    c1vec_options=(1, 2, 4, 8, 16, 32),
)
SWEEP_WORKERS = 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _python_probe() -> float:
    """Seconds for a fixed interpreter-bound workload (compile/DSE proxy)."""

    def work():
        acc = 0
        for i in range(400_000):
            acc += i * i % 7
        return acc

    return _best_of(work, repeats=3)


def _numpy_probe() -> float:
    """Seconds for a small-array NumPy workload (executor proxy).

    Deliberately shaped like the vectorized interpreter's inner loop —
    many short operations on small float32 arrays — rather than one big
    BLAS call, so it tracks the same machine-speed regime.
    """
    a = np.ones((49, 32), dtype=np.float32)

    def work():
        acc = np.zeros(32, dtype=np.float32)
        for _ in range(800):
            b = np.add.accumulate(a, axis=0)
            acc = acc + b[-1] * np.float32(0.001)
            a.reshape(7, 7, 32)[:, 3, :].copy()
        return acc

    return _best_of(work, repeats=3)


# ---------------------------------------------------------------------------
# per-metric measurement closures (each returns {"value", "probe_s"})


def _compile_measurers() -> dict:
    out = {}
    for net, board_name in COMPILE_TARGETS:
        board = board_by_name(board_name)
        if net == "lenet5":
            def build(board=board):
                clear_lower_cache()
                pipelined_flow("lenet5", board, cache=False).run()
        else:
            config = default_folded_config(net, board)

            def build(net=net, board=board, config=config):
                clear_lower_cache()
                folded_flow(net, board, config, cache=False).run()

        def measure(build=build):
            return {"value": _best_of(build), "probe_s": _python_probe()}

        out[f"{net}@{board_name}"] = measure
    return out


def _throughput_measurers() -> dict:
    out = {}
    dep = deploy_pipelined("lenet5", ARRIA10, cache=False)
    x = np.random.default_rng(0).standard_normal((1, 28, 28)).astype(np.float32)
    dep.forward_functional(x)  # warm caches before timing

    def measure_lenet():
        seconds = _best_of(lambda: dep.forward_functional(x))
        return {"value": 1.0 / seconds, "probe_s": _numpy_probe()}

    out["lenet5@pipelined"] = measure_lenet
    for net in sorted(TWINS):
        graph = TWINS[net]()
        config = default_folded_config(net, ARRIA10)
        fused = fuse_operators(graph)
        prog, plan = build_folded(fused, config, ARRIA10)
        params = init_params(graph, seed=0)
        tx = np.random.default_rng(11).standard_normal(
            graph.input.out_shape
        ).astype(np.float32)
        run_folded_functional(prog, plan, fused, tx, params, interp="vector")

        def measure(prog=prog, plan=plan, fused=fused, tx=tx, params=params):
            seconds = _best_of(
                lambda: run_folded_functional(prog, plan, fused, tx, params,
                                              interp="vector"))
            return {"value": 1.0 / seconds, "probe_s": _numpy_probe()}

        out[f"{net}@twin"] = measure
    return out


def _measure_lenet_speedup(vector_ips: float) -> dict:
    dep = deploy_pipelined("lenet5", ARRIA10, cache=False)
    x = np.random.default_rng(0).standard_normal((1, 28, 28)).astype(np.float32)
    os.environ["REPRO_INTERP"] = "scalar"
    try:
        t0 = time.perf_counter()
        dep.forward_functional(x)
        scalar_s = time.perf_counter() - t0
    finally:
        del os.environ["REPRO_INTERP"]
    return {"scalar_ips": 1.0 / scalar_s,
            "speedup": vector_ips * scalar_s}


def _measure_sweep() -> dict:
    fused = fuse_operators(MODELS["mobilenet_v1"]())
    arms = {}
    for workers in (1, SWEEP_WORKERS):
        clear_lower_cache()
        t0 = time.perf_counter()
        summary = sweep_conv1x1(fused, ARRIA10, cache=CompileCache(),
                                prune=True, workers=workers, **SWEEP_GRID)
        arms[workers] = (time.perf_counter() - t0, summary)
    serial_s, serial = arms[1]
    parallel_s, parallel = arms[SWEEP_WORKERS]
    # correctness parity between the two arms, regardless of timing
    assert len(serial.points) == len(parallel.points)
    assert [p.pruned for p in serial.points] == \
        [p.pruned for p in parallel.points]
    assert serial.best.tiling == parallel.best.tiling
    return {
        "points": len(serial.points),
        "evaluated": sum(1 for p in serial.points if not p.pruned),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "best": [serial.best.tiling.w2vec, serial.best.tiling.c2vec,
                 serial.best.tiling.c1vec],
    }


def _measure_certify() -> dict:
    """Static whole-build certification vs one interpreter cross-check.

    The point of the RE certifier is removing interpreter equivalence
    runs from the DSE/autofix accept paths, so the committed trajectory
    pins the trade directly: statically certifying EVERY kernel of the
    folded LeNet-5 build (cache cleared each repeat) must be strictly
    faster than a SINGLE dynamic cross-check of just one of those
    kernels (scheduled + naive interpreter run on its real binding
    set).  Both arms run on the same machine back to back — the
    asserted property is a pure ordering, so no probe calibration is
    needed.
    """
    fused = fuse_operators(MODELS["lenet5"]())
    sched = schedule_folded(fused, FoldedConfig(), ARRIA10)
    plan = plan_folded(fused, sched)

    certified = 0

    def static_arm():
        nonlocal certified
        clear_equiv_cache()
        report, _ = certify_build(sched, plan=plan, dynamic_fallback=False)
        assert report.counters["equiv_dynamic_runs"] == 0
        certified = report.counters["equiv_certified"]

    certify_s = _best_of(static_arm)
    bsets = binding_sets_of(plan)
    sk = next(k for k in sched.kernels if getattr(k, "recipe", None))
    dynamic_s = _best_of(
        lambda: dynamic_equiv_check(sk, (bsets.get(sk.name) or [{}])[0]),
        repeats=2,
    )
    return {
        "kernels_certified": certified,
        "certify_s": certify_s,
        "dynamic_check_s": dynamic_s,
        "speedup": dynamic_s / certify_s,
    }


def _measure_memory() -> dict:
    """Arena vs naive activation bytes and replica packing (static).

    Deterministic byte counts from the certified ``MemoryPlan`` the plan
    stage attaches — no probe calibration, no retry protocol.  The
    replicas-per-board pair shows what the arena buys at serving time:
    how many copies of the network one S10SX's DDR hosts with naive
    per-buffer activations vs with the shared arena.
    """
    board = board_by_name("S10SX")
    out = {}
    for net in ("mobilenet_v1", "resnet18"):
        fused = fuse_operators(MODELS[net]())
        config = default_folded_config(net, board)
        sched = schedule_folded(fused, config, board)
        plan = plan_folded(fused, sched)
        mem = plan.memory
        assert mem is not None, f"{net}: plan stage attached no MemoryPlan"
        wb = weights_bytes(fused)
        out[net] = {
            "arena_bytes": mem.arena_bytes,
            "naive_bytes": mem.naive_bytes,
            "reuse_pairs": len(mem.reuse_pairs),
            "weights_bytes": wb,
            "replicas_per_board_naive":
                replicas_per_board(board, mem.naive_bytes + wb),
            "replicas_per_board":
                replicas_per_board(board, mem.arena_bytes + wb),
        }
    return out


@pytest.fixture(scope="module")
def trajectory():
    """Measure everything once; in update mode also rewrite the baseline.

    Returns ``(current, baseline, remeasure)`` where ``remeasure`` maps
    each compile/throughput metric key to a closure that re-runs just
    that measurement (with its adjacent probe) for the retry protocol.
    """
    remeasure = {}
    compile_s, throughput = {}, {}
    for key, fn in _compile_measurers().items():
        compile_s[key] = fn()
        remeasure[key] = fn
    for key, fn in _throughput_measurers().items():
        throughput[key] = fn()
        remeasure[key] = fn
    current = {
        "schema": 2,
        "cpus": _usable_cpus(),
        "compile_s": compile_s,
        "throughput_ips": throughput,
        "lenet5": _measure_lenet_speedup(
            throughput["lenet5@pipelined"]["value"]),
        "sweep": _measure_sweep(),
        "certify": _measure_certify(),
        "memory": _measure_memory(),
    }
    if UPDATE:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(BASELINE_PATH, "w") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if not os.path.exists(BASELINE_PATH):
        pytest.fail(
            "no committed baseline at benchmarks/results/perf_trajectory.json"
            " — generate one with REPRO_PERF_UPDATE=1"
        )
    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)
    _save_report(current, baseline)
    return current, baseline, remeasure


def _calibrated(entry, base_entry, kind):
    """Normalize a measurement by its adjacent probe ratio.

    ``kind`` is ``"time"`` (smaller is better; a slower machine inflates
    the raw value, so divide by the probe ratio) or ``"ips"`` (bigger is
    better; a slower machine deflates the raw value, so multiply).
    """
    ratio = entry["probe_s"] / base_entry["probe_s"]
    if kind == "time":
        return entry["value"] / ratio
    return entry["value"] * ratio


def _within_band(entry, base_entry, kind) -> bool:
    """True if the raw OR the calibrated value is inside the band.

    The two views cover complementary failure modes: the raw value is
    authoritative when the machine matches the baseline machine (probe
    noise cannot produce a spurious failure), while the calibrated value
    rescues a genuinely slower/faster machine (a CI runner class change).
    A real code regression shifts both views together and fails both.
    """
    if kind == "time":
        limit = base_entry["value"] * COMPILE_BAND
        return (entry["value"] <= limit
                or _calibrated(entry, base_entry, kind) <= limit)
    floor = base_entry["value"] * THROUGHPUT_BAND
    return (entry["value"] >= floor
            or _calibrated(entry, base_entry, kind) >= floor)


def _save_report(current, baseline) -> None:
    rows = []
    for key in sorted(current["compile_s"]):
        cur, base = current["compile_s"][key], baseline["compile_s"][key]
        rows.append([f"compile {key}", f"{cur['value']:.3f} s",
                     f"{base['value']:.3f} s",
                     f"{_calibrated(cur, base, 'time'):.3f} s"])
    for key in sorted(current["throughput_ips"]):
        cur = current["throughput_ips"][key]
        base = baseline["throughput_ips"][key]
        rows.append([key, f"{cur['value']:.2f} ips",
                     f"{base['value']:.2f} ips",
                     f"{_calibrated(cur, base, 'ips'):.2f} ips"])
    rows.append(["lenet5 scalar", f"{current['lenet5']['scalar_ips']:.2f} ips",
                 f"{baseline['lenet5']['scalar_ips']:.2f} ips", "-"])
    rows.append(["lenet5 vec/scalar", f"{current['lenet5']['speedup']:.0f}x",
                 f"{baseline['lenet5']['speedup']:.0f}x",
                 f">= {LENET_SPEEDUP_FLOOR:.0f}x floor"])
    sweep, bsweep = current["sweep"], baseline["sweep"]
    rows.append([f"sweep serial ({sweep['evaluated']}/{sweep['points']} pts)",
                 f"{sweep['serial_s']:.2f} s", f"{bsweep['serial_s']:.2f} s",
                 "-"])
    rows.append([f"sweep {SWEEP_WORKERS} workers ({current['cpus']} cpus)",
                 f"{sweep['parallel_s']:.2f} s",
                 f"{bsweep['parallel_s']:.2f} s", "-"])
    cert, bcert = current["certify"], baseline.get("certify", {})
    rows.append([f"certify {cert['kernels_certified']} kernels (static)",
                 f"{cert['certify_s'] * 1e3:.1f} ms",
                 f"{bcert.get('certify_s', 0) * 1e3:.1f} ms", "-"])
    rows.append(["one interpreter cross-check",
                 f"{cert['dynamic_check_s'] * 1e3:.1f} ms",
                 f"{bcert.get('dynamic_check_s', 0) * 1e3:.1f} ms",
                 f"{cert['speedup']:.0f}x slower than certifying"])
    for net in sorted(current.get("memory", {})):
        mem = current["memory"][net]
        bmem = baseline.get("memory", {}).get(net, {})
        saved = 1 - mem["arena_bytes"] / mem["naive_bytes"]
        rows.append([f"memory {net} arena",
                     f"{mem['arena_bytes'] / (1 << 20):.1f} MiB",
                     f"{bmem.get('arena_bytes', 0) / (1 << 20):.1f} MiB",
                     f"{saved:.0%} under naive "
                     f"{mem['naive_bytes'] / (1 << 20):.1f} MiB"])
        rows.append([f"memory {net} replicas/board",
                     f"{mem['replicas_per_board']}",
                     f"{bmem.get('replicas_per_board', 0)}",
                     f"naive packs {mem['replicas_per_board_naive']}"])
    save_table("perf_trajectory", fmt_table(
        "Performance trajectory (current vs committed baseline)",
        ["metric", "current", "baseline", "calibrated"], rows))


# ---------------------------------------------------------------------------
# assertions against the committed baseline


class TestPerfTrajectory:
    def test_compile_time_within_band(self, trajectory):
        current, baseline, remeasure = trajectory
        for key, base in baseline["compile_s"].items():
            entry = current["compile_s"][key]
            attempts = 0
            while not _within_band(entry, base, "time"):
                attempts += 1
                if attempts > RETRIES:
                    break
                entry = remeasure[key]()
            if attempts > RETRIES:
                pytest.fail(
                    f"{key}: compile {entry['value']:.3f}s raw / "
                    f"{_calibrated(entry, base, 'time'):.3f}s calibrated "
                    f"exceeds baseline {base['value']:.3f}s by more than "
                    f"{(COMPILE_BAND - 1) * 100:.0f}% after {RETRIES} retries"
                )

    def test_lenet_vectorized_speedup_floor(self, trajectory):
        current, _, _ = trajectory
        speedup = current["lenet5"]["speedup"]
        assert speedup >= LENET_SPEEDUP_FLOOR, (
            f"vectorized LeNet-5 only {speedup:.1f}x scalar "
            f"(floor {LENET_SPEEDUP_FLOOR}x)"
        )

    def test_throughput_within_band(self, trajectory):
        current, baseline, remeasure = trajectory
        for key, base in baseline["throughput_ips"].items():
            entry = current["throughput_ips"][key]
            attempts = 0
            while not _within_band(entry, base, "ips"):
                attempts += 1
                if attempts > RETRIES:
                    break
                entry = remeasure[key]()
            if attempts > RETRIES:
                pytest.fail(
                    f"{key}: {entry['value']:.2f} inferences/s raw / "
                    f"{_calibrated(entry, base, 'ips'):.2f} calibrated "
                    f"below baseline {base['value']:.2f} by more than "
                    f"{(1 - THROUGHPUT_BAND) * 100:.0f}% after "
                    f"{RETRIES} retries"
                )

    def test_certificate_path_beats_interpreter(self, trajectory):
        current, _, _ = trajectory
        cert = current["certify"]
        assert cert["kernels_certified"] > 0
        assert cert["certify_s"] < cert["dynamic_check_s"], (
            f"statically certifying the whole build "
            f"({cert['certify_s'] * 1e3:.1f} ms) is not faster than one "
            f"interpreter cross-check ({cert['dynamic_check_s'] * 1e3:.1f} "
            "ms) — the certifier no longer pays for itself"
        )

    def test_memory_arena_beats_naive(self, trajectory):
        current, baseline, _ = trajectory
        for net, mem in sorted(current["memory"].items()):
            assert mem["arena_bytes"] < mem["naive_bytes"], (
                f"{net}: arena {mem['arena_bytes']} B does not beat naive "
                f"{mem['naive_bytes']} B — interference coloring found no reuse"
            )
            assert mem["reuse_pairs"] > 0
            assert (mem["replicas_per_board"]
                    >= mem["replicas_per_board_naive"])
            base = baseline.get("memory", {}).get(net)
            if base:
                assert mem["arena_bytes"] <= base["arena_bytes"], (
                    f"{net}: arena grew to {mem['arena_bytes']} B from the "
                    f"committed {base['arena_bytes']} B — the coloring "
                    "regressed (byte counts are exact, no band applies)"
                )
                assert (mem["replicas_per_board"]
                        >= base["replicas_per_board"])

    def test_parallel_sweep_wall_clock(self, trajectory):
        current, _, _ = trajectory
        sweep = current["sweep"]
        if current["cpus"] >= 2:
            assert sweep["parallel_s"] < sweep["serial_s"], (
                f"{SWEEP_WORKERS}-worker sweep ({sweep['parallel_s']:.2f}s) "
                f"not faster than serial ({sweep['serial_s']:.2f}s) on "
                f"{current['cpus']} CPUs"
            )
        else:
            # single core: parallel cannot win; pin the overhead bound
            assert sweep["parallel_s"] < sweep["serial_s"] * 3, (
                f"single-CPU parallel sweep overhead "
                f"{sweep['parallel_s'] / sweep['serial_s']:.1f}x exceeds 3x"
            )
