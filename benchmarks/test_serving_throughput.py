"""Serving-layer scaling — dynamic batching + replica fan-out.

Extension beyond the thesis: the runtime serves a request trace through
``repro.serve`` instead of timing one inference.  The headline claims
asserted here are the ISSUE-3 acceptance criteria: a 4-replica server
with dynamic batching sustains at least 3x the requests/virtual-second
of a serial single-replica baseline on the MobileNetV1 folded config,
and under overload the admission controller sheds requests down the
degradation ladder to the CPU rung while every served response's logits
still match the functional reference.
"""

import numpy as np
import pytest
from conftest import fmt_table, save_table

from repro.device import STRATIX10_SX
from repro.flow.stages import MODELS
from repro.pipeline import CompileCache
from repro.relay import fuse_operators, init_params, run_fused_graph
from repro.serve import RequestTrace, ServeConfig, Server, provision_replicas

NETWORK = "mobilenet_v1"
SHAPE = (3, 224, 224)
N_REQUESTS = 64


def _saturating_trace(seed=0):
    """Arrivals far faster than one replica can serve: both servers run
    work-limited, so throughput compares aggregate capacity."""
    return RequestTrace.uniform(
        NETWORK, N_REQUESTS, interval_us=1000.0, shape=SHAPE, seed=seed
    )


def _run_servers():
    cache = CompileCache()
    serial = Server(
        provision_replicas(NETWORK, STRATIX10_SX, 1, cache=cache),
        ServeConfig(max_batch=1, max_queue=10**6, compute_logits=False),
    )
    batched = Server(
        provision_replicas(NETWORK, STRATIX10_SX, 4, cache=cache),
        ServeConfig(window_us=4000.0, max_batch=8, max_queue=10**6,
                    compute_logits=False),
    )
    trace = _saturating_trace()
    return serial.run(trace), batched.run(trace), cache


def test_batched_four_replicas_vs_serial_baseline(benchmark):
    serial, batched, cache = benchmark.pedantic(
        _run_servers, rounds=1, iterations=1
    )
    ratio = batched.metrics.throughput_rps / serial.metrics.throughput_rps

    rows = [
        ["serial x1", 1, 1,
         f"{serial.metrics.throughput_rps:.1f}",
         f"{serial.metrics.latency_us['p95'] / 1e3:.1f}",
         f"{serial.metrics.mean_batch:.2f}", "1.00x"],
        ["batched x4", 4, 8,
         f"{batched.metrics.throughput_rps:.1f}",
         f"{batched.metrics.latency_us['p95'] / 1e3:.1f}",
         f"{batched.metrics.mean_batch:.2f}", f"{ratio:.2f}x"],
    ]
    text = fmt_table(
        f"Serving throughput - MobileNetV1 folded on S10SX "
        f"({N_REQUESTS} requests, saturating trace)",
        ["server", "replicas", "max_batch", "req/s", "p95 ms",
         "mean batch", "speedup"],
        rows,
    )
    save_table("serving_throughput", text)

    # acceptance: >= 3x the serial single-replica baseline
    assert ratio >= 3.0, f"batched/serial speedup {ratio:.2f}x < 3x"
    # the bitstream synthesized once and was shared by all 5 replicas
    assert cache.stats()["misses"] == 1
    assert cache.stats()["hits"] == 4
    # every admitted request completed on a device rung
    assert batched.metrics.shed == 0 and batched.metrics.rejected == 0
    assert set(batched.metrics.rung_counts) == {"folded"}


def test_overload_sheds_with_correct_logits(benchmark):
    def _run():
        replicas = provision_replicas(NETWORK, STRATIX10_SX, 2)
        server = Server(
            replicas,
            ServeConfig(window_us=2000.0, max_batch=4, max_queue=6),
        )
        trace = RequestTrace.burst(
            NETWORK, 24, at_us=0.0, shape=SHAPE, seed=1, distinct_inputs=2
        )
        return trace, server.run(trace)

    trace, result = benchmark.pedantic(_run, rounds=1, iterations=1)
    m = result.metrics

    shed = [r for r in result.responses if r.status == "shed"]
    assert m.shed == len(shed) > 0, "overload did not shed"
    assert all(r.rung == "cpu" for r in shed)
    assert m.completed == len(trace)  # shed != dropped: everyone is served
    assert {e["kind"] for e in result.events} == {"shed"}

    # logits from every rung (folded replicas and the CPU sideline)
    # match the functional reference exactly
    graph = MODELS[NETWORK]()
    fused = fuse_operators(graph)
    params = init_params(graph, seed=0)
    for resp in result.responses:
        expected = run_fused_graph(fused, trace.requests[resp.rid].x, params)
        assert np.allclose(resp.logits, expected, atol=1e-6)

    rows = [[status, m.rung_counts.get(rung, 0)]
            for status, rung in (("device-served", "folded"), ("shed", "cpu"))]
    text = fmt_table(
        f"Overload shedding - 24-request burst into 2 replicas "
        f"(queue bound 6): p99 {m.latency_us['p99'] / 1e3:.0f} ms, "
        f"peak queue {m.peak_queue_depth}",
        ["outcome", "requests"],
        rows,
    )
    save_table("serving_overload", text)
