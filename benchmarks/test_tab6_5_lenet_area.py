"""Table 6.5 — area usage and fmax for each LeNet bitstream.

Paper trends this bench must reproduce: unrolling raises logic/RAM/DSP;
channels *reduce* RAM (activation caches replaced by register FIFOs) and
can raise fmax; autorun changes neither; naive bitstreams close timing
worse than optimized ones.
"""

from conftest import fmt_table, save_table

from repro.aoc import area_row, compile_program
from repro.device import ALL_BOARDS
from repro.flow import LEVELS, build_pipelined
from repro.models import lenet5
from repro.relay import fuse_operators


def _areas():
    fused = fuse_operators(lenet5())
    out = {}
    for level in LEVELS:
        for board in ALL_BOARDS:
            prog, plan = build_pipelined(fused, level, board)
            bs = compile_program(prog, board)
            out[(level, board.name)] = area_row(bs)
    return out


PAPER_ROWS = {
    # (level, board): (logic%, ram%, dsp%, fmax)
    ("base", "S10MX"): (32, 21, 3, 250),
    ("base", "S10SX"): (32, 21, 3, 209),
    ("base", "A10"): (39, 81, 8, 201),
    ("tvm_autorun", "S10MX"): (36, 26, 4, 300),
    ("tvm_autorun", "S10SX"): (25, 19, 5, 218),
    ("tvm_autorun", "A10"): (36, 37, 14, 217),
}


def test_tab6_5_lenet_area(benchmark):
    areas = benchmark.pedantic(_areas, rounds=1, iterations=1)

    rows = []
    for (level, board), r in areas.items():
        paper = PAPER_ROWS.get((level, board))
        note = (
            f"paper: {paper[0]}%/{paper[1]}%/{paper[2]}%/{paper[3]}MHz"
            if paper
            else ""
        )
        rows.append(
            [level, board, f"{r['logic_pct']}%", f"{r['ram_pct']}%",
             f"{r['dsp_pct']}%", f"{r['fmax_mhz']}MHz", note]
        )
    text = fmt_table(
        "Table 6.5 - LeNet bitstream area and fmax",
        ["bitstream", "board", "logic", "RAM", "DSP", "fmax", "reference"],
        rows,
    )
    save_table("tab6_5_lenet_area", text)

    for board in ALL_BOARDS:
        b = board.name
        # unrolling increases DSP usage over base
        assert areas[("unroll", b)]["dsp_pct"] >= areas[("base", b)]["dsp_pct"]
        # channels reduce RAM (activation LSU caches disappear)
        assert areas[("channels", b)]["ram_pct"] < areas[("unroll", b)]["ram_pct"]
        # autorun is area-neutral vs channels
        assert (
            abs(areas[("autorun", b)]["ram_pct"] - areas[("channels", b)]["ram_pct"])
            <= 2
        )
        # optimized designs close timing no worse than naive ones
        assert areas[("tvm_autorun", b)]["fmax_mhz"] >= areas[("base", b)]["fmax_mhz"]
    # the A10 baseline is the most RAM-pressured platform (paper: 81%)
    assert areas[("base", "A10")]["ram_pct"] > areas[("base", "S10SX")]["ram_pct"]
