"""Auto-scheduler ablation — machine-applied rewrites vs the hand schedule.

Starting from the deliberately naive folded build, ``flow.autofix``
reads the performance advisor's findings and rewrites each kernel's
recipe until the advisor has nothing mechanical left to say.  This
bench asserts the two halves of its acceptance contract:

* **performance** — every kernel the loop fixed models strictly fewer
  compute cycles than its naive form (the register-cache rewrite is the
  II=8 -> II=1 move of thesis §5.1.1), and the whole network's modeled
  cycle total strictly drops;
* **semantics** — the autofixed build's logits match a hand-written
  folded configuration bit-for-bit through the interpreter: the machine
  applies the same rewrites a human would, not merely similar ones.
"""

import numpy as np
from conftest import fmt_table, save_table

from repro.aoc import compile_program
from repro.device import STRATIX10_SX
from repro.flow import FoldedConfig, autofix_folded, build_folded
from repro.relay import GraphBuilder, fuse_operators, init_params
from repro.runtime.executor import run_folded_functional
from repro.topi import ConvTiling


def _mini_chain():
    g = GraphBuilder("mini")
    x = g.input((2, 12, 12))
    x = g.conv2d(x, filters=4, field=3, name="c1")
    x = g.relu(x)
    x = g.maxpool(x, 2, 2, name="p1")
    x = g.flatten(x, name="fl")
    x = g.dense(x, 8, name="fc")
    x = g.softmax(x, name="sm")
    return g.build()


def _measure(fused, config):
    prog, plan = build_folded(fused, config, STRATIX10_SX)
    bs = compile_program(prog, STRATIX10_SX)
    cycles = {
        inv.layer: bs.kernel_cycles(inv.kernel_name, inv.bindings)
        for inv in plan.invocations
    }
    return prog, plan, cycles


def test_autofix_reduces_cycles_and_matches_hand_logits(benchmark):
    graph = _mini_chain()
    fused = fuse_operators(graph)
    params = init_params(graph, 1)
    x = np.random.default_rng(2).standard_normal((2, 12, 12)).astype(np.float32)

    naive_cfg = FoldedConfig(naive=True)
    result = benchmark.pedantic(
        lambda: autofix_folded(fused, STRATIX10_SX, config=naive_cfg, subject="mini"),
        rounds=1, iterations=1,
    )
    assert result.stuck_reason == "blocked"  # only the prebuilt softmax remains
    fixed_kernels = {s.kernel for s in result.applied}
    assert {"k_c1", "k_p1", "k_fc"} <= fixed_kernels

    hand_cfg = FoldedConfig(
        conv_tilings={("conv", 3, 1): ConvTiling(w2vec=5, c1vec=2)},
        dense_unroll=4,
    )
    _, _, naive_cycles = _measure(fused, naive_cfg)
    fixed_prog, fixed_plan, fixed_cycles = _measure(fused, result.config)
    hand_prog, hand_plan, hand_cycles = _measure(fused, hand_cfg)

    rows = [
        [layer, naive_cycles[layer], fixed_cycles[layer], hand_cycles[layer]]
        for layer in naive_cycles
    ]
    rows.append([
        "total",
        sum(naive_cycles.values()),
        sum(fixed_cycles.values()),
        sum(hand_cycles.values()),
    ])
    save_table(
        "autofix_ablation",
        fmt_table(
            "Auto-scheduler ablation - modeled cycles per layer (S10SX)",
            ["layer", "naive", "autofixed", "hand"],
            rows,
        ),
    )

    # every kernel the loop touched models strictly fewer cycles
    layer_of = {f"k_{layer}": layer for layer in naive_cycles}
    for kernel in fixed_kernels:
        layer = layer_of[kernel]
        assert fixed_cycles[layer] < naive_cycles[layer], layer
    assert sum(fixed_cycles.values()) < sum(naive_cycles.values())

    # and the rewrites preserve semantics to the bit, matching the
    # hand-written folded configuration exactly
    out_fixed = run_folded_functional(fixed_prog, fixed_plan, fused, x, params)
    out_hand = run_folded_functional(hand_prog, hand_plan, fused, x, params)
    assert np.array_equal(out_fixed, out_hand)
