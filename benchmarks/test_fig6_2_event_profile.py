"""Figure 6.2 — OpenCL event-profiling breakdown, base vs autorun LeNet.

The paper's observation: on the S10MX the host-to-device *write* time
dominates the per-image runtime (the engineering-sample BSP's write path
is pathological), while on the S10SX/A10 kernels dominate.
"""

from conftest import fmt_table, save_table

from repro.aoc import compile_program
from repro.device import ALL_BOARDS
from repro.flow import build_pipelined
from repro.models import lenet5
from repro.relay import fuse_operators
from repro.runtime import event_profile, simulate_pipelined


def _profiles():
    fused = fuse_operators(lenet5())
    out = {}
    for level in ("base", "autorun"):
        for board in ALL_BOARDS:
            prog, plan = build_pipelined(fused, level, board)
            bs = compile_program(prog, board)
            # event profiling forces serial execution (thesis Section 5.2)
            result = simulate_pipelined(bs, plan, concurrent=False)
            out[(level, board.name)] = event_profile(result)
    return out


def test_fig6_2_event_profiling(benchmark):
    profiles = benchmark.pedantic(_profiles, rounds=1, iterations=1)

    rows = []
    for (level, board), p in profiles.items():
        rows.append(
            [
                f"{level}/{board}",
                f"{p['kernel_us']:.0f}",
                f"{p['write_us']:.0f}",
                f"{p['read_us']:.0f}",
                f"{p['overhead_us']:.0f}",
            ]
        )
    text = fmt_table(
        "Figure 6.2 - per-image event breakdown (us): kernel / write / read / "
        "host overhead",
        ["config", "kernel", "write", "read", "overhead"],
        rows,
    )
    save_table("fig6_2_event_profile", text)

    # the S10MX writes dominate its optimized runtime (paper's key finding)
    mx = profiles[("autorun", "S10MX")]
    assert mx["write_us"] > mx["kernel_us"]
    # on the S10SX, kernels dominate transfers
    sx = profiles[("autorun", "S10SX")]
    assert sx["kernel_us"] > sx["write_us"] + sx["read_us"]
    # MX write time exceeds the other platforms' by a large factor
    assert mx["write_us"] > 5 * profiles[("autorun", "S10SX")]["write_us"]
    # autorun cuts host overhead relative to base
    for board in ALL_BOARDS:
        assert (
            profiles[("autorun", board.name)]["overhead_us"]
            < profiles[("base", board.name)]["overhead_us"]
        )
