"""Tables 6.7/6.8 — MobileNet folded deployment: kernel inventory and
per-operation GFLOPS / runtime shares.

Paper anchors (Table 6.8): 1x1 convs carry 94.8% of FLOPs at 44-88 GFLOPS
and 30-48% of runtime; 3x3 depthwise convs run at a miserable ~1.7-1.8
GFLOPS and 29-45% of runtime; padding does zero FLOPs yet costs 13-21% of
runtime.
"""

from conftest import fmt_table, save_table

from repro.device import ALL_BOARDS, STRATIX10_SX
from repro.flow import MOBILENET_1X1_TILINGS, deploy_folded


def _profile_all():
    out = {}
    for board in ALL_BOARDS:
        d = deploy_folded("mobilenet_v1", board)
        out[board.name] = (d, d.per_op())
    return out


def test_tab6_8_mobilenet_per_op(benchmark):
    profiles = benchmark.pedantic(_profile_all, rounds=1, iterations=1)

    # Table 6.7 (configuration) -----------------------------------------
    cfg_rows = [
        [b, f"{t.w2vec}/{t.c2vec}/{t.c1vec}"]
        for b, t in MOBILENET_1X1_TILINGS.items()
    ]
    cfg_text = fmt_table(
        "Table 6.7 - 1x1-conv tiling per board (W2vec/C2vec/C1vec)",
        ["board", "tiling"],
        cfg_rows,
    )

    rows = []
    for bname, (d, prof) in profiles.items():
        for label, r in sorted(prof.items(), key=lambda kv: -kv[1]["time_us"]):
            rows.append(
                [bname, label, f"{r['gflops']:.2f}",
                 f"{100 * r['time_share']:.1f}%", f"{r['time_us'] / 1e3:.2f}ms"]
            )
    text = fmt_table(
        "Table 6.8 - MobileNetV1 per-op GFLOPS and runtime share "
        "(paper S10SX: 1x1 88.2 GF / 30.2%; DW 1.7 GF / 44.5%; pad 15.5%)",
        ["board", "op", "GFLOPS", "time share", "time"],
        rows,
    )
    save_table("tab6_8_mobilenet_ops", cfg_text + "\n\n" + text)

    for bname, (d, prof) in profiles.items():
        one = prof["1x1 conv S=1"]
        dw = {k: v for k, v in prof.items() if k.startswith("3x3 DW")}
        dw_gflops = sum(v["flops"] for v in dw.values()) / (
            sum(v["time_us"] for v in dw.values()) * 1e3
        )
        # 1x1 convs are far more efficient than DW (paper: 24x-50x; our
        # bandwidth-bound S10MX shows a smaller but still large gap)
        factor = 8 if bname == "S10SX" else 3
        assert one["gflops"] > factor * dw_gflops, bname
        # padding does no FLOPs but takes 5-50% of runtime
        assert prof["pad"]["gflops"] == 0.0
        assert 0.05 < prof["pad"]["time_share"] < 0.55, bname
    # S10SX achieves the highest 1x1 throughput (paper: 88.2 GFLOPS)
    sx = profiles["S10SX"][1]["1x1 conv S=1"]["gflops"]
    assert sx == max(p["1x1 conv S=1"]["gflops"] for _, p in profiles.values())
    assert 30 < sx < 180  # paper 88.2
