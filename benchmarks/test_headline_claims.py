"""The thesis's abstract, condensed into one reproducible scorecard.

Claims: optimizations improve the naive TVM baseline by up to ~1150x;
vs Keras/TF on the Xeon 8280, LeNet is up to 4.57x faster and MobileNet
1.4x faster, while ResNet-18/34 suffer a ~0.4x slowdown.
"""

from conftest import fmt_table, save_table

from repro.device import STRATIX10_SX
from repro.errors import FitError, RoutingError
from repro.flow import deploy_folded, deploy_pipelined
from repro.perf import tf_cpu_fps


def _scorecard():
    rows = {}
    # LeNet on its best board
    ln_base = deploy_pipelined("lenet5", STRATIX10_SX, "base").fps()
    ln = deploy_pipelined("lenet5", STRATIX10_SX, "tvm_autorun").fps()
    rows["lenet5"] = (ln_base, ln, ln / tf_cpu_fps("lenet5"))
    for net in ("mobilenet_v1", "resnet18", "resnet34"):
        try:
            base = deploy_folded(net, STRATIX10_SX, naive=True).fps()
        except (FitError, RoutingError):
            base = float("nan")
        opt = deploy_folded(net, STRATIX10_SX).fps()
        rows[net] = (base, opt, opt / tf_cpu_fps(net))
    return rows


PAPER = {
    # network: (speedup over naive, ratio vs TF-CPU)
    "lenet5": (9.38, 4.57),
    "mobilenet_v1": (178.2, 1.40),
    "resnet18": (846.0, 0.43),
    "resnet34": (1150.0, 0.43),
}


def test_headline_claims(benchmark):
    rows = benchmark.pedantic(_scorecard, rounds=1, iterations=1)

    table = []
    for net, (base, opt, vs_cpu) in rows.items():
        speedup = opt / base
        p_speed, p_cpu = PAPER[net]
        table.append(
            [net, f"{base:.4g}", f"{opt:.4g}", f"{speedup:.0f}x",
             f"{p_speed}x", f"{vs_cpu:.2f}x", f"{p_cpu}x"]
        )
    text = fmt_table(
        "Headline scorecard (S10SX): naive FPS, optimized FPS, speedup, "
        "ratio vs Keras/TF-CPU — measured vs paper",
        ["network", "naive", "optimized", "speedup", "paper",
         "vs TF-CPU", "paper"],
        table,
    )
    save_table("headline_claims", text)

    # LeNet and MobileNet beat the CPU; ResNets lose — the paper's story
    assert rows["lenet5"][2] > 1.0
    assert rows["mobilenet_v1"][2] > 1.0
    assert rows["resnet18"][2] < 1.0
    assert rows["resnet34"][2] < 1.0
    # speedup over naive grows with network size up to MobileNet
    assert (
        rows["mobilenet_v1"][1] / rows["mobilenet_v1"][0]
        > rows["lenet5"][1] / rows["lenet5"][0]
    )
    # every optimized deployment is within 3x of the paper's FPS
    paper_fps = {"lenet5": 4917, "mobilenet_v1": 30.3, "resnet18": 7.04,
                 "resnet34": 4.6}
    for net, (_, opt, _) in rows.items():
        assert 0.33 < opt / paper_fps[net] < 3.0, net
