"""Tables 6.17/6.18/6.19 — comparison with the three related works.

Pairs our measured numbers with the literature-reported values, exactly
the comparisons the thesis draws:

* vs Caffeinated FPGAs: single-stride 3x3-conv GFLOPS in ResNet-34
  (paper: 70.4 vs their 50 -> 1.41x);
* vs TF-to-Cloud-FPGAs: LeNet single-image latency (paper: 0.203 ms vs
  their 0.656 ms -> 3.23x) and ResNet GFLOPS (paper: ~17.5% slower);
* vs DNNWeaver: MobileNet GFLOPS on the A10 vs their AlexNet 184.33
  (paper: 9.2x slower) and LeNet speedup over a CPU.
"""

from conftest import fmt_table, save_table

from repro.device import ARRIA10, STRATIX10_SX
from repro.flow import deploy_folded, deploy_pipelined
from repro.perf.related_work import (
    CAFFEINATED_FPGAS,
    DNNWEAVER_ALEXNET,
    HADJIS_LENET,
    HADJIS_RESNET50,
)
from repro.perf import tf_cpu_fps


def _measure():
    out = {}
    rn = deploy_folded("resnet34", STRATIX10_SX)
    prof = rn.per_op()
    out["rn34_3x3s1_gflops"] = prof["3x3 conv S=1"]["gflops"]
    out["rn34_gflops"] = rn.gflops()
    ln = deploy_pipelined("lenet5", STRATIX10_SX)
    out["lenet_latency_ms"] = ln.run().time_per_image_us / 1e3
    out["lenet_gflops"] = ln.gflops()
    out["lenet_vs_cpu"] = ln.fps() / tf_cpu_fps("lenet5")
    mn = deploy_folded("mobilenet_v1", ARRIA10)
    out["mobilenet_a10_gflops"] = mn.gflops()
    # extension: deploy AlexNet itself (the thesis could only proxy it)
    an = deploy_folded("alexnet", ARRIA10)
    out["alexnet_a10_gflops"] = an.gflops()
    return out


def test_tab6_17_related_work(benchmark):
    m = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = [
        ["6.17", "Caffeinated FPGAs 3x3 geomean", f"{CAFFEINATED_FPGAS.gflops}",
         "ours RN34 3x3 S=1", f"{m['rn34_3x3s1_gflops']:.1f}",
         f"{m['rn34_3x3s1_gflops'] / CAFFEINATED_FPGAS.gflops:.2f}x (paper 1.41x)"],
        ["6.18", "Hadjis LeNet latency (ms)", f"{HADJIS_LENET.latency_ms}",
         "ours LeNet (ms)", f"{m['lenet_latency_ms']:.3f}",
         f"{HADJIS_LENET.latency_ms / m['lenet_latency_ms']:.2f}x faster (paper 3.23x)"],
        ["6.18", "Hadjis ResNet-50 GFLOPS", f"{HADJIS_RESNET50.gflops}",
         "ours RN34 GFLOPS", f"{m['rn34_gflops']:.1f}",
         f"{m['rn34_gflops'] / HADJIS_RESNET50.gflops:.2f}x (paper 0.83x)"],
        ["6.19", "DNNWeaver AlexNet GFLOPS", f"{DNNWEAVER_ALEXNET.gflops}",
         "ours MobileNet A10 GFLOPS", f"{m['mobilenet_a10_gflops']:.1f}",
         f"{m['mobilenet_a10_gflops'] / DNNWEAVER_ALEXNET.gflops:.2f}x (paper 0.11x)"],
        ["6.19", "DNNWeaver AlexNet GFLOPS", f"{DNNWEAVER_ALEXNET.gflops}",
         "ours AlexNet A10 GFLOPS (extension)", f"{m['alexnet_a10_gflops']:.1f}",
         f"{m['alexnet_a10_gflops'] / DNNWEAVER_ALEXNET.gflops:.2f}x (like-for-like)"],
        ["6.19", "DNNWeaver LeNet vs 4-core Xeon E3", "12x",
         "ours LeNet vs Xeon 8280 TF", f"{m['lenet_vs_cpu']:.2f}x",
         "(paper 2.47x)"],
    ]
    text = fmt_table(
        "Tables 6.17-6.19 - comparison to related work "
        "(published numbers vs this reproduction)",
        ["table", "published", "value", "ours", "value", "ratio"],
        rows,
    )
    save_table("tab6_17_related_work", text)

    # qualitative relations the thesis reports:
    # our single-stride 3x3 throughput is competitive with Caffeinated
    # FPGAs (paper: 1.41x better)
    assert m["rn34_3x3s1_gflops"] > 0.4 * CAFFEINATED_FPGAS.gflops
    # our LeNet latency beats Hadjis et al. (paper: 3.23x)
    assert m["lenet_latency_ms"] < HADJIS_LENET.latency_ms
    # our ResNet GFLOPS is the same order as their ResNet-50
    assert 0.2 < m["rn34_gflops"] / HADJIS_RESNET50.gflops < 2.0
    # DNNWeaver's hand-optimized 16-bit engine is far ahead (paper: 9.2x)
    assert m["mobilenet_a10_gflops"] < 0.5 * DNNWEAVER_ALEXNET.gflops
    # ...also on the like-for-like AlexNet deployment this repo adds
    assert m["alexnet_a10_gflops"] < 0.5 * DNNWEAVER_ALEXNET.gflops
