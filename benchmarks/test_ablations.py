"""Ablation benches for the design choices DESIGN.md calls out.

1. **Stride pinning** (Listing 5.11): parameterized kernels without the
   explicit unit-stride workaround lose access coalescing.
2. **Tiling DSE** (Section 4.11 / future work): the automatic explorer
   versus the thesis's hand-picked configurations.
3. **Quantization projection** (Section 8.1 future work): int16/int8
   DSP packing and footprint relief.
4. **Channels/autorun/CE decomposition**: how much of LeNet's speedup
   each runtime optimization contributes.
"""

import pytest
from conftest import fmt_table, save_table

from repro.device import ARRIA10, STRATIX10_SX
from repro.flow import (
    build_folded,
    choose_tiling,
    default_folded_config,
    deploy_folded,
    deploy_pipelined,
    explore_conv1x1,
)
from repro.aoc import compile_program
from repro.models import mobilenet_v1
from repro.perf import precision_sweep
from repro.relay import fuse_operators
from repro.runtime import simulate_folded


def test_ablation_stride_pinning(benchmark):
    """Removing the Listing 5.11 workaround slows the folded deployment."""

    def run():
        out = {}
        for pin in (True, False):
            cfg = default_folded_config("mobilenet_v1", STRATIX10_SX)
            cfg.pin_unit_stride = pin
            fused = fuse_operators(mobilenet_v1())
            prog, plan = build_folded(fused, cfg, STRATIX10_SX)
            bs = compile_program(prog, STRATIX10_SX, strict_fit=False)
            out[pin] = simulate_folded(bs, plan).fps
        return out

    fps = benchmark.pedantic(run, rounds=1, iterations=1)
    text = fmt_table(
        "Ablation: Listing 5.11 stride pinning (MobileNet, S10SX)",
        ["variant", "FPS"],
        [["pinned (thesis workaround)", f"{fps[True]:.1f}"],
         ["symbolic strides (uncoalesced)", f"{fps[False]:.1f}"]],
    )
    save_table("ablation_stride_pinning", text)
    assert fps[True] > 1.2 * fps[False]


def test_ablation_dse_vs_manual(benchmark):
    """The automatic explorer finds a config at least as good as the
    thesis's hand-picked one (within model noise)."""

    def run():
        fused = fuse_operators(mobilenet_v1())
        manual = deploy_folded("mobilenet_v1", ARRIA10).fps()
        points = explore_conv1x1(
            fused, ARRIA10,
            c2vec_options=(4, 8, 16, 32),
            c1vec_options=(4, 8, 16),
        )
        best = choose_tiling(points)
        return manual, best

    manual, best = benchmark.pedantic(run, rounds=1, iterations=1)
    w2, c2, c1 = best.tiling.w2vec, best.tiling.c2vec, best.tiling.c1vec
    text = fmt_table(
        "Ablation: tiling DSE vs thesis manual config (MobileNet, A10; "
        "thesis manual = 7/8/8)",
        ["config", "FPS"],
        [["manual 7/8/8", f"{manual:.1f}"],
         [f"DSE best {w2}/{c2}/{c1}", f"{best.fps:.1f}"]],
    )
    save_table("ablation_dse", text)
    assert best.fps >= 0.95 * manual


def test_ablation_quantization(benchmark):
    """Reduced precision relieves the thesis's DSP/LSU limits (§8.1)."""

    def run():
        d = deploy_folded("mobilenet_v1", STRATIX10_SX)
        return precision_sweep(d)

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [p, f"{proj.fps:.1f}", f"{proj.speedup_vs_fp32:.2f}x",
         f"{proj.dsp_util:.0%}", f"{proj.ram_util:.0%}", proj.fits]
        for p, proj in sweep.items()
    ]
    text = fmt_table(
        "Ablation: precision projection (MobileNet, S10SX)",
        ["precision", "FPS", "speedup", "DSP", "RAM", "fits"],
        rows,
    )
    save_table("ablation_quantization", text)
    assert sweep["int16"].fps > 1.3 * sweep["fp32"].fps
    assert sweep["int8"].fps > sweep["int16"].fps
    assert sweep["int8"].dsp_util < sweep["fp32"].dsp_util


def test_ablation_runtime_optimizations(benchmark):
    """Decompose LeNet's speedup into schedule vs runtime contributions."""

    def run():
        out = {}
        for level in ("base", "unroll", "channels", "autorun", "tvm_autorun"):
            d = deploy_pipelined("lenet5", STRATIX10_SX, level)
            out[level] = {
                "serial": d.fps(concurrent=False),
                "ce": d.fps(concurrent=True),
            }
        return out

    fps = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [lv, f"{v['serial']:.0f}", f"{v['ce']:.0f}",
         f"{v['ce'] / fps['base']['serial']:.1f}x"]
        for lv, v in fps.items()
    ]
    text = fmt_table(
        "Ablation: LeNet speedup decomposition (S10SX, vs base serial)",
        ["level", "serial FPS", "CE FPS", "cumulative"],
        rows,
    )
    save_table("ablation_runtime_opts", text)
    # concurrent execution's contribution is largest for channel designs
    gain_base = fps["base"]["ce"] / fps["base"]["serial"]
    gain_chan = fps["channels"]["ce"] / fps["channels"]["serial"]
    assert gain_chan > gain_base


def test_ablation_winograd(benchmark):
    """Winograd F(2x2,3x3) what-if (§6.6): on our memory-bound ResNet
    kernels the 2.25x multiplication saving is eaten by the 16/9 weight-
    traffic inflation — quantifying why the thesis implements direct
    convolutions."""
    from repro.perf import project_winograd

    def run():
        return {
            net: project_winograd(deploy_folded(net, STRATIX10_SX))
            for net in ("resnet18", "resnet34", "mobilenet_v1")
        }

    projections = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [net, f"{p.fps_direct:.2f}", f"{p.fps_winograd:.2f}",
         f"{p.speedup:.2f}x", f"{p.eligible_time_share:.0%}"]
        for net, p in projections.items()
    ]
    text = fmt_table(
        "Ablation: Winograd 3x3 projection (S10SX) — direct vs F(2x2,3x3)",
        ["network", "direct FPS", "winograd FPS", "speedup", "eligible time"],
        rows,
    )
    save_table("ablation_winograd", text)
    # MobileNet has no eligible layers; ResNet gains are bounded by memory
    assert projections["mobilenet_v1"].speedup == pytest.approx(1.0)
    for net in ("resnet18", "resnet34"):
        assert projections[net].speedup < 2.25


def test_ablation_channel_depth(benchmark):
    """Channel FIFO depth (§4.6/§4.11): the thesis sizes every channel to
    the producer's whole OFM so producers never stall; shallower FIFOs
    trade BRAM for back-pressure stalls."""
    from repro.aoc import compile_program
    from repro.flow import build_pipelined
    from repro.models import lenet5
    from repro.relay import fuse_operators
    from repro.runtime import simulate_pipelined

    def run():
        fused = fuse_operators(lenet5())
        out = {}
        for scale in (1.0, 0.5, 0.25, 0.0):
            prog, plan = build_pipelined(
                fused, "tvm_autorun", STRATIX10_SX, channel_depth_scale=scale
            )
            bs = compile_program(prog, STRATIX10_SX)
            r = simulate_pipelined(bs, plan, concurrent=True)
            out[scale] = (r.fps, bs.utilization()["ram"])
        return out

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"x{scale}", f"{fps:.0f}", f"{ram:.1%}"]
        for scale, (fps, ram) in sweep.items()
    ]
    text = fmt_table(
        "Ablation: channel FIFO depth (LeNet, S10SX; x1.0 = thesis's "
        "OFM-sized rule)",
        ["depth scale", "FPS", "BRAM"],
        rows,
    )
    save_table("ablation_channel_depth", text)
    # the thesis's sizing rule is the fastest point
    assert sweep[1.0][0] >= sweep[0.25][0] >= sweep[0.0][0]
    # and costs (slightly) more BRAM than register channels
    assert sweep[1.0][1] >= sweep[0.0][1]
