"""Appendix A — FPGA buffer transfer speeds.

Host<->device bandwidth versus transfer size for the three boards.  The
reproduction's transfer model encodes the appendix's qualitative results:
bandwidth ramps with size toward the PCIe link rate, and the S10MX
engineering sample's writes are pathologically slow (which caps its
pipelined LeNet throughput, Section 6.3.1).
"""

from conftest import fmt_table, save_table

from repro.device import (
    ALL_BOARDS,
    STRATIX10_MX,
    STRATIX10_SX,
    effective_d2h_gbs,
    effective_h2d_gbs,
)

SIZES = [1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 24]


def _curves():
    out = {}
    for board in ALL_BOARDS:
        out[board.name] = {
            "h2d": [effective_h2d_gbs(board, s) for s in SIZES],
            "d2h": [effective_d2h_gbs(board, s) for s in SIZES],
        }
    return out


def test_appendix_a_transfer_speeds(benchmark):
    curves = benchmark.pedantic(_curves, rounds=1, iterations=1)

    rows = []
    for bname, c in curves.items():
        for direction in ("h2d", "d2h"):
            rows.append(
                [bname, direction]
                + [f"{v * 1e3:.1f}" for v in c[direction]]  # MB/s
            )
    text = fmt_table(
        "Appendix A - effective transfer bandwidth (MB/s) vs size "
        + "/".join(f"{s >> 10}K" for s in SIZES),
        ["board", "dir"] + [f"{s >> 10}K" for s in SIZES],
        rows,
    )
    save_table("appendix_a_transfers", text)

    for bname, c in curves.items():
        # bandwidth is monotone in transfer size
        assert all(b >= a for a, b in zip(c["h2d"], c["h2d"]))
        assert all(b >= a for a, b in zip(c["d2h"], c["d2h"]))
    # S10MX writes are far below its reads and far below the S10SX
    mx, sx = curves["S10MX"], curves["S10SX"]
    assert mx["h2d"][-1] < 0.2 * mx["d2h"][-1]
    assert mx["h2d"][-1] < 0.1 * sx["h2d"][-1]
    # the PCIe x16 board out-transfers the x8 board at large sizes
    a10 = curves["A10"]
    assert sx["h2d"][-1] > a10["h2d"][-1]
