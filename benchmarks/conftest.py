"""Shared fixtures/helpers for the experiment-reproduction benches.

Every bench regenerates one table or figure of the thesis's evaluation
chapter: it prints the same rows/series the thesis reports, writes them
under ``benchmarks/results/`` and asserts the qualitative shape (who
wins, rough factors, where the crossovers/failures fall).  The
``benchmark`` fixture times the underlying simulation/compile step so the
harness integrates with pytest-benchmark.
"""

from __future__ import annotations

import os
from typing import Dict, Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_table(name: str, text: str) -> None:
    """Print a reproduced table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)


def fmt_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple aligned text table."""
    cols = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    def line(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, cols))

    out = [title, line(headers), line(["-" * w for w in cols])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


@pytest.fixture(scope="session")
def lenet_fused():
    from repro.models import lenet5
    from repro.relay import fuse_operators

    return fuse_operators(lenet5())


@pytest.fixture(scope="session")
def mobilenet_fused():
    from repro.models import mobilenet_v1
    from repro.relay import fuse_operators

    return fuse_operators(mobilenet_v1())
