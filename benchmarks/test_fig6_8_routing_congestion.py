"""Figure 6.8 + Section 6.5 — routing congestion at aggressive tilings.

The thesis shows Quartus's routing-utilization heat map for the 7/16/8
pointwise tiling on the S10SX, which fails to route despite DSPs being
available.  This bench sweeps the congestion metric across tilings and
locates the failure frontier per board.
"""

import pytest
from conftest import fmt_table, save_table

from repro.device import ARRIA10, STRATIX10_MX, STRATIX10_SX
from repro.errors import FitError, RoutingError
from repro.flow import default_folded_config, deploy_folded
from repro.topi import ConvTiling

SWEEP = [
    (7, 8, 4), (7, 8, 8),
    (7, 16, 4), (7, 16, 8),
    (7, 32, 4), (7, 32, 8),
]


def _frontier():
    rows = []
    for board in (STRATIX10_MX, STRATIX10_SX):
        for cfg in SWEEP:
            w2, c2, c1 = cfg
            config = default_folded_config("mobilenet_v1", board)
            config.conv_tilings[("conv", 1, 1)] = ConvTiling(w2, c2, c1)
            try:
                d = deploy_folded("mobilenet_v1", board, config=config)
                rows.append(
                    (board.name, cfg, "routed",
                     d.bitstream.timing.congestion, d.bitstream.fmax_mhz)
                )
            except RoutingError:
                from repro.aoc import compile_program
                from repro.flow import build_folded
                from repro.models import mobilenet_v1
                from repro.relay import fuse_operators

                prog, _ = build_folded(
                    fuse_operators(mobilenet_v1()), config, board
                )
                bs = compile_program(prog, board, strict_fit=False)
                rows.append(
                    (board.name, cfg, "ROUTING FAIL", bs.timing.congestion, None)
                )
            except FitError:
                rows.append((board.name, cfg, "FIT FAIL", None, None))
    return rows


def test_fig6_8_routing_frontier(benchmark):
    rows = benchmark.pedantic(_frontier, rounds=1, iterations=1)

    table_rows = []
    for bname, cfg, outcome, congestion, fmax in rows:
        table_rows.append(
            [bname, f"{cfg[0]}/{cfg[1]}/{cfg[2]}", outcome,
             "-" if congestion is None else f"{congestion:.2f}",
             "-" if fmax is None else f"{fmax:.0f}"]
        )
    text = fmt_table(
        "Figure 6.8 / Section 6.5 - MobileNet routing frontier "
        "(paper: 7/16/8 fails on S10SX, 7/32/8 fails on S10MX; "
        "7/16/4 and 7/32/4 route)",
        ["board", "tiling", "outcome", "congestion", "fmax"],
        table_rows,
    )
    save_table("fig6_8_routing_congestion", text)

    outcome = {(b, c): o for b, c, o, *_ in rows}
    # the paper's production configs route
    assert outcome[("S10SX", (7, 16, 4))] == "routed"
    assert outcome[("S10MX", (7, 32, 4))] == "routed"
    # the paper's failing configs fail
    assert outcome[("S10SX", (7, 16, 8))] != "routed"
    assert outcome[("S10MX", (7, 32, 8))] != "routed"
    # congestion grows monotonically with c1vec at fixed w2/c2 on the SX
    cong = {c: x for b, c, o, x, _ in rows if b == "S10SX" and x is not None}
    assert cong[(7, 16, 8)] > cong[(7, 16, 4)]
