"""Tables 6.13-6.16 + Figures 6.6/6.7 — ResNet-18/34 inference.

Paper anchors: base 6.8e-3/8.3e-3 FPS (RN18 MX/SX), 3.2e-3/4.0e-3 (RN34);
optimized 4.1/7.04 (RN18) and 2.6/4.6 (RN34) — speedups of 600x-1150x.
Neither base nor optimized ResNet fits the Arria 10 (insufficient BRAM).
The FPGA loses to 56-thread CPU and the GPU; 3x3 S=1 convolutions
dominate FLOPs (82-91%) and runtime (33-72%).
"""

import pytest
from conftest import fmt_table, save_table

from repro.device import ARRIA10, STRATIX10_MX, STRATIX10_SX
from repro.errors import FitError, RoutingError
from repro.flow import deploy_folded
from repro.perf import tf_cpu_fps, tf_cudnn_fps, tvm_cpu_fps, tvm_sweep

PAPER_OPT = {("resnet18", "S10MX"): 4.1, ("resnet18", "S10SX"): 7.04,
             ("resnet34", "S10MX"): 2.6, ("resnet34", "S10SX"): 4.6}


def _measure():
    out = {}
    for net in ("resnet18", "resnet34"):
        for board in (STRATIX10_MX, STRATIX10_SX):
            try:
                base = deploy_folded(net, board, naive=True).fps()
            except (FitError, RoutingError):
                base = None
            d = deploy_folded(net, board)
            out[(net, board.name)] = {
                "base": base,
                "fps": d.fps(),
                "gflops": d.gflops(),
                "per_op": d.per_op(),
            }
    return out


def test_tab6_14_resnet_inference(benchmark):
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = []
    for (net, bname), m in data.items():
        cpu = tf_cpu_fps(net)
        gpu = tf_cudnn_fps(net)
        base = "no fit" if m["base"] is None else f"{m['base']:.4f}"
        speedup = "-" if m["base"] is None else f"{m['fps'] / m['base']:.0f}x"
        rows.append(
            [net, bname, base, f"{m['fps']:.2f}",
             f"{PAPER_OPT[(net, bname)]}", speedup, f"{m['gflops']:.1f}",
             f"{m['fps'] / cpu:.2f}x", f"{m['fps'] / gpu:.2f}x"]
        )
    text = fmt_table(
        "Tables 6.14/6.15 - ResNet inference (paper speedups 600x-1150x; "
        "FPGA at 0.24x-0.43x of TF-CPU)",
        ["net", "board", "base", "opt FPS", "paper", "speedup", "GFLOPS",
         "vs TF-CPU", "vs GPU"],
        rows,
    )

    op_rows = []
    for (net, bname), m in data.items():
        for label, r in sorted(m["per_op"].items(), key=lambda kv: -kv[1]["time_us"]):
            if r["time_share"] < 0.01:
                continue
            op_rows.append(
                [net, bname, label, f"{r['gflops']:.2f}",
                 f"{100 * r['time_share']:.1f}%"]
            )
    op_text = fmt_table(
        "Table 6.16 - per-op GFLOPS / runtime share (ops >1% runtime)",
        ["net", "board", "op", "GFLOPS", "time share"],
        op_rows,
    )
    sweeps = []
    for net in ("resnet18", "resnet34"):
        sw = tvm_sweep(net)
        sweeps.append([net] + [f"{v:.1f}" for v in sw.values()])
    sweep_text = fmt_table(
        "Figures 6.6/6.7 series - TVM-nT sweeps (threads 1/2/4/8/16/32/56)",
        ["net", "1", "2", "4", "8", "16", "32", "56"],
        sweeps,
    )
    save_table("tab6_14_resnet_inference", "\n\n".join([text, op_text, sweep_text]))

    for (net, bname), m in data.items():
        cpu = tf_cpu_fps(net)
        gpu = tf_cudnn_fps(net)
        # FPGA loses to TF-CPU(112T) and the GPU, as in the paper
        assert m["fps"] < cpu, (net, bname)
        assert m["fps"] < gpu, (net, bname)
        # large speedup over naive where naive synthesizes (the paper
        # measures 600x-1150x; our naive model credits the baseline with
        # the Quartus auto FxF unroll, so the gap is smaller — see
        # EXPERIMENTS.md)
        if m["base"] is not None:
            assert m["fps"] / m["base"] > 30, (net, bname)
        # measured within 3x of the paper's optimized FPS
        assert 0.3 < m["fps"] / PAPER_OPT[(net, bname)] < 3.0, (net, bname)
        # 3x3 S=1 convs dominate runtime among compute ops (Table 6.16)
        shares = m["per_op"]
        conv_share = shares["3x3 conv S=1"]["time_share"]
        assert conv_share > 0.25, (net, bname)
    # S10SX beats S10MX on both nets (paper: 7.04 vs 4.1; 4.6 vs 2.6)
    assert data[("resnet18", "S10SX")]["fps"] > data[("resnet18", "S10MX")]["fps"]
    assert data[("resnet34", "S10SX")]["fps"] > data[("resnet34", "S10MX")]["fps"]


def test_resnet_does_not_fit_a10(benchmark):
    def attempt():
        failures = {}
        for naive in (True, False):
            try:
                deploy_folded("resnet18", ARRIA10, naive=naive)
                failures[naive] = None
            except (FitError, RoutingError) as e:
                failures[naive] = type(e).__name__
        return failures

    failures = benchmark.pedantic(attempt, rounds=1, iterations=1)
    text = fmt_table(
        "ResNet-18 on Arria 10 (paper: does not synthesize, base or optimized)",
        ["variant", "outcome"],
        [["base", failures[True] or "FITS (mismatch!)"],
         ["optimized", failures[False] or "FITS (mismatch!)"]],
    )
    save_table("resnet_a10_fit", text)
    assert failures[True] is not None
    assert failures[False] is not None
