"""Tables 6.11/6.12 + Figure 6.5 — MobileNetV1 inference comparison.

Paper anchors: base 0.21/0.17 FPS (MX/SX), A10 does not fit; optimized
17.7/30.3/18.0 FPS, a 84x-184x speedup; S10SX is 1.40x TF-CPU, 1.94x
TVM-1T, and 0.69x the GTX 1060.
"""

import pytest
from conftest import fmt_table, save_table

from repro.device import ALL_BOARDS, ARRIA10, STRATIX10_MX, STRATIX10_SX
from repro.errors import FitError, RoutingError
from repro.flow import deploy_folded
from repro.perf import tf_cpu_fps, tf_cudnn_fps, tvm_cpu_fps, tvm_sweep

PAPER_OPT = {"S10MX": 17.7, "S10SX": 30.3, "A10": 18.0}


def _measure():
    out = {}
    for board in ALL_BOARDS:
        row = {}
        try:
            row["base_fps"] = deploy_folded(
                "mobilenet_v1", board, naive=True
            ).fps()
        except (FitError, RoutingError):
            row["base_fps"] = None  # does not synthesize
        d = deploy_folded("mobilenet_v1", board)
        row["fps"] = d.fps()
        row["gflops"] = d.gflops()
        row["area"] = d.area()
        out[board.name] = row
    return out


def test_tab6_11_mobilenet_inference(benchmark):
    fpga = benchmark.pedantic(_measure, rounds=1, iterations=1)
    cpu = tf_cpu_fps("mobilenet_v1")
    tvm1 = tvm_cpu_fps("mobilenet_v1", 1)
    gpu = tf_cudnn_fps("mobilenet_v1")

    rows = []
    for bname, m in fpga.items():
        base = "no fit" if m["base_fps"] is None else f"{m['base_fps']:.3f}"
        speedup = (
            "-" if m["base_fps"] is None else f"{m['fps'] / m['base_fps']:.0f}x"
        )
        rows.append(
            [bname, base, f"{m['fps']:.1f}", f"{PAPER_OPT[bname]}", speedup,
             f"{m['gflops']:.1f}", f"{m['fps'] / cpu:.2f}x",
             f"{m['fps'] / tvm1:.2f}x", f"{m['fps'] / gpu:.2f}x"]
        )
    text = fmt_table(
        f"Tables 6.11/6.12 - MobileNetV1 inference (TF-CPU {cpu}, TVM-1T "
        f"{tvm1}, TF-cuDNN {gpu} FPS; paper speedups 84x/184x)",
        ["board", "base", "opt FPS", "paper", "speedup", "GFLOPS",
         "vs TF-CPU", "vs TVM-1T", "vs GPU"],
        rows,
    )
    sweep = tvm_sweep("mobilenet_v1")
    sweep_text = fmt_table(
        "Figure 6.5 series - TVM-nT thread sweep (FPS)",
        ["threads"] + [str(t) for t in sweep],
        [["fps"] + [f"{v:.1f}" for v in sweep.values()]],
    )
    save_table("tab6_11_mobilenet_inference", text + "\n\n" + sweep_text)

    # the naive one-kernel-per-layer design does not fit the Arria 10
    assert fpga["A10"]["base_fps"] is None
    # ...but the parameterized deployment does (the thesis's key result)
    assert fpga["A10"]["fps"] > 5
    # optimization speedup is 2-4 orders of magnitude (paper 84x-184x)
    for bname in ("S10MX", "S10SX"):
        speedup = fpga[bname]["fps"] / fpga[bname]["base_fps"]
        assert 50 < speedup < 5000, bname
    # S10SX beats TF-CPU (paper 1.40x) and TVM-1T (paper 1.94x)...
    assert fpga["S10SX"]["fps"] > cpu
    assert fpga["S10SX"]["fps"] > tvm1
    # ...but loses to the GPU (paper 0.69x) and many-thread TVM
    assert fpga["S10SX"]["fps"] < gpu
    assert fpga["S10SX"]["fps"] < tvm_cpu_fps("mobilenet_v1", 56)
    # platform ordering: SX fastest, MX and A10 comparable (paper 17.7/18.0)
    assert fpga["S10SX"]["fps"] > fpga["A10"]["fps"]
    assert 0.4 < fpga["S10MX"]["fps"] / fpga["A10"]["fps"] < 2.5
    # measured FPS within 3x of the paper
    for bname, m in fpga.items():
        assert 0.33 < m["fps"] / PAPER_OPT[bname] < 3.0, bname
