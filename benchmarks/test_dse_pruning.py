"""Dominance-based DSE pruning — synthesis runs saved, argmax preserved.

The sweep of Table 6.6 compiles every candidate tiling; the dominance
prover of `repro.verify.dominance` skips candidates it can show are
statically infeasible on the board or dominated by an earlier kept
point.  This bench runs the default MobileNet 1x1 grid on the Arria 10
both ways and asserts the pruned sweep synthesizes strictly fewer
candidates while selecting the exact same best tiling — the acceptance
contract for turning pruning on by default in long sweeps.
"""

from conftest import fmt_table, save_table

from repro.device import ARRIA10
from repro.flow.dse import sweep_conv1x1
from repro.flow.stages import MODELS
from repro.relay import fuse_operators


def test_pruned_sweep_saves_synthesis_and_keeps_argmax():
    fused = fuse_operators(MODELS["mobilenet_v1"]())
    unpruned = sweep_conv1x1(fused, ARRIA10, cache=False)
    pruned = sweep_conv1x1(fused, ARRIA10, cache=False, prune=True)

    rows = []
    for label, s in (("unpruned", unpruned), ("pruned", pruned)):
        best = s.best
        rows.append([
            label, len(s.points), s.synthesized, s.pruned_static,
            f"{best.tiling.w2vec}/{best.tiling.c2vec}/{best.tiling.c1vec}",
            f"{best.fps:.2f}",
        ])
    save_table(
        "dse_pruning",
        fmt_table(
            "Dominance pruning, MobileNet 1x1 grid on A10",
            ["sweep", "points", "synthesized", "pruned", "best", "FPS"],
            rows,
        ),
    )

    # same candidate grid either way
    assert len(pruned.points) == len(unpruned.points)
    # strictly fewer candidates reach the compile pipeline
    assert pruned.pruned_static > 0
    assert pruned.synthesized < unpruned.synthesized
    # and the sweep still finds the same argmax at the same throughput
    assert pruned.best.tiling == unpruned.best.tiling
    assert pruned.best.fps == unpruned.best.fps
