"""Tables 6.9/6.10 + Figure 6.4 — LeNet-5 inference comparison.

FPGA deployments (base + optimized per board) against the thesis's
published TF-CPU / TVM-nT / TF-cuDNN reference numbers.

Paper anchors: optimized 1706/4917/2653 FPS (MX/SX/A10); S10SX beats
TF-CPU 4.57x, TVM-1T 2.10x and the GTX 1060 3.07x.
"""

from conftest import fmt_table, save_table

from repro.device import ALL_BOARDS
from repro.flow import deploy_pipelined
from repro.perf import tf_cpu_fps, tf_cudnn_fps, tvm_cpu_fps, tvm_sweep

PAPER_OPT = {"S10MX": 1706, "S10SX": 4917, "A10": 2653}


def _measure():
    out = {}
    for board in ALL_BOARDS:
        base = deploy_pipelined("lenet5", board, "base")
        opt = deploy_pipelined("lenet5", board, "tvm_autorun")
        out[board.name] = {
            "base_fps": base.fps(),
            "fps": opt.fps(),
            "gflops": opt.gflops(),
            "area": opt.area(),
            "fmax": opt.bitstream.fmax_mhz,
        }
    return out


def test_tab6_9_lenet_inference(benchmark):
    fpga = benchmark.pedantic(_measure, rounds=1, iterations=1)
    cpu = tf_cpu_fps("lenet5")
    tvm1 = tvm_cpu_fps("lenet5", 1)
    gpu = tf_cudnn_fps("lenet5")

    rows = []
    for bname, m in fpga.items():
        rows.append(
            [
                bname,
                f"{m['base_fps']:.0f}",
                f"{m['fps']:.0f}",
                f"{PAPER_OPT[bname]}",
                f"{m['fps'] / m['base_fps']:.1f}x",
                f"{m['gflops']:.2f}",
                f"{m['fps'] / cpu:.2f}x",
                f"{m['fps'] / tvm1:.2f}x",
                f"{m['fps'] / gpu:.2f}x",
            ]
        )
    text = fmt_table(
        f"Tables 6.9/6.10 - LeNet inference (TF-CPU {cpu:.0f}, TVM-1T {tvm1:.0f},"
        f" TF-cuDNN {gpu:.0f} FPS)",
        ["board", "base", "opt FPS", "paper", "speedup", "GFLOPS",
         "vs TF-CPU", "vs TVM-1T", "vs GPU"],
        rows,
    )
    sweep = tvm_sweep("lenet5")
    sweep_text = fmt_table(
        "Figure 6.4 series - TVM-nT thread sweep (FPS)",
        ["threads"] + [str(t) for t in sweep],
        [["fps"] + [f"{v:.0f}" for v in sweep.values()]],
    )
    save_table("tab6_9_lenet_inference", text + "\n\n" + sweep_text)

    # headline claims: the S10SX beats every baseline (paper 4.57x/2.10x/3.07x)
    sx = fpga["S10SX"]["fps"]
    assert sx > cpu and sx > tvm1 and sx > gpu
    # every board's optimized deployment beats TF-CPU (paper: 1.59x-4.57x)
    for bname, m in fpga.items():
        assert m["fps"] > 0.8 * cpu, bname
    # measured optimized FPS within 2x of the paper's numbers
    for bname, m in fpga.items():
        assert 0.5 < m["fps"] / PAPER_OPT[bname] < 2.0, bname
    # LeNet thread sweep decreases (Fig 6.4's TVM curve)
    vals = list(sweep.values())
    assert vals[0] == max(vals)
