"""Table 6.6 / Figure 6.3 — 1x1-conv tiling sweep on the Arria 10.

Single-kernel bitstreams (as in the thesis, which synthesized just the
parameterized pointwise kernel per configuration): for each tiling the
bench reports DSPs, fmax and the improvement of the summed MobileNet
1x1-layer time over the naive schedule.

Paper anchors: the naive schedule takes 1326 ms for all 1x1 convolutions;
tilings between 7/4/8 and 7/16/8 land at 20.7-10.8 ms (64x-123x), with
275-987 DSPs and fmax falling from ~195 to ~137 MHz as tiles grow.
"""

from conftest import fmt_table, save_table

import repro.ir as ir
from repro.aoc import compile_program
from repro.device import ARRIA10
from repro.flow import deploy_folded  # noqa: F401 (import check)
from repro.models import mobilenet_v1
from repro.relay import fuse_operators
from repro.schedule import lower
from repro.topi import (
    ConvSpec,
    ConvTiling,
    conv2d_symbolic,
    conv2d_tensors,
    schedule_conv2d_naive,
    schedule_symbolic_conv,
)

#: the thesis's Table 6.6 configurations (w2vec, c2vec, c1vec)
CONFIGS = [
    (7, 4, 8),
    (7, 4, 16),
    (7, 8, 4),
    (7, 8, 8),
    (7, 8, 16),
    (7, 16, 4),
    (7, 16, 8),
]

PAPER_DSPS = {(7, 4, 8): 275, (7, 4, 16): 531, (7, 8, 4): 267, (7, 8, 8): 507,
              (7, 8, 16): 987, (7, 16, 4): 507, (7, 16, 8): 971}


def _one_by_one_layers(fused):
    out = []
    for fn in fused:
        if fn.op == "conv2d" and fn.anchor.attrs["field"] == 1:
            c1, h, w = fn.anchor.inputs[0].out_shape
            out.append((c1, h, w, fn.anchor.attrs["filters"]))
    return out


def _naive_total_ms(layers):
    """Sum of per-layer times under the default TVM schedule (one static
    naive kernel per layer, as the thesis's baseline)."""
    total = 0.0
    for i, (c1, h, w, k) in enumerate(layers):
        spec = ConvSpec(c1=c1, h=h, w=w, k=k, f=1, bias=True, activation="relu6")
        _, out = conv2d_tensors(spec, f"l{i}")
        kern = lower(schedule_conv2d_naive(out, auto_unroll_ff=True), f"k{i}")
        bs = compile_program(ir.Program([kern], f"p{i}"), ARRIA10)
        total += bs.kernel_time_us(f"k{i}") / 1e3
    return total


def _tiled_total_ms(layers, cfg):
    w2, c2, c1v = cfg
    handle, _, out = conv2d_symbolic(1, 1, "p1x1", bias=True, activation="relu6")
    sch = schedule_symbolic_conv(out, ConvTiling(w2vec=w2, c2vec=c2, c1vec=c1v), True)
    kern = lower(sch, "k1x1")
    bs = compile_program(ir.Program([kern], "p1x1"), ARRIA10)
    total = 0.0
    for (c1, h, w, k) in layers:
        total += bs.kernel_time_us("k1x1", handle.bindings(c1, h, w, k)) / 1e3
    return total, bs


def _sweep():
    fused = fuse_operators(mobilenet_v1())
    layers = _one_by_one_layers(fused)
    naive_ms = _naive_total_ms(layers)
    points = []
    for cfg in CONFIGS:
        tiled_ms, bs = _tiled_total_ms(layers, cfg)
        points.append(
            {
                "cfg": cfg,
                "ms": tiled_ms,
                "dsps": bs.total.dsps,
                "fmax": bs.fmax_mhz,
                "improvement": naive_ms / tiled_ms,
            }
        )
    return naive_ms, points


def test_fig6_3_tiling_sweep(benchmark):
    naive_ms, points = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    for p in points:
        w2, c2, c1 = p["cfg"]
        rows.append(
            [f"{w2}/{c2}/{c1}", p["dsps"], f"{PAPER_DSPS[p['cfg']]}",
             f"{p['fmax']:.0f}", f"{p['ms']:.1f}", f"{p['improvement']:.0f}x"]
        )
    text = fmt_table(
        f"Table 6.6 / Fig 6.3 - A10 1x1-conv tiling sweep "
        f"(naive total: {naive_ms:.0f} ms; paper 1326 ms; paper improvements "
        "64x-123x)",
        ["w2/c2/c1", "DSPs", "paperDSP", "fmax", "1x1 ms", "improvement"],
        rows,
    )
    save_table("fig6_3_tiling_sweep", text)

    # naive total is in the right regime (paper 1326 ms; our naive model
    # is ~an order pessimistic, see EXPERIMENTS.md)
    assert 200 < naive_ms < 60000
    # every tiling improves on naive by a large factor (paper 64x-123x)
    assert all(p["improvement"] > 50 for p in points)
    # relative spread between smallest and largest config matches the
    # paper's ~2x (123/64)
    imps = [p["improvement"] for p in points]
    assert 1.3 < max(imps) / min(imps) < 4.0
    # DSPs grow with tile volume and track the paper's counts within 2x
    for p in points:
        assert 0.4 < p["dsps"] / PAPER_DSPS[p["cfg"]] < 2.5, p["cfg"]
    # fmax declines as tiles grow (paper: 213 -> 137 MHz)
    small = next(p for p in points if p["cfg"] == (7, 8, 4))
    big = next(p for p in points if p["cfg"] == (7, 8, 16))
    assert small["fmax"] > big["fmax"]
    # diminishing returns: doubling DSPs does not double throughput at the
    # large end (the paper's configuration-5-vs-4 observation)
    gain = small["ms"] / big["ms"]
    assert gain < 2.2
