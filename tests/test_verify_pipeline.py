"""The verify pipeline stage and the ``repro.report --verify`` CLI."""

import io
import json

import pytest

import repro.ir as ir
from repro.device.boards import ALL_BOARDS, STRATIX10_SX
from repro.errors import VerificationError
from repro.flow import deploy_pipelined
from repro.flow.stages import _verify_stage
from repro.pipeline import Pipeline
from repro.report import main as report_main


def _broken_program() -> ir.Program:
    """A program with a seeded out-of-bounds store (RB001)."""
    a = ir.Buffer("a", (8,))
    i = ir.Var("i")
    body = ir.For(i, 8, ir.Store(a, i + 8, 1.0))
    return ir.Program([ir.Kernel("oob", [a], body)], name="broken")


def _clean_program() -> ir.Program:
    a = ir.Buffer("a", (8,))
    i = ir.Var("i")
    body = ir.For(i, 8, ir.Store(a, i, 1.0))
    return ir.Program([ir.Kernel("fine", [a], body)], name="fine")


class TestVerifyStage:
    def test_stage_passes_clean_program(self):
        flow = Pipeline("t", [_verify_stage(lambda ctx: None)])
        result = flow.run(seed={"program": _clean_program(), "source": ""})
        report = result.value("verify")
        assert report.clean
        rec = result.trace.stage("verify")
        assert rec.status == "ok"
        assert rec.counters["errors"] == 0
        assert len(rec.fingerprint) == 64

    def test_stage_fails_broken_program_before_synthesis(self):
        flow = Pipeline("t", [_verify_stage(lambda ctx: None)])
        with pytest.raises(VerificationError, match="RB001") as exc:
            flow.run(seed={"program": _broken_program(), "source": ""})
        err = exc.value
        assert err.stage == "verify"
        assert err.report is not None
        assert [d.rule for d in err.report.errors] == ["RB001"]
        failing = err.diagnostic.trace.records[-1]
        assert failing.stage == "verify"
        assert failing.status == "error"

    def test_deploy_records_verify_counters(self):
        d = deploy_pipelined("lenet5", STRATIX10_SX, cache=False)
        rec = d.trace.stage("verify")
        assert rec.status == "ok"
        assert rec.counters["errors"] == 0
        assert rec.counters["accesses_proven"] > 0
        assert rec.counters["channels_matched"] > 0


class TestReportVerifyCLI:
    def test_clean_network_exits_zero(self):
        out = io.StringIO()
        assert report_main(out, ["--verify", "lenet5:S10MX"]) == 0
        assert "clean — no findings" in out.getvalue()

    def test_unfittable_board_still_verifies(self):
        # resnet18 on the Arria 10 cannot synthesize (FitError), but
        # --verify stops after codegen, so it must still succeed
        out = io.StringIO()
        assert report_main(out, ["--verify", "resnet18:A10"]) == 0

    def test_json_output(self):
        out = io.StringIO()
        assert report_main(out, ["--verify", "mobilenet_v1", "--json"]) == 0
        payload = json.loads(out.getvalue())
        assert payload["clean"] is True
        assert payload["subject"] == "mobilenet_v1:S10SX"

    def test_bad_network_exits_two(self):
        out = io.StringIO()
        assert report_main(out, ["--verify", "nosuch"]) == 2

    def test_bad_board_exits_two(self):
        out = io.StringIO()
        assert report_main(out, ["--verify", "lenet5:Z99"]) == 2

    def test_missing_spec_exits_two(self):
        out = io.StringIO()
        assert report_main(out, ["--verify"]) == 2

    @pytest.mark.parametrize("network", ["lenet5", "mobilenet_v1", "resnet18"])
    @pytest.mark.parametrize("board", [b.name for b in ALL_BOARDS])
    def test_ci_matrix_is_verifier_clean(self, network, board):
        # the CI verify job's exact contract: every shipped network x
        # board build carries zero error-severity diagnostics
        out = io.StringIO()
        assert report_main(out, ["--verify", f"{network}:{board}"]) == 0, (
            out.getvalue()
        )
