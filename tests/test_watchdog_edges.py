"""ChannelWaitGraph edge cases + static/dynamic deadlock cross-check."""

import pytest

import repro.ir as ir
from repro.errors import DeadlockError
from repro.resilience.watchdog import ChannelWaitGraph
from repro.verify import check_channels


class TestSelfWait:
    def test_stage_waiting_on_its_own_channel_is_a_cycle(self):
        g = ChannelWaitGraph()
        g.set_producer("ch", "k1")
        g.wait("k1", "ch", occupancy=0, depth=4)
        cycle = g.find_cycle()
        assert cycle is not None
        assert [w.stage for w in cycle] == ["k1"]
        with pytest.raises(DeadlockError, match="k1 waits on ch"):
            g.check()

    def test_diagnosis_carries_occupancy(self):
        g = ChannelWaitGraph()
        g.set_producer("ch", "k1")
        g.wait("k1", "ch", occupancy=3, depth=4)
        with pytest.raises(DeadlockError, match="occupancy 3/4"):
            g.check()


class TestTwoNodeCycle:
    def _cyclic(self):
        g = ChannelWaitGraph()
        g.set_producer("c1", "k1")
        g.set_producer("c2", "k2")
        g.wait("k1", "c2")  # k1 blocked on what k2 produces
        g.wait("k2", "c1")  # k2 blocked on what k1 produces
        return g

    def test_two_node_cycle_detected(self):
        cycle = self._cyclic().find_cycle()
        assert cycle is not None
        assert {w.stage for w in cycle} == {"k1", "k2"}

    def test_check_raises_with_both_stages(self):
        with pytest.raises(DeadlockError) as exc:
            self._cyclic().check(t_us=12.0)
        assert "k1" in str(exc.value) and "k2" in str(exc.value)

    def test_one_side_resumed_breaks_cycle(self):
        g = self._cyclic()
        g.resume("k2")
        assert g.find_cycle() is None
        g.check()  # must not raise


class TestResumeBeforeWait:
    def test_resume_of_never_waiting_stage_is_a_noop(self):
        g = ChannelWaitGraph()
        g.resume("k1")  # must not raise, must not create state
        assert g.find_cycle() is None
        assert "k1" not in g.waits

    def test_wait_after_resume_still_tracks(self):
        g = ChannelWaitGraph()
        g.set_producer("ch", "k1")
        g.resume("k1")
        g.wait("k1", "ch")
        assert g.find_cycle() is not None

    def test_rewait_overwrites_previous_wait(self):
        g = ChannelWaitGraph()
        g.set_producer("c1", "k2")
        g.wait("k1", "c_old")
        g.wait("k1", "c1")
        assert g.waits["k1"].channel == "c1"


class TestChainWithoutCycle:
    def test_linear_wait_chain_is_not_deadlock(self):
        # k3 waits on k2's channel, k2 waits on k1's, k1 is running
        g = ChannelWaitGraph()
        g.set_producer("c1", "k1")
        g.set_producer("c2", "k2")
        g.wait("k3", "c2")
        g.wait("k2", "c1")
        assert g.find_cycle() is None

    def test_wait_on_producerless_channel_is_not_deadlock(self):
        g = ChannelWaitGraph()
        g.wait("k1", "host_input")
        assert g.find_cycle() is None


class TestStaticDynamicCrossCheck:
    """A topology the static verifier rejects must also deadlock the
    runtime watchdog once every stage blocks — the two analyses are the
    compile-time and run-time views of the same property."""

    def _cyclic_program(self):
        c1, c2 = ir.Channel("c1", depth=1), ir.Channel("c2", depth=1)
        i, j = ir.Var("i"), ir.Var("j")
        k1 = ir.Kernel(
            "k1", [], ir.For(i, 1, ir.ChannelWrite(c1, ir.ChannelRead(c2))),
            autorun=True,
        )
        k2 = ir.Kernel(
            "k2", [], ir.For(j, 1, ir.ChannelWrite(c2, ir.ChannelRead(c1))),
            autorun=True,
        )
        return ir.Program([k1, k2])

    def test_static_verifier_flags_rc003(self):
        rep = check_channels(self._cyclic_program())
        assert [d.rule for d in rep.errors] == ["RC003"]

    def test_same_topology_deadlocks_dynamically(self):
        program = self._cyclic_program()
        g = ChannelWaitGraph()
        # mirror the program's topology into the runtime graph: each
        # kernel produces the channels it writes and blocks on its reads
        for k in program.kernels:
            reads, writes = k.channels()
            for ch in writes:
                g.set_producer(ch.name, k.name)
        for k in program.kernels:
            reads, _ = k.channels()
            for ch in reads:
                g.wait(k.name, ch.name, occupancy=0, depth=ch.depth)
        with pytest.raises(DeadlockError, match="channel-wait cycle"):
            g.check()

    def test_acyclic_topology_passes_both(self):
        ch = ir.Channel("ch", depth=4)
        i, j = ir.Var("i"), ir.Var("j")
        out = ir.Buffer("out", (4,))
        prod = ir.Kernel(
            "prod", [], ir.For(i, 4, ir.ChannelWrite(ch, 1.0)), autorun=True
        )
        cons = ir.Kernel(
            "cons", [out], ir.For(j, 4, ir.Store(out, j, ir.ChannelRead(ch)))
        )
        program = ir.Program([prod, cons])
        assert check_channels(program).clean
        g = ChannelWaitGraph()
        g.set_producer("ch", "prod")
        g.wait("cons", "ch")  # producer still running: no cycle
        g.check()
